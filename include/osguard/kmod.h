/*
 * osguard kernel-module ABI.
 *
 * Host-side stand-in for the in-kernel runtime the paper's §3.3 sketches:
 * `EmitKernelModuleSource` renders every verified guardrail against this
 * header, and the compile-check suite builds the result with
 * -Wall -Wextra -Werror to prove the emitted C is real, not an untested
 * pretty-print. The value helpers here are illustrative host stubs — the
 * executed native tier uses src/vm/native_abi.h instead, whose helpers are
 * bit-identical to the interpreter.
 *
 * Requires a C11 compiler with GNU attribute support (gcc or clang — the
 * same compilers the AOT tier drives).
 */

#ifndef OSGUARD_KMOD_H_
#define OSGUARD_KMOD_H_

#include <stdarg.h>
#include <stddef.h>

/* Value kind tags. */
enum {
  OSG_NIL = 0,
  OSG_INT = 1,
  OSG_FLOAT = 2,
  OSG_BOOL = 3,
  OSG_STR = 4,
  OSG_LIST = 5
};

typedef struct osg_value {
  int kind;
  long long i;
  double f;
  const void *h;
} osg_value;

/* Helper ids — mirror osguard::HelperId (src/dsl/builtins.h). */
enum {
  OSG_HELPER_LOAD = 0,
  OSG_HELPER_LOAD_OR = 1,
  OSG_HELPER_SAVE = 2,
  OSG_HELPER_INCR = 3,
  OSG_HELPER_EXISTS = 4,
  OSG_HELPER_OBSERVE = 5,
  OSG_HELPER_COUNT = 16,
  OSG_HELPER_SUM = 17,
  OSG_HELPER_MEAN = 18,
  OSG_HELPER_MIN = 19,
  OSG_HELPER_MAX = 20,
  OSG_HELPER_STDDEV = 21,
  OSG_HELPER_RATE = 22,
  OSG_HELPER_NEWEST = 23,
  OSG_HELPER_OLDEST = 24,
  OSG_HELPER_QUANTILE = 25,
  OSG_HELPER_ABS = 32,
  OSG_HELPER_SQRT = 33,
  OSG_HELPER_LOG = 34,
  OSG_HELPER_EXP = 35,
  OSG_HELPER_FLOOR = 36,
  OSG_HELPER_CEIL = 37,
  OSG_HELPER_POW = 38,
  OSG_HELPER_MIN2 = 39,
  OSG_HELPER_MAX2 = 40,
  OSG_HELPER_CLAMP = 41,
  OSG_HELPER_NOW = 48,
  OSG_HELPER_REPORT = 64,
  OSG_HELPER_REPLACE = 65,
  OSG_HELPER_RETRAIN = 66,
  OSG_HELPER_DEPRIORITIZE = 67,
  OSG_HELPER_UNKNOWN = 255
};

/* Non-finite float constants without pulling in <math.h>. */
#define OSG_INF (__builtin_inf())
#define OSG_NAN (__builtin_nan(""))

struct osg_ctx {
  const void *host; /* runtime-private */
};

/* ---- Value constructors ---- */

static inline osg_value osg_nil(void) {
  osg_value v = {OSG_NIL, 0, 0.0, 0};
  return v;
}

static inline osg_value osg_int(long long x) {
  osg_value v = {OSG_INT, 0, 0.0, 0};
  v.i = x;
  return v;
}

static inline osg_value osg_float(double x) {
  osg_value v = {OSG_FLOAT, 0, 0.0, 0};
  v.f = x;
  return v;
}

static inline osg_value osg_bool(int x) {
  osg_value v = {OSG_BOOL, 0, 0.0, 0};
  v.i = x != 0;
  return v;
}

static inline osg_value osg_str(const char *s) {
  osg_value v = {OSG_STR, 0, 0.0, 0};
  v.h = s;
  v.i = s != 0 && s[0] != '\0';
  return v;
}

/* Name-list constant: osg_namelist(2, "batch", "scan"). The in-kernel
 * runtime interns the names; this host stub only records arity. */
static inline osg_value osg_namelist(int n, ...) {
  va_list ap;
  osg_value v = {OSG_LIST, 0, 0.0, 0};
  int k;
  va_start(ap, n);
  for (k = 0; k < n; ++k) {
    (void)va_arg(ap, const char *);
  }
  va_end(ap);
  v.i = n != 0;
  return v;
}

static inline osg_value osg_list(const osg_value *elems, int n) {
  osg_value v = {OSG_LIST, 0, 0.0, 0};
  v.h = elems;
  v.i = n != 0;
  return v;
}

/* ---- Operator helpers (illustrative host semantics) ---- */

static inline int osg_truthy(osg_value v) {
  switch (v.kind) {
    case OSG_NIL:
      return 0;
    case OSG_FLOAT:
      return v.f != 0.0;
    default:
      return v.i != 0;
  }
}

static inline int osg_numeric(osg_value v, double *out) {
  if (v.kind == OSG_INT || v.kind == OSG_BOOL) {
    *out = (double)v.i;
    return 1;
  }
  if (v.kind == OSG_FLOAT) {
    *out = v.f;
    return 1;
  }
  return 0;
}

static inline osg_value osg_add(osg_value a, osg_value b) {
  double x, y;
  if (a.kind == OSG_INT && b.kind == OSG_INT) {
    return osg_int((long long)((unsigned long long)a.i + (unsigned long long)b.i));
  }
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_float(x + y);
  }
  return osg_nil();
}

static inline osg_value osg_sub(osg_value a, osg_value b) {
  double x, y;
  if (a.kind == OSG_INT && b.kind == OSG_INT) {
    return osg_int((long long)((unsigned long long)a.i - (unsigned long long)b.i));
  }
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_float(x - y);
  }
  return osg_nil();
}

static inline osg_value osg_mul(osg_value a, osg_value b) {
  double x, y;
  if (a.kind == OSG_INT && b.kind == OSG_INT) {
    return osg_int((long long)((unsigned long long)a.i * (unsigned long long)b.i));
  }
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_float(x * y);
  }
  return osg_nil();
}

static inline osg_value osg_div(osg_value a, osg_value b) {
  double x, y;
  if (osg_numeric(a, &x) && osg_numeric(b, &y) && y != 0.0) {
    return osg_float(x / y);
  }
  return osg_nil();
}

static inline osg_value osg_mod(osg_value a, osg_value b) {
  if (a.kind == OSG_INT && b.kind == OSG_INT && b.i != 0 && b.i != -1) {
    return osg_int(a.i % b.i);
  }
  return osg_nil();
}

static inline osg_value osg_neg(osg_value a) {
  if (a.kind == OSG_INT) {
    return osg_int((long long)(0ULL - (unsigned long long)a.i));
  }
  if (a.kind == OSG_FLOAT) {
    return osg_float(-a.f);
  }
  if (a.kind == OSG_BOOL) {
    return osg_int(a.i ? -1 : 0);
  }
  return osg_nil();
}

static inline osg_value osg_not(osg_value a) { return osg_bool(!osg_truthy(a)); }

static inline osg_value osg_lt(osg_value a, osg_value b) {
  double x, y;
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_bool(x < y);
  }
  return osg_nil();
}

static inline osg_value osg_le(osg_value a, osg_value b) {
  double x, y;
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_bool(x <= y);
  }
  return osg_nil();
}

static inline osg_value osg_gt(osg_value a, osg_value b) {
  double x, y;
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_bool(x > y);
  }
  return osg_nil();
}

static inline osg_value osg_ge(osg_value a, osg_value b) {
  double x, y;
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_bool(x >= y);
  }
  return osg_nil();
}

static inline osg_value osg_eq(osg_value a, osg_value b) {
  double x, y;
  if (osg_numeric(a, &x) && osg_numeric(b, &y)) {
    return osg_bool(x == y);
  }
  return osg_bool(a.kind == b.kind && a.h == b.h && a.i == b.i);
}

static inline osg_value osg_ne(osg_value a, osg_value b) {
  osg_value e = osg_eq(a, b);
  return osg_bool(!osg_truthy(e));
}

static inline osg_value osg_bad(osg_value a, osg_value b) {
  (void)a;
  (void)b;
  return osg_nil();
}

/* Helper-call escape into the monitor runtime. */
static inline osg_value osg_call(struct osg_ctx *ctx, int helper,
                                 const osg_value *args, int nargs) {
  (void)ctx;
  (void)helper;
  (void)args;
  (void)nargs;
  return osg_nil();
}

/* ---- Monitor + trigger registration ---- */

struct osg_monitor {
  const char *name;
  int severity;
  long long cooldown_ns;
  int hysteresis;
  osg_value (*rule)(struct osg_ctx *);
  osg_value (*action)(struct osg_ctx *);
  osg_value (*on_satisfy)(struct osg_ctx *);
};

enum {
  OSG_TRIG_TIMER = 0,
  OSG_TRIG_FUNCTION = 1,
  OSG_TRIG_ONCHANGE = 2
};

struct osg_trigger_reg {
  int kind;
  struct osg_monitor *monitor;
  const char *function_name;
  long long start_ns;
  long long interval_ns;
  long long stop_ns;
  const char *watch_key;
};

#define OSG_CAT2_(a, b) a##b
#define OSG_CAT_(a, b) OSG_CAT2_(a, b)

#define OSG_TRIGGER_TIMER(mon, start_ns_, interval_ns_, stop_ns_)             \
  static const struct osg_trigger_reg OSG_CAT_(osg_trig_, __LINE__)           \
      __attribute__((used)) = {OSG_TRIG_TIMER, &(mon), 0,                     \
                               (start_ns_), (interval_ns_), (stop_ns_), 0}

#define OSG_TRIGGER_FUNCTION(mon, fn)                                         \
  static const struct osg_trigger_reg OSG_CAT_(osg_trig_, __LINE__)           \
      __attribute__((used)) = {OSG_TRIG_FUNCTION, &(mon), #fn, 0, 0, 0, 0}

#define OSG_TRIGGER_ONCHANGE(mon, key)                                        \
  static const struct osg_trigger_reg OSG_CAT_(osg_trig_, __LINE__)           \
      __attribute__((used)) = {OSG_TRIG_ONCHANGE, &(mon), 0, 0, 0, 0, (key)}

#define OSG_MODULE(mon)                                                       \
  static struct osg_monitor *const OSG_CAT_(osg_module_entry_, __LINE__)      \
      __attribute__((used)) = &(mon)

#endif /* OSGUARD_KMOD_H_ */
