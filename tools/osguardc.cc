// osguardc — the guardrail spec compiler, as a command-line tool.
//
// Usage:
//   osguardc [options] <spec-file>...
//   osguardc [options] -            (read the spec from stdin)
//
// Options:
//   --dump-tokens   print the token stream
//   --dump-ast      print the parsed rules/actions (surface syntax)
//   --disasm        print bytecode disassembly for every compiled program
//   --emit-c        print the generated kernel-module C
//   --check         compile + verify only (default if no dump flag given)
//   -q              suppress the per-guardrail summary
//
// Exit status: 0 if every spec compiles and verifies, 1 otherwise —
// suitable for CI over a directory of production guardrails.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/dsl/lexer.h"
#include "src/dsl/parser.h"
#include "src/dsl/sema.h"
#include "src/vm/c_backend.h"
#include "src/vm/compiler.h"

namespace osguard {
namespace {

struct CliOptions {
  bool dump_tokens = false;
  bool dump_ast = false;
  bool disasm = false;
  bool emit_c = false;
  bool quiet = false;
  std::vector<std::string> inputs;
};

int Usage() {
  std::fprintf(stderr,
               "usage: osguardc [--dump-tokens] [--dump-ast] [--disasm] [--emit-c] "
               "[--check] [-q] <spec-file>... | -\n");
  return 2;
}

Result<std::string> ReadInput(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int ProcessOne(const std::string& path, const CliOptions& options) {
  auto source = ReadInput(path);
  if (!source.ok()) {
    std::fprintf(stderr, "osguardc: %s\n", source.status().ToString().c_str());
    return 1;
  }

  if (options.dump_tokens) {
    Lexer lexer(source.value());
    auto tokens = lexer.Tokenize();
    if (!tokens.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), tokens.status().ToString().c_str());
      return 1;
    }
    for (const Token& token : tokens.value()) {
      std::printf("%3d:%-3d %s\n", token.line, token.column, token.Describe().c_str());
    }
  }

  auto spec = ParseSpecSource(source.value());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), spec.status().ToString().c_str());
    return 1;
  }

  if (options.dump_ast) {
    for (const GuardrailDecl& decl : spec.value().guardrails) {
      std::printf("guardrail %s\n", decl.name.c_str());
      for (const auto& rule : decl.rules) {
        std::printf("  rule:   %s\n", rule->ToString().c_str());
      }
      for (const auto& action : decl.actions) {
        std::printf("  action: %s\n", action->ToString().c_str());
      }
      for (const auto& action : decl.satisfy_actions) {
        std::printf("  on_satisfy: %s\n", action->ToString().c_str());
      }
    }
  }

  auto analyzed = Analyze(std::move(spec).value());
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), analyzed.status().ToString().c_str());
    return 1;
  }
  auto compiled = CompileSpec(analyzed.value());
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), compiled.status().ToString().c_str());
    return 1;
  }

  for (const CompiledGuardrail& guardrail : compiled.value()) {
    if (!options.quiet) {
      size_t timer_count = 0;
      size_t hook_count = 0;
      for (const CompiledTrigger& trigger : guardrail.triggers) {
        (trigger.kind == TriggerKind::kTimer ? timer_count : hook_count) += 1;
      }
      std::printf("%s: guardrail '%s' OK (%zu timer / %zu hook triggers, rule %zu insns, "
                  "action %zu insns%s)\n",
                  path.c_str(), guardrail.name.c_str(), timer_count, hook_count,
                  guardrail.rule.insns.size(), guardrail.action.insns.size(),
                  guardrail.on_satisfy.empty() ? "" : ", on_satisfy present");
    }
    if (options.disasm) {
      std::printf("%s", guardrail.rule.Disassemble().c_str());
      std::printf("%s", guardrail.action.Disassemble().c_str());
      if (!guardrail.on_satisfy.empty()) {
        std::printf("%s", guardrail.on_satisfy.Disassemble().c_str());
      }
    }
    if (options.emit_c) {
      std::printf("%s\n", EmitKernelModuleSource(guardrail).c_str());
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump-tokens") {
      options.dump_tokens = true;
    } else if (arg == "--dump-ast") {
      options.dump_ast = true;
    } else if (arg == "--disasm") {
      options.disasm = true;
    } else if (arg == "--emit-c") {
      options.emit_c = true;
    } else if (arg == "--check") {
      // default behavior; accepted for scripting clarity
    } else if (arg == "-q") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "osguardc: unknown option '%s'\n", arg.c_str());
      return Usage();
    } else {
      options.inputs.push_back(arg);
    }
  }
  if (options.inputs.empty()) {
    return Usage();
  }
  int failures = 0;
  for (const std::string& path : options.inputs) {
    failures += ProcessOne(path, options);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace osguard

int main(int argc, char** argv) { return osguard::Main(argc, argv); }
