// Hot-path benchmark runner with a stable JSON output schema.
//
// Runs the monitor-overhead workloads behind `ext1_monitor_overhead` (the P5
// "decision overhead" extension) and emits machine-readable results so the
// perf trajectory can be tracked across PRs in BENCH_hotpath.json.
//
// Schema (stable; additions append new metric objects, never rename):
//   {
//     "bench": "hotpath",
//     "schema_version": 1,
//     "metrics": [
//       {"name": "...", "value": <number>, "unit": "ns_per_eval" | ...},
//       ...
//     ],
//     "ns_per_eval_mean": <number>   // headline: mean over *_ns_per_eval
//   }
//
// Usage: benchjson [--strict-alloc] [--chaos] [--supervisor] [-o FILE]
//   --strict-alloc  exit(1) if the steady-state FUNCTION callout loop
//                   allocates (the zero-allocation trigger-dispatch
//                   guarantee; a heap-profile assertion, not a timer).
//   --chaos         run the ext6 fault-storm experiment instead and emit
//                   bench "chaos" (BENCH_chaos.json): guardrail trigger
//                   latency under an injected fault storm vs. idle, and the
//                   guarded vs. unguarded false-submit counts under the
//                   storm (the guarded count must stay bounded). Exits 1 if
//                   the guardrail fails to contain the storm.
//   --native        run the ext8 AOT-tier experiment instead and emit
//                   bench "native" (BENCH_native.json): ns/eval interpreter
//                   vs native for the hot-window, many-monitors, and
//                   function-callout scenarios, tier promotion counts, and
//                   allocs/eval on both tiers. Degrades gracefully (emits
//                   native_available=0, exits 0) when the host has no
//                   compiler. Exits 1 if the native tier fails to reach the
//                   3x ns/eval bound on the function-callout scenario.
//   --persist       run the E9 warm-restart experiment instead and emit
//                   bench "persist" (BENCH_persist.json): journal commit
//                   overhead per callout boundary, journal bytes per commit,
//                   recovery wall time after a mid-run crash, journal replay
//                   throughput, and a state-divergence bit comparing the
//                   recovered run against an uninterrupted one. Exits 1 if
//                   recovery diverges from the uninterrupted run (must be
//                   bit-identical) or recovery wall time exceeds the CI
//                   bound (500ms for the benchmark workload).
//   --sharded       run the E10 multi-core scaling experiment instead and
//                   emit bench "sharded" (BENCH_sharded.json): FUNCTION
//                   callout throughput of the serial engine vs the sharded
//                   engine at 64 monitors, per-shard eval counts, ring
//                   occupancy high-water marks, and merge cost per batch.
//                   The sharded run's final state (store + report ring +
//                   engine image) must be bit-identical to the serial run —
//                   exit(1) if it is not. The >= 4x speedup bound is
//                   enforced only on hosts with >= 8 hardware threads
//                   (reported as sharded_gate_enforced).
//   --agent         run the E11 tool-call governance experiment instead and
//                   emit bench "agent" (BENCH_agent.json): a 1000-seed
//                   serial-vs-sharded identity campaign plus a 100-seed
//                   panic/warm-restart arm on the OnToolCall path, the
//                   scripted incident/clean trace gates (sequence kill lands
//                   within the violating callout; the clean trace trips
//                   nothing), and p50/p99 per-tool-call admission overhead
//                   governed vs ungoverned. Exits 1 if any identity or
//                   containment gate fails.
//   --governor      run the E12 overload-governor experiment instead and
//                   emit bench "governor" (BENCH_governor.json): governed vs
//                   ungoverned evaluation counts and p99 callout latency
//                   through a seeded callout storm, the ladder depth reached
//                   and recovery to full service, plus serial-vs-sharded
//                   identity campaigns with the governor active and with
//                   worker-stall / worker-death chaos armed (watchdog
//                   healing counters must move). Exits 1 if the ladder never
//                   reaches fail-static, a critical monitor is shed, the
//                   governed storm fails to shed work or bound p99, any
//                   identity seed diverges, or the watchdog fails to heal.
//   --store         run the E14 bounded-memory store experiment instead and
//                   emit bench "store" (BENCH_store.json): >= 1M simulated
//                   agent session lifecycles through a retention-governed
//                   kernel with session-end eager reclamation, sampling the
//                   live-key count and approximate store bytes at every
//                   churn wave. Exits 1 if the steady-state key count or
//                   byte footprint is unbounded (final wave > 2x the first
//                   settled wave), any stale-generation misread occurs, or
//                   the retention-on p99 per-call cost exceeds the
//                   retention-off baseline by more than 5%.
//   --supervisor    run the ext7 supervisor experiment instead and emit
//                   bench "supervisor" (BENCH_supervisor.json): trip rate of
//                   the undamped E2 oscillating pair with and without the
//                   flap-detecting breaker, breaker recovery through a
//                   vm.budget_exhaust storm, probation auto-rollback of a
//                   budget-blowing deploy, and supervised-vs-bare per-eval
//                   overhead. Exits 1 if quarantine fails to at least halve
//                   the oscillation trip rate, the breaker fails to recover,
//                   the rollback is not bit-identical, or overhead regresses
//                   past the CI bound (p99 +25%; the design target is 5%).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "src/actions/agent_control.h"
#include "src/agent/harness.h"
#include "src/chaos/chaos.h"
#include "src/linnos/harness.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/governor/governor.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/agent_callout.h"
#include "src/sim/kernel.h"
#include "src/support/logging.h"
#include "src/support/rng.h"
#include "src/vm/native_aot.h"
#include "src/wl/sessiongen.h"
#include "src/wl/stormgen.h"

// --- Heap profile hooks -----------------------------------------------------
// Counts every global allocation so workloads can assert "no allocations in
// the steady state". Counting is always on; it is a single relaxed atomic
// increment and does not perturb the ns-scale measurements meaningfully.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace osguard {
namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::string MakeTimerGuardrail(int index, Duration interval) {
  return "guardrail g" + std::to_string(index) +
         " {\n"
         "  trigger: { TIMER(" +
         std::to_string(interval) + ", " + std::to_string(interval) +
         ") },\n"
         "  rule: { COUNT(metric" +
         std::to_string(index) + ", 10s) == 0 || MEAN(metric" + std::to_string(index) +
         ", 10s) <= 100 },\n"
         "  action: { REPORT() }\n"
         "}\n";
}

// (1) One guardrail on a 1ms TIMER whose 10s aggregate window holds 1000
// samples: the aggregate-query-dominated regime. Also reports the
// steady-state allocation count per eval (the timer path shares the
// FUNCTION path's zero-allocation dispatch claim).
void TimerHotWindow(std::vector<Metric>& metrics) {
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  (void)engine.LoadSource(MakeTimerGuardrail(0, Milliseconds(1)));
  for (int i = 0; i < 1000; ++i) {
    store.Observe("metric0", Milliseconds(i * 60), 50.0);
  }
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const int64_t start = WallNs();
  engine.AdvanceTo(Seconds(60));
  const int64_t elapsed = WallNs() - start;
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t evals = engine.stats().evaluations;
  const double denom = evals > 0 ? static_cast<double>(evals) : 1.0;
  metrics.push_back(Metric{"timer_hot_window_ns_per_eval",
                           static_cast<double>(elapsed) / denom, "ns_per_eval"});
  metrics.push_back(Metric{"timer_hot_window_allocs_per_eval",
                           static_cast<double>(allocs) / denom, "allocs_per_eval"});
}

// (2) 64 guardrails on 100ms TIMERs, one sample per series: the
// dispatch/VM-dominated regime.
void TimerManyMonitors(std::vector<Metric>& metrics) {
  FeatureStore store;
  PolicyRegistry registry;
  Engine engine(&store, &registry);
  std::string spec;
  constexpr int kCount = 64;
  for (int i = 0; i < kCount; ++i) {
    spec += MakeTimerGuardrail(i, Milliseconds(100));
  }
  (void)engine.LoadSource(spec);
  for (int i = 0; i < kCount; ++i) {
    store.Observe("metric" + std::to_string(i), 0, 50.0);
  }
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const int64_t start = WallNs();
  engine.AdvanceTo(Seconds(60));
  const int64_t elapsed = WallNs() - start;
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t evals = engine.stats().evaluations;
  const double denom = evals > 0 ? static_cast<double>(evals) : 1.0;
  metrics.push_back(Metric{"timer_many_monitors_ns_per_eval",
                           static_cast<double>(elapsed) / denom, "ns_per_eval"});
  metrics.push_back(Metric{"timer_many_monitors_allocs_per_eval",
                           static_cast<double>(allocs) / denom, "allocs_per_eval"});
}

// (3) FUNCTION trigger on a hot path: 1M callouts against one hooked
// monitor. Also reports the steady-state allocation count per callout.
void FunctionCallouts(std::vector<Metric>& metrics) {
  FeatureStore store;
  PolicyRegistry registry;
  EngineOptions options;
  options.measure_wall_time = false;
  Engine engine(&store, &registry, nullptr, options);
  (void)engine.LoadSource(
      "guardrail f0 { trigger: { FUNCTION(blk_mq_submit_bio_hotpath) }, rule: { LOAD_OR(x, 0) <= 1 }, "
      "action: { REPORT() } }\n");
  constexpr int kCalls = 1000000;
  // Warm up so lazy one-time work (report ring, first-eval paths) is done.
  for (int i = 0; i < 1000; ++i) {
    engine.OnFunctionCall("blk_mq_submit_bio_hotpath", i);
  }
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const int64_t start = WallNs();
  for (int i = 0; i < kCalls; ++i) {
    engine.OnFunctionCall("blk_mq_submit_bio_hotpath", 1000 + i);
  }
  const int64_t elapsed = WallNs() - start;
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  metrics.push_back(Metric{"function_callout_ns_per_eval",
                           static_cast<double>(elapsed) / kCalls, "ns_per_eval"});
  metrics.push_back(Metric{"function_callout_allocs_per_call",
                           static_cast<double>(allocs) / kCalls, "allocs_per_call"});
  // Unhooked path: the cost a kernel pays for instrumenting a function no
  // monitor watches.
  const int64_t start2 = WallNs();
  for (int i = 0; i < kCalls; ++i) {
    engine.OnFunctionCall("blk_mq_requeue_request_cold", i);
  }
  metrics.push_back(Metric{"function_callout_unhooked_ns",
                           static_cast<double>(WallNs() - start2) / kCalls, "ns_per_call"});
}

// --- --native: the ext8 AOT-tier experiment -------------------------------
// Each scenario runs twice on an identical workload: tier disabled
// (interpreter) and tier enabled with promote_after = 0 (every monitor
// compiles to a shared object during the warm-up window, so the timed region
// measures steady-state native evals only). The three regimes bracket where
// eval time actually goes:
//   * hot-window / many-monitors are aggregate- and dispatch-dominated —
//     the tier can only shave the bytecode loop, so the speedup is modest;
//   * function-callout uses a program-dominated rule (a 120-stage integer
//     scoring chain over one loaded feature) where the interpreter pays one
//     dispatch per instruction and the native object pays none — this is the
//     regime the tier exists for and carries the 3x acceptance bound.

struct TierRun {
  double ns_per_eval = 0.0;
  double allocs_per_eval = 0.0;
  TierStats tier;
};

NativeTierOptions TierOn() {
  NativeTierOptions tier;
  tier.enabled = true;
  tier.promote_after = 0;
  return tier;
}

TierRun TimerScenarioTiered(int monitors, int samples_per_series, bool native) {
  FeatureStore store;
  PolicyRegistry registry;
  EngineOptions options;
  if (native) {
    options.tier = TierOn();
  }
  Engine engine(&store, &registry, nullptr, options);
  const Duration interval = monitors == 1 ? Milliseconds(1) : Milliseconds(100);
  std::string spec;
  for (int i = 0; i < monitors; ++i) {
    spec += MakeTimerGuardrail(i, interval);
  }
  (void)engine.LoadSource(spec);
  for (int i = 0; i < monitors; ++i) {
    for (int s = 0; s < samples_per_series; ++s) {
      store.Observe("metric" + std::to_string(i), Milliseconds(s * 60), 50.0);
    }
  }
  // Warm-up: promotions (and AOT compiles, first run only — the object cache
  // serves repeats) happen here, outside the timed region.
  engine.AdvanceTo(Seconds(2));
  const uint64_t evals_before = engine.stats().evaluations;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const int64_t start = WallNs();
  engine.AdvanceTo(Seconds(62));
  const int64_t elapsed = WallNs() - start;
  TierRun run;
  const uint64_t evals = engine.stats().evaluations - evals_before;
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const double denom = evals > 0 ? static_cast<double>(evals) : 1.0;
  run.ns_per_eval = static_cast<double>(elapsed) / denom;
  run.allocs_per_eval = static_cast<double>(allocs) / denom;
  run.tier = engine.tier_stats();
  return run;
}

// The program-dominated FUNCTION-callout rule: a long dependent chain of
// integer multiply-adds over a single loaded feature. One helper escape, one
// comparison, and ~200 pure-compute instructions whose entire interpreter
// cost is dispatch. Wrapping arithmetic is defined (uint64 two's complement)
// and tier-invariant, and the guard constant never matches, so the rule
// stays satisfied and no action dispatch pollutes the measurement.
std::string DenseCalloutRule(int stages) {
  std::string expr = "LOAD_OR(lat_score, 1)";
  for (int i = 0; i < stages; ++i) {
    expr = "(" + expr + " * 3 + 7)";
  }
  return expr + " != 123456789";
}

TierRun FunctionCalloutTiered(bool native) {
  FeatureStore store;
  PolicyRegistry registry;
  EngineOptions options;
  options.measure_wall_time = false;
  if (native) {
    options.tier = TierOn();
  }
  Engine engine(&store, &registry, nullptr, options);
  (void)engine.LoadSource(
      "guardrail f0 { trigger: { FUNCTION(blk_mq_submit_bio_hotpath) }, rule: { " +
      DenseCalloutRule(120) + " }, action: { REPORT() } }\n");
  store.Save("lat_score", Value(static_cast<int64_t>(3)));
  for (int i = 0; i < 2000; ++i) {
    engine.OnFunctionCall("blk_mq_submit_bio_hotpath", i);
  }
  constexpr int kCalls = 500000;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const int64_t start = WallNs();
  for (int i = 0; i < kCalls; ++i) {
    engine.OnFunctionCall("blk_mq_submit_bio_hotpath", 2000 + i);
  }
  const int64_t elapsed = WallNs() - start;
  TierRun run;
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  run.ns_per_eval = static_cast<double>(elapsed) / kCalls;
  run.allocs_per_eval = static_cast<double>(allocs) / kCalls;
  run.tier = engine.tier_stats();
  return run;
}

void PushTierPair(std::vector<Metric>& metrics, const char* name, const TierRun& interp,
                  const TierRun& native) {
  const std::string base = name;
  metrics.push_back(
      Metric{base + "_interp_ns_per_eval", interp.ns_per_eval, "ns_per_eval"});
  metrics.push_back(
      Metric{base + "_native_ns_per_eval", native.ns_per_eval, "ns_per_eval"});
  metrics.push_back(Metric{base + "_speedup",
                           native.ns_per_eval > 0.0
                               ? interp.ns_per_eval / native.ns_per_eval
                               : 0.0,
                           "ratio"});
  metrics.push_back(Metric{base + "_interp_allocs_per_eval", interp.allocs_per_eval,
                           "allocs_per_eval"});
  metrics.push_back(Metric{base + "_native_allocs_per_eval", native.allocs_per_eval,
                           "allocs_per_eval"});
}

bool RunNativeBench(std::vector<Metric>& metrics, bool& native_ok) {
  native_ok = true;
  NativeAot probe;
  const bool available = NativeAot::CompiledIn() && probe.Available();
  metrics.push_back(Metric{"native_available", available ? 1.0 : 0.0, "bool"});
  if (!available) {
    // Graceful degrade: no host compiler / dlopen. The tier stays off and the
    // interpreter numbers live in BENCH_hotpath.json; emit availability only.
    std::fprintf(stderr,
                 "benchjson: --native: no working host compiler; AOT tier "
                 "unavailable, interpreter-only (not a failure)\n");
    return true;
  }

  const TierRun hot_i = TimerScenarioTiered(1, 1000, false);
  const TierRun hot_n = TimerScenarioTiered(1, 1000, true);
  const TierRun many_i = TimerScenarioTiered(64, 1, false);
  const TierRun many_n = TimerScenarioTiered(64, 1, true);
  const TierRun fn_i = FunctionCalloutTiered(false);
  const TierRun fn_n = FunctionCalloutTiered(true);

  PushTierPair(metrics, "timer_hot_window", hot_i, hot_n);
  PushTierPair(metrics, "timer_many_monitors", many_i, many_n);
  PushTierPair(metrics, "function_callout", fn_i, fn_n);

  const TierStats* tiers[] = {&hot_n.tier, &many_n.tier, &fn_n.tier};
  uint64_t promotions = 0;
  uint64_t native_evals = 0;
  uint64_t interp_evals = 0;
  uint64_t compile_failures = 0;
  for (const TierStats* t : tiers) {
    promotions += t->promotions;
    native_evals += t->native_evals;
    interp_evals += t->interp_evals;
    compile_failures += t->compile_failures;
  }
  metrics.push_back(
      Metric{"tier_promotions", static_cast<double>(promotions), "count"});
  metrics.push_back(
      Metric{"tier_native_evals", static_cast<double>(native_evals), "count"});
  metrics.push_back(
      Metric{"tier_interp_evals", static_cast<double>(interp_evals), "count"});
  metrics.push_back(Metric{"tier_compile_failures",
                           static_cast<double>(compile_failures), "count"});

  const double fn_speedup =
      fn_n.ns_per_eval > 0.0 ? fn_i.ns_per_eval / fn_n.ns_per_eval : 0.0;
  if (compile_failures > 0) {
    std::fprintf(stderr, "benchjson: --native: %llu AOT compile failures\n",
                 static_cast<unsigned long long>(compile_failures));
    native_ok = false;
  }
  // 1 + 64 + 1 monitors across the three native runs must all promote.
  if (promotions < 66) {
    std::fprintf(stderr,
                 "benchjson: --native: only %llu of 66 monitors promoted\n",
                 static_cast<unsigned long long>(promotions));
    native_ok = false;
  }
  if (fn_speedup < 3.0) {
    std::fprintf(stderr,
                 "benchjson: --native: function-callout speedup %.2fx below the "
                 "3x acceptance bound\n",
                 fn_speedup);
    native_ok = false;
  }
  return true;
}

// --chaos: the ext6 fault-storm experiment in machine-readable form. Runs
// the Figure-2 drift trace twice — idle, and under the canonical
// MakeFaultStormChaosSpec storm — and reports how fast the Listing-2
// guardrail trips from fault onset (drift time when idle, t=0 under the
// storm, which is armed from the first I/O) plus the guarded vs. unguarded
// false-submit counts. Returns false if any run fails or the guardrail does
// not contain the storm.
bool RunChaosBench(std::vector<Metric>& metrics, bool& contained) {
  Figure2Options options;
  options.before_drift = Seconds(10);
  options.after_drift = Seconds(10);

  auto idle = RunFigure2Experiment(options);
  if (!idle.ok()) {
    std::fprintf(stderr, "benchjson: idle run failed: %s\n", idle.status().ToString().c_str());
    return false;
  }
  options.chaos_source = MakeFaultStormChaosSpec(1729, 0.08, 0.6);
  auto storm = RunFigure2Experiment(options);
  if (!storm.ok()) {
    std::fprintf(stderr, "benchjson: storm run failed: %s\n", storm.status().ToString().c_str());
    return false;
  }
  const Figure2Result& ri = idle.value();
  const Figure2Result& rs = storm.value();

  const double trigger_idle =
      ri.with_guardrail.guardrail_fired ? ri.with_guardrail.trigger_time_s : -1.0;
  const double trigger_storm =
      rs.with_guardrail.guardrail_fired ? rs.with_guardrail.trigger_time_s : -1.0;
  metrics.push_back(Metric{"trigger_latency_idle_s",
                           trigger_idle >= 0.0 ? trigger_idle - ri.drift_time_s : -1.0, "s"});
  metrics.push_back(Metric{"trigger_latency_storm_s", trigger_storm, "s"});
  metrics.push_back(Metric{"injected_faults_storm",
                           static_cast<double>(rs.with_guardrail.injected_faults), "count"});
  const double guarded = static_cast<double>(rs.with_guardrail.blk.false_submits);
  const double unguarded = static_cast<double>(rs.without_guardrail.blk.false_submits);
  metrics.push_back(Metric{"false_submits_guarded_storm", guarded, "count"});
  metrics.push_back(Metric{"false_submits_unguarded_storm", unguarded, "count"});
  metrics.push_back(Metric{"false_submits_guarded_idle",
                           static_cast<double>(ri.with_guardrail.blk.false_submits), "count"});
  metrics.push_back(Metric{"false_submits_unguarded_idle",
                           static_cast<double>(ri.without_guardrail.blk.false_submits), "count"});
  metrics.push_back(Metric{"containment_factor",
                           guarded > 0.0 ? unguarded / guarded : unguarded, "ratio"});
  metrics.push_back(Metric{"ml_disabled_at_end_storm",
                           rs.with_guardrail.ml_enabled_at_end ? 0.0 : 1.0, "bool"});

  // Containment: the guardrail fired under the storm and the unguarded run
  // accumulated at least twice the guarded run's false submits.
  contained = trigger_storm >= 0.0 && unguarded >= 2.0 * guarded && unguarded > guarded;
  return true;
}

// --supervisor: the ext7 supervisor experiment in machine-readable form.
// Three containment checks plus an overhead regression bound:
//   (a) the undamped E2 oscillating pair trips at most half as often once the
//       flap detector can quarantine it (with at least one quarantine);
//   (b) the breaker rides out a vm.budget_exhaust burst storm — it
//       quarantines during bursts, probes back, and is closed at the end;
//   (c) a probation deploy that blows its step budget rolls back exactly once
//       to the bit-identical pre-deploy program, which keeps evaluating;
//   (d) an untripped health block costs at most 25% extra p99 per eval over
//       the identical unsupervised monitor (CI bound; the design target is
//       5%, and the measured value is emitted for trend tracking).
bool RunSupervisorBench(std::vector<Metric>& metrics, bool& contained) {
  const Duration total = Seconds(120);

  // (a) Oscillating pair. The system model is ext2's: a bigger page cache
  // lowers I/O latency but raises memory pressure; the two guardrails fight
  // around the crossover point, undamped (no cooldown, hysteresis 1).
  double trips_per_min[2] = {0.0, 0.0};
  uint64_t osc_quarantines = 0;
  for (const bool supervised : {false, true}) {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    const std::string health =
        supervised ? ",\n  health: { flap_window = 60s, flap_threshold = 4, "
                     "quarantine = 1, probe_every = 10, reinstate = 4 }\n"
                   : "\n";
    (void)engine.LoadSource(
        "guardrail shrink-on-pressure {\n"
        "  trigger: { TIMER(1s, 1s) },\n"
        "  rule: { LOAD_OR(mem_pressure, 0) <= 0.55 },\n"
        "  action: { SAVE(cache_gb, LOAD_OR(cache_gb, 4) - 2); INCR(trips) }" +
        health +
        "}\n"
        "guardrail grow-on-latency {\n"
        "  trigger: { TIMER(1s, 1s) },\n"
        "  rule: { LOAD_OR(io_latency_ms, 0) <= 1.8 },\n"
        "  action: { SAVE(cache_gb, LOAD_OR(cache_gb, 4) + 2); INCR(trips) }" +
        health + "}\n");
    for (SimTime t = 0; t <= total; t += Milliseconds(500)) {
      const double cache = store.LoadOr("cache_gb", Value(4.0)).NumericOr(4.0);
      store.Save("mem_pressure", Value(0.10 * cache));
      store.Save("io_latency_ms", Value(12.0 / (cache + 1.0)));
      engine.AdvanceTo(t);
    }
    trips_per_min[supervised ? 1 : 0] =
        store.LoadOr("trips", Value(0)).NumericOr(0) / (ToSeconds(total) / 60.0);
    if (supervised) {
      osc_quarantines = engine.supervisor().stats().quarantines;
    }
  }
  metrics.push_back(Metric{"osc_trips_per_min_bare", trips_per_min[0], "per_min"});
  metrics.push_back(Metric{"osc_trips_per_min_supervised", trips_per_min[1], "per_min"});
  metrics.push_back(
      Metric{"osc_quarantines", static_cast<double>(osc_quarantines), "count"});
  const bool osc_ok = osc_quarantines >= 1 && trips_per_min[0] > 0.0 &&
                      trips_per_min[1] <= 0.5 * trips_per_min[0];

  // (b) Budget-exhaust storm: 2s bursts every 25s (8% duty) force every
  // supervised eval inside the windows into a budget abort.
  bool storm_ok = false;
  {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    ChaosEngine chaos_engine(1729);
    engine.SetChaos(&chaos_engine);
    (void)engine.LoadSource(R"(
      guardrail storm-watch {
        trigger: { TIMER(1s, 1s) },
        rule: { LOAD_OR(x, 0) <= 100 },
        action: { REPORT("storm-watch") },
        health: { quarantine = 1, probe_every = 4, reinstate = 1 }
      }
      chaos { site vm.budget_exhaust { mode = burst, period = 25s, burst = 2s } }
    )");
    engine.AdvanceTo(total);
    const SupervisorStats& stats = engine.supervisor().stats();
    const GuardHealth* guard = engine.supervisor().Find("storm-watch");
    const bool closed = guard != nullptr && guard->state == BreakerState::kClosed;
    metrics.push_back(Metric{"storm_budget_aborts",
                             static_cast<double>(stats.budget_aborts), "count"});
    metrics.push_back(
        Metric{"storm_quarantines", static_cast<double>(stats.quarantines), "count"});
    metrics.push_back(Metric{"storm_reinstatements",
                             static_cast<double>(stats.reinstatements), "count"});
    metrics.push_back(
        Metric{"storm_skipped_evals", static_cast<double>(stats.skipped_evals), "count"});
    metrics.push_back(Metric{"storm_breaker_closed_at_end", closed ? 1.0 : 0.0, "bool"});
    storm_ok = stats.quarantines >= 1 && stats.reinstatements >= 1 && closed;
  }

  // (c) Probation deploy + auto-rollback.
  bool rollback_ok = false;
  {
    FeatureStore store;
    PolicyRegistry registry;
    Engine engine(&store, &registry);
    (void)engine.LoadSource(R"(
      guardrail deploy {
        trigger: { TIMER(1s, 1s) },
        rule: { LOAD_OR(x, 0) <= 100 },
        action: { REPORT("v1") },
        health: { quarantine = 3 }
      }
    )");
    engine.AdvanceTo(Seconds(5));
    const std::string v1 = engine.FindGuardrail("deploy")->rule.Disassemble();
    (void)engine.LoadSource(R"(
      guardrail deploy {
        trigger: { TIMER(1s, 1s) },
        rule: { LOAD_OR(x, 0) <= 99 },
        action: { REPORT("v2") },
        health: { budget_steps = 1, quarantine = 2, probation = 60s }
      }
    )");
    engine.AdvanceTo(Seconds(10));
    const uint64_t rollbacks = engine.supervisor().stats().rollbacks;
    const CompiledGuardrail* live = engine.FindGuardrail("deploy");
    const bool identical = live != nullptr && live->rule.Disassemble() == v1;
    const uint64_t evals_at_rollback = engine.stats().evaluations;
    engine.AdvanceTo(Seconds(20));
    const uint64_t evals_after = engine.stats().evaluations - evals_at_rollback;
    metrics.push_back(
        Metric{"probation_rollbacks", static_cast<double>(rollbacks), "count"});
    metrics.push_back(
        Metric{"probation_restored_bit_identical", identical ? 1.0 : 0.0, "bool"});
    metrics.push_back(
        Metric{"probation_evals_after_rollback", static_cast<double>(evals_after), "count"});
    rollback_ok = rollbacks == 1 && identical && evals_after > 0;
  }

  // (d) Supervision overhead on an untripped monitor: batches of 1000 evals
  // (one simulated second on a 1ms timer) against the identical monitor with
  // no health block.
  double p99_us[2] = {0.0, 0.0};
  for (const bool supervised : {false, true}) {
    FeatureStore store;
    PolicyRegistry registry;
    EngineOptions options;
    options.measure_wall_time = false;
    Engine engine(&store, &registry, nullptr, options);
    const std::string health =
        supervised ? ",\n  health: { budget_steps = 1000000, quarantine = 1000000, "
                     "flap_threshold = 1000000 }\n"
                   : "\n";
    (void)engine.LoadSource(
        "guardrail hot {\n"
        "  trigger: { TIMER(1ms, 1ms) },\n"
        "  rule: { LOAD_OR(x, 0) <= 100 },\n"
        "  action: { REPORT() }" +
        health + "}\n");
    engine.AdvanceTo(Seconds(1));  // warm-up
    constexpr int kBatches = 100;
    std::vector<double> samples;
    samples.reserve(kBatches);
    for (int b = 0; b < kBatches; ++b) {
      const int64_t start = WallNs();
      engine.AdvanceTo(Seconds(2 + b));
      samples.push_back(static_cast<double>(WallNs() - start) / 1000.0);
    }
    std::sort(samples.begin(), samples.end());
    p99_us[supervised ? 1 : 0] =
        samples[static_cast<size_t>(static_cast<double>(samples.size() - 1) * 0.99)];
  }
  const double overhead_pct =
      p99_us[0] > 0.0 ? 100.0 * (p99_us[1] - p99_us[0]) / p99_us[0] : 0.0;
  metrics.push_back(Metric{"overhead_p99_us_per_kbatch_bare", p99_us[0], "us"});
  metrics.push_back(Metric{"overhead_p99_us_per_kbatch_supervised", p99_us[1], "us"});
  metrics.push_back(Metric{"overhead_p99_pct", overhead_pct, "percent"});
  const bool overhead_ok = overhead_pct <= 25.0;

  if (!osc_ok) {
    std::fprintf(stderr, "benchjson: --supervisor: quarantine failed to halve the "
                         "oscillation trip rate\n");
  }
  if (!storm_ok) {
    std::fprintf(stderr,
                 "benchjson: --supervisor: breaker did not recover from the storm\n");
  }
  if (!rollback_ok) {
    std::fprintf(stderr, "benchjson: --supervisor: probation rollback missing or not "
                         "bit-identical\n");
  }
  if (!overhead_ok) {
    std::fprintf(stderr,
                 "benchjson: --supervisor: p99 overhead %.1f%% exceeds the 25%% CI "
                 "bound (design target 5%%)\n",
                 overhead_pct);
  }
  contained = osc_ok && storm_ok && rollback_ok && overhead_ok;
  return true;
}

// --persist: the E9 warm-restart experiment in machine-readable form. Runs a
// deterministic guardrail workload with the write-ahead journal on, measures
// the per-boundary commit overhead against the identical run with
// persistence off, crashes it mid-run, and times the recovery
// (Engine::Restore + re-execution to the crash point). Self-gating: the
// recovered run's final state (store + report ring + engine image) must be
// bit-identical to the uninterrupted run, and recovery must stay under the
// CI wall-time bound.
namespace persistbench {

constexpr char kSpec[] = R"(
guardrail lat-p99 {
  trigger: { TIMER(100ms, 40ms) },
  rule: { COUNT(io.lat, 400ms) == 0 || P99(io.lat, 400ms) <= 5ms },
  action: { SAVE(lat.flag, true); REPORT("p99 high", MEAN(io.lat, 400ms)) },
  on_satisfy: { SAVE(lat.flag, false) },
  meta: { severity = warning, cooldown = 120ms, hysteresis = 2 }
}
guardrail err-watch {
  trigger: { TIMER(60ms, 30ms), ONCHANGE(err.rate) },
  rule: { LOAD_OR(err.rate, 0) <= 0.5 },
  action: { INCR(err.trips); REPORT("err rate tripped") },
  meta: { hysteresis = 1 }
}
persist { interval = 250ms, journal_budget = 65536 }
)";

constexpr Duration kStepWindow = Milliseconds(50);

struct BenchRun {
  FeatureStore store;
  PolicyRegistry registry;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<PersistManager> persist;
};

std::unique_ptr<BenchRun> Start(const std::string& dir, bool with_persist) {
  auto run = std::make_unique<BenchRun>();
  EngineOptions options;
  options.measure_wall_time = false;
  run->engine = std::make_unique<Engine>(&run->store, &run->registry, nullptr, options);
  run->store.SetWriteObserver(
      [engine = run->engine.get()](const StoreWriteInfo& info,
                                 const std::string& key) {
        engine->OnStoreWrite(info, key);
      });
  if (with_persist) {
    PersistOptions popts;
    popts.dir = dir;
    run->persist = std::make_unique<PersistManager>(popts);
    run->engine->SetPersist(run->persist.get());
  }
  if (!run->engine->LoadSource(kSpec).ok()) {
    return nullptr;
  }
  return run;
}

void Step(BenchRun& run, int step) {
  Rng rng(0x9E3779B97F4A7C15ull + static_cast<uint64_t>(step));
  const SimTime start = static_cast<SimTime>(step) * kStepWindow;
  const int observations = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < observations; ++i) {
    const SimTime t = start + rng.UniformInt(1, kStepWindow - 1);
    run.store.Observe("io.lat", t,
                      rng.Bernoulli(0.2) ? rng.Uniform(5.0e6, 2.0e7)
                                         : rng.Uniform(1.0e5, 4.0e6));
  }
  if (rng.Bernoulli(0.4)) {
    run.store.Save("err.rate", Value(rng.Uniform(0.0, 1.0)));
  }
  run.engine->AdvanceTo(start + kStepWindow);
}

std::string StateBytes(BenchRun& run) {
  Snapshot snapshot;
  snapshot.store = run.store.DumpSlots();
  snapshot.report_ring = run.engine->EncodeReportRing();
  snapshot.image = run.engine->EncodeImage();
  return EncodeSnapshot(snapshot);
}

}  // namespace persistbench

bool RunPersistBench(std::vector<Metric>& metrics, bool& persist_ok) {
  namespace fs = std::filesystem;
  using persistbench::Start;
  using persistbench::Step;
  constexpr int kTotalSteps = 2000;
  // Crash mid-way between snapshots (the 250ms interval snapshots every 5th
  // 50ms step) so recovery exercises a real journal-suffix replay rather than
  // landing exactly on a snapshot boundary with nothing to replay.
  constexpr int kCrashStep = 1503;
  constexpr double kRecoveryBoundMs = 500.0;

  std::error_code ec;
  const fs::path root = fs::temp_directory_path(ec) / "osguard-benchjson-persist";
  fs::remove_all(root, ec);
  fs::create_directories(root, ec);
  if (ec) {
    std::fprintf(stderr, "benchjson: --persist: cannot create %s\n", root.c_str());
    return false;
  }

  // Baseline: identical workload with persistence off.
  const int64_t bare_start = WallNs();
  auto bare = Start((root / "bare").string(), /*with_persist=*/false);
  if (bare == nullptr) {
    return false;
  }
  for (int step = 0; step < kTotalSteps; ++step) {
    Step(*bare, step);
  }
  const double bare_ns = static_cast<double>(WallNs() - bare_start);

  // Journaled reference run, uninterrupted.
  const fs::path ref_dir = root / "ref";
  fs::create_directories(ref_dir, ec);
  const int64_t ref_start = WallNs();
  auto reference = Start(ref_dir.string(), /*with_persist=*/true);
  if (reference == nullptr || !reference->persist->Open().ok()) {
    return false;
  }
  for (int step = 0; step < kTotalSteps; ++step) {
    Step(*reference, step);
  }
  const double ref_ns = static_cast<double>(WallNs() - ref_start);
  const PersistStats ref_stats = reference->persist->stats();
  const std::string want = persistbench::StateBytes(*reference);

  // Crash run: same workload into its own directory, abandoned mid-run.
  const fs::path crash_dir = root / "crash";
  fs::create_directories(crash_dir, ec);
  std::vector<uint64_t> seq_after(kCrashStep, 0);
  {
    auto doomed = Start(crash_dir.string(), /*with_persist=*/true);
    if (doomed == nullptr || !doomed->persist->Open().ok()) {
      return false;
    }
    for (int step = 0; step < kCrashStep; ++step) {
      Step(*doomed, step);
      seq_after[static_cast<size_t>(step)] = doomed->persist->last_committed_seq();
    }
  }

  // Recovery: snapshot + journal-suffix replay, then re-execution to the end.
  auto recovered = Start(crash_dir.string(), /*with_persist=*/true);
  if (recovered == nullptr) {
    return false;
  }
  const int64_t recover_start = WallNs();
  auto info = recovered->engine->Restore(*recovered->persist);
  const double recover_ns = static_cast<double>(WallNs() - recover_start);
  if (!info.ok()) {
    std::fprintf(stderr, "benchjson: --persist: recovery failed: %s\n",
                 info.status().ToString().c_str());
    return false;
  }
  int resume = 0;
  if (info.value().last_seq != 0) {
    resume = -1;
    for (int step = 0; step < kCrashStep; ++step) {
      if (seq_after[static_cast<size_t>(step)] == info.value().last_seq) {
        resume = step + 1;
        break;
      }
    }
    if (resume == -1) {
      std::fprintf(stderr, "benchjson: --persist: recovered seq %llu matches no "
                           "commit boundary\n",
                   static_cast<unsigned long long>(info.value().last_seq));
      persist_ok = false;
      resume = 0;
    }
  }
  for (int step = resume; step < kTotalSteps; ++step) {
    Step(*recovered, step);
  }
  const bool identical = persistbench::StateBytes(*recovered) == want;

  const double commits = std::max<double>(1.0, static_cast<double>(ref_stats.frames_committed));
  metrics.push_back({"persist_commit_overhead_ns_per_boundary",
                     (ref_ns - bare_ns) / commits, "ns_per_commit"});
  metrics.push_back({"persist_journal_bytes_per_commit",
                     static_cast<double>(ref_stats.bytes_appended) / commits, "bytes"});
  metrics.push_back({"persist_frames_committed", static_cast<double>(ref_stats.frames_committed),
                     "count"});
  metrics.push_back({"persist_snapshots_written",
                     static_cast<double>(ref_stats.snapshots_written), "count"});
  metrics.push_back({"persist_recovery_ms", recover_ns / 1e6, "ms"});
  metrics.push_back({"persist_frames_replayed",
                     static_cast<double>(info.value().frames_replayed), "count"});
  const double recover_s = std::max(recover_ns / 1e9, 1e-9);
  metrics.push_back({"persist_replay_frames_per_sec",
                     static_cast<double>(info.value().frames_replayed) / recover_s,
                     "frames_per_sec"});
  metrics.push_back({"persist_state_divergence", identical ? 0.0 : 1.0, "bool"});

  if (!identical) {
    std::fprintf(stderr,
                 "benchjson: --persist: recovered run diverged from the uninterrupted "
                 "run\n");
    persist_ok = false;
  }
  if (recover_ns / 1e6 > kRecoveryBoundMs) {
    std::fprintf(stderr, "benchjson: --persist: recovery took %.1fms (bound %.0fms)\n",
                 recover_ns / 1e6, kRecoveryBoundMs);
    persist_ok = false;
  }
  fs::remove_all(root, ec);
  return true;
}

// --sharded: the E10/E13 multi-core scaling experiment, run once per
// workload mix:
//   * mixed    — 64 FUNCTION monitors on one hot callout (program-dominated
//                compute rules, windowed aggregates, periodic-trip
//                thresholds);
//   * onchange — the agent-governance shape: 8 ONCHANGE watchers whose
//                cascades write gov.ctl.* control keys, 56 FUNCTION watch
//                monitors whose reads are disjoint from those writes, and a
//                workload that fires the cascades mid-run;
//   * timer    — 64 TIMER monitors sharing a 100us cadence, so every
//                AdvanceTo dispatches one full-width same-deadline wave.
// Each mix drives the serial engine and the sharded engine over an
// identical deterministic workload and reports throughput, the sharded
// layer's scheduling telemetry, a <mix>_parallel_fraction (worker evals /
// all engine evals), and a bit-identity verdict over the full observable
// state (store slots + report ring + engine image; telemetry keys are off
// for the comparison). Identity is enforced unconditionally. The >= 4x
// speedup bound and the >= 0.5 onchange parallel-fraction gate apply only
// on hosts with >= 8 hardware threads; below that the report carries a
// degraded_single_thread marker and the gates are skipped explicitly.
namespace shardbench {

constexpr char kHook[] = "blk_mq_submit_bio_hotpath";
constexpr int kMonitors = 64;
constexpr int kWarmupCalls = 256;
constexpr int kTimedCalls = 20000;

enum class Mix { kMixed, kOnChange, kTimer };

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kMixed:
      return "mixed";
    case Mix::kOnChange:
      return "onchange";
    case Mix::kTimer:
      return "timer";
  }
  return "?";
}

// Timed steps per mix: every step evaluates all 64 monitors, so the mixes
// cost the same per step; the composition mixes run shorter to keep the
// release job's wall time bounded.
int TimedSteps(Mix mix) { return mix == Mix::kMixed ? kTimedCalls : kTimedCalls / 2; }

std::string MakeSpec(Mix mix) {
  std::string spec;
  for (int i = 0; i < kMonitors; ++i) {
    if (mix == Mix::kOnChange && i % 8 == 7) {
      // ONCHANGE watcher: the cascade writes a gov.ctl.* key no rule reads,
      // so under key-scoped eligibility the 56 FUNCTION monitors keep their
      // worker slots while the cascades replay inline.
      const std::string n = "k" + std::to_string(i / 8);
      spec += "guardrail w" + std::to_string(i) +
              " { trigger: { ONCHANGE(gov.sig." + n +
              ") }, rule: { LOAD_OR(gov.sig." + n +
              ", 0) <= 50 }, action: { SAVE(gov.ctl." + n + ", 1) } }\n";
      continue;
    }
    std::string rule;
    if (i % 8 == 0) {
      // Aggregate-dominated: windowed scans over the shared latency series.
      rule = "COUNT(io.lat, 50ms) == 0 || MEAN(io.lat, 50ms) <= 4000000";
    } else if (i % 8 == 1) {
      // Threshold rule that trips while the driver holds trip_level high;
      // the cooldown bounds the report volume deterministically.
      rule = "LOAD_OR(trip_level, 0) <= 90";
    } else {
      // Program-dominated: a dependent integer chain over one loaded key.
      rule = DenseCalloutRule(24);
    }
    const std::string trigger = mix == Mix::kTimer
                                    ? std::string("TIMER(100us, 100us)")
                                    : "FUNCTION(" + std::string(kHook) + ")";
    spec += "guardrail s" + std::to_string(i) + " { trigger: { " + trigger +
            " }, rule: { " + rule +
            " }, action: { REPORT() }, meta: { cooldown = 10ms } }\n";
  }
  return spec;
}

struct RunResult {
  bool ok = false;
  double timed_ns = 0.0;
  uint64_t timed_evals = 0;
  uint64_t total_evals = 0;  // lifetime engine evals (incl. warmup + cascades)
  std::string state;  // wire-encoded observable state (bit-identity check)
};

// Drives the deterministic workload for `mix`; `sharded_ptr` routes callouts
// (and, for the timer mix, AdvanceTo waves) through the sharded layer when
// non-null. Store writes are identical across runs and happen between
// callouts, exactly where a kernel would produce them.
RunResult Drive(FeatureStore& store, Engine& engine, ShardedEngine* sharded_ptr, Mix mix) {
  RunResult result;
  if (!engine.LoadSource(MakeSpec(mix)).ok()) {
    return result;
  }
  // Route external writes to the engine so ONCHANGE cascades fire (the
  // kernel wires this; the bench drives the engine bare).
  store.SetWriteObserver(
      [&engine](const StoreWriteInfo& info, const std::string& key) {
        engine.OnStoreWrite(info, key);
      });
  store.Save("lat_score", Value(static_cast<int64_t>(3)));
  auto step = [&](int i) {
    const SimTime t = static_cast<SimTime>(i) * Microseconds(100);
    if (i % 16 == 0) {
      store.Observe("io.lat", t, 1.0e6 * static_cast<double>(i % 7 + 1));
    }
    if (i % 64 == 0) {
      store.Save("trip_level", Value(static_cast<int64_t>(i / 64 % 128)));
    }
    if (mix == Mix::kOnChange && i % 16 == 8) {
      store.Save("gov.sig.k" + std::to_string(i / 16 % 8),
                 Value(static_cast<int64_t>(i % 96)));
    }
    if (mix == Mix::kTimer) {
      // One full-width wave per step: all 64 monitors share the cadence.
      const SimTime due = t + Microseconds(100);
      if (sharded_ptr != nullptr) {
        sharded_ptr->AdvanceTo(due);
      } else {
        engine.AdvanceTo(due);
      }
    } else if (sharded_ptr != nullptr) {
      sharded_ptr->OnFunctionCall(kHook, t);
    } else {
      engine.OnFunctionCall(kHook, t);
    }
  };
  const int timed_steps = TimedSteps(mix);
  for (int i = 0; i < kWarmupCalls; ++i) {
    step(i);
  }
  const uint64_t evals_before = engine.stats().evaluations;
  const int64_t start = WallNs();
  for (int i = kWarmupCalls; i < kWarmupCalls + timed_steps; ++i) {
    step(i);
  }
  result.timed_ns = static_cast<double>(WallNs() - start);
  result.timed_evals = engine.stats().evaluations - evals_before;
  result.total_evals = engine.stats().evaluations;
  Snapshot snapshot;
  snapshot.store = store.DumpSlots();
  snapshot.report_ring = engine.EncodeReportRing();
  snapshot.image = engine.EncodeImage();
  result.state = EncodeSnapshot(snapshot);
  result.ok = true;
  return result;
}

}  // namespace shardbench

// One serial-vs-sharded comparison for `mix`, appending its metrics and
// and-ing its gate verdicts into `sharded_ok`. Returns false only when a run
// fails to come up (spec load failure).
bool RunShardedMix(shardbench::Mix mix, std::vector<Metric>& metrics, bool& sharded_ok,
                   unsigned cores, bool gates_enforced) {
  using shardbench::Drive;
  using shardbench::Mix;
  using shardbench::MixName;
  const std::string name = MixName(mix);
  EngineOptions engine_options;
  engine_options.measure_wall_time = false;

  FeatureStore serial_store;
  PolicyRegistry serial_registry;
  Engine serial_engine(&serial_store, &serial_registry, nullptr, engine_options);
  const shardbench::RunResult serial = Drive(serial_store, serial_engine, nullptr, mix);
  if (!serial.ok) {
    std::fprintf(stderr, "benchjson: --sharded: serial %s run failed to load\n",
                 name.c_str());
    return false;
  }

  FeatureStore sharded_store;
  PolicyRegistry sharded_registry;
  Engine sharded_engine(&sharded_store, &sharded_registry, nullptr, engine_options);
  ShardingOptions sharding;
  sharding.enabled = true;
  // Telemetry keys are the one legitimate store divergence; the identity
  // check requires them off. Scheduling counters come from the object.
  sharding.telemetry = false;
  ShardedEngine sharded(&sharded_engine, sharding);
  const shardbench::RunResult parallel = Drive(sharded_store, sharded_engine, &sharded, mix);
  if (!parallel.ok) {
    std::fprintf(stderr, "benchjson: --sharded: sharded %s run failed to load\n",
                 name.c_str());
    return false;
  }

  const int timed_steps = shardbench::TimedSteps(mix);
  const double serial_s = std::max(serial.timed_ns / 1e9, 1e-9);
  const double parallel_s = std::max(parallel.timed_ns / 1e9, 1e-9);
  const double speedup =
      parallel.timed_ns > 0.0 ? serial.timed_ns / parallel.timed_ns : 0.0;
  const bool identical = serial.state == parallel.state;
  const ShardedStats& stats = sharded.stats();
  const double parallel_fraction =
      parallel.total_evals > 0
          ? static_cast<double>(stats.parallel_evals) /
                static_cast<double>(parallel.total_evals)
          : 0.0;

  if (mix == Mix::kMixed) {
    // Host/topology facts are mix-independent; report them once, with the
    // legacy (unprefixed) metric names the E10 baselines use.
    metrics.push_back(Metric{"sharded_host_threads", static_cast<double>(cores), "count"});
    metrics.push_back(
        Metric{"sharded_shards", static_cast<double>(sharded.shard_count()), "count"});
    metrics.push_back(Metric{"sharded_monitors",
                             static_cast<double>(shardbench::kMonitors), "count"});
    metrics.push_back(
        Metric{"serial_callouts_per_sec", timed_steps / serial_s, "per_sec"});
    metrics.push_back(
        Metric{"sharded_callouts_per_sec", timed_steps / parallel_s, "per_sec"});
    metrics.push_back(Metric{"serial_evals_per_sec",
                             static_cast<double>(serial.timed_evals) / serial_s,
                             "per_sec"});
    metrics.push_back(Metric{"sharded_evals_per_sec",
                             static_cast<double>(parallel.timed_evals) / parallel_s,
                             "per_sec"});
    metrics.push_back(Metric{"sharded_speedup", speedup, "ratio"});
    metrics.push_back(Metric{"sharded_parallel_evals",
                             static_cast<double>(stats.parallel_evals), "count"});
    metrics.push_back(
        Metric{"sharded_serial_evals", static_cast<double>(stats.serial_evals), "count"});
    metrics.push_back(Metric{"sharded_serial_callouts",
                             static_cast<double>(stats.serial_callouts), "count"});
    metrics.push_back(
        Metric{"sharded_batches", static_cast<double>(stats.batches), "count"});
    metrics.push_back(Metric{"sharded_merge_ns_per_batch",
                             stats.batches > 0
                                 ? static_cast<double>(stats.merge_ns) /
                                       static_cast<double>(stats.batches)
                                 : 0.0,
                             "ns"});
    size_t hwm_max = 0;
    for (size_t i = 0; i < sharded.shard_count(); ++i) {
      hwm_max = std::max(hwm_max, sharded.RingHighWater(i));
    }
    metrics.push_back(
        Metric{"sharded_ring_hwm_max", static_cast<double>(hwm_max), "count"});
    metrics.push_back(Metric{"sharded_state_identical", identical ? 1.0 : 0.0, "bool"});
  } else {
    metrics.push_back(Metric{"sharded_" + name + "_speedup", speedup, "ratio"});
    metrics.push_back(Metric{"sharded_" + name + "_parallel_evals",
                             static_cast<double>(stats.parallel_evals), "count"});
    metrics.push_back(Metric{"sharded_" + name + "_serial_evals",
                             static_cast<double>(stats.serial_evals), "count"});
    metrics.push_back(Metric{"sharded_" + name + "_serial_callouts",
                             static_cast<double>(stats.serial_callouts), "count"});
    metrics.push_back(Metric{"sharded_" + name + "_state_identical",
                             identical ? 1.0 : 0.0, "bool"});
  }
  metrics.push_back(Metric{name + "_parallel_fraction", parallel_fraction, "ratio"});

  if (!identical) {
    std::fprintf(stderr,
                 "benchjson: --sharded: %s mix diverged from the serial oracle\n",
                 name.c_str());
    sharded_ok = false;
  }
  if (stats.parallel_evals == 0) {
    std::fprintf(stderr,
                 "benchjson: --sharded: %s mix took no parallel evaluations\n",
                 name.c_str());
    sharded_ok = false;
  }
  if (gates_enforced && speedup < 4.0) {
    std::fprintf(stderr,
                 "benchjson: --sharded: %s mix speedup %.2fx below the 4x bound "
                 "on a %u-thread host\n",
                 name.c_str(), speedup, cores);
    sharded_ok = false;
  }
  if (gates_enforced && mix == Mix::kOnChange && parallel_fraction < 0.5) {
    std::fprintf(stderr,
                 "benchjson: --sharded: onchange mix parallel fraction %.2f below "
                 "the 0.5 bound (agent-governance shape must stay on workers)\n",
                 parallel_fraction);
    sharded_ok = false;
  }
  return true;
}

bool RunShardedBench(std::vector<Metric>& metrics, bool& sharded_ok) {
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gates_enforced = cores >= 8;
  if (!gates_enforced) {
    // Identity and parallel-path checks still run; only the performance
    // gates are meaningless without cores to spread across.
    std::fprintf(stderr,
                 "benchjson: --sharded: host has %u hardware threads; skipping "
                 "the 4x speedup and 0.5 parallel-fraction gates "
                 "(degraded_single_thread)\n",
                 cores);
  }
  metrics.push_back(
      Metric{"degraded_single_thread", gates_enforced ? 0.0 : 1.0, "bool"});
  metrics.push_back(
      Metric{"sharded_gate_enforced", gates_enforced ? 1.0 : 0.0, "bool"});
  sharded_ok = true;
  for (shardbench::Mix mix : {shardbench::Mix::kMixed, shardbench::Mix::kOnChange,
                              shardbench::Mix::kTimer}) {
    if (!RunShardedMix(mix, metrics, sharded_ok, cores, gates_enforced)) {
      return false;
    }
  }
  return true;
}

// --- --agent: the E11 tool-call governance experiment -----------------------
// Three gates mirroring docs/AGENT.md and the `ctest -L agent` battery, sized
// for a CI release job:
//   (a) 1000-seed identity campaign — serial vs sharded on generated bursty
//       multi-session workloads under the shipped governance specs, plus a
//       100-seed warm-restart arm whose panic+recover+resume state must be
//       bit-identical to an uninterrupted run of the same seed;
//   (b) scripted incident / clean traces — the sequence family must land its
//       kill inside the violating callout (so the second net-after-secret
//       send is already rejected and the taint counter stays at 1), and the
//       clean trace must produce zero reports and write no control keys;
//   (c) per-tool-call admission overhead — p50/p99 ns per OnToolCall with
//       the governance specs loaded vs with no guardrails at all.

namespace agentbench {

std::string GovernanceSpecSource() {
  std::ifstream in(std::string(OSGUARD_SPECS_DIR) + "/agent_governance.osg");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SessionWorkloadOptions WorkloadFor(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 17);
  SessionWorkloadOptions options;
  options.duration = Milliseconds(static_cast<int64_t>(rng.UniformInt(100, 250)));
  options.sessions_per_sec = rng.Uniform(40.0, 100.0);
  options.mean_bursts = rng.Uniform(1.5, 4.0);
  options.burst_shape = rng.Uniform(1.1, 2.0);
  options.max_burst_calls = 64;
  options.mean_intra_gap = Milliseconds(static_cast<int64_t>(rng.UniformInt(2, 10)));
  options.mean_think = Milliseconds(static_cast<int64_t>(rng.UniformInt(50, 200)));
  options.net_fraction = rng.Uniform(0.15, 0.4);
  options.exec_fraction = rng.Uniform(0.02, 0.08);
  options.secret_fraction = rng.Uniform(0.02, 0.1);
  return options;
}

std::string StateBytes(Kernel& kernel) {
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

std::unique_ptr<Kernel> MakeKernel(const std::string& spec, bool sharded) {
  EngineOptions options;
  options.measure_wall_time = false;
  ShardingOptions sharding;
  sharding.enabled = sharded;
  sharding.telemetry = false;
  auto kernel = std::make_unique<Kernel>(options, sharding);
  if (!spec.empty() && !kernel->LoadGuardrails(spec).ok()) {
    return nullptr;
  }
  return kernel;
}

}  // namespace agentbench

bool RunAgentBench(std::vector<Metric>& metrics, bool& agent_ok) {
  namespace fs = std::filesystem;
  using agentbench::MakeKernel;
  using agentbench::StateBytes;
  const std::string spec = agentbench::GovernanceSpecSource();
  if (spec.empty()) {
    std::fprintf(stderr, "benchjson: --agent: cannot read agent_governance.osg\n");
    return false;
  }

  // (a) identity campaign: serial vs sharded across 1000 seeded workloads.
  constexpr uint64_t kIdentitySeeds = 1000;
  uint64_t identity_failures = 0;
  for (uint64_t seed = 1; seed <= kIdentitySeeds; ++seed) {
    const agent::Harness harness(agentbench::WorkloadFor(seed), seed);
    auto serial = MakeKernel(spec, /*sharded=*/false);
    auto sharded = MakeKernel(spec, /*sharded=*/true);
    if (serial == nullptr || sharded == nullptr) {
      return false;
    }
    harness.Drive(*serial);
    harness.Drive(*sharded);
    if (StateBytes(*serial) != StateBytes(*sharded)) {
      ++identity_failures;
    }
  }

  // Warm-restart arm: panic mid-trace, recover, resume; compare against an
  // uninterrupted journaled run of the same seed.
  constexpr uint64_t kRestartSeeds = 100;
  uint64_t restart_failures = 0;
  std::error_code ec;
  const fs::path root = fs::temp_directory_path(ec) / "osguard-benchjson-agent";
  fs::remove_all(root, ec);
  fs::create_directories(root, ec);
  if (ec) {
    std::fprintf(stderr, "benchjson: --agent: cannot create %s\n", root.c_str());
    return false;
  }
  for (uint64_t seed = 1; seed <= kRestartSeeds; ++seed) {
    const agent::Harness harness(agentbench::WorkloadFor(seed), seed);
    std::string want;
    {
      PersistOptions popts;
      popts.dir = (root / ("ref" + std::to_string(seed))).string();
      fs::create_directories(popts.dir, ec);
      PersistManager persist(popts);
      auto kernel = MakeKernel(spec, /*sharded=*/false);
      if (kernel == nullptr) {
        return false;
      }
      kernel->AttachPersist(&persist);
      if (!persist.Open().ok()) {
        return false;
      }
      harness.Drive(*kernel);
      want = StateBytes(*kernel);
    }
    {
      PersistOptions popts;
      popts.dir = (root / ("crash" + std::to_string(seed))).string();
      fs::create_directories(popts.dir, ec);
      PersistManager persist(popts);
      auto kernel = MakeKernel(spec, /*sharded=*/false);
      if (kernel == nullptr) {
        return false;
      }
      kernel->AttachPersist(&persist);
      if (!persist.Open().ok()) {
        return false;
      }
      const std::span<const agent::ToolCallEvent> events(harness.events());
      const size_t half = events.size() / 2;
      agent::ReplayTrace(*kernel, events.first(half));
      kernel->Panic();
      auto recovery = kernel->Reboot();
      if (!recovery.ok() || recovery.value().cold_start) {
        ++restart_failures;
        continue;
      }
      agent::ReplayTrace(*kernel, events, half);
      if (StateBytes(*kernel) != want) {
        ++restart_failures;
      }
    }
  }
  fs::remove_all(root, ec);

  metrics.push_back(Metric{"agent_identity_seeds",
                           static_cast<double>(kIdentitySeeds), "count"});
  metrics.push_back(Metric{"agent_identity_failures",
                           static_cast<double>(identity_failures), "count"});
  metrics.push_back(Metric{"agent_restart_seeds",
                           static_cast<double>(kRestartSeeds), "count"});
  metrics.push_back(Metric{"agent_restart_failures",
                           static_cast<double>(restart_failures), "count"});

  // (b) scripted incident + clean traces against the shipped specs.
  const std::vector<agent::ToolCallEvent> incident = agent::MakeIncidentTrace();
  auto incident_kernel = MakeKernel(spec, /*sharded=*/false);
  if (incident_kernel == nullptr) {
    return false;
  }
  const agent::DriveResult incident_result =
      agent::ReplayTrace(*incident_kernel, incident);
  // Containment proof: the kill lands inside the first net-after-secret
  // callout, so the remaining sends are rejected before they can write the
  // taint counter — it must end the trace at exactly 1.
  const double taint_count =
      incident_kernel->store()
          .LoadOr(kAgentKeyTaintNetAfterSecret, Value(0.0))
          .NumericOr(0.0);
  const auto& reporter = incident_kernel->engine().reporter();
  const bool families_tripped =
      reporter.CountFor("agent-global-rate") >= 1 &&
      reporter.CountFor("agent-session-rate") >= 1 &&
      reporter.CountFor("agent-exec-allowlist") >= 1 &&
      reporter.CountFor("agent-secret-flow") >= 1;
  const bool seq_contained = taint_count == 1.0 && incident_result.killed == 2;
  const bool incident_ok = families_tripped && seq_contained &&
                           incident_result.denied == 2 &&
                           incident_result.throttled > 0;

  const std::vector<agent::ToolCallEvent> clean = agent::MakeCleanTrace();
  auto clean_kernel = MakeKernel(spec, /*sharded=*/false);
  if (clean_kernel == nullptr) {
    return false;
  }
  const agent::DriveResult clean_result = agent::ReplayTrace(*clean_kernel, clean);
  const bool clean_ok =
      clean_result.allowed == clean.size() &&
      clean_kernel->engine().reporter().total_reports() == 0 &&
      !clean_kernel->store().Contains(kAgentCtlThrottleSession) &&
      !clean_kernel->store().Contains(kAgentCtlKillSession);

  metrics.push_back(Metric{"agent_incident_events",
                           static_cast<double>(incident.size()), "count"});
  metrics.push_back(Metric{"agent_incident_throttled",
                           static_cast<double>(incident_result.throttled), "count"});
  metrics.push_back(Metric{"agent_incident_denied",
                           static_cast<double>(incident_result.denied), "count"});
  metrics.push_back(Metric{"agent_incident_killed",
                           static_cast<double>(incident_result.killed), "count"});
  metrics.push_back(
      Metric{"agent_seq_trip_within_one_callout", seq_contained ? 1.0 : 0.0, "bool"});
  metrics.push_back(Metric{"agent_clean_events",
                           static_cast<double>(clean.size()), "count"});
  metrics.push_back(
      Metric{"agent_clean_false_trips",
             static_cast<double>(clean_kernel->engine().reporter().total_reports()),
             "count"});

  // (c) per-tool-call overhead, governed vs ungoverned.
  const agent::Harness perf_harness(
      [] {
        SessionWorkloadOptions options;
        options.duration = Seconds(2);
        options.sessions_per_sec = 120.0;
        options.secret_fraction = 0.05;
        return options;
      }(),
      /*seed=*/424242);
  double p50_ns[2] = {0.0, 0.0};
  double p99_ns[2] = {0.0, 0.0};
  double calls_per_sec[2] = {0.0, 0.0};
  for (const bool governed : {false, true}) {
    auto kernel = MakeKernel(governed ? spec : std::string(), /*sharded=*/false);
    if (kernel == nullptr) {
      return false;
    }
    std::vector<double> samples;
    samples.reserve(perf_harness.events().size());
    double total_ns = 0.0;
    for (const agent::ToolCallEvent& ev : perf_harness.events()) {
      kernel->Run(ev.at);
      const int64_t start = WallNs();
      (void)kernel->OnToolCall(ev);
      const double ns = static_cast<double>(WallNs() - start);
      samples.push_back(ns);
      total_ns += ns;
    }
    std::sort(samples.begin(), samples.end());
    const size_t last = samples.size() - 1;
    p50_ns[governed ? 1 : 0] = samples[last / 2];
    p99_ns[governed ? 1 : 0] =
        samples[static_cast<size_t>(static_cast<double>(last) * 0.99)];
    calls_per_sec[governed ? 1 : 0] =
        total_ns > 0.0 ? static_cast<double>(samples.size()) * 1e9 / total_ns : 0.0;
  }
  metrics.push_back(Metric{"agent_perf_tool_calls",
                           static_cast<double>(perf_harness.events().size()), "count"});
  metrics.push_back(Metric{"agent_ungoverned_p50_ns", p50_ns[0], "ns"});
  metrics.push_back(Metric{"agent_ungoverned_p99_ns", p99_ns[0], "ns"});
  metrics.push_back(Metric{"agent_governed_p50_ns", p50_ns[1], "ns"});
  metrics.push_back(Metric{"agent_governed_p99_ns", p99_ns[1], "ns"});
  metrics.push_back(Metric{"agent_overhead_p99_ns", p99_ns[1] - p99_ns[0], "ns"});
  metrics.push_back(
      Metric{"agent_tool_calls_per_sec_governed", calls_per_sec[1], "per_sec"});

  agent_ok = true;
  if (identity_failures > 0) {
    std::fprintf(stderr,
                 "benchjson: --agent: %llu/%llu seeds diverged between serial "
                 "and sharded\n",
                 static_cast<unsigned long long>(identity_failures),
                 static_cast<unsigned long long>(kIdentitySeeds));
    agent_ok = false;
  }
  if (restart_failures > 0) {
    std::fprintf(stderr,
                 "benchjson: --agent: %llu/%llu warm restarts diverged from the "
                 "uninterrupted run\n",
                 static_cast<unsigned long long>(restart_failures),
                 static_cast<unsigned long long>(kRestartSeeds));
    agent_ok = false;
  }
  if (!incident_ok) {
    std::fprintf(stderr,
                 "benchjson: --agent: incident trace missed a guardrail family "
                 "or the sequence kill escaped its callout\n");
    agent_ok = false;
  }
  if (!clean_ok) {
    std::fprintf(stderr, "benchjson: --agent: clean trace tripped a guardrail\n");
    agent_ok = false;
  }
  return true;
}

// --- E12: overload governor + self-healing shard workers --------------------

namespace govbench {

// Eight monitors across the three criticality tiers so shedding is visible.
constexpr char kStormSpec[] = R"(
  guardrail crit-gate {
    trigger: { FUNCTION(hot_path) },
    rule: { LOAD_OR(sys.pressure, 0) <= 90 },
    action: { SAVE(ctl.safe_mode, true); REPORT("pressure gate") },
    meta: { severity = critical, criticality = critical }
  }
  guardrail std-a { trigger: { FUNCTION(hot_path) },
                    rule: { LOAD_OR(sys.pressure, 0) <= 95 },
                    action: { REPORT("std-a") } }
  guardrail std-b { trigger: { FUNCTION(hot_path) },
                    rule: { LOAD_OR(sys.load, 0) <= 900000 },
                    action: { REPORT("std-b") } }
  guardrail std-c { trigger: { FUNCTION(hot_path) },
                    rule: { LOAD_OR(sys.load, 0) >= 0 },
                    action: { REPORT("std-c") } }
  guardrail be-a { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.load, 0) <= 1000000 },
                   action: { REPORT("be-a") },
                   meta: { criticality = besteffort } }
  guardrail be-b { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.pressure, 0) <= 99 },
                   action: { REPORT("be-b") },
                   meta: { criticality = besteffort } }
  guardrail be-c { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.load, 0) >= -1 },
                   action: { REPORT("be-c") },
                   meta: { criticality = besteffort } }
  guardrail be-d { trigger: { FUNCTION(hot_path) },
                   rule: { LOAD_OR(sys.pressure, 0) >= -1 },
                   action: { REPORT("be-d") },
                   meta: { criticality = besteffort } }
)";

// Parallel-eligible (pure scalar reads) so the sharded engine batches and
// the watchdog has workers to heal.
constexpr char kParallelSpec[] = R"(
  guardrail w0 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(a.v, 0) <= 50 },
                 action: { REPORT("w0") } }
  guardrail w1 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(b.v, 0) <= 50 },
                 action: { REPORT("w1") } }
  guardrail w2 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(c.v, 0) <= 50 },
                 action: { REPORT("w2") } }
  guardrail w3 { trigger: { FUNCTION(f) }, rule: { LOAD_OR(d.v, 0) <= 50 },
                 action: { REPORT("w3") } }
)";

EngineOptions GovernedOptions(bool governed) {
  EngineOptions options;
  options.measure_wall_time = false;
  options.governor.enabled = governed;
  options.governor.pressure_up = 20000.0;
  options.governor.pressure_down = 2000.0;
  options.governor.dwell_up = 4;
  options.governor.dwell_down = 8;
  options.governor.sample_every = 4;
  options.governor.alpha = 0.3;
  return options;
}

std::vector<StormEvent> BenchStorm(uint64_t seed) {
  StormWorkloadOptions options;
  options.calm = Milliseconds(100);
  options.storm = Milliseconds(50);
  options.tail = Milliseconds(200);
  options.calm_rate = 200.0;
  options.storm_rate = 80000.0;
  return StormGenerator(options, seed).Generate(Milliseconds(1));
}

struct StormRun {
  uint64_t callouts = 0;
  uint64_t evals = 0;
  double p99_ns = 0.0;
  GovernorStats gov;
  GovernorMode deepest = GovernorMode::kFull;
  GovernorMode final_mode = GovernorMode::kFull;
  // Per-ladder-mode callout latency (the per-criticality-tier shed report:
  // each deeper mode sheds one more criticality tier). Indexed by
  // GovernorMode; count 0 when the storm never reached that rung.
  struct ModeLatency {
    uint64_t count = 0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
  };
  ModeLatency mode_latency[4];
};

StormRun DriveStorm(bool governed, uint64_t seed) {
  Kernel kernel(GovernedOptions(governed));
  (void)kernel.LoadGuardrails(kStormSpec);
  std::vector<double> samples;
  std::vector<double> mode_samples[4];
  StormRun run;
  for (const StormEvent& event : BenchStorm(seed)) {
    kernel.Run(event.at);
    kernel.store().Save("sys.pressure",
                        Value(static_cast<int64_t>(event.storm ? 80 : 10)));
    const int64_t start = WallNs();
    kernel.Callout("hot_path");
    const double ns = static_cast<double>(WallNs() - start);
    samples.push_back(ns);
    const GovernorMode mode = kernel.engine().governor().mode();
    mode_samples[static_cast<int>(mode)].push_back(ns);
    run.deepest = std::max(run.deepest, mode);
    ++run.callouts;
  }
  std::sort(samples.begin(), samples.end());
  run.p99_ns = samples[static_cast<size_t>(
      static_cast<double>(samples.size() - 1) * 0.99)];
  for (int m = 0; m < 4; ++m) {
    std::vector<double>& bucket = mode_samples[m];
    if (bucket.empty()) {
      continue;
    }
    std::sort(bucket.begin(), bucket.end());
    StormRun::ModeLatency& lat = run.mode_latency[m];
    lat.count = bucket.size();
    lat.p50_ns = bucket[bucket.size() / 2];
    lat.p99_ns = bucket[static_cast<size_t>(
        static_cast<double>(bucket.size() - 1) * 0.99)];
  }
  run.evals = kernel.engine().stats().evaluations;
  run.gov = kernel.engine().governor().stats();
  run.final_mode = kernel.engine().governor().mode();
  return run;
}

// One governed storm (or chaos fault) run, serial or sharded, returning the
// compared snapshot bytes; sharded watchdog stats accumulate into `healing`.
std::string IdentityRun(bool sharded, uint64_t seed, const char* chaos_spec,
                        ShardedStats* healing) {
  EngineOptions options =
      chaos_spec == nullptr ? GovernedOptions(true) : GovernedOptions(false);
  ShardingOptions sharding;
  sharding.enabled = sharded;
  sharding.shards = 2;
  sharding.telemetry = false;
  sharding.watchdog_ns = Milliseconds(2);
  sharding.probe_batches = 2;
  sharding.probe_every = 2;
  Kernel kernel(options, sharding);
  ChaosEngine chaos(seed);
  if (chaos_spec != nullptr) {
    kernel.AttachChaos(&chaos);
    (void)kernel.LoadGuardrails(kParallelSpec);
    (void)kernel.LoadGuardrails(chaos_spec);
    SimTime t = Milliseconds(1);
    for (int i = 0; i < 30; ++i) {
      kernel.Run(t);
      kernel.store().Save("a.v", Value(int64_t{static_cast<int64_t>((seed + i) % 80)}));
      kernel.Callout("f");
      t += Milliseconds(1);
    }
  } else {
    (void)kernel.LoadGuardrails(kStormSpec);
    for (const StormEvent& event : BenchStorm(seed)) {
      kernel.Run(event.at);
      kernel.store().Save("sys.pressure",
                          Value(static_cast<int64_t>(event.storm ? 80 : 10)));
      kernel.Callout("hot_path");
    }
  }
  if (healing != nullptr && kernel.sharded_engine() != nullptr) {
    const ShardedStats stats = kernel.sharded_engine()->stats();
    healing->watchdog_timeouts += stats.watchdog_timeouts;
    healing->stolen_evals += stats.stolen_evals;
    healing->worker_respawns += stats.worker_respawns;
    healing->readmissions += stats.readmissions;
  }
  Snapshot snapshot;
  snapshot.store = kernel.store().DumpSlots();
  snapshot.report_ring = kernel.engine().EncodeReportRing();
  snapshot.image = kernel.engine().EncodeImage();
  return EncodeSnapshot(snapshot);
}

}  // namespace govbench

bool RunGovernorBench(std::vector<Metric>& metrics, bool& governor_ok) {
  using govbench::DriveStorm;
  using govbench::IdentityRun;
  using govbench::StormRun;

  // (a) governed vs ungoverned through the same seeded storm.
  const StormRun ungoverned = DriveStorm(false, 42);
  const StormRun governed = DriveStorm(true, 42);
  metrics.push_back(Metric{"governor_storm_callouts",
                           static_cast<double>(governed.callouts), "count"});
  metrics.push_back(Metric{"governor_ungoverned_evals",
                           static_cast<double>(ungoverned.evals), "count"});
  metrics.push_back(Metric{"governor_governed_evals",
                           static_cast<double>(governed.evals), "count"});
  metrics.push_back(Metric{"governor_ungoverned_p99_ns", ungoverned.p99_ns, "ns"});
  metrics.push_back(Metric{"governor_governed_p99_ns", governed.p99_ns, "ns"});
  metrics.push_back(Metric{"governor_deepest_mode",
                           static_cast<double>(governed.deepest), "mode"});
  metrics.push_back(Metric{"governor_final_mode",
                           static_cast<double>(governed.final_mode), "mode"});
  metrics.push_back(Metric{"governor_sheds_besteffort",
                           static_cast<double>(governed.gov.sheds_besteffort), "count"});
  metrics.push_back(Metric{"governor_sheds_standard",
                           static_cast<double>(governed.gov.sheds_standard), "count"});
  metrics.push_back(Metric{"governor_critical_sheds",
                           static_cast<double>(governed.gov.critical_sheds), "count"});
  metrics.push_back(Metric{"governor_static_applies",
                           static_cast<double>(governed.gov.static_applies), "count"});
  metrics.push_back(Metric{"governor_transitions",
                           static_cast<double>(governed.gov.transitions), "count"});
  // Per-criticality-tier shed latency: callout cost at each ladder rung
  // (full service, besteffort sampled, standard shed, fail-static).
  // Reporting only — no gate; the rungs a short storm never visits emit 0.
  static constexpr const char* kModeTag[] = {"full", "sampled", "critical_only",
                                             "fail_static"};
  for (int m = 0; m < 4; ++m) {
    const StormRun::ModeLatency& lat = governed.mode_latency[m];
    metrics.push_back(Metric{std::string("governor_tier_") + kModeTag[m] +
                                 "_callouts",
                             static_cast<double>(lat.count), "count"});
    metrics.push_back(Metric{std::string("governor_tier_") + kModeTag[m] +
                                 "_p50_ns",
                             lat.p50_ns, "ns"});
    metrics.push_back(Metric{std::string("governor_tier_") + kModeTag[m] +
                                 "_p99_ns",
                             lat.p99_ns, "ns"});
  }

  // (b) identity campaigns: governed storm, then worker-stall and
  // worker-death chaos, serial vs sharded per seed.
  constexpr char kStallChaos[] =
      "chaos { site shard.worker_stall { mode = bernoulli, p = 0.1, value = 1.0 } }";
  constexpr char kDieChaos[] =
      "chaos { site shard.worker_die { mode = bernoulli, p = 0.1 } }";
  struct Campaign {
    const char* name;
    const char* chaos;
    uint64_t seeds;
    uint64_t base;
  };
  const Campaign campaigns[] = {
      {"storm", nullptr, 100, 0x1000},
      {"stall", kStallChaos, 50, 0x2000},
      {"die", kDieChaos, 50, 0x3000},
  };
  uint64_t divergences_total = 0;
  ShardedStats stall_healing;
  ShardedStats die_healing;
  for (const Campaign& campaign : campaigns) {
    uint64_t divergences = 0;
    ShardedStats* healing = campaign.chaos == nullptr ? nullptr
                            : campaign.chaos == kStallChaos ? &stall_healing
                                                            : &die_healing;
    for (uint64_t i = 0; i < campaign.seeds; ++i) {
      const uint64_t seed = campaign.base + i;
      if (IdentityRun(false, seed, campaign.chaos, nullptr) !=
          IdentityRun(true, seed, campaign.chaos, healing)) {
        ++divergences;
      }
    }
    divergences_total += divergences;
    metrics.push_back(Metric{std::string("governor_identity_") + campaign.name +
                                 "_seeds",
                             static_cast<double>(campaign.seeds), "count"});
    metrics.push_back(Metric{std::string("governor_identity_") + campaign.name +
                                 "_failures",
                             static_cast<double>(divergences), "count"});
  }
  metrics.push_back(Metric{"governor_watchdog_stall_timeouts",
                           static_cast<double>(stall_healing.watchdog_timeouts),
                           "count"});
  metrics.push_back(Metric{"governor_watchdog_stall_stolen",
                           static_cast<double>(stall_healing.stolen_evals), "count"});
  metrics.push_back(Metric{"governor_watchdog_die_respawns",
                           static_cast<double>(die_healing.worker_respawns), "count"});
  metrics.push_back(Metric{"governor_watchdog_die_readmissions",
                           static_cast<double>(die_healing.readmissions), "count"});

  // Gates. The storm run is fully deterministic (sim-time signals), so the
  // ladder-depth and shed-count gates are exact; the p99 comparison is the
  // only wall-clock gate and holds with a ~4x work margin.
  governor_ok = true;
  if (governed.deepest != GovernorMode::kFailStatic ||
      governed.final_mode != GovernorMode::kFull) {
    std::fprintf(stderr,
                 "benchjson: --governor: ladder depth %d / final %d (expected "
                 "fail-static reached, full restored)\n",
                 static_cast<int>(governed.deepest),
                 static_cast<int>(governed.final_mode));
    governor_ok = false;
  }
  if (governed.gov.critical_sheds != 0 || governed.gov.static_applies == 0) {
    std::fprintf(stderr,
                 "benchjson: --governor: critical monitor shed or no "
                 "fail-static default pinned\n");
    governor_ok = false;
  }
  if (governed.evals >= ungoverned.evals) {
    std::fprintf(stderr, "benchjson: --governor: governed storm shed no work\n");
    governor_ok = false;
  }
  if (governed.p99_ns > ungoverned.p99_ns) {
    std::fprintf(stderr,
                 "benchjson: --governor: governed p99 %.0fns exceeds "
                 "ungoverned %.0fns\n",
                 governed.p99_ns, ungoverned.p99_ns);
    governor_ok = false;
  }
  if (divergences_total > 0) {
    std::fprintf(stderr,
                 "benchjson: --governor: %llu identity seeds diverged between "
                 "serial and sharded\n",
                 static_cast<unsigned long long>(divergences_total));
    governor_ok = false;
  }
  if (stall_healing.watchdog_timeouts == 0 || stall_healing.stolen_evals == 0 ||
      die_healing.worker_respawns == 0 || die_healing.readmissions == 0) {
    std::fprintf(stderr,
                 "benchjson: --governor: watchdog healing counters did not "
                 "move under armed faults\n");
    governor_ok = false;
  }
  return true;
}


// --- E14: bounded-memory store under million-session churn ------------------

namespace storebench {

constexpr char kRetentionSpec[] = R"(
  retention {
    scan_chunk = 256
    namespace "agent.s" { max_keys = 60000, idle_ttl = 5s }
  }
)";

SessionWorkloadOptions ChurnOptions() {
  SessionWorkloadOptions options;
  options.duration = Seconds(2);
  options.sessions_per_sec = 5000.0;   // ~10k sessions per wave
  options.max_sessions = 100000;
  options.mean_bursts = 1.0;
  options.burst_scale = 1.0;
  options.burst_shape = 3.0;           // light tail: ~1-2 calls per session
  options.max_burst_calls = 8;
  return options;
}

struct WaveSample {
  uint64_t live_keys = 0;
  uint64_t store_bytes = 0;
};

// The settling point: by this wave every bounded structure has filled — the
// global agent.calls.stream series caps at 65536 samples around wave 5 —
// so later growth is a genuine leak, not a buffer reaching its bound.
constexpr uint64_t kSettleWave = 20;

struct ChurnResult {
  uint64_t sessions = 0;
  uint64_t calls = 0;
  uint64_t stale_hits = 0;
  uint64_t reclaimed = 0;       // retention stats: idle + quota + eager
  WaveSample settled;           // after kSettleWave (or the last wave if fewer)
  WaveSample peak;              // max across waves
  WaveSample final_wave;        // after the last wave
  double p99_call_ns = 0.0;     // per-OnToolCall latency over the timed waves
};

// Drives `waves` churn waves through one kernel. Session ids are offset per
// wave so every wave models NEW sessions — the million-lifecycle workload —
// and the per-wave time offset keeps simulated time monotone.
ChurnResult DriveChurn(bool retention, uint64_t waves, uint64_t seed) {
  Kernel kernel;
  if (retention) {
    (void)kernel.LoadGuardrails(kRetentionSpec);
  }
  const SessionChurnTrace trace =
      SessionCallGenerator(ChurnOptions(), seed).GenerateChurn();
  ChurnResult result;
  std::vector<double> samples;
  samples.reserve(trace.calls.size() * waves);
  for (uint64_t wave = 0; wave < waves; ++wave) {
    const uint64_t id_offset = wave * 10'000'000ull;
    const SimTime time_offset = static_cast<SimTime>(wave) * Seconds(3);
    size_t end_cursor = 0;
    for (const agent::ToolCallEvent& call : trace.calls) {
      while (end_cursor < trace.ends.size() &&
             trace.ends[end_cursor].at <= call.at) {
        kernel.OnSessionEnd(trace.ends[end_cursor].session + id_offset);
        ++end_cursor;
      }
      agent::ToolCallEvent ev = call;
      ev.at += time_offset;
      ev.session += id_offset;
      kernel.Run(ev.at);
      const int64_t start = WallNs();
      kernel.OnToolCall(ev);
      samples.push_back(static_cast<double>(WallNs() - start));
    }
    for (; end_cursor < trace.ends.size(); ++end_cursor) {
      kernel.OnSessionEnd(trace.ends[end_cursor].session + id_offset);
    }
    result.sessions += trace.ends.size();
    result.calls += trace.calls.size();
    const WaveSample sample{kernel.store().live_key_count(),
                            kernel.store().approx_bytes()};
    if (wave == std::min(kSettleWave, waves - 1)) {
      result.settled = sample;
    }
    result.peak.live_keys = std::max(result.peak.live_keys, sample.live_keys);
    result.peak.store_bytes = std::max(result.peak.store_bytes, sample.store_bytes);
    result.final_wave = sample;
  }
  result.stale_hits = kernel.store().stale_hits();
  const RetentionStats& rstats = kernel.engine().retention().stats();
  result.reclaimed = rstats.reclaimed_idle + rstats.reclaimed_quota;
  std::sort(samples.begin(), samples.end());
  if (!samples.empty()) {
    result.p99_call_ns = samples[static_cast<size_t>(
        static_cast<double>(samples.size() - 1) * 0.99)];
  }
  return result;
}

}  // namespace storebench

bool RunStoreBench(std::vector<Metric>& metrics, bool& store_ok) {
  using storebench::ChurnResult;
  using storebench::DriveChurn;

  // Enough waves that total session lifecycles cross the 1M gate.
  constexpr uint64_t kWaves = 110;
  const ChurnResult governed = DriveChurn(true, kWaves, 0xE14);
  // Baseline: same workload, no retention block — the off==absent engine.
  // Fewer waves keep the unbounded run affordable; p99 per call is
  // wave-count independent.
  const ChurnResult baseline = DriveChurn(false, 10, 0xE14);

  metrics.push_back(Metric{"store_sessions",
                           static_cast<double>(governed.sessions), "count"});
  metrics.push_back(Metric{"store_calls", static_cast<double>(governed.calls),
                           "count"});
  metrics.push_back(Metric{"store_reclaimed",
                           static_cast<double>(governed.reclaimed), "count"});
  metrics.push_back(Metric{"store_stale_generation_hits",
                           static_cast<double>(governed.stale_hits), "count"});
  metrics.push_back(Metric{"store_settled_live_keys",
                           static_cast<double>(governed.settled.live_keys), "count"});
  metrics.push_back(Metric{"store_peak_live_keys",
                           static_cast<double>(governed.peak.live_keys), "count"});
  metrics.push_back(Metric{"store_final_live_keys",
                           static_cast<double>(governed.final_wave.live_keys),
                           "count"});
  metrics.push_back(Metric{"store_settled_bytes",
                           static_cast<double>(governed.settled.store_bytes),
                           "bytes"});
  metrics.push_back(Metric{"store_peak_bytes",
                           static_cast<double>(governed.peak.store_bytes), "bytes"});
  metrics.push_back(Metric{"store_final_bytes",
                           static_cast<double>(governed.final_wave.store_bytes),
                           "bytes"});
  metrics.push_back(Metric{"store_governed_p99_call_ns", governed.p99_call_ns,
                           "ns"});
  metrics.push_back(Metric{"store_baseline_p99_call_ns", baseline.p99_call_ns,
                           "ns"});
  metrics.push_back(Metric{"store_baseline_final_live_keys",
                           static_cast<double>(baseline.final_wave.live_keys),
                           "count"});

  store_ok = true;
  if (governed.sessions < 1000000) {
    std::fprintf(stderr,
                 "benchjson: --store: only %llu session lifecycles (need >= 1M)\n",
                 static_cast<unsigned long long>(governed.sessions));
    store_ok = false;
  }
  // Boundedness: after 100+ waves of brand-new sessions the footprint must
  // sit within 2x of the settling point (wave 20, once every capped series
  // has filled). An unbounded store grows ~linearly in waves (the
  // retention-off baseline demonstrates it).
  if (governed.final_wave.live_keys > 2 * governed.settled.live_keys ||
      governed.peak.live_keys > 2 * governed.settled.live_keys) {
    std::fprintf(stderr,
                 "benchjson: --store: live keys unbounded (settled %llu, peak "
                 "%llu, final %llu)\n",
                 static_cast<unsigned long long>(governed.settled.live_keys),
                 static_cast<unsigned long long>(governed.peak.live_keys),
                 static_cast<unsigned long long>(governed.final_wave.live_keys));
    store_ok = false;
  }
  if (governed.final_wave.store_bytes > 2 * governed.settled.store_bytes ||
      governed.peak.store_bytes > 2 * governed.settled.store_bytes) {
    std::fprintf(stderr,
                 "benchjson: --store: store bytes unbounded (settled %llu, peak "
                 "%llu, final %llu)\n",
                 static_cast<unsigned long long>(governed.settled.store_bytes),
                 static_cast<unsigned long long>(governed.peak.store_bytes),
                 static_cast<unsigned long long>(governed.final_wave.store_bytes));
    store_ok = false;
  }
  if (governed.stale_hits != 0) {
    std::fprintf(stderr,
                 "benchjson: --store: %llu stale-generation misreads (expected 0)\n",
                 static_cast<unsigned long long>(governed.stale_hits));
    store_ok = false;
  }
  if (governed.p99_call_ns > baseline.p99_call_ns * 1.05) {
    std::fprintf(stderr,
                 "benchjson: --store: governed p99 %.0fns exceeds retention-off "
                 "baseline %.0fns by more than 5%%\n",
                 governed.p99_call_ns, baseline.p99_call_ns);
    store_ok = false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Logger::Global().set_level(LogLevel::kOff);
  bool strict_alloc = false;
  bool chaos = false;
  bool supervisor = false;
  bool native = false;
  bool persist = false;
  bool sharded = false;
  bool agent = false;
  bool governor = false;
  bool store = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict-alloc") == 0) {
      strict_alloc = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--supervisor") == 0) {
      supervisor = true;
    } else if (std::strcmp(argv[i], "--native") == 0) {
      native = true;
    } else if (std::strcmp(argv[i], "--persist") == 0) {
      persist = true;
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else if (std::strcmp(argv[i], "--agent") == 0) {
      agent = true;
    } else if (std::strcmp(argv[i], "--governor") == 0) {
      governor = true;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store = true;
    } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: benchjson [--strict-alloc] [--chaos] [--supervisor] "
                   "[--native] [--persist] [--sharded] [--agent] [--governor] "
                   "[--store] [-o FILE]\n");
      return 2;
    }
  }

  std::vector<Metric> metrics;
  bool chaos_contained = true;
  bool supervisor_contained = true;
  bool native_ok = true;
  bool persist_ok = true;
  bool sharded_ok = true;
  bool agent_ok = true;
  bool governor_ok = true;
  bool store_ok = true;
  if (chaos) {
    if (!RunChaosBench(metrics, chaos_contained)) {
      return 1;
    }
  } else if (supervisor) {
    if (!RunSupervisorBench(metrics, supervisor_contained)) {
      return 1;
    }
  } else if (native) {
    if (!RunNativeBench(metrics, native_ok)) {
      return 1;
    }
  } else if (persist) {
    if (!RunPersistBench(metrics, persist_ok)) {
      return 1;
    }
  } else if (sharded) {
    if (!RunShardedBench(metrics, sharded_ok)) {
      return 1;
    }
  } else if (agent) {
    if (!RunAgentBench(metrics, agent_ok)) {
      return 1;
    }
  } else if (governor) {
    if (!RunGovernorBench(metrics, governor_ok)) {
      return 1;
    }
  } else if (store) {
    if (!RunStoreBench(metrics, store_ok)) {
      return 1;
    }
  } else {
    TimerHotWindow(metrics);
    TimerManyMonitors(metrics);
    FunctionCallouts(metrics);
  }

  double eval_sum = 0.0;
  int eval_count = 0;
  for (const Metric& m : metrics) {
    if (m.unit == "ns_per_eval") {
      eval_sum += m.value;
      ++eval_count;
    }
  }
  const double mean = eval_count > 0 ? eval_sum / eval_count : 0.0;

  const char* bench_name =
      chaos ? "chaos"
            : (supervisor
                   ? "supervisor"
                   : (native ? "native"
                             : (persist ? "persist"
                                        : (sharded ? "sharded"
                                                   : (agent ? "agent"
                                                            : (governor ? "governor"
                                                                        : (store ? "store"
                                                                                 : "hotpath")))))));
  std::string json = std::string("{\n  \"bench\": \"") + bench_name +
                     "\",\n  \"schema_version\": 1,\n  \"metrics\": [\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"value\": %.2f, \"unit\": \"%s\"}%s\n",
                  metrics[i].name.c_str(), metrics[i].value, metrics[i].unit.c_str(),
                  i + 1 < metrics.size() ? "," : "");
    json += line;
  }
  char tail[96];
  if (chaos) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"storm_contained\": %s\n}\n",
                  chaos_contained ? "true" : "false");
  } else if (supervisor) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"supervisor_contained\": %s\n}\n",
                  supervisor_contained ? "true" : "false");
  } else if (native) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"native_ok\": %s\n}\n",
                  native_ok ? "true" : "false");
  } else if (persist) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"persist_ok\": %s\n}\n",
                  persist_ok ? "true" : "false");
  } else if (sharded) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"sharded_ok\": %s\n}\n",
                  sharded_ok ? "true" : "false");
  } else if (agent) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"agent_ok\": %s\n}\n",
                  agent_ok ? "true" : "false");
  } else if (governor) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"governor_ok\": %s\n}\n",
                  governor_ok ? "true" : "false");
  } else if (store) {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"store_ok\": %s\n}\n",
                  store_ok ? "true" : "false");
  } else {
    std::snprintf(tail, sizeof(tail), "  ],\n  \"ns_per_eval_mean\": %.2f\n}\n", mean);
  }
  json += tail;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "benchjson: cannot open %s\n", out_path);
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);

  if (chaos && !chaos_contained) {
    std::fprintf(stderr,
                 "benchjson: FAIL --chaos: guardrail did not contain the fault storm\n");
    return 1;
  }
  if (supervisor && !supervisor_contained) {
    std::fprintf(stderr,
                 "benchjson: FAIL --supervisor: supervisor containment or overhead "
                 "check failed\n");
    return 1;
  }
  if (native && !native_ok) {
    std::fprintf(stderr,
                 "benchjson: FAIL --native: AOT tier missed its promotion or "
                 "speedup bound\n");
    return 1;
  }
  if (persist && !persist_ok) {
    std::fprintf(stderr,
                 "benchjson: FAIL --persist: warm restart diverged or exceeded the "
                 "recovery-time bound\n");
    return 1;
  }
  if (sharded && !sharded_ok) {
    std::fprintf(stderr,
                 "benchjson: FAIL --sharded: sharded engine diverged from the serial "
                 "oracle or missed the scaling bound\n");
    return 1;
  }
  if (agent && !agent_ok) {
    std::fprintf(stderr,
                 "benchjson: FAIL --agent: governance identity, containment, or "
                 "clean-trace gate failed\n");
    return 1;
  }
  if (governor && !governor_ok) {
    std::fprintf(stderr,
                 "benchjson: FAIL --governor: ladder, shedding, identity, or "
                 "watchdog-healing gate failed\n");
    return 1;
  }
  if (store && !store_ok) {
    std::fprintf(stderr,
                 "benchjson: FAIL --store: boundedness, stale-generation, or "
                 "p99-overhead gate failed\n");
    return 1;
  }
  if (strict_alloc) {
    for (const Metric& m : metrics) {
      if (m.name == "function_callout_allocs_per_call" && m.value > 0.0) {
        std::fprintf(stderr,
                     "benchjson: FAIL --strict-alloc: %.4f allocations per steady-state "
                     "FUNCTION callout (expected 0)\n",
                     m.value);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace osguard

int main(int argc, char** argv) { return osguard::Main(argc, argv); }
