// Deterministic simulated agent harness (osguard::agent::Harness).
//
// Wraps the bursty multi-session workload generator (src/wl/sessiongen)
// and drives a Kernel through the resulting tool-call event stream: for
// each event the harness advances the interleaved timeline to the event's
// timestamp (so TIMER monitors fire in order) and then delivers it through
// Kernel::OnToolCall. Same (options, seed) => bit-identical event stream
// and, by the engine's determinism contract, bit-identical guardrail state.
//
// Scripted traces: MakeIncidentTrace() violates all three guardrail
// families (session-rate flood, exec call, secret-read-then-network);
// MakeCleanTrace() is well-behaved under the shipped thresholds, including
// a secret read with no subsequent network send (taint alone is not a
// violation). Both are fixed constants — no RNG — so tests can assert
// exact admission counts.

#ifndef SRC_AGENT_HARNESS_H_
#define SRC_AGENT_HARNESS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/agent/tool_call.h"
#include "src/sim/kernel.h"
#include "src/wl/sessiongen.h"

namespace osguard::agent {

// Per-verdict delivery counts plus the resume cursor for crash protocols.
struct DriveResult {
  uint64_t delivered = 0;
  uint64_t allowed = 0;
  uint64_t denied = 0;
  uint64_t throttled = 0;
  uint64_t killed = 0;
  // First undelivered event (== events.size() when the trace completed).
  // A mid-trace kernel panic stops delivery here; Reboot() and resume.
  size_t next_index = 0;
};

// Delivers events[from..] in order: Run(ev.at), then OnToolCall(ev).
// Returns early (next_index < events.size()) if the kernel panics.
DriveResult ReplayTrace(Kernel& kernel, std::span<const ToolCallEvent> events,
                        size_t from = 0);

class Harness {
 public:
  Harness(SessionWorkloadOptions workload, uint64_t seed)
      : events_(SessionCallGenerator(workload, seed).Generate()) {}

  const std::vector<ToolCallEvent>& events() const { return events_; }

  DriveResult Drive(Kernel& kernel, size_t from = 0) const {
    return ReplayTrace(kernel, events_, from);
  }

 private:
  std::vector<ToolCallEvent> events_;
};

// Scripted incident: a clean baseline session, a flood session (trips the
// session-rate family => throttle), an exec session (trips the allowlist
// family => deny), an exfiltration session (secret read then network sends
// — trips the sequence family => kill), and a distributed flood across
// twenty sessions (each under the per-session limit; only the global rate
// family sees the aggregate).
std::vector<ToolCallEvent> MakeIncidentTrace();

// Well-behaved counterpart: modest per-session rates, no exec, one secret
// read with no subsequent network send. Zero trips under the shipped specs.
std::vector<ToolCallEvent> MakeCleanTrace();

}  // namespace osguard::agent

#endif  // SRC_AGENT_HARNESS_H_
