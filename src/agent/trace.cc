#include "src/agent/trace.h"

#include <charconv>
#include <cstdint>

namespace osguard::agent {

namespace {

// Strict decimal parse of the whole field (no sign, no spaces, no empties).
template <typename T>
bool ParseField(std::string_view field, T& out) {
  if (field.empty()) {
    return false;
  }
  const char* first = field.data();
  const char* last = field.data() + field.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool ParseTool(std::string_view field, ToolClass& out) {
  for (int i = 0; i < kToolClassCount; ++i) {
    const auto tool = static_cast<ToolClass>(i);
    if (field == ToolClassName(tool)) {
      out = tool;
      return true;
    }
  }
  return false;
}

Status LineError(size_t line_no, const char* what) {
  return InvalidArgumentError("agent trace line " + std::to_string(line_no) +
                              ": " + what);
}

}  // namespace

std::string EncodeTrace(const std::vector<ToolCallEvent>& events) {
  std::string out = "# osguard agent trace v1\n";
  for (const ToolCallEvent& ev : events) {
    out += std::to_string(ev.at);
    out += ',';
    out += std::to_string(ev.session);
    out += ',';
    out += ToolClassName(ev.tool);
    out += ',';
    out += std::to_string(ev.fingerprint);
    out += ',';
    out += ev.secret ? '1' : '0';
    out += '\n';
  }
  return out;
}

Result<std::vector<ToolCallEvent>> DecodeTrace(std::string_view text) {
  std::vector<ToolCallEvent> events;
  size_t line_no = 0;
  SimTime prev_at = 0;
  while (!text.empty()) {
    ++line_no;
    const size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view() : text.substr(nl + 1);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    // Exactly five comma-separated fields.
    std::string_view fields[5];
    size_t field_count = 0;
    while (true) {
      const size_t comma = line.find(',');
      const std::string_view field =
          comma == std::string_view::npos ? line : line.substr(0, comma);
      if (field_count >= 5) {
        return LineError(line_no, "too many fields (want 5)");
      }
      fields[field_count++] = field;
      if (comma == std::string_view::npos) {
        break;
      }
      line = line.substr(comma + 1);
    }
    if (field_count != 5) {
      return LineError(line_no, "too few fields (want 5)");
    }
    ToolCallEvent ev;
    int64_t at = 0;
    if (!ParseField(fields[0], at) || at < 0) {
      return LineError(line_no, "bad timestamp");
    }
    ev.at = at;
    if (ev.at < prev_at) {
      return LineError(line_no, "timestamps must be non-decreasing");
    }
    if (!ParseField(fields[1], ev.session) || ev.session == 0) {
      return LineError(line_no, "bad session id");
    }
    if (!ParseTool(fields[2], ev.tool)) {
      return LineError(line_no, "unknown tool class");
    }
    if (!ParseField(fields[3], ev.fingerprint)) {
      return LineError(line_no, "bad fingerprint");
    }
    uint32_t secret = 0;
    if (!ParseField(fields[4], secret) || secret > 1) {
      return LineError(line_no, "secret flag must be 0 or 1");
    }
    ev.secret = secret == 1;
    prev_at = ev.at;
    events.push_back(ev);
  }
  return events;
}

}  // namespace osguard::agent
