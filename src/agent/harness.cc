#include "src/agent/harness.h"

#include <algorithm>

namespace osguard::agent {

DriveResult ReplayTrace(Kernel& kernel, std::span<const ToolCallEvent> events,
                        size_t from) {
  DriveResult result;
  result.next_index = from;
  for (size_t i = from; i < events.size(); ++i) {
    const ToolCallEvent& ev = events[i];
    // Pump queued work and TIMER monitors up to the event's timestamp. A
    // panic scheduled in this range freezes the kernel mid-trace.
    kernel.Run(ev.at);
    if (kernel.panicked()) {
      return result;
    }
    const AgentAdmitVerdict verdict = kernel.OnToolCall(ev);
    ++result.delivered;
    result.next_index = i + 1;
    switch (verdict) {
      case AgentAdmitVerdict::kAllow:
        ++result.allowed;
        break;
      case AgentAdmitVerdict::kDeny:
        ++result.denied;
        break;
      case AgentAdmitVerdict::kThrottle:
        ++result.throttled;
        break;
      case AgentAdmitVerdict::kKill:
        ++result.killed;
        break;
    }
  }
  return result;
}

namespace {

struct TraceBuilder {
  std::vector<ToolCallEvent> events;
  uint64_t next_fingerprint = 1;

  void Add(SimTime at, uint64_t session, ToolClass tool, bool secret = false) {
    events.push_back(ToolCallEvent{at, session, tool, next_fingerprint++, secret});
  }

  std::vector<ToolCallEvent> Finish() {
    std::stable_sort(events.begin(), events.end(),
                     [](const ToolCallEvent& a, const ToolCallEvent& b) {
                       return a.at < b.at;
                     });
    return std::move(events);
  }
};

}  // namespace

std::vector<ToolCallEvent> MakeIncidentTrace() {
  TraceBuilder b;
  // Session 1 — clean baseline: 4 calls/s of file reads and network sends
  // for 3 seconds (stays far below every threshold).
  for (int i = 0; i < 12; ++i) {
    const SimTime at = Milliseconds(100 + i * 250);
    b.Add(at, 1, i % 2 == 0 ? ToolClass::kFile : ToolClass::kNet);
  }
  // Session 2 — flood: 200 calls at 2ms spacing starting at t=500ms. The
  // per-session 1s-window count blows through the limit of 30 at call 31,
  // the session-rate spec throttles the session, and the remaining calls
  // are rejected. The same burst pushes the global 1s rate past 100/s.
  for (int i = 0; i < 200; ++i) {
    b.Add(Milliseconds(500) + Milliseconds(2) * i, 2, ToolClass::kFile);
  }
  // Session 3 — exec: three exec attempts at t=1.5s. The first trips the
  // allowlist spec within its own callout; the denial rejects the rest.
  for (int i = 0; i < 3; ++i) {
    b.Add(Milliseconds(1500 + 10 * i), 3, ToolClass::kExec);
  }
  // Session 4 — exfiltration: a secret file read, then network sends. The
  // first send increments agent.taint.net_after_secret, the sequence spec
  // kills the session synchronously, and the later sends are rejected.
  b.Add(Milliseconds(2000), 4, ToolClass::kFile, /*secret=*/true);
  b.Add(Milliseconds(2100), 4, ToolClass::kNet);
  b.Add(Milliseconds(2200), 4, ToolClass::kNet);
  b.Add(Milliseconds(2300), 4, ToolClass::kNet);
  // Sessions 10-29 — distributed flood at t=3s: twenty sessions, each 10
  // calls at 50ms spacing (well under the per-session limit of 30/window),
  // but 200 calls/s in aggregate — only the *global* rate family can see
  // it, which is exactly what the windowed stream aggregate is for.
  for (uint64_t s = 10; s < 30; ++s) {
    for (int i = 0; i < 10; ++i) {
      b.Add(Milliseconds(3000) + Milliseconds(2) * (s - 10) + Milliseconds(50) * i,
            s, ToolClass::kFile);
    }
  }
  return b.Finish();
}

std::vector<ToolCallEvent> MakeCleanTrace() {
  TraceBuilder b;
  // Six sessions, 20 calls each at 4 calls/s, staggered starts: global rate
  // peaks around 24/s, per-session 1s windows hold 4-5 calls.
  for (uint64_t s = 1; s <= 6; ++s) {
    for (int i = 0; i < 20; ++i) {
      const SimTime at = Milliseconds(s * 40 + i * 250);
      // Session 1 is file-only and reads one secret at its third call —
      // taint with no subsequent network send must NOT trip anything.
      if (s == 1) {
        b.Add(at, s, ToolClass::kFile, /*secret=*/i == 2);
      } else {
        b.Add(at, s, i % 3 == 0 ? ToolClass::kNet : ToolClass::kFile);
      }
    }
  }
  return b.Finish();
}

}  // namespace osguard::agent
