// Tool-call event vocabulary for the agent governance domain.
//
// Header-only on purpose: the workload generator (src/wl/sessiongen),
// the kernel callout (src/sim/agent_callout), and the harness/trace codec
// (src/agent) all speak this struct, and keeping it dependency-free avoids
// a wl <-> sim link cycle. See docs/AGENT.md for the domain model.

#ifndef SRC_AGENT_TOOL_CALL_H_
#define SRC_AGENT_TOOL_CALL_H_

#include <cstdint>

#include "src/support/time.h"

namespace osguard::agent {

// Tool classes an agent session can invoke. Values are stable: they appear
// in serialized traces (src/agent/trace.h) and feature-store key suffixes.
enum class ToolClass : uint8_t {
  kFile = 0,  // filesystem read/write
  kNet = 1,   // network send/receive
  kExec = 2,  // subprocess execution
};
inline constexpr int kToolClassCount = 3;

// Canonical short name ("file", "net", "exec") used in store keys and the
// text trace format. Returns nullptr for out-of-range values so decoders
// can reject invalid tool bytes.
inline const char* ToolClassName(ToolClass tool) {
  switch (tool) {
    case ToolClass::kFile:
      return "file";
    case ToolClass::kNet:
      return "net";
    case ToolClass::kExec:
      return "exec";
  }
  return nullptr;
}

// One instrumented tool call, as delivered to Kernel::OnToolCall.
struct ToolCallEvent {
  SimTime at = 0;
  uint64_t session = 0;      // 1-based session id (0 is invalid)
  ToolClass tool = ToolClass::kFile;
  uint64_t fingerprint = 0;  // argument fingerprint hash
  bool secret = false;       // file read touching a secret path

  friend bool operator==(const ToolCallEvent&, const ToolCallEvent&) = default;
};

}  // namespace osguard::agent

#endif  // SRC_AGENT_TOOL_CALL_H_
