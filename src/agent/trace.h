// Text codec for agent tool-call traces.
//
// One event per line, comma-separated:
//
//   at_ns,session,tool,fingerprint,secret
//
// where `tool` is the canonical class name (file|net|exec) and `secret` is
// 0 or 1. Lines starting with '#' and blank lines are skipped. Timestamps
// must be non-decreasing (a trace is a timeline) and session ids nonzero.
//
// The decoder is a fuzz target (tests/fuzz_test.cc): it must reject every
// malformed input with a clean error — never crash, never accept garbage —
// and produce stable diagnostics for identical inputs. Corpus seeds live in
// tests/corpus/*.trace with the valid_/invalid_ naming convention.

#ifndef SRC_AGENT_TRACE_H_
#define SRC_AGENT_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/agent/tool_call.h"
#include "src/support/status.h"

namespace osguard::agent {

// Serializes a trace; inverse of DecodeTrace for every valid event stream.
std::string EncodeTrace(const std::vector<ToolCallEvent>& events);

// Parses a trace. Errors are kInvalidArgument with a 1-based line number.
Result<std::vector<ToolCallEvent>> DecodeTrace(std::string_view text);

}  // namespace osguard::agent

#endif  // SRC_AGENT_TRACE_H_
