// Failover block layer: the subsystem LinnOS plugs into.
//
// "LinnOS helps storage clusters with built-in failover logic such as flash
// RAID by revoking slow I/O and re-issuing to a replica" (§5).
//
// Default (heuristic) behavior is *reactive* revocation: an I/O that has
// not completed within `revoke_timeout` is revoked and reissued to the
// replica, so slow I/Os cost timeout + reissue instead of the full GC pause.
//
// A learned submit predictor replaces the reactive path with prediction:
//   predicted slow -> immediate failover (cheaper than waiting out the
//                     timeout — this is LinnOS's win), and
//   predicted fast -> the I/O runs to completion on the primary with NO
//                     timeout revocation (trusting the model avoids
//                     speculative reissue overhead).
// A *false submit* — predicted fast but actually slow — therefore pays the
// full slow latency, which is exactly why a high false-submit rate erases
// the model's benefit and is the failure metric the Listing-2 guardrail
// watches.
//
// Kernel integration (everything a guardrail can see or steer):
//   feature store series  blk.io_latency_us   per-I/O end-to-end latency
//                         blk.false_submit    1/0 per model-predicted-fast I/O
//                         blk.infer_cost_us   inference overhead per I/O (P5)
//   feature store scalars false_submit_rate   windowed mean, as in Listing 2
//                         blk.ml_enabled      guardrail kill switch (SAVE)
//   policy slot           blk.submit_predictor (REPLACE target)
//   callout               blk_submit_io       FUNCTION trigger site

#ifndef SRC_SIM_BLK_LAYER_H_
#define SRC_SIM_BLK_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/actions/policy_registry.h"
#include "src/sim/kernel.h"
#include "src/sim/ssd_device.h"
#include "src/support/ring_buffer.h"

namespace osguard {

// Decision context handed to submit-predictor policies. Features (in order):
//   [0..3]  last four I/O latencies on this block layer, microseconds
//   [4]     queue depth of the primary channel this LBA maps to
//   [5]     total primary queue depth
//   [6]     1.0 if the I/O is a write
inline constexpr size_t kIoFeatureDim = 7;

struct IoContext {
  SimTime now = 0;
  uint64_t lba = 0;
  bool is_write = false;
  std::vector<double> features;
};

// The policy interface bound to slot blk.submit_predictor.
class IoSubmitPolicy : public Policy {
 public:
  // True if the primary is predicted to serve this I/O slowly.
  virtual bool PredictSlow(const IoContext& context) = 0;

  // Simulated cost of running the prediction on the submit path; added to
  // the I/O's latency. This is what property P5 bounds.
  virtual Duration inference_cost() const { return 0; }
};

// Default kernel behavior: never predict slow (always use the primary).
class AlwaysPrimaryPolicy : public IoSubmitPolicy {
 public:
  std::string name() const override { return "heuristic_always_primary"; }
  bool PredictSlow(const IoContext& context) override { return false; }
};

// Simple hand-coded heuristic: predict slow when the channel queue is deep.
class QueueDepthHeuristicPolicy : public IoSubmitPolicy {
 public:
  explicit QueueDepthHeuristicPolicy(int depth_threshold = 3)
      : depth_threshold_(depth_threshold) {}
  std::string name() const override { return "heuristic_queue_depth"; }
  bool PredictSlow(const IoContext& context) override {
    return context.features[4] >= static_cast<double>(depth_threshold_);
  }

 private:
  int depth_threshold_;
};

struct BlockLayerConfig {
  // Actual latency above this counts as "slow" (the false-submit label).
  Duration slow_threshold = Microseconds(500);
  // Reactive path: revoke an un-predicted I/O after this long on the
  // primary and reissue to the replica.
  Duration revoke_timeout = Microseconds(500);
  // Revoke-and-reissue overhead paid when failing over to the replica.
  Duration failover_penalty = Microseconds(30);
  // Window for the false_submit_rate scalar the Listing-2 rule LOADs.
  Duration rate_window = Seconds(1);
  std::string policy_slot = "blk.submit_predictor";
  std::string ml_enabled_key = "blk.ml_enabled";
  std::string callout = "blk_submit_io";
  bool emit_callout = false;  // per-I/O FUNCTION trigger site (costly; opt-in)
};

struct IoOutcome {
  Duration latency = 0;        // end-to-end including inference + failover costs
  bool used_model = false;     // a learned policy made the call
  bool predicted_slow = false;
  bool redirected = false;     // served by the replica (predicted or revoked)
  bool revoked = false;        // reactive timeout revocation fired
  bool actually_slow = false;  // primary-path latency exceeded slow_threshold
  bool false_submit = false;   // predicted fast, was slow
  bool io_error = false;       // device I/O error (chaos); reissued if possible
  bool mispredicted = false;   // chaos flipped this prediction (model.mispredict)
};

struct BlockLayerStats {
  uint64_t total_ios = 0;
  uint64_t model_decisions = 0;
  uint64_t redirects = 0;
  uint64_t revokes = 0;
  uint64_t false_submits = 0;
  uint64_t slow_ios = 0;
  uint64_t io_errors = 0;       // device errors observed (chaos-injected)
  uint64_t mispredictions = 0;  // predictions flipped by the chaos layer
  int64_t inference_ns_total = 0;
  int64_t latency_ns_total = 0;
};

class BlockLayer {
 public:
  // `primary` and `replica` are borrowed. `replica` may be null (no
  // failover possible; predictions become advisory only).
  BlockLayer(Kernel& kernel, SsdDevice* primary, SsdDevice* replica,
             BlockLayerConfig config = {});

  // Submits one I/O at the kernel's current time and returns its outcome.
  IoOutcome SubmitIo(uint64_t lba, bool is_write);

  // Extracts the policy feature vector for the next I/O (public so trainers
  // can build datasets from the same code path the runtime uses).
  IoContext MakeContext(uint64_t lba, bool is_write) const;

  const BlockLayerStats& stats() const { return stats_; }
  SsdDevice& primary() { return *primary_; }
  const BlockLayerConfig& config() const { return config_; }

 private:
  // Tracks the kernel's attached chaos engine (which may be attached after
  // this block layer was constructed) and keeps the site ids current.
  void RefreshChaos();

  Kernel& kernel_;
  SsdDevice* primary_;
  SsdDevice* replica_;
  BlockLayerConfig config_;
  RingBuffer<double> latency_history_us_{4};
  BlockLayerStats stats_;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId mispredict_site_ = kInvalidChaosSite;
};

}  // namespace osguard

#endif  // SRC_SIM_BLK_LAYER_H_
