#include "src/sim/congestion.h"

#include <algorithm>

namespace osguard {

CongestionSim::CongestionSim(Kernel& kernel, CongestionConfig config)
    : kernel_(kernel), config_(std::move(config)), rng_(config_.seed) {}

void CongestionSim::Step() {
  const SimTime now = kernel_.now();
  const double dt_s = ToSeconds(config_.control_interval);

  // Fluid queue update: backlog grows by the rate excess over capacity.
  const double excess_mbps = rate_mbps_ - config_.capacity_mbps;
  queue_ms_ += excess_mbps / config_.capacity_mbps * dt_s * 1000.0;
  queue_ms_ = std::max(queue_ms_, 0.0);
  bool loss = false;
  if (queue_ms_ > config_.buffer_ms) {
    loss = true;
    queue_ms_ = config_.buffer_ms;  // overflow dropped
  }

  const double true_rtt_ms = config_.base_rtt_ms + queue_ms_;
  const double delivered_mbps = std::min(rate_mbps_, config_.capacity_mbps);

  // Noisy measurement, as real stacks see.
  CcSignals signals;
  signals.rtt_ms = std::max(0.1, true_rtt_ms + rng_.Normal(0.0, config_.rtt_noise_ms));
  min_rtt_ms_ = std::min(min_rtt_ms_, signals.rtt_ms);
  signals.min_rtt_ms = min_rtt_ms_;
  signals.loss = loss;
  signals.delivered_mbps = delivered_mbps;
  signals.current_rate_mbps = rate_mbps_;

  // Account this interval.
  stats_.intervals += 1;
  stats_.losses += loss ? 1 : 0;
  stats_.delivered_mb += delivered_mbps * dt_s / 8.0;
  stats_.offered_mb += rate_mbps_ * dt_s / 8.0;

  // Publish the metrics guardrails watch, then consult the policy.
  FeatureStore& store = kernel_.store();
  store.Observe("net.rtt_ms", now, signals.rtt_ms);
  store.Observe("net.loss", now, loss ? 1.0 : 0.0);
  store.Observe("net.util", now, delivered_mbps / config_.capacity_mbps);

  auto policy = kernel_.registry().ActiveAs<RatePolicy>(config_.policy_slot);
  if (policy.ok()) {
    const double next = policy.value()->NextRate(signals);
    // Defensive clamp: a broken learned controller cannot take the rate
    // negative or unbounded (the raw decision is still visible in the
    // series below, so P2/P3 guardrails see the misbehavior).
    store.Observe("net.rate_mbps", now, next);
    rate_mbps_ = std::clamp(next, 0.1, config_.capacity_mbps * 16.0);
  }
}

void CongestionSim::PumpFor(Duration duration) {
  const SimTime end = kernel_.now() + duration;
  struct Pump {
    CongestionSim* sim;
    SimTime end;
    void operator()(SimTime now) const {
      sim->Step();
      const SimTime next = now + sim->config_.control_interval;
      if (next <= end) {
        sim->kernel_.queue().ScheduleAt(next, Pump{sim, end});
      }
    }
  };
  kernel_.queue().ScheduleAt(kernel_.now(), Pump{this, end});
}

}  // namespace osguard
