#include "src/sim/ssd_device.h"

#include <algorithm>
#include <cassert>

namespace osguard {

SsdDevice::SsdDevice(std::string name, const SsdConfig& config)
    : name_(std::move(name)), config_(config), rng_(config.seed) {
  assert(config.channels >= 1);
  channels_.resize(static_cast<size_t>(config.channels));
}

void SsdDevice::PruneCompleted(Channel& channel, SimTime now) const {
  while (!channel.completions.empty() && channel.completions.front() <= now) {
    channel.completions.pop_front();
  }
}

IoResult SsdDevice::Submit(SimTime now, uint64_t lba, bool is_write) {
  const int channel_index = ChannelOf(lba);
  Channel& channel = channels_[static_cast<size_t>(channel_index)];
  PruneCompleted(channel, now);

  IoResult result;
  result.channel = channel_index;

  const SimTime start = std::max(now, channel.busy_until);
  result.queue_wait = start - now;
  // Waiting behind an earlier GC pause is what makes the tail latency
  // visible to the host even for reads that do not themselves trigger GC.
  if (result.queue_wait > config_.gc_pause_mean / 2) {
    result.hit_gc = true;
  }

  Duration service;
  if (is_write) {
    service = config_.write_base +
              static_cast<Duration>(rng_.NextDouble() * static_cast<double>(config_.write_jitter));
  } else {
    service = config_.read_base +
              static_cast<Duration>(rng_.NextDouble() * static_cast<double>(config_.read_jitter));
  }

  const double gc_p = is_write ? config_.gc_per_write : config_.gc_per_read;
  if (rng_.Bernoulli(gc_p)) {
    const Duration pause = static_cast<Duration>(
        rng_.Exponential(1.0 / static_cast<double>(config_.gc_pause_mean)));
    service += pause;
    result.hit_gc = true;
    ++gc_events_;
  }

  // Injected faults draw from the chaos engine's own site streams, so the
  // device RNG above is untouched — an unarmed chaos engine leaves latencies
  // bit-identical to no chaos engine at all. Site query order is fixed
  // (latency then error) for the same reason.
  if (chaos_ != nullptr) {
    if (const FaultDecision spike = chaos_->Query(latency_site_, now)) {
      service += spike.latency;  // stalls the channel like a firmware hang
      ++injected_spikes_;
    }
    if (chaos_->ShouldInject(error_site_, now)) {
      result.error = true;  // surfaced after the request's bus time elapses
      ++injected_errors_;
    }
  }

  const SimTime done = start + service;
  channel.busy_until = done;
  channel.completions.push_back(done);
  result.latency = done - now;

  latencies_.Record(result.latency);
  ++total_ios_;
  return result;
}

int SsdDevice::QueueDepth(SimTime now, uint64_t lba) const {
  Channel& channel = channels_[static_cast<size_t>(ChannelOf(lba))];
  PruneCompleted(channel, now);
  return static_cast<int>(channel.completions.size());
}

int SsdDevice::TotalQueueDepth(SimTime now) const {
  int total = 0;
  for (Channel& channel : channels_) {
    PruneCompleted(channel, now);
    total += static_cast<int>(channel.completions.size());
  }
  return total;
}

void SsdDevice::AttachChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  if (chaos != nullptr) {
    latency_site_ = chaos->RegisterSite(kChaosSiteSsdLatency);
    error_site_ = chaos->RegisterSite(kChaosSiteSsdError);
  } else {
    latency_site_ = kInvalidChaosSite;
    error_site_ = kInvalidChaosSite;
  }
}

void SsdDevice::ScaleGcPressure(double factor) {
  config_.gc_per_write = std::clamp(config_.gc_per_write * factor, 0.0, 1.0);
  config_.gc_per_read = std::clamp(config_.gc_per_read * factor, 0.0, 1.0);
}

}  // namespace osguard
