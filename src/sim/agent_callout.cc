#include "src/sim/agent_callout.h"

#include <string>

namespace osguard {

void AgentGovernor::SetChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  if (chaos_ != nullptr) {
    drop_site_ = chaos_->RegisterSite(kChaosSiteAgentEventDrop);
    dup_site_ = chaos_->RegisterSite(kChaosSiteAgentDupSession);
  } else {
    drop_site_ = kInvalidChaosSite;
    dup_site_ = kInvalidChaosSite;
  }
}

AgentAdmitVerdict AgentGovernor::Process(const agent::ToolCallEvent& event,
                                         SimTime now) {
  using agent::ToolClass;
  FeatureStore& store = *store_;
  const AgentAdmitVerdict verdict = DecideAgentAdmission(store, event, now);
  if (verdict != AgentAdmitVerdict::kAllow) {
    store.Increment(kAgentKeyGovRejected);
    switch (verdict) {
      case AgentAdmitVerdict::kDeny:
        store.Increment(kAgentKeyGovDenied);
        break;
      case AgentAdmitVerdict::kThrottle:
        store.Increment(kAgentKeyGovThrottled);
        break;
      case AgentAdmitVerdict::kKill: {
        // Kill is permanent: latch the per-session bit on first rejection so
        // later calls short-circuit without consulting agent.ctl.*.
        const std::string killed_key = AgentSessionKey(event.session, "killed");
        if (!store.LoadOr(killed_key, Value(false)).AsBool().value_or(false)) {
          store.Save(killed_key, Value(true));
          store.Increment(kAgentKeyGovKilled);
          if (reclaim_on_kill_) {
            // The session will never publish again (admission reads the
            // latch first), so its data keys can go now. The latch stays.
            for (const char* suffix : {"calls", "seen", "taint", "file", "net", "exec"}) {
              (void)store.ReclaimKey(AgentSessionKey(event.session, suffix));
            }
          }
        }
        break;
      }
      case AgentAdmitVerdict::kAllow:
        break;
    }
    return verdict;
  }

  // --- Publication (accepted call) ---
  // Contains() sees scalars only, so series bounds are gated on scalar
  // sentinels: the events counter for the global stream, the per-session
  // "seen" bit for the session series.
  if (!store.Contains(kAgentKeyEvents)) {
    store.SetSeriesOptions(kAgentKeyCallsStream, options_.stream_series);
  }
  store.Increment(kAgentKeyEvents);
  const std::string calls_key = AgentSessionKey(event.session, "calls");
  const std::string seen_key = AgentSessionKey(event.session, "seen");
  if (!store.Contains(seen_key)) {
    store.SetSeriesOptions(calls_key, options_.session_series);
    store.Save(seen_key, Value(true));
    store.Increment(kAgentKeySessions);
  }
  store.Observe(calls_key, now, 1.0);
  store.Observe(kAgentKeyCallsStream, now, 1.0);
  const char* tool_name = agent::ToolClassName(event.tool);
  store.Increment(std::string(kAgentKeyCallsPrefix) + tool_name);
  store.Increment(AgentSessionKey(event.session, tool_name));
  store.Save(kAgentKeyLastSession, Value(static_cast<int64_t>(event.session)));
  store.Save(kAgentKeyLastTool, Value(static_cast<int64_t>(event.tool)));
  store.Save(kAgentKeyLastFingerprint,
             Value(static_cast<int64_t>(event.fingerprint)));
  // Windowed per-session rate: session id first, then the count, so the
  // ONCHANGE watcher of agent.rate.current reads a consistent pair.
  const double in_window =
      store.Aggregate(calls_key, AggKind::kCount, options_.rate_window, now)
          .value_or(0.0);
  store.Save(kAgentKeyRateSession, Value(static_cast<int64_t>(event.session)));
  store.Save(kAgentKeyRateCurrent, Value(in_window));
  // Taint tracking (the "no network send after reading secrets" property).
  const std::string taint_key = AgentSessionKey(event.session, "taint");
  if (event.tool == ToolClass::kFile && event.secret) {
    if (!store.LoadOr(taint_key, Value(false)).AsBool().value_or(false)) {
      store.Save(taint_key, Value(true));
      store.Increment(kAgentKeyTaintSessions);
    }
  } else if (event.tool == ToolClass::kNet &&
             store.LoadOr(taint_key, Value(false)).AsBool().value_or(false)) {
    // Offender id before the counter: the ONCHANGE spec fires on the
    // increment and reads the session to kill.
    store.Save(kAgentKeyTaintLastSession,
               Value(static_cast<int64_t>(event.session)));
    store.Increment(kAgentKeyTaintNetAfterSecret);
  }
  return verdict;
}

}  // namespace osguard
