// Discrete-event simulation core.
//
// A single-threaded event queue with a simulated nanosecond clock. All
// substrates (block layer, scheduler, memory) schedule their work here, and
// the kernel harness bridges queue time to the guardrail engine
// (Engine::AdvanceTo) so TIMER monitors interleave correctly with workload
// events.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/support/time.h"

namespace osguard {

class EventQueue {
 public:
  using EventFn = std::function<void(SimTime now)>;

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  // Schedules `fn` at absolute time `at` (clamped to now: scheduling in the
  // past runs "immediately" at the current time). Events at equal times run
  // in scheduling order.
  void ScheduleAt(SimTime at, EventFn fn);
  void ScheduleAfter(Duration delay, EventFn fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs events with time <= until, then advances the clock to `until`.
  // Returns the number of events executed.
  size_t RunUntil(SimTime until);

  // Runs until the queue drains or `max_events` have executed.
  size_t RunAll(size_t max_events = SIZE_MAX);

  // Drops all pending events; the clock and the tie-break sequence counter
  // keep running (mid-run cancellation).
  void Clear();

  // Clear() plus rewinds the clock and the sequence counter to a pristine
  // queue. Between experiment repetitions this is the one to call: a stale
  // `now_` silently clamps re-scheduled events forward and a stale sequence
  // counter shifts tie-break ranks, either of which reorders same-timestamp
  // events relative to the first run and breaks bit-exact replay.
  void Reset();

 private:
  struct Event {
    SimTime at;
    uint64_t sequence;
    EventFn fn;
    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : sequence > other.sequence;
    }
  };

  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
};

}  // namespace osguard

#endif  // SRC_SIM_EVENT_QUEUE_H_
