#include "src/sim/blk_layer.h"

namespace osguard {

BlockLayer::BlockLayer(Kernel& kernel, SsdDevice* primary, SsdDevice* replica,
                       BlockLayerConfig config)
    : kernel_(kernel), primary_(primary), replica_(replica), config_(std::move(config)) {
  // Default ml_enabled to true so a learned policy is live until a guardrail
  // turns it off (the Listing-2 action).
  if (!kernel_.store().Contains(config_.ml_enabled_key)) {
    kernel_.store().Save(config_.ml_enabled_key, Value(true));
  }
}

void BlockLayer::RefreshChaos() {
  // The chaos engine is attached to the kernel after construction (harnesses
  // build the topology first, then arm faults), so re-resolve lazily. Site
  // registration is idempotent and cheap; this only re-runs on attach/detach.
  if (chaos_ != kernel_.chaos()) {
    chaos_ = kernel_.chaos();
    mispredict_site_ =
        chaos_ != nullptr ? chaos_->RegisterSite(kChaosSiteMispredict) : kInvalidChaosSite;
  }
}

IoContext BlockLayer::MakeContext(uint64_t lba, bool is_write) const {
  IoContext context;
  context.now = kernel_.now();
  context.lba = lba;
  context.is_write = is_write;
  context.features.assign(kIoFeatureDim, 0.0);
  // Latency history, oldest to newest; zero-padded until warm.
  const size_t history = latency_history_us_.size();
  for (size_t i = 0; i < history; ++i) {
    context.features[4 - history + i] = latency_history_us_[i];
  }
  context.features[4] = static_cast<double>(primary_->QueueDepth(context.now, lba));
  context.features[5] = static_cast<double>(primary_->TotalQueueDepth(context.now));
  context.features[6] = is_write ? 1.0 : 0.0;
  return context;
}

IoOutcome BlockLayer::SubmitIo(uint64_t lba, bool is_write) {
  const SimTime now = kernel_.now();
  FeatureStore& store = kernel_.store();
  RefreshChaos();
  IoContext context = MakeContext(lba, is_write);
  IoOutcome outcome;

  // Resolve the active policy. Any failure (unbound slot, wrong type) falls
  // back to default behavior — the block layer must never fail an I/O
  // because of the prediction machinery.
  std::shared_ptr<IoSubmitPolicy> policy;
  auto resolved = kernel_.registry().ActiveAs<IoSubmitPolicy>(config_.policy_slot);
  if (resolved.ok()) {
    policy = std::move(resolved).value();
  }
  const bool ml_enabled = store.LoadOr(config_.ml_enabled_key, Value(true))
                              .AsBool()
                              .value_or(true);

  Duration inference_cost = 0;
  if (policy != nullptr && (!policy->is_learned() || ml_enabled)) {
    outcome.used_model = policy->is_learned();
    outcome.predicted_slow = policy->PredictSlow(context);
    inference_cost = policy->inference_cost();
    // Misprediction storm (chaos site model.mispredict): flip the decision
    // the policy just made. Only armed decisions flip — with no policy there
    // is no prediction to corrupt, and the site consumes no randomness.
    if (chaos_ != nullptr && chaos_->ShouldInject(mispredict_site_, now)) {
      outcome.predicted_slow = !outcome.predicted_slow;
      outcome.mispredicted = true;
      ++stats_.mispredictions;
    }
  }

  Duration device_latency;
  if (outcome.predicted_slow && replica_ != nullptr) {
    // Predictive failover: skip the primary entirely.
    outcome.redirected = true;
    device_latency = config_.failover_penalty + replica_->Submit(now, lba, is_write).latency;
  } else {
    const IoResult primary_result = primary_->Submit(now, lba, is_write);
    device_latency = primary_result.latency;
    outcome.actually_slow = primary_result.latency > config_.slow_threshold;
    if (primary_result.error) {
      // Injected device error (chaos site ssd.io_error): the primary burned
      // its full service time and returned garbage. Reissue to the replica
      // when one exists; otherwise the error surfaces in the stats/store and
      // the I/O completes with the (wasted) primary latency.
      outcome.io_error = true;
      ++stats_.io_errors;
      store.Observe("blk.io_error", now, 1.0);
      if (replica_ != nullptr) {
        outcome.redirected = true;
        device_latency = primary_result.latency + config_.failover_penalty +
                         replica_->Submit(now + primary_result.latency, lba, is_write).latency;
      }
    }
    if (outcome.used_model) {
      // The model vouched for the primary: no reactive revocation. A wrong
      // vouch (false submit) pays the full slow latency.
      outcome.false_submit = !outcome.predicted_slow && outcome.actually_slow;
      // 1/0 per predicted-fast decision; MEAN over a window = false-submit rate.
      store.Observe("blk.false_submit", now, outcome.false_submit ? 1.0 : 0.0);
    } else if (!outcome.io_error && replica_ != nullptr &&
               primary_result.latency > config_.revoke_timeout) {
      // Default reactive behavior: revoke at the timeout, reissue to the
      // replica; the slow primary I/O is abandoned.
      outcome.revoked = true;
      outcome.redirected = true;
      device_latency = config_.revoke_timeout + config_.failover_penalty +
                       replica_->Submit(now + config_.revoke_timeout, lba, is_write).latency;
    }
  }

  outcome.latency = device_latency + inference_cost;

  // Publish the metrics guardrails watch.
  const double latency_us = ToMicros(outcome.latency);
  store.Observe("blk.io_latency_us", now, latency_us);
  if (inference_cost > 0) {
    store.Observe("blk.infer_cost_us", now, ToMicros(inference_cost));
  }
  if (outcome.used_model) {
    // Maintain the Listing-2 scalar exactly as the paper writes it: the
    // kernel site aggregates, the guardrail LOADs.
    auto rate = store.Aggregate("blk.false_submit", AggKind::kMean, config_.rate_window, now);
    store.Save("false_submit_rate", Value(rate.value_or(0.0)));
  }

  latency_history_us_.Push(latency_us);

  ++stats_.total_ios;
  stats_.latency_ns_total += outcome.latency;
  stats_.inference_ns_total += inference_cost;
  if (outcome.used_model) {
    ++stats_.model_decisions;
  }
  if (outcome.redirected) {
    ++stats_.redirects;
  }
  if (outcome.revoked) {
    ++stats_.revokes;
  }
  if (outcome.false_submit) {
    ++stats_.false_submits;
  }
  if (outcome.actually_slow) {
    ++stats_.slow_ios;
  }

  if (config_.emit_callout) {
    kernel_.Callout(config_.callout);
  }
  return outcome;
}

}  // namespace osguard
