#include "src/sim/kernel.h"

namespace osguard {

Kernel::Kernel(EngineOptions engine_options) {
  engine_ = std::make_unique<Engine>(&store_, &registry_, &task_control_shim_, engine_options);
  // Route store writes to the engine so ONCHANGE triggers fire.
  store_.SetWriteObserver(
      [this](KeyId id, const std::string& /*key*/) { engine_->OnStoreWrite(id); });
}

void Kernel::Run(SimTime until) {
  // Interleave workload events and monitor timers in timestamp order: run
  // queue events up to the next monitor deadline, fire the monitors, repeat.
  while (true) {
    auto deadline = engine_->NextTimerDeadline();
    if (!deadline.has_value() || *deadline > until) {
      break;
    }
    queue_.RunUntil(*deadline);
    engine_->AdvanceTo(*deadline);
  }
  queue_.RunUntil(until);
  engine_->AdvanceTo(until);
}

}  // namespace osguard
