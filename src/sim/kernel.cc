#include "src/sim/kernel.h"

#include <algorithm>
#include <utility>

#include "src/support/logging.h"

namespace osguard {

Kernel::Kernel(EngineOptions engine_options, ShardingOptions sharding)
    : engine_options_(engine_options), sharding_options_(sharding) {
  BuildEngine();
  BuildSharding();
}

void Kernel::BuildSharding() {
  if (sharding_options_.enabled) {
    sharded_ = std::make_unique<ShardedEngine>(engine_.get(), sharding_options_);
    if (sharding_options_.telemetry) {
      // Fold the shard rings' high-water mark into the governor's queue-depth
      // signal. Ring occupancy depends on flush timing (wall-clock state), so
      // this wiring rides the telemetry switch: differential runs keep the
      // pure sim-queue probe and stay bit-identical, production runs let ring
      // pressure feed the overload ladder.
      engine_->governor().SetQueueProbe(
          [this] { return queue_.size() + sharded_->RingHighWaterMark(); });
    }
  }
}

void Kernel::BuildEngine() {
  // The sharded layer borrows the engine, so it must die before the engine
  // it is wrapping is replaced.
  sharded_.reset();
  engine_ = std::make_unique<Engine>(&store_, &registry_, &task_control_shim_, engine_options_);
  // Route store writes to the engine: the retention manager stamps the
  // slot's last-write clock, then ONCHANGE triggers fire.
  store_.SetWriteObserver([this](const StoreWriteInfo& info, const std::string& key) {
    engine_->OnStoreWrite(info, key);
  });
  // The overload governor's queue-depth signal is the simulated event queue:
  // a deterministic function of simulated state, so governed differential
  // runs replay bit-identically.
  engine_->governor().SetQueueProbe([this] { return queue_.size(); });
  if (chaos_ != nullptr) {
    engine_->SetChaos(chaos_);
  }
  if (persist_ != nullptr) {
    engine_->SetPersist(persist_);
  }
}

Status Kernel::LoadGuardrails(const std::string& source) {
  OSGUARD_RETURN_IF_ERROR(engine_->LoadSource(source));
  guardrail_sources_.push_back(source);
  // A retention block turns on eager per-session cleanup in the agent
  // governor (kill-path data reclamation); without one the governor keeps
  // the seed behavior exactly (off == absent).
  agent_governor_.set_reclaim_on_kill(engine_->retention().enabled());
  if (engine_->retention().enabled()) {
    // agent.sessions shares the "agent.s" prefix with the per-session key
    // families the builtin namespace governs; pinning exempts the global.
    store_.Pin(store_.InternKey(kAgentKeySessions));
  }
  return OkStatus();
}

void Kernel::AttachPersist(PersistManager* persist) {
  persist_ = persist;
  engine_->SetPersist(persist);
}

void Kernel::SchedulePanicAt(SimTime at) {
  queue_.ScheduleAt(at, [this](SimTime /*now*/) { Panic(); });
}

void Kernel::Panic() {
  if (panicked_) {
    return;
  }
  panicked_ = true;
  // A panic drops in-flight work on the floor. Committed guardrail state is
  // already on disk (journal frames are written at callout boundaries);
  // everything since the last commit is lost by design.
  queue_.Clear();
  OSGUARD_LOG(kWarning) << "kernel panic at t=" << queue_.now() << "ns; "
                        << "dropped pending events, awaiting reboot";
}

Result<RecoveryInfo> Kernel::Reboot() {
  auto result = RebootInner();
  // (Re)create the sharded layer only after recovery settled: Restore swaps
  // the store's slot table wholesale, so telemetry keys interned earlier
  // would go stale. Interning here reuses the restored ids when present.
  BuildSharding();
  return result;
}

Result<RecoveryInfo> Kernel::RebootInner() {
  panicked_ = false;
  // Honest crash semantics: a rebooted kernel does not remember interning
  // order, monitor generations, or anything else held in RAM.
  store_.Reset();
  BuildEngine();
  for (const std::string& source : guardrail_sources_) {
    OSGUARD_RETURN_IF_ERROR(engine_->LoadSource(source));
  }
  agent_governor_.set_reclaim_on_kill(engine_->retention().enabled());
  if (engine_->retention().enabled()) {
    store_.Pin(store_.InternKey(kAgentKeySessions));
  }
  if (persist_ == nullptr) {
    // No persistence attached: the reboot is a cold start by definition.
    RecoveryInfo info;
    info.cold_start = true;
    info.detail = "cold start (no persist manager attached)";
    return info;
  }
  auto recovered = engine_->Restore(*persist_);
  if (recovered.ok()) {
    return std::move(recovered).value();
  }
  // Graceful degradation: a failed warm restart must never leave the kernel
  // running half-restored state. Rebuild the engine from scratch, reload the
  // specs, and come back cold; journaling continues past the damage.
  OSGUARD_LOG(kWarning) << "warm restart failed (" << recovered.status().ToString()
                        << "); falling back to cold start";
  store_.Reset();
  BuildEngine();
  for (const std::string& source : guardrail_sources_) {
    OSGUARD_RETURN_IF_ERROR(engine_->LoadSource(source));
  }
  agent_governor_.set_reclaim_on_kill(engine_->retention().enabled());
  if (engine_->retention().enabled()) {
    store_.Pin(store_.InternKey(kAgentKeySessions));
  }
  RecoveryInfo info;
  info.cold_start = true;
  info.detail = "warm restart failed, cold start: " + recovered.status().ToString();
  return info;
}

uint64_t Kernel::OnSessionEnd(uint64_t session) {
  if (panicked_ || !engine_->retention().enabled()) {
    return 0;
  }
  return engine_->retention().ReclaimPrefix(AgentSessionKey(session, ""));
}

AgentAdmitVerdict Kernel::OnToolCall(const agent::ToolCallEvent& event) {
  if (panicked_) {
    // A dead kernel executes no tool calls; nothing is observed or stored.
    return AgentAdmitVerdict::kKill;
  }
  const SimTime t = std::max(queue_.now(), event.at);
  const auto fire_callout = [&] {
    if (sharded_ != nullptr) {
      sharded_->OnFunctionCall(kAgentCalloutFunction, t);
    } else {
      engine_->OnFunctionCall(kAgentCalloutFunction, t);
    }
  };
  if (chaos_ != nullptr) {
    // Drop first (a lost event cannot be duplicated). Unarmed sites consume
    // no randomness, preserving the chaos-off == chaos-absent differential.
    if (agent_governor_.drop_site() != kInvalidChaosSite &&
        chaos_->ShouldInject(agent_governor_.drop_site(), t)) {
      return AgentAdmitVerdict::kAllow;
    }
    if (agent_governor_.dup_site() != kInvalidChaosSite &&
        chaos_->ShouldInject(agent_governor_.dup_site(), t)) {
      // The duplicate is delivered under a ghost session id, modeling a
      // session-id collision in the event bus; each delivery gets its own
      // callout, exactly as doubled instrumentation would.
      const AgentAdmitVerdict verdict = agent_governor_.Process(event, t);
      fire_callout();
      agent::ToolCallEvent ghost = event;
      ghost.session ^= kAgentGhostSessionXor;
      agent_governor_.Process(ghost, t);
      fire_callout();
      return verdict;
    }
  }
  const AgentAdmitVerdict verdict = agent_governor_.Process(event, t);
  fire_callout();
  return verdict;
}

void Kernel::Run(SimTime until) {
  if (panicked_) {
    return;
  }
  // Interleave workload events and monitor timers in timestamp order: run
  // queue events up to the next monitor deadline, fire the monitors, repeat.
  while (true) {
    auto deadline = engine_->NextTimerDeadline();
    if (!deadline.has_value() || *deadline > until) {
      break;
    }
    queue_.RunUntil(*deadline);
    if (panicked_) {
      return;
    }
    AdvanceEngineTo(*deadline);
  }
  queue_.RunUntil(until);
  if (panicked_) {
    return;
  }
  AdvanceEngineTo(until);
}

void Kernel::AdvanceEngineTo(SimTime t) {
  // Timer callouts route through the sharded layer (which batches same-
  // deadline fires) exactly like function callouts do.
  if (sharded_ != nullptr) {
    sharded_->AdvanceTo(t);
  } else {
    engine_->AdvanceTo(t);
  }
}

}  // namespace osguard
