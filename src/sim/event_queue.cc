#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace osguard {

void EventQueue::ScheduleAt(SimTime at, EventFn fn) {
  events_.push(Event{std::max(at, now_), next_sequence_++, std::move(fn)});
}

size_t EventQueue::RunUntil(SimTime until) {
  size_t executed = 0;
  while (!events_.empty() && events_.top().at <= until) {
    // priority_queue::top is const; the event is copied out so pop can
    // precede execution (events may schedule more events).
    Event event = events_.top();
    events_.pop();
    now_ = event.at;
    event.fn(now_);
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t executed = 0;
  while (!events_.empty() && executed < max_events) {
    Event event = events_.top();
    events_.pop();
    now_ = event.at;
    event.fn(now_);
    ++executed;
  }
  return executed;
}

void EventQueue::Clear() {
  while (!events_.empty()) {
    events_.pop();
  }
}

void EventQueue::Reset() {
  Clear();
  now_ = 0;
  next_sequence_ = 0;
}

}  // namespace osguard
