#include "src/sim/scheduler.h"

#include <algorithm>

namespace osguard {

size_t FairPickPolicy::Pick(const std::vector<const SchedTask*>& runnable, SimTime now) {
  size_t best = 0;
  for (size_t i = 1; i < runnable.size(); ++i) {
    if (runnable[i]->vruntime < runnable[best]->vruntime) {
      best = i;
    }
  }
  return best;
}

Scheduler::Scheduler(Kernel& kernel, SchedulerConfig config)
    : kernel_(kernel), config_(std::move(config)) {
  kernel_.SetTaskControl(this);
}

TaskId Scheduler::AddTask(std::string name, double weight) {
  SchedTask task;
  task.id = next_id_++;
  task.name = std::move(name);
  task.weight = std::max(weight, 0.0001);
  tasks_[task.id] = std::move(task);
  return next_id_ - 1;
}

Status Scheduler::SubmitBurst(TaskId id, Duration cpu_time) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return NotFoundError("no task with id " + std::to_string(id));
  }
  SchedTask& task = it->second;
  if (task.state == TaskState::kDead) {
    return FailedPreconditionError("task '" + task.name + "' was killed");
  }
  task.remaining_burst += cpu_time;
  if (task.state == TaskState::kBlocked || task.state == TaskState::kFinished) {
    task.state = TaskState::kRunnable;
    task.runnable_since = kernel_.now();
  }
  return OkStatus();
}

TaskId Scheduler::Tick() {
  const SimTime now = kernel_.now();
  std::vector<const SchedTask*> runnable;
  std::vector<TaskId> runnable_ids;
  for (auto& [id, task] : tasks_) {
    if (task.state == TaskState::kRunnable && task.remaining_burst > 0) {
      runnable.push_back(&task);
      runnable_ids.push_back(id);
    }
  }
  // Export the starvation signal even when idle so liveness rules always
  // have fresh data.
  kernel_.store().Observe("sched.starved_ms", now, ToMillis(CurrentMaxStarvation()));
  if (runnable.empty()) {
    ++stats_.idle_quanta;
    return -1;
  }

  size_t choice = 0;
  auto policy = kernel_.registry().ActiveAs<SchedPickPolicy>(config_.policy_slot);
  if (policy.ok()) {
    choice = policy.value()->Pick(runnable, now);
    if (choice >= runnable.size()) {
      choice = 0;  // defensive: a broken learned policy cannot crash the tick
    }
  } else {
    FairPickPolicy fallback;
    choice = fallback.Pick(runnable, now);
  }

  SchedTask& task = tasks_[runnable_ids[choice]];
  const Duration wait = now - task.runnable_since;
  task.max_wait = std::max(task.max_wait, wait);
  stats_.max_wait_ever = std::max(stats_.max_wait_ever, wait);
  kernel_.store().Observe("sched.wait_ms", now, ToMillis(wait));

  const Duration slice = std::min(config_.quantum, task.remaining_burst);
  task.remaining_burst -= slice;
  task.total_cpu += slice;
  task.vruntime += ToSeconds(slice) / task.weight;
  task.last_scheduled = now;
  ++task.times_scheduled;
  if (task.remaining_burst == 0) {
    task.state = TaskState::kBlocked;
  } else {
    // Stays runnable; its wait clock restarts after this slice.
    task.runnable_since = now + slice;
  }
  ++stats_.picks;
  if (config_.emit_callout) {
    kernel_.Callout(config_.callout);
  }
  return task.id;
}

void Scheduler::PumpFor(Duration duration) {
  const SimTime end = kernel_.now() + duration;
  // Self-rescheduling tick event (a by-value functor chain; recursive
  // lambdas can't safely capture themselves).
  struct Pump {
    Scheduler* scheduler;
    SimTime end;
    void operator()(SimTime now) const {
      scheduler->Tick();
      const SimTime next = now + scheduler->config_.quantum;
      if (next <= end) {
        Pump pump{scheduler, end};
        scheduler->kernel_.queue().ScheduleAt(next, pump);
      }
    }
  };
  kernel_.queue().ScheduleAt(kernel_.now(), Pump{this, end});
}

Status Scheduler::Deprioritize(const std::vector<std::string>& names,
                               const std::vector<double>& priorities, SimTime now) {
  for (size_t i = 0; i < names.size(); ++i) {
    bool found = false;
    for (auto& [id, task] : tasks_) {
      if (task.name != names[i]) {
        continue;
      }
      found = true;
      if (priorities[i] < 0.0) {
        task.state = TaskState::kDead;
        task.remaining_burst = 0;
        ++stats_.kills;
      } else {
        task.weight = std::max(priorities[i], 0.0001);
      }
    }
    if (!found) {
      return NotFoundError("DEPRIORITIZE: no task named '" + names[i] + "'");
    }
  }
  return OkStatus();
}

Result<SchedTask> Scheduler::GetTask(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return NotFoundError("no task with id " + std::to_string(id));
  }
  return it->second;
}

Result<SchedTask> Scheduler::GetTaskByName(const std::string& name) const {
  for (const auto& [id, task] : tasks_) {
    if (task.name == name) {
      return task;
    }
  }
  return NotFoundError("no task named '" + name + "'");
}

std::vector<SchedTask> Scheduler::Tasks() const {
  std::vector<SchedTask> out;
  out.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) {
    out.push_back(task);
  }
  return out;
}

Duration Scheduler::CurrentMaxStarvation() const {
  const SimTime now = kernel_.now();
  Duration worst = 0;
  for (const auto& [id, task] : tasks_) {
    if (task.state == TaskState::kRunnable && task.remaining_burst > 0) {
      worst = std::max(worst, now - task.runnable_since);
    }
  }
  return worst;
}

}  // namespace osguard
