// SSD device model with bimodal latency.
//
// LinnOS's entire premise is that flash latency is unpredictable from the
// host but bimodal: most accesses are fast, a tail is slow because the
// request lands on a channel busy with garbage collection or a deep queue.
// The model reproduces exactly that structure:
//
//   * the LBA space is striped across `channels`; each channel serializes
//     its requests (busy-until tracking),
//   * service time = base + jitter (reads cheap, writes expensive),
//   * writes (and rarely reads) can trigger a GC pause on their channel,
//     stalling everything queued behind them,
//   * observed latency = queue wait + service.
//
// Determinism: all randomness comes from the per-device Rng seed.

#ifndef SRC_SIM_SSD_DEVICE_H_
#define SRC_SIM_SSD_DEVICE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/support/histogram.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {

struct SsdConfig {
  int channels = 8;
  Duration read_base = Microseconds(80);
  Duration read_jitter = Microseconds(40);    // uniform [0, jitter)
  Duration write_base = Microseconds(300);
  Duration write_jitter = Microseconds(150);
  Duration gc_pause_mean = Milliseconds(2);   // exponential
  double gc_per_write = 0.02;                 // GC trigger probability
  double gc_per_read = 0.001;
  uint64_t seed = 1;
};

struct IoResult {
  Duration latency = 0;      // wait + service (+ GC pause if triggered/behind one)
  Duration queue_wait = 0;
  bool hit_gc = false;       // this request triggered or waited out a GC pause
  bool error = false;        // injected I/O error (chaos site ssd.io_error)
  int channel = 0;
};

class SsdDevice {
 public:
  SsdDevice(std::string name, const SsdConfig& config);

  // Submits one I/O arriving at `now`; returns its simulated completion
  // characteristics. The device's channel state advances.
  IoResult Submit(SimTime now, uint64_t lba, bool is_write);

  // Number of requests still in flight on the channel owning `lba` at `now`
  // — the queue-depth feature LinnOS feeds its model.
  int QueueDepth(SimTime now, uint64_t lba) const;

  // Aggregate queue depth across channels (another LinnOS feature).
  int TotalQueueDepth(SimTime now) const;

  int ChannelOf(uint64_t lba) const {
    return static_cast<int>(lba % static_cast<uint64_t>(config_.channels));
  }

  const std::string& name() const { return name_; }
  const SsdConfig& config() const { return config_; }
  const Histogram& latency_histogram() const { return latencies_; }
  uint64_t gc_events() const { return gc_events_; }
  uint64_t total_ios() const { return total_ios_; }

  // Scales GC pressure at run time (drift injection for experiments):
  // multiplies gc_per_write/gc_per_read by `factor`.
  void ScaleGcPressure(double factor);

  // Attaches the fault-injection engine (borrowed; null detaches). Each
  // Submit then consults sites ssd.latency_spike (adds the plan's latency to
  // the request's service time, stalling the channel like a real device hang)
  // and ssd.io_error (fails the request after it completes its bus time).
  void AttachChaos(ChaosEngine* chaos);

  uint64_t injected_spikes() const { return injected_spikes_; }
  uint64_t injected_errors() const { return injected_errors_; }

 private:
  struct Channel {
    SimTime busy_until = 0;
    std::deque<SimTime> completions;  // completion times of in-flight IOs
  };

  void PruneCompleted(Channel& channel, SimTime now) const;

  std::string name_;
  SsdConfig config_;
  Rng rng_;
  mutable std::vector<Channel> channels_;
  Histogram latencies_;
  uint64_t gc_events_ = 0;
  uint64_t total_ios_ = 0;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId latency_site_ = kInvalidChaosSite;
  ChaosSiteId error_site_ = kInvalidChaosSite;
  uint64_t injected_spikes_ = 0;
  uint64_t injected_errors_ = 0;
};

}  // namespace osguard

#endif  // SRC_SIM_SSD_DEVICE_H_
