// CPU scheduler substrate.
//
// Hosts the fairness/liveness property class (P6): a learned pick-next
// policy can starve runnable tasks ("no ready task should be starved for
// more than 100ms"), and the scheduler is also the natural implementer of
// the DEPRIORITIZE action (A4) — guardrails can demote or kill tasks to
// relieve pressure.
//
// Model: a single CPU with a runqueue of weighted tasks. Every quantum the
// active pick-next policy chooses a runnable task; it runs for one quantum
// (or its remaining burst). Tasks accumulate vruntime = cpu_time / weight.
// The kernel-visible metrics:
//   feature store series  sched.wait_ms       per-pick wait of the chosen task
//                         sched.starved_ms    max current wait across runnable tasks
//   policy slot           sched.pick_next     (REPLACE target)
//   callout               sched_pick_next     FUNCTION trigger site (opt-in)

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/actions/policy_registry.h"
#include "src/actions/task_control.h"
#include "src/sim/kernel.h"

namespace osguard {

using TaskId = int64_t;

enum class TaskState {
  kRunnable,
  kRunning,
  kBlocked,   // between bursts
  kDead,      // killed via DEPRIORITIZE with negative priority
  kFinished,
};

struct SchedTask {
  TaskId id = 0;
  std::string name;
  double weight = 1.0;             // higher = more CPU share
  TaskState state = TaskState::kBlocked;
  double vruntime = 0.0;           // weighted cpu time, seconds
  Duration total_cpu = 0;
  Duration remaining_burst = 0;
  SimTime runnable_since = 0;      // when it last became runnable
  SimTime last_scheduled = 0;
  uint64_t times_scheduled = 0;
  Duration max_wait = 0;           // worst runnable->scheduled gap seen
};

// Pick-next policy interface for slot sched.pick_next.
class SchedPickPolicy : public Policy {
 public:
  // Chooses among `runnable` (non-empty); returns an index into it.
  virtual size_t Pick(const std::vector<const SchedTask*>& runnable, SimTime now) = 0;
};

// CFS-like baseline: minimum vruntime first.
class FairPickPolicy : public SchedPickPolicy {
 public:
  std::string name() const override { return "sched_fair"; }
  size_t Pick(const std::vector<const SchedTask*>& runnable, SimTime now) override;
};

struct SchedulerConfig {
  Duration quantum = Milliseconds(4);
  std::string policy_slot = "sched.pick_next";
  std::string callout = "sched_pick_next";
  bool emit_callout = false;
};

struct SchedulerStats {
  uint64_t picks = 0;
  uint64_t idle_quanta = 0;
  uint64_t kills = 0;
  Duration max_wait_ever = 0;
};

class Scheduler : public TaskControl {
 public:
  Scheduler(Kernel& kernel, SchedulerConfig config = {});

  // Creates a task (initially blocked; submit bursts to make it runnable).
  TaskId AddTask(std::string name, double weight = 1.0);

  // Queues `cpu_time` of work for the task at the kernel's current time;
  // makes the task runnable if it was blocked.
  Status SubmitBurst(TaskId id, Duration cpu_time);

  // Runs one scheduling quantum at the kernel's current time; returns the
  // id of the task that ran, or -1 if the runqueue was idle. The caller (or
  // RunFor) advances the event queue by the quantum.
  TaskId Tick();

  // Convenience: schedules recurring Tick events on the kernel's event
  // queue for `duration` of simulated time.
  void PumpFor(Duration duration);

  // TaskControl (A4): priorities by task *name*; priority < 0 kills.
  Status Deprioritize(const std::vector<std::string>& tasks,
                      const std::vector<double>& priorities, SimTime now) override;

  Result<SchedTask> GetTask(TaskId id) const;
  Result<SchedTask> GetTaskByName(const std::string& name) const;
  std::vector<SchedTask> Tasks() const;
  const SchedulerStats& stats() const { return stats_; }

  // Worst current wait among runnable tasks (exported to the store each
  // tick as sched.starved_ms).
  Duration CurrentMaxStarvation() const;

 private:
  Kernel& kernel_;
  SchedulerConfig config_;
  std::map<TaskId, SchedTask> tasks_;
  TaskId next_id_ = 1;
  SchedulerStats stats_;
};

}  // namespace osguard

#endif  // SRC_SIM_SCHEDULER_H_
