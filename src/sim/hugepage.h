// Huge-page memory-management substrate.
//
// Instantiates the paper's own motivating numbers: an OS "may spend up to
// 500 ms allocating a huge page" (§1, citing CBMM), and the §2 property
// example "Page fault latencies must not exceed 50ms".
//
// Model: processes touch virtual regions; the first touch of a region
// faults. The promotion policy decides per-region whether to back it with
// base pages (cheap, predictable fault; higher per-access cost via TLB
// pressure) or a huge page (fast accesses, but allocation must find
// contiguous memory — under fragmentation that means compaction, a stall
// whose tail reaches hundreds of milliseconds). Fragmentation rises with
// allocation churn and decays as compaction runs, so an
// always-promote policy behaves beautifully on a fresh system and
// pathologically on an aged one — the drift that makes this a guardrail
// target.
//
// Kernel integration:
//   feature store series  mm.fault_lat_ms   per-fault latency (ms)
//                         mm.stall_ms       compaction stalls only
//   feature store scalar  mm.fragmentation  current fragmentation in [0,1]
//   policy slot           mem.hugepage      (REPLACE target)
//   scalar kill switch    mm.huge_enabled   (SAVE target; default true)

#ifndef SRC_SIM_HUGEPAGE_H_
#define SRC_SIM_HUGEPAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/actions/policy_registry.h"
#include "src/sim/kernel.h"
#include "src/support/rng.h"

namespace osguard {

struct PromotionContext {
  SimTime now = 0;
  uint64_t region = 0;
  uint64_t region_pages = 512;   // base pages the region spans
  double fragmentation = 0.0;    // current system fragmentation [0,1]
  uint64_t process_regions = 0;  // regions this process already touched
};

class HugepagePolicy : public Policy {
 public:
  // True: back the region with a huge page.
  virtual bool ShouldPromote(const PromotionContext& context) = 0;
};

// Linux THP=never analogue.
class NeverPromotePolicy : public HugepagePolicy {
 public:
  std::string name() const override { return "mm_never_promote"; }
  bool ShouldPromote(const PromotionContext&) override { return false; }
};

// Linux THP=always analogue — great on fresh systems, stall-prone on aged
// ones. Plays the "learned" policy role in failure-injection tests when
// wrapped accordingly.
class AlwaysPromotePolicy : public HugepagePolicy {
 public:
  std::string name() const override { return "mm_always_promote"; }
  bool ShouldPromote(const PromotionContext&) override { return true; }
};

// Fragmentation-aware heuristic: promote only while compaction is cheap.
class FragAwarePolicy : public HugepagePolicy {
 public:
  explicit FragAwarePolicy(double max_fragmentation = 0.4)
      : max_fragmentation_(max_fragmentation) {}
  std::string name() const override { return "mm_frag_aware"; }
  bool ShouldPromote(const PromotionContext& context) override {
    return context.fragmentation <= max_fragmentation_;
  }

 private:
  double max_fragmentation_;
};

struct HugepageConfig {
  Duration base_fault = Microseconds(8);       // minor fault, base pages
  Duration huge_alloc_fast = Microseconds(60); // huge page from free contig mem
  Duration stall_mean = Milliseconds(120);     // compaction stall (exponential)
  Duration stall_cap = Milliseconds(500);      // the paper's 500ms worst case
  double frag_per_alloc = 0.004;               // churn raises fragmentation
  double frag_decay_per_stall = 0.15;          // compaction defragments
  std::string policy_slot = "mem.hugepage";
  std::string enabled_key = "mm.huge_enabled";
  uint64_t seed = 21;
};

struct HugepageStats {
  uint64_t faults = 0;
  uint64_t promotions = 0;
  uint64_t stalls = 0;
  int64_t total_fault_ns = 0;
  int64_t worst_fault_ns = 0;
};

class MemoryManager {
 public:
  MemoryManager(Kernel& kernel, HugepageConfig config = {});

  // First touch of `region` by `process`: returns the fault latency
  // (repeat touches return 0 — already mapped).
  Duration Touch(uint64_t process, uint64_t region);

  // Frees a process's regions (exit); churn raises fragmentation.
  void ReleaseProcess(uint64_t process);

  double fragmentation() const { return fragmentation_; }
  const HugepageStats& stats() const { return stats_; }

 private:
  Kernel& kernel_;
  HugepageConfig config_;
  Rng rng_;
  double fragmentation_ = 0.0;
  std::unordered_map<uint64_t, uint64_t> regions_per_process_;
  std::unordered_map<uint64_t, bool> mapped_;  // (process<<32|region) -> present
  HugepageStats stats_;
};

}  // namespace osguard

#endif  // SRC_SIM_HUGEPAGE_H_
