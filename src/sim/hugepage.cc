#include "src/sim/hugepage.h"

#include <algorithm>

namespace osguard {

MemoryManager::MemoryManager(Kernel& kernel, HugepageConfig config)
    : kernel_(kernel), config_(std::move(config)), rng_(config_.seed) {
  if (!kernel_.store().Contains(config_.enabled_key)) {
    kernel_.store().Save(config_.enabled_key, Value(true));
  }
  kernel_.store().Save("mm.fragmentation", Value(0.0));
}

Duration MemoryManager::Touch(uint64_t process, uint64_t region) {
  const uint64_t key = (process << 32) | (region & 0xffffffffull);
  if (mapped_.count(key) > 0) {
    return 0;  // already mapped
  }
  const SimTime now = kernel_.now();
  FeatureStore& store = kernel_.store();
  mapped_[key] = true;
  regions_per_process_[process] += 1;
  ++stats_.faults;

  PromotionContext context;
  context.now = now;
  context.region = region;
  context.fragmentation = fragmentation_;
  context.process_regions = regions_per_process_[process];

  bool promote = false;
  const bool enabled =
      store.LoadOr(config_.enabled_key, Value(true)).AsBool().value_or(true);
  if (enabled) {
    auto policy = kernel_.registry().ActiveAs<HugepagePolicy>(config_.policy_slot);
    if (policy.ok()) {
      promote = policy.value()->ShouldPromote(context);
    }
  }

  Duration latency = config_.base_fault;
  if (promote) {
    ++stats_.promotions;
    latency = config_.huge_alloc_fast;
    // Finding contiguous memory under fragmentation means compaction; the
    // stall probability grows superlinearly with fragmentation (CBMM's
    // observed regime).
    if (rng_.Bernoulli(fragmentation_ * fragmentation_)) {
      const Duration stall = std::min<Duration>(
          static_cast<Duration>(
              rng_.Exponential(1.0 / static_cast<double>(config_.stall_mean))),
          config_.stall_cap);
      latency += stall;
      ++stats_.stalls;
      store.Observe("mm.stall_ms", now, ToMillis(stall));
      // Compaction defragments as a side effect.
      fragmentation_ = std::max(0.0, fragmentation_ - config_.frag_decay_per_stall);
    }
    fragmentation_ = std::min(1.0, fragmentation_ + config_.frag_per_alloc);
  } else {
    fragmentation_ = std::min(1.0, fragmentation_ + config_.frag_per_alloc / 8.0);
  }

  store.Observe("mm.fault_lat_ms", now, ToMillis(latency));
  store.Save("mm.fragmentation", Value(fragmentation_));
  stats_.total_fault_ns += latency;
  stats_.worst_fault_ns = std::max<int64_t>(stats_.worst_fault_ns, latency);
  return latency;
}

void MemoryManager::ReleaseProcess(uint64_t process) {
  auto it = regions_per_process_.find(process);
  if (it == regions_per_process_.end()) {
    return;
  }
  // Freeing scatters holes: churn-driven fragmentation growth.
  fragmentation_ =
      std::min(1.0, fragmentation_ + config_.frag_per_alloc * 2.0 *
                                         static_cast<double>(it->second));
  for (auto mapped_it = mapped_.begin(); mapped_it != mapped_.end();) {
    if ((mapped_it->first >> 32) == process) {
      mapped_it = mapped_.erase(mapped_it);
    } else {
      ++mapped_it;
    }
  }
  regions_per_process_.erase(it);
  kernel_.store().Save("mm.fragmentation", Value(fragmentation_));
}

}  // namespace osguard
