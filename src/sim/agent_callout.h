// The agent tool-call callout domain (docs/AGENT.md).
//
// Kernel::OnToolCall delivers one instrumented agent tool call; this module
// is the governance path it runs through:
//
//   chaos (event_drop / dup_session)        — Kernel::OnToolCall
//     -> admission (deny / throttle / kill) — DecideAgentAdmission,
//        reading the agent.ctl.* control keys guardrail actions SAVE
//     -> feature publication                — AgentGovernor::Process,
//        per-session windowed call rates, per-tool counters, the
//        secret-read taint bit, and the taint->network sequence counter
//     -> engine callout                     — Callout("agent.tool_call"),
//        firing FUNCTION monitors and committing a persist frame
//
// Every piece of governance state lives in the feature store, never in
// kernel RAM: publication is expressed entirely through Save / Increment /
// Observe, so crash consistency (persist journal) and serial-vs-sharded
// bit-identity fall out of the existing infrastructure. The governor object
// itself is stateless apart from configuration and chaos site ids, which is
// what makes Kernel::Reboot's store Reset() safe — there are no cached
// KeyIds to go stale.
//
// Sequence property support: on a secret file read the governor sets the
// session's taint bit; on a network call from a tainted session it SAVEs
// agent.taint.last_session *then* increments agent.taint.net_after_secret.
// External store writes dispatch ONCHANGE monitors synchronously, so a
// "no network send after reading secrets" spec watching the counter runs
// (and kills the offender via agent.ctl.kill_session) before OnToolCall
// even returns — the session's next call is already rejected.

#ifndef SRC_SIM_AGENT_CALLOUT_H_
#define SRC_SIM_AGENT_CALLOUT_H_

#include <cstdint>

#include "src/actions/agent_control.h"
#include "src/agent/tool_call.h"
#include "src/chaos/chaos.h"
#include "src/store/feature_store.h"
#include "src/support/time.h"

namespace osguard {

// --- Published feature keys (read side for specs) ---

// Monotone count of accepted tool calls.
inline constexpr char kAgentKeyEvents[] = "agent.events";
// Count of distinct sessions that made at least one accepted call.
inline constexpr char kAgentKeySessions[] = "agent.sessions";
// Global accepted-call time series (windowed rate limits aggregate this).
inline constexpr char kAgentKeyCallsStream[] = "agent.calls.stream";
// Per-tool accepted-call counters: "agent.calls.file|net|exec".
inline constexpr char kAgentKeyCallsPrefix[] = "agent.calls.";
// Windowed call count of the session that made the latest accepted call;
// agent.rate.session (written first) names that session. ONCHANGE watchers
// of agent.rate.current see a consistent (session, count) pair.
inline constexpr char kAgentKeyRateCurrent[] = "agent.rate.current";
inline constexpr char kAgentKeyRateSession[] = "agent.rate.session";
// Latest accepted call: session id, tool class ordinal, fingerprint.
inline constexpr char kAgentKeyLastSession[] = "agent.last.session";
inline constexpr char kAgentKeyLastTool[] = "agent.last.tool";
inline constexpr char kAgentKeyLastFingerprint[] = "agent.last.fingerprint";
// Count of sessions whose taint bit was ever set (secret file reads).
inline constexpr char kAgentKeyTaintSessions[] = "agent.taint.sessions";
// Sequence-property pair: the offender id is written *before* the counter
// increments, so the ONCHANGE watcher reads a consistent offender.
inline constexpr char kAgentKeyTaintLastSession[] = "agent.taint.last_session";
inline constexpr char kAgentKeyTaintNetAfterSecret[] = "agent.taint.net_after_secret";
// Admission outcome counters.
inline constexpr char kAgentKeyGovDenied[] = "agent.gov.denied";
inline constexpr char kAgentKeyGovThrottled[] = "agent.gov.throttled";
inline constexpr char kAgentKeyGovKilled[] = "agent.gov.killed";
inline constexpr char kAgentKeyGovRejected[] = "agent.gov.rejected";

// The instrumented function name FUNCTION monitors hook.
inline constexpr char kAgentCalloutFunction[] = "agent.tool_call";

// Ghost-session derivation for agent.dup_session (see chaos.h).
inline constexpr uint64_t kAgentGhostSessionXor = 0x8000000000000000ull;

struct AgentGovernorOptions {
  // Window for the published per-session rate (agent.rate.current).
  Duration rate_window = Seconds(1);
  // Retention for the per-session call series: enough for rate windows and
  // throttle windows, bounded so a million sessions cannot eat the host.
  SeriesOptions session_series{.max_samples = 1024, .max_age = Seconds(30)};
  // Retention for the global call stream.
  SeriesOptions stream_series{.max_samples = 65536, .max_age = Seconds(60)};
};

// Admission + publication for one tool call. Owned by the Kernel; borrows
// the store. Deterministic: output state is a pure function of (store
// state, event, now).
class AgentGovernor {
 public:
  explicit AgentGovernor(FeatureStore* store, AgentGovernorOptions options = {})
      : store_(store), options_(options) {}

  // Registers the chaos sites (null detaches). Site ids are stable for the
  // chaos engine's lifetime, so re-attaching after Kernel::Reboot is cheap.
  void SetChaos(ChaosEngine* chaos);
  ChaosSiteId drop_site() const { return drop_site_; }
  ChaosSiteId dup_site() const { return dup_site_; }

  const AgentGovernorOptions& options() const { return options_; }
  void set_options(const AgentGovernorOptions& options) { options_ = options; }

  // When set (the kernel sets it iff the loaded specs carry a retention
  // block), the first kill of a session eagerly reclaims its per-session
  // data keys — calls/seen/taint and the per-tool counters — so a killed
  // session stops holding store slots immediately instead of waiting for
  // the idle TTL. The "killed" latch itself is KEPT: admission reads it to
  // reject the session's future calls.
  void set_reclaim_on_kill(bool on) { reclaim_on_kill_ = on; }
  bool reclaim_on_kill() const { return reclaim_on_kill_; }

  // Runs admission and, when admitted, publishes the call's features.
  // Does NOT fire the engine callout — the Kernel does that, so the
  // governor stays engine-agnostic.
  AgentAdmitVerdict Process(const agent::ToolCallEvent& event, SimTime now);

 private:
  FeatureStore* store_;
  AgentGovernorOptions options_;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId drop_site_ = kInvalidChaosSite;
  ChaosSiteId dup_site_ = kInvalidChaosSite;
  bool reclaim_on_kill_ = false;
};

}  // namespace osguard

#endif  // SRC_SIM_AGENT_CALLOUT_H_
