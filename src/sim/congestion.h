// Congestion-control substrate.
//
// Hosts the robustness property class (P2): "Congestion control. Check if
// the model is sensitive to noisy measurements." A single bottleneck path is
// modeled fluidly: the sender's rate fills a queue drained at link capacity;
// RTT = base + queueing delay; overflow is loss. Every control interval the
// active rate policy observes (rtt, loss, delivery rate) — with measurement
// noise, which is what trips fragile learned controllers — and picks the
// next sending rate.
//
// Kernel integration:
//   feature store series  net.rtt_ms       observed (noisy) RTT per interval
//                         net.rate_mbps    rate chosen by the policy
//                         net.loss         1/0 loss indicator per interval
//                         net.util         delivered/capacity per interval
//   policy slot           net.cc           (REPLACE target)

#ifndef SRC_SIM_CONGESTION_H_
#define SRC_SIM_CONGESTION_H_

#include <string>

#include "src/actions/policy_registry.h"
#include "src/sim/kernel.h"
#include "src/support/rng.h"

namespace osguard {

// Measurements handed to rate policies each control interval.
struct CcSignals {
  double rtt_ms = 0.0;        // noisy sample
  double min_rtt_ms = 0.0;    // running minimum (BBR-style)
  bool loss = false;          // queue overflowed this interval
  double delivered_mbps = 0;  // goodput over the last interval
  double current_rate_mbps = 0;
};

class RatePolicy : public Policy {
 public:
  // Returns the sending rate (Mbps) for the next interval.
  virtual double NextRate(const CcSignals& signals) = 0;
};

// TCP-like AIMD baseline: additive increase per RTT, halve on loss. The
// "Cubic" role in Orca's design.
class AimdPolicy : public RatePolicy {
 public:
  explicit AimdPolicy(double increase_mbps = 1.0) : increase_(increase_mbps) {}
  std::string name() const override { return "cc_aimd"; }
  double NextRate(const CcSignals& signals) override {
    if (signals.loss) {
      return std::max(signals.current_rate_mbps / 2.0, 1.0);
    }
    return signals.current_rate_mbps + increase_;
  }

 private:
  double increase_;
};

struct CongestionConfig {
  double capacity_mbps = 100.0;
  double base_rtt_ms = 20.0;
  // Queue capacity in milliseconds of buffering at link rate (BDP multiple).
  double buffer_ms = 40.0;
  Duration control_interval = Milliseconds(10);
  double rtt_noise_ms = 1.0;  // stddev of measurement noise
  std::string policy_slot = "net.cc";
  uint64_t seed = 5;
};

struct CongestionStats {
  uint64_t intervals = 0;
  uint64_t losses = 0;
  double delivered_mb = 0.0;   // total goodput
  double offered_mb = 0.0;     // total sent
  double utilization() const {
    return offered_mb <= 0 ? 0 : delivered_mb / offered_mb;
  }
};

class CongestionSim {
 public:
  CongestionSim(Kernel& kernel, CongestionConfig config = {});

  // Advances one control interval at the kernel's current time: applies the
  // active policy's rate, moves the fluid model, publishes metrics.
  void Step();

  // Convenience: schedules recurring Step events for `duration`.
  void PumpFor(Duration duration);

  double current_rate_mbps() const { return rate_mbps_; }
  double queue_ms() const { return queue_ms_; }
  const CongestionStats& stats() const { return stats_; }
  const CongestionConfig& config() const { return config_; }

 private:
  Kernel& kernel_;
  CongestionConfig config_;
  Rng rng_;
  double rate_mbps_ = 10.0;
  double queue_ms_ = 0.0;      // backlog expressed as ms at link rate
  double min_rtt_ms_ = 1e9;
  CongestionStats stats_;
};

}  // namespace osguard

#endif  // SRC_SIM_CONGESTION_H_
