#include "src/sim/cache.h"

#include <algorithm>
#include <cassert>

namespace osguard {

size_t LruEvictionPolicy::PickVictim(const EvictionContext& context) {
  size_t victim = 0;
  for (size_t i = 1; i < context.residents.size(); ++i) {
    if (context.residents[i].last_access < context.residents[victim].last_access) {
      victim = i;
    }
  }
  return victim;
}

size_t RandomEvictionPolicy::PickVictim(const EvictionContext& context) {
  return static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(context.residents.size()) - 1));
}

size_t MruEvictionPolicy::PickVictim(const EvictionContext& context) {
  size_t victim = 0;
  for (size_t i = 1; i < context.residents.size(); ++i) {
    if (context.residents[i].last_access > context.residents[victim].last_access) {
      victim = i;
    }
  }
  return victim;
}

CacheSim::CacheSim(Kernel& kernel, CacheConfig config)
    : kernel_(kernel), config_(std::move(config)) {
  assert(config_.capacity > 0);
}

void CacheSim::EvictOne(uint64_t inserting_key) {
  EvictionContext context;
  context.now = kernel_.now();
  context.inserting_key = inserting_key;
  context.residents.reserve(entries_.size());
  for (const auto& [key, meta] : entries_) {
    context.residents.push_back({key, meta.last_access, meta.access_count});
  }

  size_t victim = 0;
  auto policy = kernel_.registry().ActiveAs<EvictionPolicy>(config_.policy_slot);
  if (policy.ok()) {
    victim = policy.value()->PickVictim(context);
    if (victim >= context.residents.size()) {
      // Defensive clamp (P3-style containment); the pick is still counted.
      ++stats_.bad_victim_indices;
      victim = 0;
    }
  }
  entries_.erase(context.residents[victim].key);
  ++stats_.evictions;
}

bool CacheSim::Access(uint64_t key) {
  const SimTime now = kernel_.now();
  FeatureStore& store = kernel_.store();
  ++stats_.accesses;

  // Primary cache under the active (possibly learned) policy.
  auto it = entries_.find(key);
  const bool hit = it != entries_.end();
  if (hit) {
    it->second.last_access = now;
    it->second.access_count += 1;
    ++stats_.hits;
  } else {
    if (entries_.size() >= config_.capacity) {
      EvictOne(key);
    }
    entries_[key] = EntryMeta{now, 1};
  }
  store.Observe(config_.hit_series, now, hit ? 1.0 : 0.0);

  // Shadow LRU over the same access stream (the baseline counterfactual).
  if (config_.shadow_lru) {
    auto shadow_it = shadow_index_.find(key);
    const bool shadow_hit = shadow_it != shadow_index_.end();
    if (shadow_hit) {
      shadow_lru_order_.erase(shadow_it->second);
      shadow_lru_order_.push_back(key);
      shadow_index_[key] = std::prev(shadow_lru_order_.end());
      ++stats_.shadow_hits;
    } else {
      if (shadow_index_.size() >= config_.capacity) {
        shadow_index_.erase(shadow_lru_order_.front());
        shadow_lru_order_.pop_front();
      }
      shadow_lru_order_.push_back(key);
      shadow_index_[key] = std::prev(shadow_lru_order_.end());
    }
    store.Observe(config_.shadow_series, now, shadow_hit ? 1.0 : 0.0);
  }
  return hit;
}

}  // namespace osguard
