#include "src/sim/readahead.h"

#include <algorithm>
#include <cmath>

namespace osguard {

ReadaheadManager::ReadaheadManager(Kernel& kernel, ReadaheadConfig config)
    : kernel_(kernel), config_(std::move(config)) {
  kernel_.store().Save("ra.max_legal",
                       Value(static_cast<int64_t>(config_.cache_capacity_chunks)));
}

ReadaheadContext ReadaheadManager::MakeContext(uint64_t chunk) const {
  ReadaheadContext context;
  context.now = kernel_.now();
  context.chunk = chunk;
  context.features.assign(kReadaheadFeatureDim, 0.0);
  context.features[0] =
      static_cast<double>(chunk) / static_cast<double>(std::max<uint64_t>(config_.file_chunks, 1));
  if (stride_history_.size() > 0) {
    size_t sequential = 0;
    double stride_sum = 0.0;
    for (size_t i = 0; i < stride_history_.size(); ++i) {
      if (stride_history_[i] == 1) {
        ++sequential;
      }
      stride_sum += static_cast<double>(stride_history_[i]);
    }
    context.features[1] =
        static_cast<double>(sequential) / static_cast<double>(stride_history_.size());
    context.features[3] = stride_sum / static_cast<double>(stride_history_.size());
  }
  context.features[2] = static_cast<double>(cache_.size()) /
                        static_cast<double>(std::max<uint64_t>(config_.cache_capacity_chunks, 1));
  return context;
}

void ReadaheadManager::EvictIfNeeded() {
  while (cache_.size() > config_.cache_capacity_chunks && !cache_fifo_.empty()) {
    cache_.erase(cache_fifo_.front());
    cache_fifo_.erase(cache_fifo_.begin());
  }
}

Duration ReadaheadManager::Read(uint64_t chunk) {
  const SimTime now = kernel_.now();
  FeatureStore& store = kernel_.store();
  chunk = std::min<uint64_t>(chunk, config_.file_chunks - 1);

  // Serve the read.
  Duration latency;
  const bool hit = cache_.count(chunk) > 0;
  if (hit) {
    latency = config_.hit_latency;
    ++stats_.hits;
  } else {
    latency = config_.miss_latency;
    if (cache_.insert(chunk).second) {
      cache_fifo_.push_back(chunk);
    }
  }
  ++stats_.reads;
  store.Observe("ra.hit", now, hit ? 1.0 : 0.0);

  // Track stride history for the policy's features.
  if (has_last_) {
    stride_history_.Push(static_cast<int64_t>(chunk) - static_cast<int64_t>(last_chunk_));
  }
  last_chunk_ = chunk;
  has_last_ = true;

  // Ask the policy what to prefetch.
  const ReadaheadContext context = MakeContext(chunk);
  int64_t decision = 0;
  auto policy = kernel_.registry().ActiveAs<ReadaheadPolicy>(config_.policy_slot);
  if (policy.ok()) {
    decision = policy.value()->PrefetchChunks(context);
  }

  // Expose the *raw* output for P3 guardrails, then validate and clamp.
  store.Save("ra.last_decision", Value(decision));
  store.Observe("ra.decision", now, static_cast<double>(decision));
  int64_t legal = decision;
  const int64_t max_by_file =
      static_cast<int64_t>(config_.file_chunks - 1) - static_cast<int64_t>(chunk);
  const int64_t max_by_cache = static_cast<int64_t>(config_.cache_capacity_chunks);
  const int64_t upper = std::max<int64_t>(0, std::min(max_by_file, max_by_cache));
  if (legal < 0 || legal > upper) {
    ++stats_.illegal_decisions;
    legal = std::clamp<int64_t>(legal, 0, upper);
  }

  for (int64_t i = 1; i <= legal; ++i) {
    const uint64_t target = chunk + static_cast<uint64_t>(i);
    if (cache_.insert(target).second) {
      cache_fifo_.push_back(target);
      ++stats_.prefetched_chunks;
    }
    latency += config_.prefetch_cost_per_chunk;
  }
  EvictIfNeeded();

  stats_.latency_ns_total += latency;
  if (config_.emit_callout) {
    kernel_.Callout(config_.callout);
  }
  return latency;
}

}  // namespace osguard
