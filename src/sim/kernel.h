// The simulated kernel: the composition root.
//
// Owns the feature store, policy registry, event queue, and guardrail
// engine, and exposes the two integration points the paper's framework
// needs from a kernel:
//
//   * time flow   — Run(t) pumps the event queue and the engine's TIMER
//                   triggers in a single interleaved timeline;
//   * callouts    — Callout("fn") marks an instrumented kernel function so
//                   FUNCTION-triggered monitors fire at the right spot.
//
// Subsystems (block layer, scheduler, memory) receive a Kernel& and use its
// store/registry/queue; they never talk to the engine directly.

#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <memory>
#include <string>

#include "src/actions/task_control.h"
#include "src/chaos/chaos.h"
#include "src/runtime/engine.h"
#include "src/sim/event_queue.h"
#include "src/store/feature_store.h"

namespace osguard {

class Kernel {
 public:
  explicit Kernel(EngineOptions engine_options = {});

  // Registers the task-control implementation (usually the scheduler) for
  // DEPRIORITIZE. Must be called before guardrails that use A4 fire; the
  // engine falls back to a recording stub otherwise.
  // NOTE: construction-order constraint — the engine binds task control at
  // construction, so the Kernel constructor wires a forwarding shim and this
  // call just retargets it.
  void SetTaskControl(TaskControl* task_control) { task_control_shim_.target = task_control; }

  // Attaches the fault-injection engine (borrowed; null detaches). Forwards
  // to the guardrail engine (callout drop/delay, helper and dispatch
  // failures) and exposes the pointer so subsystems built on this kernel
  // (block layer, devices) can pick it up. Attach before constructing
  // subsystems, or re-attach them yourself.
  void AttachChaos(ChaosEngine* chaos) {
    chaos_ = chaos;
    engine_->SetChaos(chaos);
  }
  ChaosEngine* chaos() { return chaos_; }

  FeatureStore& store() { return store_; }
  PolicyRegistry& registry() { return registry_; }
  EventQueue& queue() { return queue_; }
  Engine& engine() { return *engine_; }
  SimTime now() const { return queue_.now(); }

  // Loads guardrail specs (DSL source) into the engine.
  Status LoadGuardrails(const std::string& source) { return engine_->LoadSource(source); }

  // Runs the interleaved timeline (events + monitor timers) up to `until`.
  void Run(SimTime until);

  // Marks an instrumented kernel function call at the current time.
  void Callout(std::string_view function) { engine_->OnFunctionCall(function, queue_.now()); }

 private:
  // Forwards DEPRIORITIZE to whichever subsystem registered; records when
  // none has.
  struct TaskControlShim : TaskControl {
    TaskControl* target = nullptr;
    RecordingTaskControl recorder;
    Status Deprioritize(const std::vector<std::string>& tasks,
                        const std::vector<double>& priorities, SimTime now) override {
      if (target != nullptr) {
        return target->Deprioritize(tasks, priorities, now);
      }
      return recorder.Deprioritize(tasks, priorities, now);
    }
  };

  FeatureStore store_;
  PolicyRegistry registry_;
  EventQueue queue_;
  TaskControlShim task_control_shim_;
  std::unique_ptr<Engine> engine_;
  ChaosEngine* chaos_ = nullptr;
};

}  // namespace osguard

#endif  // SRC_SIM_KERNEL_H_
