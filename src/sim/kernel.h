// The simulated kernel: the composition root.
//
// Owns the feature store, policy registry, event queue, and guardrail
// engine, and exposes the two integration points the paper's framework
// needs from a kernel:
//
//   * time flow   — Run(t) pumps the event queue and the engine's TIMER
//                   triggers in a single interleaved timeline;
//   * callouts    — Callout("fn") marks an instrumented kernel function so
//                   FUNCTION-triggered monitors fire at the right spot.
//
// Subsystems (block layer, scheduler, memory) receive a Kernel& and use its
// store/registry/queue; they never talk to the engine directly.

#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/actions/agent_control.h"
#include "src/actions/task_control.h"
#include "src/agent/tool_call.h"
#include "src/chaos/chaos.h"
#include "src/persist/persist.h"
#include "src/runtime/engine.h"
#include "src/runtime/sharded_engine.h"
#include "src/sim/agent_callout.h"
#include "src/sim/event_queue.h"
#include "src/store/feature_store.h"

namespace osguard {

class Kernel {
 public:
  // `sharding.enabled` routes FUNCTION callouts through the multi-core
  // sharded engine (bit-identical outputs; see docs/SHARDING.md). The
  // sharded layer is rebuilt alongside the engine on Reboot().
  explicit Kernel(EngineOptions engine_options = {}, ShardingOptions sharding = {});

  // Registers the task-control implementation (usually the scheduler) for
  // DEPRIORITIZE. Must be called before guardrails that use A4 fire; the
  // engine falls back to a recording stub otherwise.
  // NOTE: construction-order constraint — the engine binds task control at
  // construction, so the Kernel constructor wires a forwarding shim and this
  // call just retargets it.
  void SetTaskControl(TaskControl* task_control) { task_control_shim_.target = task_control; }

  // Attaches the fault-injection engine (borrowed; null detaches). Forwards
  // to the guardrail engine (callout drop/delay, helper and dispatch
  // failures) and exposes the pointer so subsystems built on this kernel
  // (block layer, devices) can pick it up. Attach before constructing
  // subsystems, or re-attach them yourself.
  void AttachChaos(ChaosEngine* chaos) {
    chaos_ = chaos;
    engine_->SetChaos(chaos);
    agent_governor_.SetChaos(chaos);
  }
  ChaosEngine* chaos() { return chaos_; }

  // --- Crash consistency (osguard::persist) ---

  // Attaches the persist manager (borrowed; null detaches). The engine
  // commits a journal frame at every callout boundary from here on; call
  // before LoadGuardrails so the spec-level `persist { }` block can
  // configure the manager. Survives Reboot(): the recreated engine is
  // re-wired automatically.
  void AttachPersist(PersistManager* persist);
  PersistManager* persist() { return persist_; }

  // Schedules a kernel panic at simulated time `at` (clamped to now like any
  // event). The panic fires between queue events: pending work is dropped on
  // the floor exactly as a real panic drops in-flight I/O.
  void SchedulePanicAt(SimTime at);

  // Panics immediately: drops every pending event and freezes the kernel.
  // Run() becomes a no-op until Reboot(). Guardrail state that reached a
  // commit boundary is on disk (if a persist manager is attached);
  // everything since is lost — that is the crash model.
  void Panic();
  bool panicked() const { return panicked_; }

  // Simulated warm restart. Resets the feature store (interning order is
  // deliberately forgotten — honest crash semantics), recreates the engine,
  // reloads every previously loaded guardrail spec, and — when a persist
  // manager is attached — recovers the committed state via
  // Engine::Restore. Degrades gracefully: if the warm restart fails the
  // kernel comes back cold (empty state, specs loaded) and the failure is
  // reported in RecoveryInfo::detail rather than as an error. Errors are
  // real spec-reload failures only. The simulated clock keeps running
  // across the reboot, as wall clocks do.
  Result<RecoveryInfo> Reboot();

  FeatureStore& store() { return store_; }
  PolicyRegistry& registry() { return registry_; }
  EventQueue& queue() { return queue_; }
  Engine& engine() { return *engine_; }
  // Null unless sharding was enabled at construction.
  ShardedEngine* sharded_engine() { return sharded_.get(); }
  SimTime now() const { return queue_.now(); }

  // Loads guardrail specs (DSL source) into the engine. Successfully loaded
  // sources are remembered so Reboot() can reload them, mirroring a real
  // kernel re-reading its guardrail configuration from disk at boot.
  Status LoadGuardrails(const std::string& source);

  // Runs the interleaved timeline (events + monitor timers) up to `until`.
  // A panicked kernel does not run: the call returns immediately.
  void Run(SimTime until);

  // Delivers one instrumented agent tool call (docs/AGENT.md): chaos
  // (agent.event_drop / agent.dup_session), admission against the
  // agent.ctl.* control keys guardrail actions write, feature publication,
  // then the "agent.tool_call" engine callout — so FUNCTION monitors fire
  // and a persist frame commits per event. Uses max(now, event.at) as the
  // governance timestamp; drive the event queue to event.at first (the
  // harness does) if TIMER monitors must interleave correctly. Returns the
  // admission verdict for the primary event (kAllow for a chaos-dropped
  // event: the underlying tool call ran, instrumentation lost it; kKill on
  // a panicked kernel: a dead kernel executes no tool calls).
  AgentAdmitVerdict OnToolCall(const agent::ToolCallEvent& event);

  // The agent governance pipeline behind OnToolCall (configuration access).
  AgentGovernor& agent_governor() { return agent_governor_; }

  // Marks an agent session as finished and — when the loaded specs carry a
  // `retention { }` block — eagerly reclaims its entire per-session key
  // family (agent.s<id>.*), including the kill latch: a session that ended
  // cleanly cannot come back, so nothing needs to age out via TTL. Returns
  // the number of keys reclaimed (0 without retention, on a panicked
  // kernel, or when the session never published anything).
  uint64_t OnSessionEnd(uint64_t session);

  // Marks an instrumented kernel function call at the current time. Dead
  // code on a panicked kernel: instrumented functions do not run mid-panic.
  void Callout(std::string_view function) {
    if (panicked_) {
      return;
    }
    if (sharded_ != nullptr) {
      sharded_->OnFunctionCall(function, queue_.now());
    } else {
      engine_->OnFunctionCall(function, queue_.now());
    }
  }

 private:
  // Forwards DEPRIORITIZE to whichever subsystem registered; records when
  // none has.
  struct TaskControlShim : TaskControl {
    TaskControl* target = nullptr;
    RecordingTaskControl recorder;
    Status Deprioritize(const std::vector<std::string>& tasks,
                        const std::vector<double>& priorities, SimTime now) override {
      if (target != nullptr) {
        return target->Deprioritize(tasks, priorities, now);
      }
      return recorder.Deprioritize(tasks, priorities, now);
    }
  };

  // Builds a fresh engine wired to this kernel's store/registry/task-control
  // and re-attaches chaos + persist. Shared by the constructor and Reboot().
  // Drops any live sharded layer; BuildSharding() recreates it afterwards.
  void BuildEngine();
  void BuildSharding();
  // Timer callout, routed through the sharded layer when one is live.
  void AdvanceEngineTo(SimTime t);
  Result<RecoveryInfo> RebootInner();

  EngineOptions engine_options_;
  ShardingOptions sharding_options_;
  FeatureStore store_;
  PolicyRegistry registry_;
  EventQueue queue_;
  // Stateless apart from config + chaos site ids (all governance state is
  // in store_), so it survives BuildEngine/Reboot untouched.
  AgentGovernor agent_governor_{&store_};
  TaskControlShim task_control_shim_;
  std::unique_ptr<Engine> engine_;
  // Scheduling layer borrowing engine_; declared after it so the workers
  // join before the engine goes away.
  std::unique_ptr<ShardedEngine> sharded_;
  ChaosEngine* chaos_ = nullptr;
  PersistManager* persist_ = nullptr;
  std::vector<std::string> guardrail_sources_;
  bool panicked_ = false;
};

}  // namespace osguard

#endif  // SRC_SIM_KERNEL_H_
