#include "src/sim/orca.h"

#include <algorithm>

namespace osguard {

HybridRatePolicy::HybridRatePolicy(SlowPathModel model, HybridPolicyConfig config)
    : model_(std::move(model)), config_(config), aimd_(config.aimd_increase_mbps) {}

double HybridRatePolicy::NextRate(const CcSignals& signals) {
  // Smooth the raw signals for the slow path.
  const double alpha = config_.smoothing_alpha;
  if (!warm_) {
    smoothed_rtt_ms_ = signals.rtt_ms;
    smoothed_delivered_ = signals.delivered_mbps;
    loss_rate_ = signals.loss ? 1.0 : 0.0;
    warm_ = true;
  } else {
    smoothed_rtt_ms_ = alpha * signals.rtt_ms + (1 - alpha) * smoothed_rtt_ms_;
    smoothed_delivered_ =
        alpha * signals.delivered_mbps + (1 - alpha) * smoothed_delivered_;
    loss_rate_ = alpha * (signals.loss ? 1.0 : 0.0) + (1 - alpha) * loss_rate_;
  }

  // Slow timescale: every slow_period intervals the learned component picks
  // a new gain — clamped, which is the Orca-style structural guardrail.
  if (++interval_count_ >= config_.slow_period && model_) {
    interval_count_ = 0;
    CcSignals smoothed = signals;
    smoothed.rtt_ms = smoothed_rtt_ms_;
    smoothed.delivered_mbps = smoothed_delivered_;
    smoothed.loss = loss_rate_ > 0.1;
    const double proposed = model_(smoothed);
    ++adjustments_;
    const double clamped = std::clamp(proposed, config_.min_gain, config_.max_gain);
    if (clamped != proposed) {
      ++clamped_;
    }
    gain_ = clamped;
  }

  // Fine timescale: plain AIMD on the raw signals, then the learned gain
  // rescales the operating point.
  const double base = aimd_.NextRate(signals);
  return std::max(0.1, base * gain_);
}

}  // namespace osguard
