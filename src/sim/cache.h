// Cache substrate with pluggable eviction.
//
// Hosts the decision-quality property class (P4): "Cache replacement.
// Decisions of the model must yield better hit rates than randomly selecting
// elements." A fixed-capacity cache consults the eviction policy slot on
// every miss; a *shadow cache* running the baseline policy over the same
// access stream provides the counterfactual hit-rate series a P4 guardrail
// compares against — the standard trick for measuring learned-policy regret
// online without giving traffic to the baseline.
//
// Kernel integration:
//   feature store series  cache.hit         1/0 per access (primary policy)
//                         cache.shadow_hit  1/0 per access (baseline shadow)
//   policy slot           cache.evict       (REPLACE target)

#ifndef SRC_SIM_CACHE_H_
#define SRC_SIM_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/actions/policy_registry.h"
#include "src/sim/kernel.h"
#include "src/support/rng.h"

namespace osguard {

// State handed to eviction policies when a victim is needed.
struct EvictionContext {
  SimTime now = 0;
  uint64_t inserting_key = 0;
  // Resident keys with recency metadata, most recently used LAST.
  struct Entry {
    uint64_t key;
    SimTime last_access;
    uint64_t access_count;
  };
  std::vector<Entry> residents;
};

class EvictionPolicy : public Policy {
 public:
  // Index into context.residents of the entry to evict.
  virtual size_t PickVictim(const EvictionContext& context) = 0;
};

// Evicts the least recently used entry.
class LruEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "cache_lru"; }
  size_t PickVictim(const EvictionContext& context) override;
};

// Evicts uniformly at random — the paper's "randomly selecting elements"
// quality floor.
class RandomEvictionPolicy : public EvictionPolicy {
 public:
  explicit RandomEvictionPolicy(uint64_t seed = 11) : rng_(seed) {}
  std::string name() const override { return "cache_random"; }
  size_t PickVictim(const EvictionContext& context) override;

 private:
  Rng rng_;
};

// Anti-optimal policy for failure injection: evicts the MOST recently used
// entry, the canonical worst case for loop-free skewed workloads.
class MruEvictionPolicy : public EvictionPolicy {
 public:
  std::string name() const override { return "cache_mru"; }
  bool is_learned() const override { return true; }  // plays the broken model
  size_t PickVictim(const EvictionContext& context) override;
};

struct CacheConfig {
  size_t capacity = 256;
  std::string policy_slot = "cache.evict";
  // Baseline policy used by the shadow cache (a private instance, not the
  // registry's). Empty disables the shadow.
  bool shadow_lru = true;
  std::string hit_series = "cache.hit";
  std::string shadow_series = "cache.shadow_hit";
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t shadow_hits = 0;
  uint64_t evictions = 0;
  uint64_t bad_victim_indices = 0;  // out-of-range picks clamped
  double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
  double shadow_hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(shadow_hits) / static_cast<double>(accesses);
  }
};

class CacheSim {
 public:
  CacheSim(Kernel& kernel, CacheConfig config = {});

  // One access at the kernel's current time; returns hit/miss of the
  // primary cache.
  bool Access(uint64_t key);

  const CacheStats& stats() const { return stats_; }
  size_t resident_count() const { return entries_.size(); }
  bool Resident(uint64_t key) const { return entries_.count(key) > 0; }

 private:
  struct EntryMeta {
    SimTime last_access = 0;
    uint64_t access_count = 0;
  };

  void EvictOne(uint64_t inserting_key);

  Kernel& kernel_;
  CacheConfig config_;
  std::unordered_map<uint64_t, EntryMeta> entries_;

  // Shadow LRU cache (same capacity) for the baseline counterfactual.
  std::list<uint64_t> shadow_lru_order_;  // front = LRU
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> shadow_index_;

  CacheStats stats_;
};

}  // namespace osguard

#endif  // SRC_SIM_CACHE_H_
