// Orca-style hybrid congestion controller (paper §2).
//
// "Orca is a learned congestion controller that uses Cubic for fine
// time-scale CC and a learned model that makes adjustments to TCP at slow
// time-scales. By designing the controller in such a way, Orca is able to
// capitalize on the benefits of TCP Cubic such as convergence properties,
// predictable behavior and reduced overheads."
//
// The paper's criticism is that this safety technique is *structural* — it
// is baked into one controller's design and cannot be reused for other
// models or richer properties. We implement the structure faithfully so the
// comparison is concrete: HybridRatePolicy wraps a fine-timescale AIMD core
// and lets a learned component rescale its operating point every
// `slow_period` intervals, with the learned gain clamped to
// [min_gain, max_gain]. Guardrails can then be layered on top of it exactly
// like on any other policy — the two mechanisms compose rather than
// compete.

#ifndef SRC_SIM_ORCA_H_
#define SRC_SIM_ORCA_H_

#include <functional>
#include <memory>
#include <string>

#include "src/sim/congestion.h"

namespace osguard {

// The learned slow-timescale component: maps smoothed path statistics to a
// multiplicative gain on the AIMD core's rate. Implementations range from a
// trained model to a scripted function (tests).
using SlowPathModel = std::function<double(const CcSignals& smoothed)>;

struct HybridPolicyConfig {
  int slow_period = 20;      // fine-timescale intervals per learned adjustment
  double min_gain = 0.5;     // structural safety: learned influence is clamped
  double max_gain = 2.0;
  double aimd_increase_mbps = 1.0;
  double smoothing_alpha = 0.2;  // EWMA over signals fed to the model
};

class HybridRatePolicy : public RatePolicy {
 public:
  HybridRatePolicy(SlowPathModel model, HybridPolicyConfig config = {});

  std::string name() const override { return "cc_hybrid_orca"; }
  bool is_learned() const override { return true; }
  double NextRate(const CcSignals& signals) override;

  // Introspection for tests and reports.
  double current_gain() const { return gain_; }
  uint64_t learned_adjustments() const { return adjustments_; }
  uint64_t clamped_adjustments() const { return clamped_; }

 private:
  SlowPathModel model_;
  HybridPolicyConfig config_;
  AimdPolicy aimd_;
  double gain_ = 1.0;
  int interval_count_ = 0;
  uint64_t adjustments_ = 0;
  uint64_t clamped_ = 0;
  // Smoothed signals handed to the slow path.
  double smoothed_rtt_ms_ = 0.0;
  double smoothed_delivered_ = 0.0;
  double loss_rate_ = 0.0;
  bool warm_ = false;
};

}  // namespace osguard

#endif  // SRC_SIM_ORCA_H_
