// File readahead substrate.
//
// Hosts the out-of-bounds-output property class (P3): "a model starts to
// produce illegal decisions, such as prefetching chunks from a file beyond
// the memory limit for a process". A readahead policy predicts, at each
// file read, how many subsequent chunks to prefetch. Good predictions turn
// future reads into cache hits; illegal predictions (negative, beyond the
// file, beyond the process memory budget) must be caught — the substrate
// clamps them defensively, counts them, and exposes the *raw* policy output
// to the store so a P3 guardrail can see the violation even though the
// kernel survived it.
//
// Kernel integration:
//   feature store series  ra.hit           1/0 per read (cache hit?)
//                         ra.decision      raw chunks-to-prefetch output
//   feature store scalars ra.last_decision raw output of the latest decision
//                         ra.max_legal     current legal bound
//   policy slot           mem.readahead    (REPLACE target)
//   callout               ra_decide        FUNCTION trigger site

#ifndef SRC_SIM_READAHEAD_H_
#define SRC_SIM_READAHEAD_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/actions/policy_registry.h"
#include "src/sim/kernel.h"
#include "src/support/ring_buffer.h"

namespace osguard {

// Decision context for readahead policies. Features:
//   [0] current chunk index / file size (position fraction)
//   [1] sequentiality of the last 8 reads (fraction of +1 strides)
//   [2] cache occupancy fraction
//   [3] mean stride of the last 8 reads (chunks)
inline constexpr size_t kReadaheadFeatureDim = 4;

struct ReadaheadContext {
  SimTime now = 0;
  uint64_t chunk = 0;
  std::vector<double> features;
};

class ReadaheadPolicy : public Policy {
 public:
  // Number of chunks to prefetch after `context.chunk`. The substrate
  // validates; policies may return garbage (that is the point of P3).
  virtual int64_t PrefetchChunks(const ReadaheadContext& context) = 0;
};

// Linux-like fixed-window heuristic: prefetch a small window when access
// looks sequential, nothing otherwise.
class FixedWindowReadahead : public ReadaheadPolicy {
 public:
  explicit FixedWindowReadahead(int64_t window = 8) : window_(window) {}
  std::string name() const override { return "heuristic_fixed_window"; }
  int64_t PrefetchChunks(const ReadaheadContext& context) override {
    return context.features[1] > 0.5 ? window_ : 0;
  }

 private:
  int64_t window_;
};

struct ReadaheadConfig {
  uint64_t file_chunks = 1 << 20;       // file size, in chunks
  uint64_t cache_capacity_chunks = 4096; // process page-cache budget
  Duration hit_latency = Microseconds(2);
  Duration miss_latency = Microseconds(120);
  Duration prefetch_cost_per_chunk = Microseconds(1);  // issue overhead
  std::string policy_slot = "mem.readahead";
  std::string callout = "ra_decide";
  bool emit_callout = false;
};

struct ReadaheadStats {
  uint64_t reads = 0;
  uint64_t hits = 0;
  uint64_t prefetched_chunks = 0;
  uint64_t illegal_decisions = 0;   // clamped out-of-bounds outputs
  int64_t latency_ns_total = 0;
  double hit_rate() const {
    return reads == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(reads);
  }
};

class ReadaheadManager {
 public:
  ReadaheadManager(Kernel& kernel, ReadaheadConfig config = {});

  // Performs one chunk read at the kernel's current time. Returns the
  // simulated read latency (cache hit or miss plus prefetch issue cost).
  Duration Read(uint64_t chunk);

  ReadaheadContext MakeContext(uint64_t chunk) const;

  const ReadaheadStats& stats() const { return stats_; }
  const ReadaheadConfig& config() const { return config_; }
  size_t cached_chunks() const { return cache_.size(); }

 private:
  void EvictIfNeeded();

  Kernel& kernel_;
  ReadaheadConfig config_;
  std::unordered_set<uint64_t> cache_;
  std::vector<uint64_t> cache_fifo_;  // simple FIFO eviction order
  RingBuffer<int64_t> stride_history_{8};
  uint64_t last_chunk_ = 0;
  bool has_last_ = false;
  ReadaheadStats stats_;
};

}  // namespace osguard

#endif  // SRC_SIM_READAHEAD_H_
