#include "src/supervisor/supervisor.h"

#include <utility>

namespace osguard {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void GuardrailSupervisor::SetStore(FeatureStore* store) {
  store_ = store;
  if (store_ == nullptr) {
    return;
  }
  gk_quarantines_ = store_->InternKey("supervisor.quarantines");
  gk_rollbacks_ = store_->InternKey("supervisor.rollbacks");
  gk_probes_ = store_->InternKey("supervisor.probes");
  gk_skipped_ = store_->InternKey("supervisor.skipped");
  gk_budget_aborts_ = store_->InternKey("supervisor.budget_aborts");
  gk_reinstatements_ = store_->InternKey("supervisor.reinstatements");
  gk_commits_ = store_->InternKey("supervisor.commits");
}

void GuardrailSupervisor::SetChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  if (chaos_ == nullptr) {
    probe_fail_site_ = kInvalidChaosSite;
    budget_exhaust_site_ = kInvalidChaosSite;
    return;
  }
  probe_fail_site_ = chaos_->RegisterSite(kChaosSiteProbeFail);
  budget_exhaust_site_ = chaos_->RegisterSite(kChaosSiteBudgetExhaust);
}

GuardHealth* GuardrailSupervisor::OnLoad(const std::string& name,
                                         const GuardrailHealth& config, SimTime now,
                                         bool replacing, const GuardHealth* previous) {
  if (!config.supervised) {
    if (guards_.erase(name) > 0) {
      --stats_.supervised;
    }
    return nullptr;
  }
  auto record = std::make_unique<GuardHealth>();
  record->config = config;
  if (replacing && config.probation > 0) {
    record->in_probation = true;
    record->probation_until = now + config.probation;
    // The outgoing version's failure score is the bar the deploy must clear.
    record->baseline_fail_ewma = previous != nullptr ? previous->fail_ewma : 0.0;
  }
  GuardHealth* out = record.get();
  auto [it, inserted] = guards_.insert_or_assign(name, std::move(record));
  (void)it;
  if (inserted) {
    ++stats_.supervised;
  }
  InternKeys(*out, name);
  ExportState(*out);
  ExportScores(*out);
  return out;
}

void GuardrailSupervisor::OnUnload(const std::string& name) {
  if (guards_.erase(name) > 0) {
    --stats_.supervised;
  }
}

GuardHealth* GuardrailSupervisor::OnRollback(const std::string& name,
                                             const GuardrailHealth& restored,
                                             SimTime now) {
  (void)now;
  ++stats_.rollbacks;
  GuardHealth* out = nullptr;
  if (!restored.supervised) {
    if (guards_.erase(name) > 0) {
      --stats_.supervised;
    }
  } else {
    // Fresh record under the restored config; the restored version is trusted
    // (it ran before the deploy), so it does not re-enter probation.
    auto record = std::make_unique<GuardHealth>();
    record->config = restored;
    out = record.get();
    auto [it, inserted] = guards_.insert_or_assign(name, std::move(record));
    (void)it;
    if (inserted) {
      ++stats_.supervised;
    }
    InternKeys(*out, name);
    ExportState(*out);
    ExportScores(*out);
  }
  ExportGlobal();
  return out;
}

GateDecision GuardrailSupervisor::Gate(GuardHealth& g, SimTime now) {
  if (g.rollback_pending) {
    // Doomed deploy: suppress further evaluations until the engine swaps it.
    ++g.skipped;
    ++stats_.skipped_evals;
    return GateDecision::kSkip;
  }
  if (g.state == BreakerState::kClosed) {
    if (g.in_probation && now >= g.probation_until) {
      // Window survived — regression check, then commit or roll back.
      if (g.fail_ewma > g.baseline_fail_ewma + 1e-9) {
        g.rollback_pending = true;
        ++g.skipped;
        ++stats_.skipped_evals;
        return GateDecision::kSkip;
      }
      g.in_probation = false;
      ++stats_.commits;
      ExportGlobal();
    }
    return GateDecision::kEvaluate;
  }
  // Breaker open: suppress, except the periodic half-open probe.
  ++g.open_triggers;
  if (g.open_triggers % static_cast<uint64_t>(g.config.probe_every) == 0) {
    g.state = BreakerState::kHalfOpen;
    return GateDecision::kProbe;
  }
  ++g.skipped;
  ++stats_.skipped_evals;
  return GateDecision::kSkip;
}

bool GuardrailSupervisor::InjectBudgetExhaust(SimTime now) {
  return chaos_ != nullptr && budget_exhaust_site_ != kInvalidChaosSite &&
         chaos_->ShouldInject(budget_exhaust_site_, now);
}

void GuardrailSupervisor::OnEvalResult(GuardHealth& g, const std::string& name,
                                       GateDecision gate, EvalOutcome outcome,
                                       int64_t steps, SimTime now) {
  ++g.evals;
  bool failure = outcome != EvalOutcome::kOk;
  if (outcome == EvalOutcome::kBudgetExceeded) {
    ++g.budget_aborts;
    ++stats_.budget_aborts;
  } else if (outcome == EvalOutcome::kError) {
    ++g.eval_errors;
    ++stats_.eval_errors;
  }
  const double a = g.config.ewma_alpha;
  g.fail_ewma = (1.0 - a) * g.fail_ewma + (failure ? a : 0.0);
  g.cost_ewma_steps = (1.0 - a) * g.cost_ewma_steps + a * static_cast<double>(steps);

  if (gate == GateDecision::kProbe) {
    ++g.probes;
    ++stats_.probes;
    // Chaos can fail a probe whose evaluation was otherwise clean.
    if (!failure && chaos_ != nullptr && probe_fail_site_ != kInvalidChaosSite &&
        chaos_->ShouldInject(probe_fail_site_, now)) {
      failure = true;
    }
    if (failure) {
      ++g.probe_failures;
      ++stats_.probe_failures;
      g.probe_successes = 0;
      g.state = BreakerState::kOpen;
    } else {
      ++g.probe_successes;
      if (g.probe_successes >= g.config.reinstate) {
        g.state = BreakerState::kClosed;
        g.failure_streak = 0;
        g.open_triggers = 0;
        g.probe_successes = 0;
        ++g.reinstatements;
        ++stats_.reinstatements;
      } else {
        g.state = BreakerState::kOpen;
      }
    }
    ExportState(g);
    ExportGlobal();
  } else if (g.state == BreakerState::kClosed) {
    if (failure) {
      RecordFailureEvent(g, name, now);
    } else {
      g.failure_streak = 0;
    }
  }
  // Score export is decimated on the healthy hot path (every 8th eval) and
  // immediate on any failure, keeping supervised per-eval overhead near the
  // unsupervised baseline without hiding a degrading score.
  if (failure || (g.evals & 7) == 0) {
    ExportScores(g);
  }
}

void GuardrailSupervisor::OnViolationFlip(GuardHealth& g, const std::string& name,
                                          SimTime now) {
  g.flips.push_back(now);
  const SimTime cutoff = now - g.config.flap_window;
  while (!g.flips.empty() && g.flips.front() <= cutoff) {
    g.flips.pop_front();
  }
  if (static_cast<int>(g.flips.size()) > g.config.flap_threshold) {
    ++g.flap_events;
    ++stats_.flap_events;
    // Restart the window so one sustained oscillation counts one failure
    // event per overflow, not one per subsequent flip.
    g.flips.clear();
    RecordFailureEvent(g, name, now);
  }
}

void GuardrailSupervisor::OnActionFailures(GuardHealth& g, const std::string& name,
                                           uint64_t delta, SimTime now) {
  if (delta == 0) {
    return;
  }
  g.action_failures += delta;
  RecordFailureEvent(g, name, now);
}

bool GuardrailSupervisor::ConsumeQuarantineAction(GuardHealth& g) {
  const bool pending = g.quarantine_action_pending;
  g.quarantine_action_pending = false;
  return pending;
}

const GuardHealth* GuardrailSupervisor::Find(std::string_view name) const {
  auto it = guards_.find(std::string(name));
  return it == guards_.end() ? nullptr : it->second.get();
}

bool GuardrailSupervisor::RecordFailureEvent(GuardHealth& g, const std::string& name,
                                             SimTime now) {
  (void)name;
  (void)now;
  if (g.state != BreakerState::kClosed) {
    return false;
  }
  ++g.failure_streak;
  if (g.failure_streak < g.config.quarantine) {
    return false;
  }
  g.state = BreakerState::kOpen;
  g.open_triggers = 0;
  g.probe_successes = 0;
  ++g.quarantines;
  ++stats_.quarantines;
  // The engine runs the corrective action once as the fail-safe default.
  g.quarantine_action_pending = true;
  if (g.in_probation) {
    g.rollback_pending = true;  // a deploy that quarantines in probation rolls back
  }
  ExportState(g);
  ExportGlobal();
  return true;
}

void GuardrailSupervisor::InternKeys(GuardHealth& g, const std::string& name) {
  if (store_ == nullptr) {
    return;
  }
  g.state_key = store_->InternKey("supervisor." + name + ".state");
  g.health_key = store_->InternKey("supervisor." + name + ".health");
  g.cost_key = store_->InternKey("supervisor." + name + ".cost_ewma");
}

void GuardrailSupervisor::ExportState(GuardHealth& g) {
  if (store_ == nullptr || g.state_key == kInvalidKeyId) {
    return;
  }
  store_->Save(g.state_key, Value(static_cast<int64_t>(g.state)));
}

void GuardrailSupervisor::ExportScores(GuardHealth& g) {
  if (store_ == nullptr || g.health_key == kInvalidKeyId) {
    return;
  }
  store_->Save(g.health_key, Value(HealthScore(g)));
  store_->Save(g.cost_key, Value(g.cost_ewma_steps));
}

void GuardrailSupervisor::ExportGlobal() {
  if (store_ == nullptr || gk_quarantines_ == kInvalidKeyId) {
    return;
  }
  store_->Save(gk_quarantines_, Value(static_cast<int64_t>(stats_.quarantines)));
  store_->Save(gk_rollbacks_, Value(static_cast<int64_t>(stats_.rollbacks)));
  store_->Save(gk_probes_, Value(static_cast<int64_t>(stats_.probes)));
  store_->Save(gk_skipped_, Value(static_cast<int64_t>(stats_.skipped_evals)));
  store_->Save(gk_budget_aborts_, Value(static_cast<int64_t>(stats_.budget_aborts)));
  store_->Save(gk_reinstatements_, Value(static_cast<int64_t>(stats_.reinstatements)));
  store_->Save(gk_commits_, Value(static_cast<int64_t>(stats_.commits)));
}

}  // namespace osguard
