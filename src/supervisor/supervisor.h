// Guardrail lifecycle supervisor — the monitor of monitors (paper §6).
//
// Guardrails are kernel-resident code, so a buggy or flapping monitor can
// hurt the system it is supposed to protect. The supervisor closes that loop
// with four mechanisms, all deterministic in simulated time so they replay
// bit-identically under the chaos engine:
//
//  * Runtime budgets — per-guardrail VM step / wall-time budgets (enforced by
//    Vm::Execute's ExecBudget kill switch); an over-budget eval is aborted
//    mid-flight and recorded as a failure event.
//  * Health scoring — per-guardrail EWMAs of failure rate and eval cost,
//    plus a trip-flap detector generalizing the E2 hysteresis story, exported
//    as `supervisor.*` feature-store keys.
//  * Circuit breaker — closed -> open (quarantined: evals skipped, the
//    corrective action applied once as the fail-safe default) -> half-open
//    (probe every Nth suppressed trigger; chaos site `supervisor.probe_fail`
//    can force probe failures) -> closed after `reinstate` clean probes.
//  * Probation — a replace-by-name deploy of a supervised guardrail runs
//    under watch for `probation`; if it quarantines or its failure score
//    regresses past the pre-deploy baseline, the engine rolls back to the
//    retained previous program (bit-identical).
//
// The supervisor does not own guardrail programs; the engine keeps the
// rollback snapshot and performs the swap. This file is pure accounting and
// policy, which keeps the layering acyclic (supervisor depends only on
// chaos / dsl / store / support).

#ifndef SRC_SUPERVISOR_SUPERVISOR_H_
#define SRC_SUPERVISOR_SUPERVISOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/chaos/chaos.h"
#include "src/dsl/sema.h"
#include "src/store/feature_store.h"
#include "src/support/time.h"

namespace osguard {

enum class BreakerState {
  kClosed = 0,    // healthy: every trigger evaluates
  kOpen = 1,      // quarantined: triggers are suppressed (except probes)
  kHalfOpen = 2,  // probing: this trigger evaluates; outcome decides the state
};

std::string_view BreakerStateName(BreakerState state);

// What the engine should do with a pending trigger of a supervised guardrail.
enum class GateDecision {
  kEvaluate,  // breaker closed: normal evaluation
  kProbe,     // breaker half-open: evaluate, outcome feeds the breaker
  kSkip,      // breaker open: skip the evaluation entirely
};

// How a supervised evaluation ended, as classified by the engine.
enum class EvalOutcome {
  kOk,              // rule produced a decision (violation or not)
  kError,           // rule faulted (helper error, nil comparison, ...)
  kBudgetExceeded,  // killed by the ExecBudget (or chaos vm.budget_exhaust)
};

// Per-guardrail supervisor record. The engine holds a stable pointer to the
// record of each supervised monitor; unsupervised monitors have none and pay
// a single null check per evaluation (the off == absent property).
struct GuardHealth {
  GuardrailHealth config;

  BreakerState state = BreakerState::kClosed;
  // EWMA of the failure indicator (1 = failed) over gated evaluations and of
  // VM steps per evaluation. Both advance only on evals, so they are a pure
  // function of the (deterministic) eval outcome sequence.
  double fail_ewma = 0.0;
  double cost_ewma_steps = 0.0;
  int failure_streak = 0;       // consecutive failure events toward quarantine
  uint64_t open_triggers = 0;   // triggers seen while open (probe cadence)
  int probe_successes = 0;      // consecutive clean probes toward reinstate

  // Trip-flap detector: timestamps of violated<->satisfied transitions
  // inside the sliding flap_window.
  std::deque<SimTime> flips;

  // Probation bookkeeping for a replace-by-name deploy.
  bool in_probation = false;
  SimTime probation_until = 0;
  double baseline_fail_ewma = 0.0;  // outgoing version's score at deploy time
  bool rollback_pending = false;    // set once; engine applies and clears

  // Set when the breaker opens; the engine consumes it to run the corrective
  // action once as the quarantine default.
  bool quarantine_action_pending = false;

  // Counters (also exported to the store).
  uint64_t evals = 0;
  uint64_t budget_aborts = 0;
  uint64_t eval_errors = 0;
  uint64_t action_failures = 0;
  uint64_t flap_events = 0;
  uint64_t skipped = 0;
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t quarantines = 0;
  uint64_t reinstatements = 0;

  // Interned export keys: supervisor.<name>.{state,health,cost_ewma}.
  KeyId state_key = kInvalidKeyId;
  KeyId health_key = kInvalidKeyId;
  KeyId cost_key = kInvalidKeyId;

  // Shard owning this guardrail's rule evaluations when the sharded engine
  // is active (0 otherwise). Observability only: it is set by the sharded
  // engine's partitioner, is NOT part of the persisted image and is NOT
  // exported to the store, so serial and sharded runs stay bit-identical.
  // Quarantine isolation is structural — an open breaker skips the monitor
  // at the gate, so its shard simply receives fewer tasks while every other
  // shard keeps draining at full rate (pinned by tests/shard_test.cc).
  uint32_t shard_id = 0;
};

// Supervisor-wide counters.
struct SupervisorStats {
  uint64_t supervised = 0;  // currently supervised guardrails
  uint64_t budget_aborts = 0;
  uint64_t eval_errors = 0;
  uint64_t flap_events = 0;
  uint64_t quarantines = 0;
  uint64_t skipped_evals = 0;
  uint64_t probes = 0;
  uint64_t probe_failures = 0;
  uint64_t reinstatements = 0;
  uint64_t rollbacks = 0;
  uint64_t commits = 0;  // probation deploys that stuck
};

class GuardrailSupervisor {
 public:
  GuardrailSupervisor() = default;
  GuardrailSupervisor(const GuardrailSupervisor&) = delete;
  GuardrailSupervisor& operator=(const GuardrailSupervisor&) = delete;

  // Export target for supervisor.* keys; null disables export.
  void SetStore(FeatureStore* store);

  // Attaches (or detaches, with null) the chaos engine and registers the
  // supervisor.probe_fail / vm.budget_exhaust sites. Unarmed sites consume
  // no randomness, preserving chaos's off == absent contract.
  void SetChaos(ChaosEngine* chaos);

  // (Re)load of guardrail `name`. Returns the supervisor record, or null for
  // an unsupervised config (any stale record is dropped). `previous` is the
  // outgoing record when this is a replace-by-name (null otherwise); with
  // config.probation > 0 and an actual replace (`replacing`), the new version
  // starts in probation against the outgoing version's health baseline.
  GuardHealth* OnLoad(const std::string& name, const GuardrailHealth& config,
                      SimTime now, bool replacing, const GuardHealth* previous);

  void OnUnload(const std::string& name);

  // Rollback applied by the engine: the record is re-initialized for the
  // restored (pre-deploy) config, not re-entering probation.
  GuardHealth* OnRollback(const std::string& name, const GuardrailHealth& restored,
                          SimTime now);

  // Per-trigger gate. Also finalizes a clean probation (commit) once the
  // window has passed.
  GateDecision Gate(GuardHealth& g, SimTime now);

  // Chaos hook: should this evaluation be forced into a budget abort?
  // (site vm.budget_exhaust; false when no chaos engine is attached)
  bool InjectBudgetExhaust(SimTime now);

  // Outcome of a gated evaluation (`steps` = VM steps the rule consumed).
  // Feeds the EWMAs and drives the breaker; for probes, consults the
  // supervisor.probe_fail chaos site.
  void OnEvalResult(GuardHealth& g, const std::string& name, GateDecision gate,
                    EvalOutcome outcome, int64_t steps, SimTime now);

  // A violated <-> satisfied transition (the flap detector's input).
  void OnViolationFlip(GuardHealth& g, const std::string& name, SimTime now);

  // `delta` new action-dispatch failures attributed to this guardrail.
  void OnActionFailures(GuardHealth& g, const std::string& name, uint64_t delta,
                        SimTime now);

  // True once per breaker opening: the engine runs the corrective action as
  // the quarantine default and the flag clears.
  bool ConsumeQuarantineAction(GuardHealth& g);

  // Health score in [0, 1]: 1 - fail_ewma.
  double HealthScore(const GuardHealth& g) const { return 1.0 - g.fail_ewma; }

  const GuardHealth* Find(std::string_view name) const;
  const SupervisorStats& stats() const { return stats_; }

  // Reinstates persisted global counters (osguard::persist warm restart).
  // Per-guardrail GuardHealth fields are restored by the engine through the
  // monitor records it holds; `supervised` is recomputed by OnLoad during
  // the reload that precedes a restore, so the image's value matches it.
  void RestoreStats(const SupervisorStats& stats) { stats_ = stats; }

 private:
  // A failure event (budget abort, eval error, flap overflow, action
  // failure) advances the breaker; returns true if it opened.
  bool RecordFailureEvent(GuardHealth& g, const std::string& name, SimTime now);
  void ExportState(GuardHealth& g);
  void ExportScores(GuardHealth& g);
  void ExportGlobal();
  void InternKeys(GuardHealth& g, const std::string& name);

  FeatureStore* store_ = nullptr;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId probe_fail_site_ = kInvalidChaosSite;
  ChaosSiteId budget_exhaust_site_ = kInvalidChaosSite;

  // Interned supervisor-global export keys (supervisor.quarantines, ...).
  KeyId gk_quarantines_ = kInvalidKeyId;
  KeyId gk_rollbacks_ = kInvalidKeyId;
  KeyId gk_probes_ = kInvalidKeyId;
  KeyId gk_skipped_ = kInvalidKeyId;
  KeyId gk_budget_aborts_ = kInvalidKeyId;
  KeyId gk_reinstatements_ = kInvalidKeyId;
  KeyId gk_commits_ = kInvalidKeyId;

  std::unordered_map<std::string, std::unique_ptr<GuardHealth>> guards_;
  SupervisorStats stats_;
};

}  // namespace osguard

#endif  // SRC_SUPERVISOR_SUPERVISOR_H_
