#include "src/dsl/sema.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace osguard {

std::string_view ChaosModeName(ChaosMode mode) {
  switch (mode) {
    case ChaosMode::kOff:
      return "off";
    case ChaosMode::kBernoulli:
      return "bernoulli";
    case ChaosMode::kSchedule:
      return "schedule";
    case ChaosMode::kBurst:
      return "burst";
  }
  return "?";
}

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kCritical:
      return "critical";
  }
  return "?";
}

std::string_view TierHintName(TierHint tier) {
  switch (tier) {
    case TierHint::kAuto:
      return "auto";
    case TierHint::kInterpreter:
      return "interpreter";
    case TierHint::kNative:
      return "native";
  }
  return "?";
}

std::string_view CriticalityName(Criticality criticality) {
  switch (criticality) {
    case Criticality::kStandard:
      return "standard";
    case Criticality::kCritical:
      return "critical";
    case Criticality::kBestEffort:
      return "besteffort";
  }
  return "?";
}

namespace {

std::string Where(const Expr& expr) {
  return " at line " + std::to_string(expr.line) + ", column " + std::to_string(expr.column);
}

// Context of the expression being checked: rules must be pure, actions may
// mutate and invoke the corrective-action helpers.
enum class ExprContext { kRule, kAction };

bool IsMutatingHelper(HelperId id) {
  return id == HelperId::kSave || id == HelperId::kIncr || id == HelperId::kObserve;
}

Status CheckExpr(const Expr& expr, ExprContext context);

Status CheckCallArgs(const Expr& call, const Builtin& builtin, ExprContext context) {
  const int argc = static_cast<int>(call.children.size());
  if (argc < builtin.min_args ||
      (builtin.max_args >= 0 && argc > builtin.max_args)) {
    std::string arity = std::to_string(builtin.min_args);
    if (builtin.max_args < 0) {
      arity += "+";
    } else if (builtin.max_args != builtin.min_args) {
      arity += ".." + std::to_string(builtin.max_args);
    }
    return SemanticError(std::string(builtin.name) + " expects " + arity + " argument(s), got " +
                         std::to_string(argc) + Where(call));
  }
  for (int i = 0; i < argc; ++i) {
    const Expr& arg = *call.children[static_cast<size_t>(i)];
    ArgMode mode = ArgMode::kValue;
    if (!builtin.arg_modes.empty()) {
      const size_t mode_index =
          std::min(static_cast<size_t>(i), builtin.arg_modes.size() - 1);
      mode = builtin.arg_modes[mode_index];
    }
    switch (mode) {
      case ArgMode::kKey:
        if (arg.kind != ExprKind::kIdent &&
            !(arg.kind == ExprKind::kLiteral && arg.literal.type() == ValueType::kString)) {
          return SemanticError("argument " + std::to_string(i + 1) + " of " +
                               std::string(builtin.name) +
                               " must be a key identifier or string literal, got " +
                               arg.ToString() + Where(arg));
        }
        break;
      case ArgMode::kNameList: {
        if (arg.kind != ExprKind::kList) {
          return SemanticError("argument " + std::to_string(i + 1) + " of " +
                               std::string(builtin.name) + " must be a {name, ...} list" +
                               Where(arg));
        }
        for (const ExprPtr& element : arg.children) {
          if (element->kind != ExprKind::kIdent &&
              !(element->kind == ExprKind::kLiteral &&
                element->literal.type() == ValueType::kString)) {
            return SemanticError("list elements of " + std::string(builtin.name) +
                                 " must be identifiers" + Where(*element));
          }
        }
        break;
      }
      case ArgMode::kValueList: {
        if (arg.kind != ExprKind::kList) {
          return SemanticError("argument " + std::to_string(i + 1) + " of " +
                               std::string(builtin.name) + " must be a {value, ...} list" +
                               Where(arg));
        }
        for (const ExprPtr& element : arg.children) {
          OSGUARD_RETURN_IF_ERROR(CheckExpr(*element, context));
        }
        break;
      }
      case ArgMode::kValue:
        OSGUARD_RETURN_IF_ERROR(CheckExpr(arg, context));
        break;
    }
  }
  return OkStatus();
}

Status CheckExpr(const Expr& expr, ExprContext context) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      if (expr.literal.type() == ValueType::kList) {
        return SemanticError("list literals are only valid as call arguments" + Where(expr));
      }
      return OkStatus();
    case ExprKind::kIdent:
      // Implicit LOAD of a feature-store key; always legal.
      return OkStatus();
    case ExprKind::kList:
      return SemanticError("a {...} list is only valid as a call argument" + Where(expr));
    case ExprKind::kUnary:
      return CheckExpr(*expr.children[0], context);
    case ExprKind::kBinary: {
      OSGUARD_RETURN_IF_ERROR(CheckExpr(*expr.children[0], context));
      OSGUARD_RETURN_IF_ERROR(CheckExpr(*expr.children[1], context));
      const DslType lhs = InferType(*expr.children[0]);
      const DslType rhs = InferType(*expr.children[1]);
      auto is_numeric_ok = [](DslType t) {
        return t == DslType::kNum || t == DslType::kBool || t == DslType::kAny;
      };
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!is_numeric_ok(lhs) || !is_numeric_ok(rhs)) {
            return SemanticError(std::string("operator '") +
                                 std::string(BinaryOpName(expr.binary_op)) +
                                 "' needs numeric operands, got " + std::string(DslTypeName(lhs)) +
                                 " and " + std::string(DslTypeName(rhs)) + Where(expr));
          }
          break;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
          // Equality is defined for every value type.
          break;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (lhs == DslType::kStr || rhs == DslType::kStr || lhs == DslType::kList ||
              rhs == DslType::kList) {
            return SemanticError("logical operators need boolean operands" + Where(expr));
          }
          break;
      }
      return OkStatus();
    }
    case ExprKind::kCall: {
      const Builtin* builtin = FindBuiltin(expr.name);
      if (builtin == nullptr) {
        return SemanticError("unknown function '" + expr.name + "'" + Where(expr));
      }
      if (context == ExprContext::kRule &&
          (builtin->is_action || IsMutatingHelper(builtin->id))) {
        return SemanticError("'" + expr.name +
                             "' has side effects and is not allowed in rule expressions" +
                             Where(expr));
      }
      return CheckCallArgs(expr, *builtin, context);
    }
  }
  return InternalError("unhandled expression kind");
}

Status CheckActionStatement(const Expr& stmt) {
  if (stmt.kind != ExprKind::kCall) {
    return SemanticError("action statements must be calls" + Where(stmt));
  }
  const Builtin* builtin = FindBuiltin(stmt.name);
  if (builtin == nullptr) {
    return SemanticError("unknown action '" + stmt.name + "'" + Where(stmt));
  }
  if (!builtin->is_action && !IsMutatingHelper(builtin->id)) {
    return SemanticError("'" + stmt.name +
                         "' is not an action (REPORT / REPLACE / RETRAIN / DEPRIORITIZE / "
                         "SAVE / INCR / OBSERVE)" +
                         Where(stmt));
  }
  return CheckCallArgs(stmt, *builtin, ExprContext::kAction);
}

Status FoldTimerTrigger(TriggerDecl& trigger, const std::string& guardrail_name) {
  auto fold_arg = [&](size_t i, const char* what) -> Result<int64_t> {
    OSGUARD_ASSIGN_OR_RETURN(Value v, EvalConst(*trigger.args[i]));
    if (!v.is_numeric()) {
      return SemanticError(std::string("TIMER ") + what + " of guardrail '" + guardrail_name +
                           "' must be a constant number");
    }
    return static_cast<int64_t>(v.NumericOr(0.0));
  };
  OSGUARD_ASSIGN_OR_RETURN(trigger.start, fold_arg(0, "start_time"));
  OSGUARD_ASSIGN_OR_RETURN(trigger.interval, fold_arg(1, "interval"));
  if (trigger.args.size() == 3) {
    OSGUARD_ASSIGN_OR_RETURN(trigger.stop, fold_arg(2, "stop_time"));
  } else {
    trigger.stop = 0;
  }
  if (trigger.start < 0) {
    return SemanticError("TIMER start_time of guardrail '" + guardrail_name +
                         "' must be >= 0");
  }
  if (trigger.interval <= 0) {
    return SemanticError("TIMER interval of guardrail '" + guardrail_name + "' must be > 0");
  }
  if (trigger.stop != 0 && trigger.stop <= trigger.start) {
    return SemanticError("TIMER stop_time of guardrail '" + guardrail_name +
                         "' must be after start_time");
  }
  return OkStatus();
}

Result<GuardrailMeta> AnalyzeMeta(const GuardrailDecl& decl) {
  GuardrailMeta meta;
  for (const MetaAttr& attr : decl.meta) {
    const std::string loc = " (guardrail '" + decl.name + "', line " + std::to_string(attr.line) + ")";
    if (attr.key == "severity") {
      OSGUARD_ASSIGN_OR_RETURN(std::string s, attr.value.AsString());
      if (s == "info") {
        meta.severity = Severity::kInfo;
      } else if (s == "warning") {
        meta.severity = Severity::kWarning;
      } else if (s == "critical") {
        meta.severity = Severity::kCritical;
      } else {
        return SemanticError("severity must be info|warning|critical" + loc);
      }
    } else if (attr.key == "cooldown") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t ns, attr.value.AsInt());
      if (ns < 0) {
        return SemanticError("cooldown must be >= 0" + loc);
      }
      meta.cooldown = ns;
    } else if (attr.key == "hysteresis") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t n, attr.value.AsInt());
      if (n < 1) {
        return SemanticError("hysteresis must be >= 1" + loc);
      }
      meta.hysteresis = static_cast<int>(n);
    } else if (attr.key == "enabled") {
      OSGUARD_ASSIGN_OR_RETURN(meta.enabled, attr.value.AsBool());
    } else if (attr.key == "description") {
      OSGUARD_ASSIGN_OR_RETURN(meta.description, attr.value.AsString());
    } else if (attr.key == "tier") {
      OSGUARD_ASSIGN_OR_RETURN(std::string s, attr.value.AsString());
      if (s == "auto") {
        meta.tier = TierHint::kAuto;
      } else if (s == "interpreter") {
        meta.tier = TierHint::kInterpreter;
      } else if (s == "native") {
        meta.tier = TierHint::kNative;
      } else {
        return SemanticError("tier must be auto|interpreter|native" + loc);
      }
    } else if (attr.key == "criticality") {
      OSGUARD_ASSIGN_OR_RETURN(std::string s, attr.value.AsString());
      if (s == "critical") {
        meta.criticality = Criticality::kCritical;
      } else if (s == "standard") {
        meta.criticality = Criticality::kStandard;
      } else if (s == "besteffort") {
        meta.criticality = Criticality::kBestEffort;
      } else {
        return SemanticError("criticality must be critical|standard|besteffort" + loc);
      }
    } else {
      return SemanticError("unknown meta attribute '" + attr.key + "'" + loc);
    }
  }
  return meta;
}

Result<GuardrailHealth> AnalyzeHealth(const GuardrailDecl& decl) {
  GuardrailHealth health;
  if (!decl.has_health) {
    return health;  // unsupervised
  }
  health.supervised = true;
  for (const MetaAttr& attr : decl.health) {
    const std::string loc = " (guardrail '" + decl.name + "', line " + std::to_string(attr.line) + ")";
    if (attr.key == "budget_steps") {
      OSGUARD_ASSIGN_OR_RETURN(health.budget_steps, attr.value.AsInt());
      if (health.budget_steps < 0) {
        return SemanticError("budget_steps must be >= 0" + loc);
      }
    } else if (attr.key == "budget_ns") {
      OSGUARD_ASSIGN_OR_RETURN(health.budget_ns, attr.value.AsInt());
      if (health.budget_ns < 0) {
        return SemanticError("budget_ns must be >= 0" + loc);
      }
    } else if (attr.key == "flap_window") {
      OSGUARD_ASSIGN_OR_RETURN(health.flap_window, attr.value.AsInt());
      if (health.flap_window <= 0) {
        return SemanticError("flap_window must be > 0" + loc);
      }
    } else if (attr.key == "flap_threshold") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t n, attr.value.AsInt());
      if (n < 1) {
        return SemanticError("flap_threshold must be >= 1" + loc);
      }
      health.flap_threshold = static_cast<int>(n);
    } else if (attr.key == "quarantine") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t n, attr.value.AsInt());
      if (n < 1) {
        return SemanticError("quarantine must be >= 1" + loc);
      }
      health.quarantine = static_cast<int>(n);
    } else if (attr.key == "probe_every") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t n, attr.value.AsInt());
      if (n < 1) {
        return SemanticError("probe_every must be >= 1" + loc);
      }
      health.probe_every = static_cast<int>(n);
    } else if (attr.key == "reinstate") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t n, attr.value.AsInt());
      if (n < 1) {
        return SemanticError("reinstate must be >= 1" + loc);
      }
      health.reinstate = static_cast<int>(n);
    } else if (attr.key == "probation") {
      OSGUARD_ASSIGN_OR_RETURN(health.probation, attr.value.AsInt());
      if (health.probation < 0) {
        return SemanticError("probation must be >= 0" + loc);
      }
    } else if (attr.key == "ewma_alpha") {
      const double a = attr.value.NumericOr(-1.0);
      if (!attr.value.is_numeric() || a <= 0.0 || a > 1.0) {
        return SemanticError("ewma_alpha must be a number in (0, 1]" + loc);
      }
      health.ewma_alpha = a;
    } else {
      return SemanticError("unknown health attribute '" + attr.key + "'" + loc);
    }
  }
  return health;
}

Result<AnalyzedChaosSite> AnalyzeChaosSite(const ChaosSiteDecl& site) {
  AnalyzedChaosSite out;
  out.name = site.name;
  bool saw_mode = false;
  for (const MetaAttr& attr : site.attrs) {
    const std::string loc =
        " (chaos site '" + site.name + "', line " + std::to_string(attr.line) + ")";
    if (attr.key == "mode") {
      OSGUARD_ASSIGN_OR_RETURN(std::string s, attr.value.AsString());
      if (s == "off") {
        out.mode = ChaosMode::kOff;
      } else if (s == "bernoulli") {
        out.mode = ChaosMode::kBernoulli;
      } else if (s == "schedule") {
        out.mode = ChaosMode::kSchedule;
      } else if (s == "burst") {
        out.mode = ChaosMode::kBurst;
      } else {
        return SemanticError("mode must be off|bernoulli|schedule|burst" + loc);
      }
      saw_mode = true;
    } else if (attr.key == "p") {
      const double p = attr.value.NumericOr(-1.0);
      if (!attr.value.is_numeric() || p < 0.0 || p > 1.0) {
        return SemanticError("p must be a number in [0, 1]" + loc);
      }
      out.p = p;
    } else if (attr.key == "nth") {
      const std::vector<Value>* list = attr.value.IfList();
      if (list == nullptr) {
        // A single index without braces is accepted as a one-element schedule.
        OSGUARD_ASSIGN_OR_RETURN(int64_t n, attr.value.AsInt());
        if (n < 0) {
          return SemanticError("nth indices must be >= 0" + loc);
        }
        out.nth.assign(1, static_cast<uint64_t>(n));
        continue;
      }
      for (const Value& element : *list) {
        OSGUARD_ASSIGN_OR_RETURN(int64_t n, element.AsInt());
        if (n < 0) {
          return SemanticError("nth indices must be >= 0" + loc);
        }
        out.nth.push_back(static_cast<uint64_t>(n));
      }
      std::sort(out.nth.begin(), out.nth.end());
      out.nth.erase(std::unique(out.nth.begin(), out.nth.end()), out.nth.end());
    } else if (attr.key == "period") {
      OSGUARD_ASSIGN_OR_RETURN(out.period, attr.value.AsInt());
      if (out.period <= 0) {
        return SemanticError("period must be > 0" + loc);
      }
    } else if (attr.key == "burst") {
      OSGUARD_ASSIGN_OR_RETURN(out.burst, attr.value.AsInt());
      if (out.burst <= 0) {
        return SemanticError("burst must be > 0" + loc);
      }
    } else if (attr.key == "latency") {
      OSGUARD_ASSIGN_OR_RETURN(out.latency, attr.value.AsInt());
      if (out.latency < 0) {
        return SemanticError("latency must be >= 0" + loc);
      }
    } else if (attr.key == "value") {
      if (!attr.value.is_numeric()) {
        return SemanticError("value must be a number" + loc);
      }
      out.value = attr.value.NumericOr(0.0);
    } else {
      return SemanticError("unknown chaos site attribute '" + attr.key + "'" + loc);
    }
  }
  const std::string where = " (chaos site '" + site.name + "', line " +
                            std::to_string(site.line) + ")";
  if (!saw_mode) {
    return SemanticError("chaos site must declare a mode" + where);
  }
  switch (out.mode) {
    case ChaosMode::kOff:
      break;
    case ChaosMode::kBernoulli:
      if (out.p <= 0.0) {
        return SemanticError("bernoulli mode needs p > 0" + where);
      }
      break;
    case ChaosMode::kSchedule:
      if (out.nth.empty()) {
        return SemanticError("schedule mode needs a non-empty nth list" + where);
      }
      break;
    case ChaosMode::kBurst:
      if (out.period <= 0 || out.burst <= 0) {
        return SemanticError("burst mode needs period > 0 and burst > 0" + where);
      }
      if (out.burst > out.period) {
        return SemanticError("burst must not exceed period" + where);
      }
      if (out.p <= 0.0) {
        out.p = 1.0;  // a storm with unspecified p injects every in-window event
      }
      break;
  }
  return out;
}

Result<AnalyzedChaos> AnalyzeChaos(const ChaosDecl& decl) {
  AnalyzedChaos out;
  for (const MetaAttr& attr : decl.attrs) {
    const std::string loc = " (chaos block, line " + std::to_string(attr.line) + ")";
    if (attr.key == "seed") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t seed, attr.value.AsInt());
      if (seed < 0) {
        return SemanticError("seed must be >= 0" + loc);
      }
      out.seed = static_cast<uint64_t>(seed);
      out.has_seed = true;
    } else {
      return SemanticError("unknown chaos attribute '" + attr.key + "'" + loc);
    }
  }
  std::unordered_set<std::string> names;
  for (const ChaosSiteDecl& site : decl.sites) {
    if (!names.insert(site.name).second) {
      return SemanticError("duplicate chaos site '" + site.name + "' (line " +
                           std::to_string(site.line) + ")");
    }
    OSGUARD_ASSIGN_OR_RETURN(AnalyzedChaosSite analyzed, AnalyzeChaosSite(site));
    out.sites.push_back(std::move(analyzed));
  }
  return out;
}

Result<AnalyzedPersist> AnalyzePersist(const PersistDecl& decl) {
  AnalyzedPersist out;
  for (const MetaAttr& attr : decl.attrs) {
    const std::string loc = " (persist block, line " + std::to_string(attr.line) + ")";
    if (attr.key == "interval") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t interval, attr.value.AsInt());
      if (interval <= 0) {
        return SemanticError("interval must be a positive duration" + loc);
      }
      out.snapshot_interval = interval;
    } else if (attr.key == "journal_budget") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t budget, attr.value.AsInt());
      if (budget < 0) {
        return SemanticError("journal_budget must be >= 0 bytes (0 = unbounded)" + loc);
      }
      out.journal_budget = static_cast<uint64_t>(budget);
    } else {
      return SemanticError("unknown persist attribute '" + attr.key +
                           "' (expected interval or journal_budget)" + loc);
    }
  }
  return out;
}

Result<AnalyzedRetention> AnalyzeRetention(const RetentionDecl& decl) {
  AnalyzedRetention out;
  for (const MetaAttr& attr : decl.attrs) {
    const std::string loc = " (retention block, line " + std::to_string(attr.line) + ")";
    if (attr.key == "scan_chunk") {
      OSGUARD_ASSIGN_OR_RETURN(int64_t chunk, attr.value.AsInt());
      if (chunk <= 0) {
        return SemanticError("scan_chunk must be > 0 slots" + loc);
      }
      out.scan_chunk = static_cast<uint64_t>(chunk);
    } else {
      return SemanticError("unknown retention attribute '" + attr.key +
                           "' (expected scan_chunk)" + loc);
    }
  }
  std::unordered_set<std::string> prefixes;
  for (const RetentionNamespaceDecl& ns : decl.namespaces) {
    if (ns.prefix.empty()) {
      return SemanticError("retention namespace prefix must not be empty (line " +
                           std::to_string(ns.line) + ")");
    }
    if (!prefixes.insert(ns.prefix).second) {
      return SemanticError("duplicate retention namespace '" + ns.prefix + "' (line " +
                           std::to_string(ns.line) + ")");
    }
    AnalyzedRetentionNamespace out_ns;
    out_ns.prefix = ns.prefix;
    out_ns.line = ns.line;
    for (const MetaAttr& attr : ns.attrs) {
      const std::string loc =
          " (retention namespace '" + ns.prefix + "', line " + std::to_string(attr.line) + ")";
      if (attr.key == "max_keys") {
        OSGUARD_ASSIGN_OR_RETURN(int64_t max_keys, attr.value.AsInt());
        if (max_keys < 0) {
          return SemanticError("max_keys must be >= 0 (0 = no key budget)" + loc);
        }
        out_ns.max_keys = static_cast<uint64_t>(max_keys);
      } else if (attr.key == "idle_ttl") {
        OSGUARD_ASSIGN_OR_RETURN(int64_t ttl, attr.value.AsInt());
        if (ttl < 0) {
          return SemanticError("idle_ttl must be a non-negative duration" + loc);
        }
        out_ns.idle_ttl = ttl;
      } else {
        return SemanticError("unknown retention namespace attribute '" + attr.key +
                             "' (expected max_keys or idle_ttl)" + loc);
      }
    }
    if (out_ns.max_keys == 0 && out_ns.idle_ttl <= 0) {
      return SemanticError("retention namespace '" + ns.prefix +
                           "' declares neither max_keys nor idle_ttl (line " +
                           std::to_string(ns.line) + ")");
    }
    out.namespaces.push_back(std::move(out_ns));
  }
  return out;
}

}  // namespace

Result<Value> EvalConst(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kUnary: {
      OSGUARD_ASSIGN_OR_RETURN(Value operand, EvalConst(*expr.children[0]));
      if (expr.unary_op == UnaryOp::kNeg) {
        if (operand.type() == ValueType::kInt) {
          return Value(-operand.AsInt().value());
        }
        if (operand.type() == ValueType::kFloat) {
          return Value(-operand.AsFloat().value());
        }
        return SemanticError("cannot negate " + operand.ToString());
      }
      OSGUARD_ASSIGN_OR_RETURN(bool b, operand.AsBool());
      return Value(!b);
    }
    case ExprKind::kBinary: {
      OSGUARD_ASSIGN_OR_RETURN(Value lhs, EvalConst(*expr.children[0]));
      OSGUARD_ASSIGN_OR_RETURN(Value rhs, EvalConst(*expr.children[1]));
      const bool both_int =
          lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt;
      const double a = lhs.NumericOr(0.0);
      const double b = rhs.NumericOr(0.0);
      const bool lhs_ok = lhs.is_numeric() || lhs.type() == ValueType::kBool;
      const bool rhs_ok = rhs.is_numeric() || rhs.type() == ValueType::kBool;
      if (!lhs_ok || !rhs_ok) {
        return SemanticError("constant expression needs numeric operands: " + expr.ToString());
      }
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
          return both_int ? Value(lhs.AsInt().value() + rhs.AsInt().value()) : Value(a + b);
        case BinaryOp::kSub:
          return both_int ? Value(lhs.AsInt().value() - rhs.AsInt().value()) : Value(a - b);
        case BinaryOp::kMul:
          return both_int ? Value(lhs.AsInt().value() * rhs.AsInt().value()) : Value(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) {
            return SemanticError("constant division by zero: " + expr.ToString());
          }
          return Value(a / b);
        case BinaryOp::kMod:
          if (b == 0.0) {
            return SemanticError("constant modulo by zero: " + expr.ToString());
          }
          return Value(std::fmod(a, b));
        case BinaryOp::kLt:
          return Value(a < b);
        case BinaryOp::kLe:
          return Value(a <= b);
        case BinaryOp::kGt:
          return Value(a > b);
        case BinaryOp::kGe:
          return Value(a >= b);
        case BinaryOp::kEq:
          return Value(a == b);
        case BinaryOp::kNe:
          return Value(a != b);
        case BinaryOp::kAnd:
          return Value(a != 0.0 && b != 0.0);
        case BinaryOp::kOr:
          return Value(a != 0.0 || b != 0.0);
      }
      return InternalError("unhandled binary op");
    }
    default:
      return SemanticError("expression is not a constant: " + expr.ToString());
  }
}

DslType InferType(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      switch (expr.literal.type()) {
        case ValueType::kInt:
        case ValueType::kFloat:
          return DslType::kNum;
        case ValueType::kBool:
          return DslType::kBool;
        case ValueType::kString:
          return DslType::kStr;
        case ValueType::kList:
          return DslType::kList;
        case ValueType::kNil:
          return DslType::kNil;
      }
      return DslType::kAny;
    case ExprKind::kIdent:
      return DslType::kAny;  // implicit LOAD: dynamically typed
    case ExprKind::kList:
      return DslType::kList;
    case ExprKind::kUnary:
      return expr.unary_op == UnaryOp::kNot ? DslType::kBool : DslType::kNum;
    case ExprKind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return DslType::kNum;
        default:
          return DslType::kBool;
      }
    case ExprKind::kCall: {
      const Builtin* builtin = FindBuiltin(expr.name);
      return builtin != nullptr ? builtin->result : DslType::kAny;
    }
  }
  return DslType::kAny;
}

Result<AnalyzedSpec> Analyze(SpecFile spec) {
  AnalyzedSpec analyzed;
  std::unordered_set<std::string> names;
  for (GuardrailDecl& decl : spec.guardrails) {
    if (!names.insert(decl.name).second) {
      return SemanticError("duplicate guardrail name '" + decl.name + "'");
    }
    for (TriggerDecl& trigger : decl.triggers) {
      switch (trigger.kind) {
        case TriggerKind::kTimer:
          OSGUARD_RETURN_IF_ERROR(FoldTimerTrigger(trigger, decl.name));
          break;
        case TriggerKind::kFunction:
          if (trigger.function_name.empty()) {
            return SemanticError("FUNCTION trigger of guardrail '" + decl.name +
                                 "' names no function");
          }
          break;
        case TriggerKind::kOnChange:
          if (trigger.watch_key.empty()) {
            return SemanticError("ONCHANGE trigger of guardrail '" + decl.name +
                                 "' names no key");
          }
          break;
      }
    }
    for (const ExprPtr& rule : decl.rules) {
      OSGUARD_RETURN_IF_ERROR(CheckExpr(*rule, ExprContext::kRule));
      const DslType type = InferType(*rule);
      if (type == DslType::kStr || type == DslType::kList || type == DslType::kNil) {
        return SemanticError("rule of guardrail '" + decl.name +
                             "' does not evaluate to a truth value: " + rule->ToString());
      }
    }
    for (const ExprPtr& stmt : decl.actions) {
      OSGUARD_RETURN_IF_ERROR(CheckActionStatement(*stmt));
    }
    for (const ExprPtr& stmt : decl.satisfy_actions) {
      OSGUARD_RETURN_IF_ERROR(CheckActionStatement(*stmt));
    }
    AnalyzedGuardrail out;
    OSGUARD_ASSIGN_OR_RETURN(out.meta, AnalyzeMeta(decl));
    OSGUARD_ASSIGN_OR_RETURN(out.meta.health, AnalyzeHealth(decl));
    out.decl = std::move(decl);
    analyzed.guardrails.push_back(std::move(out));
  }
  if (spec.chaos.has_value()) {
    OSGUARD_ASSIGN_OR_RETURN(AnalyzedChaos chaos, AnalyzeChaos(*spec.chaos));
    analyzed.chaos = std::move(chaos);
  }
  if (spec.persist.has_value()) {
    OSGUARD_ASSIGN_OR_RETURN(AnalyzedPersist persist, AnalyzePersist(*spec.persist));
    analyzed.persist = persist;
  }
  if (spec.retention.has_value()) {
    OSGUARD_ASSIGN_OR_RETURN(AnalyzedRetention retention, AnalyzeRetention(*spec.retention));
    analyzed.retention = std::move(retention);
  }
  return analyzed;
}

}  // namespace osguard
