// Registry of the DSL's builtin functions ("helpers" once compiled).
//
// The paper fixes a deliberately small helper surface: feature-store access
// (SAVE/LOAD, §4.3), windowed aggregates (the statistics rules are written
// over), pure math, and the four corrective actions (Figure 1, right table).
// Keeping the list closed is what makes monitors verifiable and lets the
// compiler reason about crash-free semantics — exactly the eBPF-helper model.

#ifndef SRC_DSL_BUILTINS_H_
#define SRC_DSL_BUILTINS_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace osguard {

// Stable helper identifiers; these are the function numbers embedded in
// compiled bytecode, so ordering is part of the bytecode format.
enum class HelperId : uint16_t {
  // Feature store (paper §4.3).
  kLoad = 0,       // LOAD(key) -> value (nil if missing)
  kLoadOr = 1,     // LOAD_OR(key, default) -> value
  kSave = 2,       // SAVE(key, value) -> nil
  kIncr = 3,       // INCR(key [, delta]) -> new value
  kExists = 4,     // EXISTS(key) -> bool
  kObserve = 5,    // OBSERVE(key, sample) -> nil (append to time series)
  // Windowed aggregates over time-series keys.
  kCount = 16,     // COUNT(key, window)
  kSum = 17,
  kMean = 18,
  kMinAgg = 19,
  kMaxAgg = 20,
  kStdDev = 21,
  kRate = 22,      // samples per second
  kNewest = 23,
  kOldest = 24,
  kQuantile = 25,  // QUANTILE(key, q, window)
  // Pure math.
  kAbs = 32,
  kSqrt = 33,
  kLog = 34,
  kExp = 35,
  kFloor = 36,
  kCeil = 37,
  kPow = 38,
  kMin2 = 39,      // MIN2(a, b)
  kMax2 = 40,
  kClamp = 41,     // CLAMP(x, lo, hi)
  // Environment.
  kNow = 48,       // NOW() -> current sim time in ns
  // Corrective actions (Figure 1): only legal in action blocks.
  kReport = 64,        // REPORT(payload...)
  kReplace = 65,       // REPLACE(old_policy, new_policy)
  kRetrain = 66,       // RETRAIN(model [, data_key])
  kDeprioritize = 67,  // DEPRIORITIZE({tasks}, {priorities})
};

// How the compiler treats each argument position.
enum class ArgMode {
  kValue,     // ordinary expression, evaluated to a Value
  kKey,       // bare identifier naming a feature-store key / policy / model;
              // compiled to a string constant
  kNameList,  // brace list of identifiers -> list-of-strings constant
  kValueList, // brace list of expressions -> runtime list value
};

// Coarse result types used by semantic analysis.
enum class DslType {
  kNum,
  kBool,
  kStr,
  kNil,
  kList,
  kAny,
};

std::string_view DslTypeName(DslType type);

struct Builtin {
  HelperId id;
  std::string_view name;
  int min_args;
  int max_args;           // -1 = variadic
  DslType result;
  // Mode for each declared position; variadic tail positions reuse the last
  // entry. Empty means "all kValue".
  std::vector<ArgMode> arg_modes;
  bool is_action;         // only allowed inside action / on_satisfy blocks
};

// Case-sensitive lookup (builtins are conventionally UPPERCASE; quantile
// sugar P50/P90/P95/P99 is resolved by the parser into QUANTILE calls).
const Builtin* FindBuiltin(std::string_view name);

// Lookup by id (for the VM's dispatch metadata and the disassembler).
const Builtin* FindBuiltinById(HelperId id);

// Every registered builtin, for exhaustive tests and documentation dumps.
const std::vector<Builtin>& AllBuiltins();

// Resolves P50/P90/P95/P99 sugar to its quantile, or a negative value if the
// name is not quantile sugar.
double QuantileSugar(std::string_view name);

}  // namespace osguard

#endif  // SRC_DSL_BUILTINS_H_
