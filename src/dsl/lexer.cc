#include "src/dsl/lexer.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "src/support/time.h"

namespace osguard {
namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* keywords = new std::unordered_map<std::string, TokenKind>{
      {"guardrail", TokenKind::kGuardrail},
      {"trigger", TokenKind::kTrigger},
      {"rule", TokenKind::kRule},
      {"action", TokenKind::kAction},
      {"on_satisfy", TokenKind::kOnSatisfy},
      {"meta", TokenKind::kMeta},
      {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},
  };
  return *keywords;
}

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Lexer::Lexer(std::string source) : source_(std::move(source)) {}

char Lexer::Peek(int ahead) const {
  const size_t i = pos_ + static_cast<size_t>(ahead);
  return i < source_.size() ? source_[i] : '\0';
}

char Lexer::Advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::ErrorHere(const std::string& message) const {
  return ParseError(message + " at line " + std::to_string(line_) + ", column " +
                    std::to_string(column_));
}

Status Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    const char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') {
        Advance();
      }
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      bool closed = false;
      while (!AtEnd()) {
        if (Peek() == '*' && Peek(1) == '/') {
          Advance();
          Advance();
          closed = true;
          break;
        }
        Advance();
      }
      if (!closed) {
        return ErrorHere("unterminated block comment");
      }
    } else {
      break;
    }
  }
  return OkStatus();
}

Token Lexer::Make(TokenKind kind, std::string text) {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  token.line = token_line_;
  token.column = token_column_;
  return token;
}

Result<Token> Lexer::LexNumber() {
  std::string digits;
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(Peek()))) {
    digits += Advance();
  }
  if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
    is_float = true;
    digits += Advance();
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
  }
  if (Peek() == 'e' || Peek() == 'E') {
    const char next = Peek(1);
    const char next2 = Peek(2);
    if (std::isdigit(static_cast<unsigned char>(next)) ||
        ((next == '+' || next == '-') && std::isdigit(static_cast<unsigned char>(next2)))) {
      is_float = true;
      digits += Advance();  // e
      if (Peek() == '+' || Peek() == '-') {
        digits += Advance();
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
    }
  }

  // Duration suffix: ns / us / ms / s / m (minutes). Checked longest-first.
  Duration unit = 0;
  std::string suffix;
  auto take_suffix = [&](const char* s, Duration u) {
    const size_t len = std::string_view(s).size();
    for (size_t i = 0; i < len; ++i) {
      if (Peek(static_cast<int>(i)) != s[i]) {
        return false;
      }
    }
    // Suffix must not be followed by more identifier characters (e.g. `5str`).
    if (IsIdentCont(Peek(static_cast<int>(len)))) {
      return false;
    }
    for (size_t i = 0; i < len; ++i) {
      Advance();
    }
    suffix = s;
    unit = u;
    return true;
  };
  const bool has_unit = take_suffix("ns", kNanosecond) || take_suffix("us", kMicrosecond) ||
                        take_suffix("ms", kMillisecond) || take_suffix("s", kSecond) ||
                        take_suffix("m", kMinute);

  if (has_unit) {
    const double scaled = std::strtod(digits.c_str(), nullptr) * static_cast<double>(unit);
    if (!std::isfinite(scaled) || std::abs(scaled) > 9.2e18) {
      return ErrorHere("duration literal overflows");
    }
    Token token = Make(TokenKind::kDurationLiteral, digits + suffix);
    token.int_value = static_cast<int64_t>(scaled);
    return token;
  }
  if (is_float) {
    Token token = Make(TokenKind::kFloatLiteral, digits);
    token.float_value = std::strtod(digits.c_str(), nullptr);
    return token;
  }
  errno = 0;
  const long long parsed = std::strtoll(digits.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return ErrorHere("integer literal overflows");
  }
  Token token = Make(TokenKind::kIntLiteral, digits);
  token.int_value = parsed;
  return token;
}

Result<Token> Lexer::LexIdentOrKeyword() {
  // Identifiers may contain interior dots for namespaced feature-store keys
  // ("blk.ml_enabled"); a dot is consumed only when an identifier character
  // follows, so a trailing dot is never swallowed.
  std::string text;
  while (true) {
    if (IsIdentCont(Peek())) {
      text += Advance();
    } else if (Peek() == '.' && IsIdentStart(Peek(1))) {
      text += Advance();
      text += Advance();
    } else {
      break;
    }
  }
  auto it = Keywords().find(text);
  if (it != Keywords().end()) {
    return Make(it->second, std::move(text));
  }
  return Make(TokenKind::kIdent, std::move(text));
}

Result<Token> Lexer::LexString() {
  Advance();  // opening quote
  std::string text;
  while (!AtEnd() && Peek() != '"') {
    char c = Advance();
    if (c == '\\') {
      if (AtEnd()) {
        break;
      }
      const char esc = Advance();
      switch (esc) {
        case 'n':
          text += '\n';
          break;
        case 't':
          text += '\t';
          break;
        case '\\':
          text += '\\';
          break;
        case '"':
          text += '"';
          break;
        default:
          return ErrorHere(std::string("unknown escape '\\") + esc + "'");
      }
    } else {
      text += c;
    }
  }
  if (AtEnd()) {
    return ErrorHere("unterminated string literal");
  }
  Advance();  // closing quote
  return Make(TokenKind::kStringLiteral, std::move(text));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    OSGUARD_RETURN_IF_ERROR(SkipWhitespaceAndComments());
    token_line_ = line_;
    token_column_ = column_;
    if (AtEnd()) {
      tokens.push_back(Make(TokenKind::kEof, ""));
      return tokens;
    }
    const char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      OSGUARD_ASSIGN_OR_RETURN(Token token, LexNumber());
      tokens.push_back(std::move(token));
      continue;
    }
    if (IsIdentStart(c)) {
      OSGUARD_ASSIGN_OR_RETURN(Token token, LexIdentOrKeyword());
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '"') {
      OSGUARD_ASSIGN_OR_RETURN(Token token, LexString());
      tokens.push_back(std::move(token));
      continue;
    }
    Advance();
    TokenKind kind;
    switch (c) {
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case '/':
        kind = TokenKind::kSlash;
        break;
      case '%':
        kind = TokenKind::kPercent;
        break;
      case '<':
        if (Peek() == '=') {
          Advance();
          kind = TokenKind::kLe;
        } else {
          kind = TokenKind::kLt;
        }
        break;
      case '>':
        if (Peek() == '=') {
          Advance();
          kind = TokenKind::kGe;
        } else {
          kind = TokenKind::kGt;
        }
        break;
      case '=':
        if (Peek() == '=') {
          Advance();
          kind = TokenKind::kEq;
        } else {
          kind = TokenKind::kAssign;
        }
        break;
      case '!':
        if (Peek() == '=') {
          Advance();
          kind = TokenKind::kNe;
        } else {
          kind = TokenKind::kBang;
        }
        break;
      case '&':
        if (Peek() == '&') {
          Advance();
          kind = TokenKind::kAndAnd;
        } else {
          return ErrorHere("stray '&' (did you mean '&&'?)");
        }
        break;
      case '|':
        if (Peek() == '|') {
          Advance();
          kind = TokenKind::kOrOr;
        } else {
          return ErrorHere("stray '|' (did you mean '||'?)");
        }
        break;
      default:
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(Make(kind, std::string(1, c)));
  }
}

}  // namespace osguard
