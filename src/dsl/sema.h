// Semantic analysis for guardrail specs.
//
// Validates a parsed SpecFile and produces an AnalyzedSpec ready for
// compilation:
//  * TIMER arguments must constant-fold to sane values (interval > 0, ...).
//  * Rule expressions must be side-effect free (no actions, no SAVE/INCR)
//    and evaluate to a truth value.
//  * Action statements must be calls to action builtins or store mutations
//    (SAVE — as in Listing 2 — INCR, OBSERVE, and REPORT).
//  * Builtin arity and argument modes are enforced: key positions take bare
//    identifiers or string literals, DEPRIORITIZE takes brace lists.
//  * meta attributes are restricted to a known vocabulary (severity,
//    cooldown, hysteresis, enabled, description) to catch typos early.
//  * chaos blocks are validated the same way: known site attributes only,
//    mode in {off, bernoulli, schedule, burst}, p in [0, 1], sane windows.

#ifndef SRC_DSL_SEMA_H_
#define SRC_DSL_SEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/dsl/ast.h"
#include "src/dsl/builtins.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

enum class Severity {
  kInfo = 0,
  kWarning = 1,
  kCritical = 2,
};

std::string_view SeverityName(Severity severity);

// Validated supervisor attributes from the `health: { ... }` block. The
// presence of the block (supervised = true) places the guardrail under the
// runtime supervisor: budget enforcement, health scoring, circuit-breaker
// quarantine, and (on replace-by-name) probation with auto-rollback.
struct GuardrailHealth {
  bool supervised = false;
  // Per-evaluation VM step budget applied to the rule and action programs;
  // 0 = no step cap beyond the structural verifier bound.
  int64_t budget_steps = 0;
  // Per-evaluation wall-time budget (ns, coarse-grained); 0 = none.
  Duration budget_ns = 0;
  // Trip-flap detector: more than flap_threshold violated<->satisfied
  // transitions inside flap_window counts as a failure event.
  Duration flap_window = Seconds(60);
  int flap_threshold = 8;
  // Circuit breaker: consecutive failure events that open it, probe cadence
  // while open (every Nth suppressed trigger runs half-open), and the number
  // of consecutive clean probes that close it again.
  int quarantine = 3;
  int probe_every = 8;
  int reinstate = 2;
  // Staged deployment: when > 0, a replace-by-name load runs in probation for
  // this window and is rolled back if its health regresses; 0 = no probation.
  Duration probation = 0;
  // EWMA smoothing factor for the failure/cost health scores, in (0, 1].
  double ewma_alpha = 0.2;
};

// Per-guardrail execution-tier hint from the meta block: `auto` (default)
// lets the engine promote hot monitors to the native AOT tier, `interpreter`
// pins the monitor to the bytecode VM, `native` asks for promotion at the
// first evaluation. Purely a scheduling hint — results are tier-invariant.
enum class TierHint {
  kAuto = 0,
  kInterpreter,
  kNative,
};

std::string_view TierHintName(TierHint tier);

// Per-guardrail overload class from the meta block: under load shedding
// (src/runtime/governor) `critical` monitors are never skipped, `standard`
// monitors are shed only in the critical-only and fail-static ladder modes,
// and `besteffort` monitors are the first to degrade (deterministically
// sampled, then shed). Purely a scheduling class — with the governor off
// (the default) it changes nothing.
enum class Criticality {
  kStandard = 0,
  kCritical,
  kBestEffort,
};

std::string_view CriticalityName(Criticality criticality);

// Validated per-guardrail attributes from the meta block (with defaults).
struct GuardrailMeta {
  Severity severity = Severity::kWarning;
  // Minimum time between consecutive action firings; 0 = fire every
  // violation. This is the damping knob for the feedback-loop problem the
  // paper raises in §6.
  Duration cooldown = 0;
  // Number of consecutive violated evaluations required before actions run
  // (1 = act immediately).
  int hysteresis = 1;
  bool enabled = true;
  std::string description;
  TierHint tier = TierHint::kAuto;
  Criticality criticality = Criticality::kStandard;
  // Supervisor configuration (default: unsupervised). Carried inside meta so
  // it flows through compilation to the runtime untouched.
  GuardrailHealth health;
};

struct AnalyzedGuardrail {
  GuardrailDecl decl;       // triggers constant-folded
  GuardrailMeta meta;
};

// How a chaos site decides whether to inject (mirrors osguard::FaultMode;
// the chaos library converts — sema cannot depend on src/chaos).
enum class ChaosMode {
  kOff = 0,
  kBernoulli,
  kSchedule,
  kBurst,
};

std::string_view ChaosModeName(ChaosMode mode);

// A validated `site name { ... }` entry from a chaos block.
struct AnalyzedChaosSite {
  std::string name;
  ChaosMode mode = ChaosMode::kBernoulli;
  double p = 0.0;              // bernoulli / burst in-window probability
  std::vector<uint64_t> nth;   // schedule indices (sorted, deduped)
  Duration period = 0;         // burst cycle
  Duration burst = 0;          // burst window
  Duration latency = 0;        // injected magnitude
  double value = 0.0;          // generic magnitude payload
};

// A validated `chaos { ... }` block.
struct AnalyzedChaos {
  bool has_seed = false;
  uint64_t seed = 0;
  std::vector<AnalyzedChaosSite> sites;
};

// A validated `persist { ... }` block (osguard::persist configuration).
// Defaults mirror PersistOptions; absence of the block means persistence
// stays off entirely.
struct AnalyzedPersist {
  Duration snapshot_interval = Seconds(10);  // <= 0 disables periodic snapshots
  uint64_t journal_budget = 1 << 20;         // bytes; 0 = unbounded journal
};

// A validated `namespace "prefix" { ... }` entry from a retention block.
struct AnalyzedRetentionNamespace {
  std::string prefix;
  uint64_t max_keys = 0;   // 0 = no key budget (TTL only)
  Duration idle_ttl = 0;   // <= 0 = no idle reclamation (quota only)
  int line = 0;
};

// A validated `retention { ... }` block (bounded-memory key lifecycle,
// docs/STORE.md). Absence of the block means reclamation stays off.
struct AnalyzedRetention {
  uint64_t scan_chunk = 64;  // slots examined per callout boundary
  std::vector<AnalyzedRetentionNamespace> namespaces;
};

struct AnalyzedSpec {
  std::vector<AnalyzedGuardrail> guardrails;
  std::optional<AnalyzedChaos> chaos;
  std::optional<AnalyzedPersist> persist;
  std::optional<AnalyzedRetention> retention;
};

// Consumes the spec (triggers are folded in place).
Result<AnalyzedSpec> Analyze(SpecFile spec);

// Constant-folds an expression composed of literals, unary minus/not, and
// arithmetic; anything else (idents, calls) is an error. Exposed for tests
// and for the compiler's own folding.
Result<Value> EvalConst(const Expr& expr);

// Infers the coarse type of an expression, assuming it has already passed
// CheckExpr. LOAD and friends are kAny.
DslType InferType(const Expr& expr);

}  // namespace osguard

#endif  // SRC_DSL_SEMA_H_
