// Recursive-descent parser for the guardrail DSL.
//
// Grammar (extends Listing 1 / Listing 2 of the paper):
//
//   spec       := (guardrail | chaos | persist)*
//   guardrail  := "guardrail" IDENT "{" section* "}"
//   chaos      := "chaos" "{" (attr | site)* "}"        -- fault injection
//   persist    := "persist" "{" attr* "}"               -- crash consistency
//   site       := "site" IDENT "{" attr* "}"
//   attr       := IDENT "=" (literal | "{" literal-list "}")
//   section    := "trigger"    ":" "{" trigger ("," trigger)* [","] "}"
//              |  "rule"       ":" "{" expr ("," expr)* [","] "}"
//              |  "action"     ":" "{" stmt* "}"
//              |  "on_satisfy" ":" "{" stmt* "}"
//              |  "meta"       ":" "{" (IDENT "=" literal [","|";"])* "}"
//              |  "health"     ":" "{" (attr [","|";"])* "}"   -- supervisor
//   trigger    := "TIMER" "(" expr "," expr ["," expr] ")"
//              |  "FUNCTION" "(" IDENT ")"
//   stmt       := call [";"]
//   expr       := or-chain of and-chains of comparisons of additive terms
//   primary    := literal | IDENT | call | "(" expr ")" | "{" exprlist "}"
//   call       := IDENT "(" [expr ("," expr)*] ")"
//
// Notes:
//  * Bare identifiers in rule expressions are implicit LOADs of feature-store
//    keys, so `latency <= 20ms` works as the paper writes it.
//  * Duration literals (1s, 250ms, 1e9) are int nanoseconds.
//  * Comparisons are non-associative (a < b < c is a parse error).

#ifndef SRC_DSL_PARSER_H_
#define SRC_DSL_PARSER_H_

#include <string>
#include <vector>

#include "src/dsl/ast.h"
#include "src/dsl/token.h"
#include "src/support/status.h"

namespace osguard {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  // Parses a complete spec file (one or more guardrail declarations).
  Result<SpecFile> ParseSpec();

  // Parses a single standalone expression (used by tests and the property
  // library's programmatic rule construction).
  Result<ExprPtr> ParseExpressionOnly();

 private:
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind);
  Result<Token> Expect(TokenKind kind, const std::string& context);
  Status ErrorAt(const Token& token, const std::string& message) const;

  Result<GuardrailDecl> ParseGuardrail();
  Status ParseTriggerSection(GuardrailDecl& decl);
  Status ParseRuleSection(GuardrailDecl& decl);
  Status ParseActionSection(std::vector<ExprPtr>& out);
  Status ParseMetaSection(GuardrailDecl& decl);
  Status ParseHealthSection(GuardrailDecl& decl);
  Result<TriggerDecl> ParseTrigger();
  Result<ChaosDecl> ParseChaosBlock();
  Result<PersistDecl> ParsePersistBlock();
  Result<RetentionDecl> ParseRetentionBlock();
  Result<MetaAttr> ParseAttr(const char* context);

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseCall(Token name_token);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Convenience: lex + parse a spec source string.
Result<SpecFile> ParseSpecSource(const std::string& source);

// Convenience: lex + parse a single expression.
Result<ExprPtr> ParseExprSource(const std::string& source);

}  // namespace osguard

#endif  // SRC_DSL_PARSER_H_
