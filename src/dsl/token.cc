#include "src/dsl/token.h"

namespace osguard {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "<eof>";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer";
    case TokenKind::kFloatLiteral:
      return "float";
    case TokenKind::kDurationLiteral:
      return "duration";
    case TokenKind::kStringLiteral:
      return "string";
    case TokenKind::kTrue:
      return "'true'";
    case TokenKind::kFalse:
      return "'false'";
    case TokenKind::kGuardrail:
      return "'guardrail'";
    case TokenKind::kTrigger:
      return "'trigger'";
    case TokenKind::kRule:
      return "'rule'";
    case TokenKind::kAction:
      return "'action'";
    case TokenKind::kOnSatisfy:
      return "'on_satisfy'";
    case TokenKind::kMeta:
      return "'meta'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kAndAnd:
      return "'&&'";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kBang:
      return "'!'";
  }
  return "?";
}

std::string Token::Describe() const {
  std::string out(TokenKindName(kind));
  if (kind == TokenKind::kIdent || kind == TokenKind::kIntLiteral ||
      kind == TokenKind::kFloatLiteral || kind == TokenKind::kDurationLiteral ||
      kind == TokenKind::kStringLiteral) {
    out += " '" + text + "'";
  }
  return out;
}

}  // namespace osguard
