#include "src/dsl/parser.h"

#include "src/dsl/builtins.h"
#include "src/dsl/lexer.h"

namespace osguard {

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
  if (tokens_.empty() || tokens_.back().kind != TokenKind::kEof) {
    Token eof;
    eof.kind = TokenKind::kEof;
    tokens_.push_back(eof);
  }
}

const Token& Parser::Peek(int ahead) const {
  const size_t i = pos_ + static_cast<size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return token;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ErrorAt(const Token& token, const std::string& message) const {
  return ParseError(message + " (found " + token.Describe() + " at line " +
                    std::to_string(token.line) + ", column " + std::to_string(token.column) + ")");
}

Result<Token> Parser::Expect(TokenKind kind, const std::string& context) {
  if (!Check(kind)) {
    return ErrorAt(Peek(), "expected " + std::string(TokenKindName(kind)) + " " + context);
  }
  return Advance();
}

Result<SpecFile> Parser::ParseSpec() {
  SpecFile spec;
  while (!Check(TokenKind::kEof)) {
    // `chaos` is a contextual keyword: only `chaos {` at the top level opens
    // a chaos block, so feature-store keys named "chaos" keep working.
    if (Check(TokenKind::kIdent) && Peek().text == "chaos" &&
        Peek(1).kind == TokenKind::kLBrace) {
      if (spec.chaos.has_value()) {
        return ErrorAt(Peek(), "duplicate chaos block");
      }
      OSGUARD_ASSIGN_OR_RETURN(ChaosDecl chaos, ParseChaosBlock());
      spec.chaos = std::move(chaos);
      continue;
    }
    // `persist` is contextual the same way.
    if (Check(TokenKind::kIdent) && Peek().text == "persist" &&
        Peek(1).kind == TokenKind::kLBrace) {
      if (spec.persist.has_value()) {
        return ErrorAt(Peek(), "duplicate persist block");
      }
      OSGUARD_ASSIGN_OR_RETURN(PersistDecl persist, ParsePersistBlock());
      spec.persist = std::move(persist);
      continue;
    }
    // `retention` is contextual the same way.
    if (Check(TokenKind::kIdent) && Peek().text == "retention" &&
        Peek(1).kind == TokenKind::kLBrace) {
      if (spec.retention.has_value()) {
        return ErrorAt(Peek(), "duplicate retention block");
      }
      OSGUARD_ASSIGN_OR_RETURN(RetentionDecl retention, ParseRetentionBlock());
      spec.retention = std::move(retention);
      continue;
    }
    OSGUARD_ASSIGN_OR_RETURN(GuardrailDecl decl, ParseGuardrail());
    spec.guardrails.push_back(std::move(decl));
  }
  if (spec.guardrails.empty() && !spec.chaos.has_value() && !spec.persist.has_value() &&
      !spec.retention.has_value()) {
    return ParseError(
        "spec file contains no guardrail declarations (and no chaos, persist, "
        "or retention block) at line 1");
  }
  return spec;
}

Result<ExprPtr> Parser::ParseExpressionOnly() {
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  if (!Check(TokenKind::kEof)) {
    return ErrorAt(Peek(), "unexpected trailing input after expression");
  }
  return expr;
}

Result<GuardrailDecl> Parser::ParseGuardrail() {
  OSGUARD_ASSIGN_OR_RETURN(Token kw, Expect(TokenKind::kGuardrail, "to start a declaration"));
  GuardrailDecl decl;
  decl.line = kw.line;
  // Guardrail names may be identifiers with dashes (the paper writes
  // `guardrail low-false-submit`): accept IDENT ("-" IDENT)*.
  OSGUARD_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "as the guardrail name"));
  decl.name = name.text;
  // Keywords may appear as name segments ("low-false-submit" contains the
  // token `false`), so accept any word-like token after a dash.
  auto is_name_segment = [](TokenKind kind) {
    return kind == TokenKind::kIdent || kind == TokenKind::kTrue ||
           kind == TokenKind::kFalse || kind == TokenKind::kRule ||
           kind == TokenKind::kTrigger || kind == TokenKind::kAction ||
           kind == TokenKind::kMeta || kind == TokenKind::kGuardrail;
  };
  while (Check(TokenKind::kMinus) && is_name_segment(Peek(1).kind)) {
    Advance();
    decl.name += "-";
    decl.name += Advance().text;
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the guardrail body").status());

  bool saw_trigger = false;
  bool saw_rule = false;
  bool saw_action = false;
  while (!Check(TokenKind::kRBrace)) {
    const Token& section = Peek();
    switch (section.kind) {
      case TokenKind::kTrigger:
        if (saw_trigger) {
          return ErrorAt(section, "duplicate trigger section");
        }
        saw_trigger = true;
        Advance();
        OSGUARD_RETURN_IF_ERROR(ParseTriggerSection(decl));
        break;
      case TokenKind::kRule:
        if (saw_rule) {
          return ErrorAt(section, "duplicate rule section");
        }
        saw_rule = true;
        Advance();
        OSGUARD_RETURN_IF_ERROR(ParseRuleSection(decl));
        break;
      case TokenKind::kAction:
        if (saw_action) {
          return ErrorAt(section, "duplicate action section");
        }
        saw_action = true;
        Advance();
        OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after 'action'").status());
        OSGUARD_RETURN_IF_ERROR(ParseActionSection(decl.actions));
        break;
      case TokenKind::kOnSatisfy:
        if (!decl.satisfy_actions.empty()) {
          return ErrorAt(section, "duplicate on_satisfy section");
        }
        Advance();
        OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after 'on_satisfy'").status());
        OSGUARD_RETURN_IF_ERROR(ParseActionSection(decl.satisfy_actions));
        break;
      case TokenKind::kMeta:
        if (!decl.meta.empty()) {
          return ErrorAt(section, "duplicate meta section");
        }
        Advance();
        OSGUARD_RETURN_IF_ERROR(ParseMetaSection(decl));
        break;
      default:
        // `health` is contextual (an ident, not a keyword) so specs remain
        // free to use it as a store key or guardrail-name segment.
        if (section.kind == TokenKind::kIdent && section.text == "health") {
          if (decl.has_health) {
            return ErrorAt(section, "duplicate health section");
          }
          decl.has_health = true;
          Advance();
          OSGUARD_RETURN_IF_ERROR(ParseHealthSection(decl));
          break;
        }
        return ErrorAt(section,
                       "expected a section (trigger / rule / action / on_satisfy / meta / health)");
    }
    Match(TokenKind::kComma);  // optional separator between sections
  }
  Advance();  // consume '}'

  if (!saw_trigger) {
    return ParseError("guardrail '" + decl.name + "' (line " +
                      std::to_string(decl.line) + ") has no trigger section");
  }
  if (!saw_rule) {
    return ParseError("guardrail '" + decl.name + "' (line " +
                      std::to_string(decl.line) + ") has no rule section");
  }
  if (!saw_action) {
    return ParseError("guardrail '" + decl.name + "' (line " +
                      std::to_string(decl.line) + ") has no action section");
  }
  return decl;
}

Status Parser::ParseTriggerSection(GuardrailDecl& decl) {
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after 'trigger'").status());
  OSGUARD_ASSIGN_OR_RETURN(Token open,
                           Expect(TokenKind::kLBrace, "to open the trigger block"));
  while (!Check(TokenKind::kRBrace)) {
    auto trigger = ParseTrigger();
    OSGUARD_RETURN_IF_ERROR(trigger.status());
    decl.triggers.push_back(std::move(trigger).value());
    if (!Match(TokenKind::kComma)) {
      break;
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the trigger block").status());
  if (decl.triggers.empty()) {
    return ParseError("trigger block of guardrail '" + decl.name + "' is empty (line " +
                      std::to_string(open.line) + ")");
  }
  return OkStatus();
}

Result<TriggerDecl> Parser::ParseTrigger() {
  OSGUARD_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "as the trigger kind"));
  TriggerDecl trigger;
  trigger.line = name.line;
  if (name.text == "TIMER") {
    trigger.kind = TriggerKind::kTimer;
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after TIMER").status());
    while (!Check(TokenKind::kRParen)) {
      OSGUARD_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      trigger.args.push_back(std::move(arg));
      if (!Match(TokenKind::kComma)) {
        break;
      }
    }
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close TIMER arguments").status());
    if (trigger.args.size() < 2 || trigger.args.size() > 3) {
      return ErrorAt(name, "TIMER takes (start_time, interval [, stop_time])");
    }
    return trigger;
  }
  if (name.text == "FUNCTION") {
    trigger.kind = TriggerKind::kFunction;
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after FUNCTION").status());
    OSGUARD_ASSIGN_OR_RETURN(Token fn, Expect(TokenKind::kIdent, "as the hooked function name"));
    trigger.function_name = fn.text;
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close FUNCTION").status());
    return trigger;
  }
  if (name.text == "ONCHANGE") {
    trigger.kind = TriggerKind::kOnChange;
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after ONCHANGE").status());
    OSGUARD_ASSIGN_OR_RETURN(Token key, Expect(TokenKind::kIdent, "as the watched key"));
    trigger.watch_key = key.text;
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close ONCHANGE").status());
    return trigger;
  }
  return ErrorAt(name, "unknown trigger kind '" + name.text +
                           "' (expected TIMER, FUNCTION, or ONCHANGE)");
}

Status Parser::ParseRuleSection(GuardrailDecl& decl) {
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after 'rule'").status());
  OSGUARD_ASSIGN_OR_RETURN(Token open,
                           Expect(TokenKind::kLBrace, "to open the rule block"));
  while (!Check(TokenKind::kRBrace)) {
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr rule, ParseExpr());
    decl.rules.push_back(std::move(rule));
    if (!Match(TokenKind::kComma)) {
      break;
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the rule block").status());
  if (decl.rules.empty()) {
    return ParseError("rule block of guardrail '" + decl.name + "' is empty (line " +
                      std::to_string(open.line) + ")");
  }
  return OkStatus();
}

Status Parser::ParseActionSection(std::vector<ExprPtr>& out) {
  OSGUARD_ASSIGN_OR_RETURN(Token open,
                           Expect(TokenKind::kLBrace, "to open the action block"));
  while (!Check(TokenKind::kRBrace)) {
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr stmt, ParseExpr());
    if (stmt->kind != ExprKind::kCall) {
      return ParseError("action statements must be calls, got: " + stmt->ToString() +
                        " (line " + std::to_string(stmt->line) + ")");
    }
    out.push_back(std::move(stmt));
    // Statements may be separated by ';' or ','; both optional before '}'.
    if (!Match(TokenKind::kSemicolon)) {
      Match(TokenKind::kComma);
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the action block").status());
  if (out.empty()) {
    return ParseError("action block is empty (line " + std::to_string(open.line) + ")");
  }
  return OkStatus();
}

Status Parser::ParseMetaSection(GuardrailDecl& decl) {
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after 'meta'").status());
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the meta block").status());
  while (!Check(TokenKind::kRBrace)) {
    OSGUARD_ASSIGN_OR_RETURN(Token key, Expect(TokenKind::kIdent, "as a meta attribute name"));
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kAssign, "after the attribute name").status());
    MetaAttr attr;
    attr.key = key.text;
    attr.line = key.line;
    const Token& value = Peek();
    switch (value.kind) {
      case TokenKind::kIntLiteral:
      case TokenKind::kDurationLiteral:
        attr.value = Value(value.int_value);
        break;
      case TokenKind::kFloatLiteral:
        attr.value = Value(value.float_value);
        break;
      case TokenKind::kTrue:
        attr.value = Value(true);
        break;
      case TokenKind::kFalse:
        attr.value = Value(false);
        break;
      case TokenKind::kStringLiteral:
        attr.value = Value(value.text);
        break;
      case TokenKind::kIdent:
        attr.value = Value(value.text);  // bare words as strings: severity = warning
        break;
      default:
        return ErrorAt(value, "meta attribute values must be literals");
    }
    Advance();
    decl.meta.push_back(std::move(attr));
    if (!Match(TokenKind::kComma)) {
      Match(TokenKind::kSemicolon);
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the meta block").status());
  return OkStatus();
}

// health := "health" ":" "{" (attr [","|";"])* "}"
// Supervisor attributes (budget_steps, quarantine, probation, ...); the
// vocabulary and value ranges are validated by semantic analysis.
Status Parser::ParseHealthSection(GuardrailDecl& decl) {
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "after 'health'").status());
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the health block").status());
  while (!Check(TokenKind::kRBrace)) {
    OSGUARD_ASSIGN_OR_RETURN(MetaAttr attr, ParseAttr("health"));
    decl.health.push_back(std::move(attr));
    if (!Match(TokenKind::kComma)) {
      Match(TokenKind::kSemicolon);
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the health block").status());
  return OkStatus();
}

// attr := IDENT "=" (literal | "{" literal ("," literal)* [","] "}")
// Shared by chaos blocks; bare-word values become strings (mode = bernoulli)
// exactly as in meta sections.
Result<MetaAttr> Parser::ParseAttr(const char* context) {
  OSGUARD_ASSIGN_OR_RETURN(
      Token key, Expect(TokenKind::kIdent, std::string("as a ") + context + " attribute name"));
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kAssign, "after the attribute name").status());
  MetaAttr attr;
  attr.key = key.text;
  attr.line = key.line;

  auto literal_value = [this](const Token& token) -> Result<Value> {
    switch (token.kind) {
      case TokenKind::kIntLiteral:
      case TokenKind::kDurationLiteral:
        return Value(token.int_value);
      case TokenKind::kFloatLiteral:
        return Value(token.float_value);
      case TokenKind::kTrue:
        return Value(true);
      case TokenKind::kFalse:
        return Value(false);
      case TokenKind::kStringLiteral:
      case TokenKind::kIdent:
        return Value(token.text);
      default:
        return ErrorAt(token, std::string("attribute values must be literals"));
    }
  };

  if (Check(TokenKind::kLBrace)) {
    // {10, 20, 30} — list-valued attribute (the schedule mode's `nth`).
    Advance();
    std::vector<Value> elements;
    while (!Check(TokenKind::kRBrace)) {
      OSGUARD_ASSIGN_OR_RETURN(Value element, literal_value(Peek()));
      Advance();
      elements.push_back(std::move(element));
      if (!Match(TokenKind::kComma)) {
        break;
      }
    }
    OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the attribute list").status());
    attr.value = Value(std::move(elements));
  } else {
    OSGUARD_ASSIGN_OR_RETURN(attr.value, literal_value(Peek()));
    Advance();
  }
  return attr;
}

// chaos := "chaos" "{" (attr | site)* "}"
// site  := "site" IDENT "{" attr* "}"
Result<ChaosDecl> Parser::ParseChaosBlock() {
  ChaosDecl decl;
  decl.line = Peek().line;
  Advance();  // consume 'chaos'
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the chaos block").status());
  while (!Check(TokenKind::kRBrace)) {
    if (Check(TokenKind::kIdent) && Peek().text == "site") {
      const Token& site_kw = Advance();
      ChaosSiteDecl site;
      site.line = site_kw.line;
      OSGUARD_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "as the chaos site name"));
      site.name = name.text;
      OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the site body").status());
      while (!Check(TokenKind::kRBrace)) {
        OSGUARD_ASSIGN_OR_RETURN(MetaAttr attr, ParseAttr("chaos site"));
        site.attrs.push_back(std::move(attr));
        if (!Match(TokenKind::kComma)) {
          Match(TokenKind::kSemicolon);
        }
      }
      OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the site body").status());
      decl.sites.push_back(std::move(site));
    } else {
      OSGUARD_ASSIGN_OR_RETURN(MetaAttr attr, ParseAttr("chaos"));
      decl.attrs.push_back(std::move(attr));
    }
    if (!Match(TokenKind::kComma)) {
      Match(TokenKind::kSemicolon);
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the chaos block").status());
  return decl;
}

// persist := "persist" "{" attr* "}"
Result<PersistDecl> Parser::ParsePersistBlock() {
  PersistDecl decl;
  decl.line = Peek().line;
  Advance();  // consume 'persist'
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the persist block").status());
  while (!Check(TokenKind::kRBrace)) {
    OSGUARD_ASSIGN_OR_RETURN(MetaAttr attr, ParseAttr("persist"));
    decl.attrs.push_back(std::move(attr));
    if (!Match(TokenKind::kComma)) {
      Match(TokenKind::kSemicolon);
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the persist block").status());
  return decl;
}

// retention := "retention" "{" (attr | namespace)* "}"
// namespace := "namespace" STRING "{" attr* "}"
// The prefix is a string literal because namespaces contain dots
// ("agent.s"), which the identifier grammar would split.
Result<RetentionDecl> Parser::ParseRetentionBlock() {
  RetentionDecl decl;
  decl.line = Peek().line;
  Advance();  // consume 'retention'
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the retention block").status());
  while (!Check(TokenKind::kRBrace)) {
    if (Check(TokenKind::kIdent) && Peek().text == "namespace") {
      const Token& ns_kw = Advance();
      RetentionNamespaceDecl ns;
      ns.line = ns_kw.line;
      OSGUARD_ASSIGN_OR_RETURN(
          Token prefix,
          Expect(TokenKind::kStringLiteral, "as the retention namespace prefix"));
      ns.prefix = prefix.text;
      OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open the namespace body").status());
      while (!Check(TokenKind::kRBrace)) {
        OSGUARD_ASSIGN_OR_RETURN(MetaAttr attr, ParseAttr("retention namespace"));
        ns.attrs.push_back(std::move(attr));
        if (!Match(TokenKind::kComma)) {
          Match(TokenKind::kSemicolon);
        }
      }
      OSGUARD_RETURN_IF_ERROR(
          Expect(TokenKind::kRBrace, "to close the namespace body").status());
      decl.namespaces.push_back(std::move(ns));
    } else {
      OSGUARD_ASSIGN_OR_RETURN(MetaAttr attr, ParseAttr("retention"));
      decl.attrs.push_back(std::move(attr));
    }
    if (!Match(TokenKind::kComma)) {
      Match(TokenKind::kSemicolon);
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the retention block").status());
  return decl;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (Check(TokenKind::kOrOr)) {
    const Token& op = Advance();
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs), op.line, op.column);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
  while (Check(TokenKind::kAndAnd)) {
    const Token& op = Advance();
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs), op.line, op.column);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseComparison() {
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  BinaryOp op;
  switch (Peek().kind) {
    case TokenKind::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenKind::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenKind::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenKind::kGe:
      op = BinaryOp::kGe;
      break;
    case TokenKind::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenKind::kNe:
      op = BinaryOp::kNe;
      break;
    default:
      return lhs;
  }
  const Token& op_token = Advance();
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  ExprPtr cmp =
      MakeBinary(op, std::move(lhs), std::move(rhs), op_token.line, op_token.column);
  // Reject chained comparisons explicitly — `a < b < c` is almost always a
  // bug in a rule.
  switch (Peek().kind) {
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
    case TokenKind::kEq:
    case TokenKind::kNe:
      return ErrorAt(Peek(), "comparisons cannot be chained; use '&&'");
    default:
      return cmp;
  }
}

Result<ExprPtr> Parser::ParseAdditive() {
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    const Token& op = Advance();
    const BinaryOp bop = op.kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(bop, std::move(lhs), std::move(rhs), op.line, op.column);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  OSGUARD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) || Check(TokenKind::kPercent)) {
    const Token& op = Advance();
    BinaryOp bop;
    if (op.kind == TokenKind::kStar) {
      bop = BinaryOp::kMul;
    } else if (op.kind == TokenKind::kSlash) {
      bop = BinaryOp::kDiv;
    } else {
      bop = BinaryOp::kMod;
    }
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(bop, std::move(lhs), std::move(rhs), op.line, op.column);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Check(TokenKind::kMinus)) {
    const Token& op = Advance();
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(operand), op.line, op.column);
  }
  if (Check(TokenKind::kBang)) {
    const Token& op = Advance();
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return MakeUnary(UnaryOp::kNot, std::move(operand), op.line, op.column);
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& token = Peek();
  switch (token.kind) {
    case TokenKind::kIntLiteral: {
      Advance();
      return MakeLiteral(Value(token.int_value), token.line, token.column);
    }
    case TokenKind::kDurationLiteral: {
      Advance();
      return MakeLiteral(Value(token.int_value), token.line, token.column);
    }
    case TokenKind::kFloatLiteral: {
      Advance();
      return MakeLiteral(Value(token.float_value), token.line, token.column);
    }
    case TokenKind::kStringLiteral: {
      Advance();
      return MakeLiteral(Value(token.text), token.line, token.column);
    }
    case TokenKind::kTrue: {
      Advance();
      return MakeLiteral(Value(true), token.line, token.column);
    }
    case TokenKind::kFalse: {
      Advance();
      return MakeLiteral(Value(false), token.line, token.column);
    }
    case TokenKind::kIdent: {
      Token name = Advance();
      if (Check(TokenKind::kLParen)) {
        return ParseCall(std::move(name));
      }
      return MakeIdent(name.text, name.line, name.column);
    }
    case TokenKind::kLParen: {
      Advance();
      OSGUARD_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close the parenthesis").status());
      return inner;
    }
    case TokenKind::kLBrace: {
      // Brace list, e.g. DEPRIORITIZE({taskA, taskB}, {1, 2}).
      Advance();
      std::vector<ExprPtr> elements;
      while (!Check(TokenKind::kRBrace)) {
        OSGUARD_ASSIGN_OR_RETURN(ExprPtr element, ParseExpr());
        elements.push_back(std::move(element));
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
      OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "to close the list").status());
      return MakeList(std::move(elements), token.line, token.column);
    }
    default:
      return ErrorAt(token, "expected an expression");
  }
}

Result<ExprPtr> Parser::ParseCall(Token name_token) {
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after the function name").status());
  std::vector<ExprPtr> args;
  while (!Check(TokenKind::kRParen)) {
    OSGUARD_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
    args.push_back(std::move(arg));
    if (!Match(TokenKind::kComma)) {
      break;
    }
  }
  OSGUARD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close the call").status());

  // Quantile sugar: P99(key, window) -> QUANTILE(key, 0.99, window).
  const double q = QuantileSugar(name_token.text);
  if (q >= 0.0) {
    if (args.size() != 2) {
      return ErrorAt(name_token, name_token.text + " takes (key, window)");
    }
    std::vector<ExprPtr> rewritten;
    rewritten.push_back(std::move(args[0]));
    rewritten.push_back(MakeLiteral(Value(q), name_token.line, name_token.column));
    rewritten.push_back(std::move(args[1]));
    return MakeCall("QUANTILE", std::move(rewritten), name_token.line, name_token.column);
  }
  return MakeCall(name_token.text, std::move(args), name_token.line, name_token.column);
}

Result<SpecFile> ParseSpecSource(const std::string& source) {
  Lexer lexer(source);
  OSGUARD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSpec();
}

Result<ExprPtr> ParseExprSource(const std::string& source) {
  Lexer lexer(source);
  OSGUARD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseExpressionOnly();
}

}  // namespace osguard
