#include "src/dsl/ast.h"

namespace osguard {

std::string_view UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kNot:
      return "!";
  }
  return "?";
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kIdent:
      return name;
    case ExprKind::kUnary:
      return std::string(UnaryOpName(unary_op)) + children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + std::string(BinaryOpName(binary_op)) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kList: {
      std::string out = "{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += children[i]->ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

ExprPtr MakeLiteral(Value value, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(value);
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr MakeIdent(std::string name, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdent;
  e->name = std::move(name);
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(name);
  e->children = std::move(args);
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr MakeList(std::vector<ExprPtr> elements, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kList;
  e->children = std::move(elements);
  e->line = line;
  e->column = column;
  return e;
}

}  // namespace osguard
