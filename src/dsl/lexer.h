// Hand-written lexer for the guardrail DSL.
//
// Supports line comments (`// ...`), nested-free block comments (`/* ... */`),
// duration literals with ns/us/ms/s/m suffixes, decimal and scientific
// numeric literals, and double-quoted strings with \" \\ \n escapes.

#ifndef SRC_DSL_LEXER_H_
#define SRC_DSL_LEXER_H_

#include <string>
#include <vector>

#include "src/dsl/token.h"
#include "src/support/status.h"

namespace osguard {

class Lexer {
 public:
  explicit Lexer(std::string source);

  // Tokenizes the whole input. The token stream always ends with kEof.
  Result<std::vector<Token>> Tokenize();

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }
  Status SkipWhitespaceAndComments();
  Result<Token> LexNumber();
  Result<Token> LexIdentOrKeyword();
  Result<Token> LexString();
  Token Make(TokenKind kind, std::string text);
  Status ErrorHere(const std::string& message) const;

  std::string source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace osguard

#endif  // SRC_DSL_LEXER_H_
