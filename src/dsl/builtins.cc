#include "src/dsl/builtins.h"

#include <unordered_map>

namespace osguard {

std::string_view DslTypeName(DslType type) {
  switch (type) {
    case DslType::kNum:
      return "num";
    case DslType::kBool:
      return "bool";
    case DslType::kStr:
      return "str";
    case DslType::kNil:
      return "nil";
    case DslType::kList:
      return "list";
    case DslType::kAny:
      return "any";
  }
  return "?";
}

namespace {

std::vector<Builtin> MakeBuiltins() {
  using A = ArgMode;
  std::vector<Builtin> b;
  // Feature store.
  b.push_back({HelperId::kLoad, "LOAD", 1, 1, DslType::kAny, {A::kKey}, false});
  b.push_back({HelperId::kLoadOr, "LOAD_OR", 2, 2, DslType::kAny, {A::kKey, A::kValue}, false});
  b.push_back({HelperId::kSave, "SAVE", 2, 2, DslType::kNil, {A::kKey, A::kValue}, false});
  b.push_back({HelperId::kIncr, "INCR", 1, 2, DslType::kNum, {A::kKey, A::kValue}, false});
  b.push_back({HelperId::kExists, "EXISTS", 1, 1, DslType::kBool, {A::kKey}, false});
  b.push_back({HelperId::kObserve, "OBSERVE", 2, 2, DslType::kNil, {A::kKey, A::kValue}, false});
  // Aggregates: (key, window).
  for (auto [id, name] : std::initializer_list<std::pair<HelperId, std::string_view>>{
           {HelperId::kCount, "COUNT"},
           {HelperId::kSum, "SUM"},
           {HelperId::kMean, "MEAN"},
           {HelperId::kMinAgg, "MIN"},
           {HelperId::kMaxAgg, "MAX"},
           {HelperId::kStdDev, "STDDEV"},
           {HelperId::kRate, "RATE"},
           {HelperId::kNewest, "NEWEST"},
           {HelperId::kOldest, "OLDEST"},
       }) {
    b.push_back({id, name, 2, 2, DslType::kNum, {A::kKey, A::kValue}, false});
  }
  b.push_back({HelperId::kQuantile, "QUANTILE", 3, 3, DslType::kNum,
               {A::kKey, A::kValue, A::kValue}, false});
  // Pure math.
  b.push_back({HelperId::kAbs, "ABS", 1, 1, DslType::kNum, {}, false});
  b.push_back({HelperId::kSqrt, "SQRT", 1, 1, DslType::kNum, {}, false});
  b.push_back({HelperId::kLog, "LOG", 1, 1, DslType::kNum, {}, false});
  b.push_back({HelperId::kExp, "EXP", 1, 1, DslType::kNum, {}, false});
  b.push_back({HelperId::kFloor, "FLOOR", 1, 1, DslType::kNum, {}, false});
  b.push_back({HelperId::kCeil, "CEIL", 1, 1, DslType::kNum, {}, false});
  b.push_back({HelperId::kPow, "POW", 2, 2, DslType::kNum, {}, false});
  b.push_back({HelperId::kMin2, "MIN2", 2, 2, DslType::kNum, {}, false});
  b.push_back({HelperId::kMax2, "MAX2", 2, 2, DslType::kNum, {}, false});
  b.push_back({HelperId::kClamp, "CLAMP", 3, 3, DslType::kNum, {}, false});
  // Environment.
  b.push_back({HelperId::kNow, "NOW", 0, 0, DslType::kNum, {}, false});
  // Actions (Figure 1 right table). REPORT accepts any payload, including
  // none (report just the violation context).
  b.push_back({HelperId::kReport, "REPORT", 0, -1, DslType::kNil, {A::kValue}, true});
  b.push_back({HelperId::kReplace, "REPLACE", 2, 2, DslType::kNil, {A::kKey, A::kKey}, true});
  b.push_back({HelperId::kRetrain, "RETRAIN", 1, 2, DslType::kNil, {A::kKey, A::kKey}, true});
  b.push_back({HelperId::kDeprioritize, "DEPRIORITIZE", 2, 2, DslType::kNil,
               {A::kNameList, A::kValueList}, true});
  return b;
}

}  // namespace

const std::vector<Builtin>& AllBuiltins() {
  static const auto* builtins = new std::vector<Builtin>(MakeBuiltins());
  return *builtins;
}

const Builtin* FindBuiltin(std::string_view name) {
  static const auto* by_name = [] {
    auto* m = new std::unordered_map<std::string_view, const Builtin*>();
    for (const Builtin& b : AllBuiltins()) {
      (*m)[b.name] = &b;
    }
    return m;
  }();
  auto it = by_name->find(name);
  return it == by_name->end() ? nullptr : it->second;
}

const Builtin* FindBuiltinById(HelperId id) {
  static const auto* by_id = [] {
    auto* m = new std::unordered_map<uint16_t, const Builtin*>();
    for (const Builtin& b : AllBuiltins()) {
      (*m)[static_cast<uint16_t>(b.id)] = &b;
    }
    return m;
  }();
  auto it = by_id->find(static_cast<uint16_t>(id));
  return it == by_id->end() ? nullptr : it->second;
}

double QuantileSugar(std::string_view name) {
  if (name == "P50") {
    return 0.50;
  }
  if (name == "P90") {
    return 0.90;
  }
  if (name == "P95") {
    return 0.95;
  }
  if (name == "P99") {
    return 0.99;
  }
  if (name == "P999") {
    return 0.999;
  }
  return -1.0;
}

}  // namespace osguard
