// Token vocabulary for the guardrail specification language (paper Listing 1).

#ifndef SRC_DSL_TOKEN_H_
#define SRC_DSL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace osguard {

enum class TokenKind {
  kEof = 0,
  kIdent,        // guardrail names, feature-store keys, function names
  kIntLiteral,   // 42, 1000000
  kFloatLiteral, // 0.05, 1e9, 2.5
  kDurationLiteral,  // 1s, 250ms, 100us, 10ns -> nanoseconds (int)
  kStringLiteral,    // "text"
  kTrue,
  kFalse,
  // Keywords of the spec structure.
  kGuardrail,
  kTrigger,
  kRule,
  kAction,
  kOnSatisfy,  // extension: actions to run when the rule *holds* again
  kMeta,       // extension: severity / cooldown metadata
  // Punctuation.
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kColon,      // :
  kSemicolon,  // ;
  kAssign,     // =
  // Operators.
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,   // ==
  kNe,   // !=
  kAndAnd,
  kOrOr,
  kBang,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // raw spelling (identifier / literal text)
  int64_t int_value = 0;   // kIntLiteral and kDurationLiteral (nanoseconds)
  double float_value = 0;  // kFloatLiteral
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace osguard

#endif  // SRC_DSL_TOKEN_H_
