// Abstract syntax tree for guardrail specifications.
//
// The shape mirrors Listing 1 of the paper:
//
//   <Guardrail> ::= <Property> (<Action>)+
//   <Property>  ::= (<Trigger>)+ (<Rule>)+
//   <Trigger>   ::= TIMER | FUNCTION
//   <Rule>      ::= <Expression>
//   <Action>    ::= REPORT | REPLACE | RETRAIN | DEPRIORITIZE
//
// plus the extensions the paper's prose asks for: SAVE as an action (used by
// Listing 2's `SAVE(ml_enabled, false)`), an optional `on_satisfy` block so
// guardrails can re-enable a policy when the property holds again, and a
// `meta` block for severity / cooldown attributes.

#ifndef SRC_DSL_AST_H_
#define SRC_DSL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/store/value.h"
#include "src/support/time.h"

namespace osguard {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,   // 42, 0.05, 1s, true, "text"
  kIdent,     // bare identifier: implicit LOAD of a feature-store key
  kUnary,     // -x, !x
  kBinary,    // arithmetic / comparison / logical
  kCall,      // LOAD(x), MEAN(lat, 10s), REPORT(...), ...
  kList,      // {a, b, c} — only valid as a call argument
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

std::string_view UnaryOpName(UnaryOp op);
std::string_view BinaryOpName(BinaryOp op);

struct Expr {
  ExprKind kind;
  int line = 0;
  int column = 0;

  // kLiteral
  Value literal;

  // kIdent / kCall
  std::string name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kUnary: children[0]; kBinary: children[0], children[1];
  // kCall / kList: all arguments/elements.
  std::vector<ExprPtr> children;

  // Reconstructs surface syntax (for diagnostics and golden tests).
  std::string ToString() const;
};

ExprPtr MakeLiteral(Value value, int line = 0, int column = 0);
ExprPtr MakeIdent(std::string name, int line = 0, int column = 0);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand, int line = 0, int column = 0);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, int line = 0, int column = 0);
ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args, int line = 0, int column = 0);
ExprPtr MakeList(std::vector<ExprPtr> elements, int line = 0, int column = 0);

enum class TriggerKind {
  kTimer,     // TIMER(start, interval [, stop])
  kFunction,  // FUNCTION(function_name)
  kOnChange,  // ONCHANGE(store_key) — dependency-driven checking (paper §6)
};

struct TriggerDecl {
  TriggerKind kind = TriggerKind::kTimer;
  int line = 0;

  // kTimer: constant-folded by semantic analysis.
  SimTime start = 0;
  Duration interval = 0;
  SimTime stop = 0;  // 0 means "never stop"

  // kFunction.
  std::string function_name;

  // kOnChange: evaluate whenever this feature-store key is written.
  std::string watch_key;

  // Raw argument expressions as parsed (sema folds kTimer args into the
  // fields above).
  std::vector<ExprPtr> args;
};

// A key = literal attribute inside `meta: { ... }`.
struct MetaAttr {
  std::string key;
  Value value;
  int line = 0;
};

struct GuardrailDecl {
  std::string name;
  int line = 0;
  std::vector<TriggerDecl> triggers;
  std::vector<ExprPtr> rules;           // conjunction: all must hold
  std::vector<ExprPtr> actions;         // run top-to-bottom on violation
  std::vector<ExprPtr> satisfy_actions; // run on violated -> satisfied edge
  std::vector<MetaAttr> meta;
  // `health: { ... }` supervisor attributes (budgets, breaker, probation).
  // Empty means unsupervised; has_health distinguishes an empty block.
  std::vector<MetaAttr> health;
  bool has_health = false;
};

// One injection site inside a chaos block:
//   site <name> { mode = bernoulli, p = 0.01, latency = 2ms }
// Attributes reuse the meta `key = literal` shape (plus {..} lists for the
// schedule mode's `nth`); semantic analysis validates the vocabulary.
struct ChaosSiteDecl {
  std::string name;
  int line = 0;
  std::vector<MetaAttr> attrs;
};

// A top-level `chaos { seed = N, site ... }` block configuring the
// fault-injection engine alongside the guardrails it is meant to exercise.
struct ChaosDecl {
  int line = 0;
  std::vector<MetaAttr> attrs;  // block-level attributes (seed)
  std::vector<ChaosSiteDecl> sites;
};

// A top-level `persist { interval = 10s, journal_budget = 1048576 }` block
// configuring crash-consistent state (osguard::persist). Absent means
// persistence stays off — the off == absent convention chaos established.
struct PersistDecl {
  int line = 0;
  std::vector<MetaAttr> attrs;
};

// One namespace inside a retention block:
//   namespace "agent.s" { max_keys = 4096, idle_ttl = 30s }
// The prefix is a string literal (namespaces contain dots, which the
// identifier grammar would split). Attributes reuse the meta shape.
struct RetentionNamespaceDecl {
  std::string prefix;
  int line = 0;
  std::vector<MetaAttr> attrs;
};

// A top-level `retention { scan_chunk = 64, namespace ... }` block
// configuring bounded-memory key lifecycle (docs/STORE.md). Absent means
// reclamation stays off — the off == absent convention chaos established.
struct RetentionDecl {
  int line = 0;
  std::vector<MetaAttr> attrs;  // block-level attributes (scan_chunk)
  std::vector<RetentionNamespaceDecl> namespaces;
};

// A parsed spec file: guardrail declarations plus optional chaos / persist /
// retention blocks.
struct SpecFile {
  std::vector<GuardrailDecl> guardrails;
  std::optional<ChaosDecl> chaos;
  std::optional<PersistDecl> persist;
  std::optional<RetentionDecl> retention;
};

}  // namespace osguard

#endif  // SRC_DSL_AST_H_
