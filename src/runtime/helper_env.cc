#include "src/runtime/helper_env.h"

#include <algorithm>
#include <cmath>

namespace osguard {
namespace {

Result<double> NumericArg(const Value& v, const char* what) {
  if (!v.is_numeric() && v.type() != ValueType::kBool) {
    return InvalidArgumentError(std::string(what) + " is not numeric: " + v.ToString());
  }
  return v.NumericOr(0.0);
}

// Store/aggregate keys arrive as string Values; view them in place — the
// helper protocol never needs an owned copy.
Result<std::string_view> KeyArg(const Value& v) {
  if (const std::string* s = v.IfString()) {
    return std::string_view(*s);
  }
  return InvalidArgumentError("value is not a string: " + v.ToString());
}

}  // namespace

Result<Value> MonitorHelperEnv::CallHelperKeyed(HelperId id, uint32_t slot,
                                                std::span<const Value> args) {
  // Single injection point per helper call: the fallbacks below go to the
  // unchecked body, so a fallback never draws a second chaos decision.
  if (chaos_ != nullptr && chaos_->ShouldInject(helper_fail_site_, envelope_.now)) {
    return ExecutionError("injected helper failure (chaos site runtime.helper_fail)");
  }
  if (slot >= store_->key_count()) {
    return CallHelperUnchecked(id, args);  // unknown slot: string slow path
  }
  switch (id) {
    case HelperId::kLoad:
    case HelperId::kLoadOr:
    case HelperId::kSave:
    case HelperId::kIncr:
    case HelperId::kExists:
    case HelperId::kObserve:
      return StoreHelperKeyed(id, slot, args);
    case HelperId::kCount:
    case HelperId::kSum:
    case HelperId::kMean:
    case HelperId::kMinAgg:
    case HelperId::kMaxAgg:
    case HelperId::kStdDev:
    case HelperId::kRate:
    case HelperId::kNewest:
    case HelperId::kOldest:
    case HelperId::kQuantile:
      return AggregateHelperKeyed(id, slot, args);
    default:
      return CallHelperUnchecked(id, args);
  }
}

Result<Value> MonitorHelperEnv::CallHelper(HelperId id, std::span<const Value> args) {
  if (chaos_ != nullptr && chaos_->ShouldInject(helper_fail_site_, envelope_.now)) {
    return ExecutionError("injected helper failure (chaos site runtime.helper_fail)");
  }
  return CallHelperUnchecked(id, args);
}

Result<Value> MonitorHelperEnv::CallHelperUnchecked(HelperId id, std::span<const Value> args) {
  switch (id) {
    case HelperId::kLoad:
    case HelperId::kLoadOr:
    case HelperId::kSave:
    case HelperId::kIncr:
    case HelperId::kExists:
    case HelperId::kObserve:
      return StoreHelper(id, args);
    case HelperId::kCount:
    case HelperId::kSum:
    case HelperId::kMean:
    case HelperId::kMinAgg:
    case HelperId::kMaxAgg:
    case HelperId::kStdDev:
    case HelperId::kRate:
    case HelperId::kNewest:
    case HelperId::kOldest:
    case HelperId::kQuantile:
      return AggregateHelper(id, args);
    case HelperId::kAbs:
    case HelperId::kSqrt:
    case HelperId::kLog:
    case HelperId::kExp:
    case HelperId::kFloor:
    case HelperId::kCeil:
    case HelperId::kPow:
    case HelperId::kMin2:
    case HelperId::kMax2:
    case HelperId::kClamp:
      return MathHelper(id, args);
    case HelperId::kNow:
      return Value(static_cast<int64_t>(envelope_.now));
    case HelperId::kReport:
    case HelperId::kReplace:
    case HelperId::kRetrain:
    case HelperId::kDeprioritize:
      if (dispatcher_ == nullptr) {
        return FailedPreconditionError("no action dispatcher bound to this monitor context");
      }
      return dispatcher_->Dispatch(id, args, envelope_);
  }
  return InternalError("unknown helper id " + std::to_string(static_cast<int>(id)));
}

Result<Value> MonitorHelperEnv::StoreHelper(HelperId id, std::span<const Value> args) {
  OSGUARD_ASSIGN_OR_RETURN(std::string_view key, KeyArg(args[0]));
  switch (id) {
    case HelperId::kLoad:
      return store_->LoadOr(key, Value());  // nil when missing (see header)
    case HelperId::kLoadOr:
      return store_->LoadOr(key, args[1]);
    case HelperId::kSave:
      store_->Save(key, args[1]);
      return Value();
    case HelperId::kIncr: {
      double delta = 1.0;
      if (args.size() > 1) {
        OSGUARD_ASSIGN_OR_RETURN(delta, NumericArg(args[1], "INCR delta"));
      }
      return Value(store_->Increment(key, delta));
    }
    case HelperId::kExists:
      return Value(store_->Contains(key));
    case HelperId::kObserve: {
      OSGUARD_ASSIGN_OR_RETURN(double sample, NumericArg(args[1], "OBSERVE sample"));
      store_->Observe(key, envelope_.now, sample);
      return Value();
    }
    default:
      return InternalError("not a store helper");
  }
}

Result<Value> MonitorHelperEnv::StoreHelperKeyed(HelperId id, KeyId key,
                                                 std::span<const Value> args) {
  switch (id) {
    case HelperId::kLoad:
      return store_->LoadOr(key, Value());
    case HelperId::kLoadOr:
      return store_->LoadOr(key, args[1]);
    case HelperId::kSave:
      store_->Save(key, args[1]);
      return Value();
    case HelperId::kIncr: {
      double delta = 1.0;
      if (args.size() > 1) {
        OSGUARD_ASSIGN_OR_RETURN(delta, NumericArg(args[1], "INCR delta"));
      }
      return Value(store_->Increment(key, delta));
    }
    case HelperId::kExists:
      return Value(store_->Contains(key));
    case HelperId::kObserve: {
      OSGUARD_ASSIGN_OR_RETURN(double sample, NumericArg(args[1], "OBSERVE sample"));
      store_->Observe(key, envelope_.now, sample);
      return Value();
    }
    default:
      return InternalError("not a store helper");
  }
}

Result<Value> MonitorHelperEnv::AggregateHelper(HelperId id, std::span<const Value> args) {
  OSGUARD_ASSIGN_OR_RETURN(std::string_view key, KeyArg(args[0]));
  if (id == HelperId::kQuantile) {
    OSGUARD_ASSIGN_OR_RETURN(double q, NumericArg(args[1], "QUANTILE q"));
    if (q < 0.0 || q > 1.0) {
      return InvalidArgumentError("QUANTILE q must be in [0, 1]");
    }
    OSGUARD_ASSIGN_OR_RETURN(double window, NumericArg(args[2], "QUANTILE window"));
    auto result = store_->AggregateQuantile(key, q, static_cast<Duration>(window),
                                            envelope_.now);
    if (!result.ok()) {
      return Value();  // nil on empty window
    }
    return Value(result.value());
  }
  OSGUARD_ASSIGN_OR_RETURN(double window, NumericArg(args[1], "aggregate window"));
  auto result =
      store_->Aggregate(key, AggKindForHelper(id), static_cast<Duration>(window), envelope_.now);
  if (!result.ok()) {
    return Value();  // nil on empty window / missing series
  }
  return Value(result.value());
}

Result<Value> MonitorHelperEnv::AggregateHelperKeyed(HelperId id, KeyId key,
                                                     std::span<const Value> args) {
  if (id == HelperId::kQuantile) {
    OSGUARD_ASSIGN_OR_RETURN(double q, NumericArg(args[1], "QUANTILE q"));
    if (q < 0.0 || q > 1.0) {
      return InvalidArgumentError("QUANTILE q must be in [0, 1]");
    }
    OSGUARD_ASSIGN_OR_RETURN(double window, NumericArg(args[2], "QUANTILE window"));
    auto result = store_->AggregateQuantile(key, q, static_cast<Duration>(window),
                                            envelope_.now);
    if (!result.ok()) {
      return Value();  // nil on empty window
    }
    return Value(result.value());
  }
  OSGUARD_ASSIGN_OR_RETURN(double window, NumericArg(args[1], "aggregate window"));
  auto result =
      store_->Aggregate(key, AggKindForHelper(id), static_cast<Duration>(window), envelope_.now);
  if (!result.ok()) {
    return Value();  // nil on empty window / missing series
  }
  return Value(result.value());
}

Result<Value> MonitorHelperEnv::MathHelper(HelperId id, std::span<const Value> args) {
  OSGUARD_ASSIGN_OR_RETURN(double x, NumericArg(args[0], "math argument"));
  switch (id) {
    case HelperId::kAbs:
      return Value(std::abs(x));
    case HelperId::kSqrt:
      if (x < 0.0) {
        return InvalidArgumentError("SQRT of a negative value");
      }
      return Value(std::sqrt(x));
    case HelperId::kLog:
      if (x <= 0.0) {
        return InvalidArgumentError("LOG of a non-positive value");
      }
      return Value(std::log(x));
    case HelperId::kExp:
      return Value(std::exp(x));
    case HelperId::kFloor:
      return Value(std::floor(x));
    case HelperId::kCeil:
      return Value(std::ceil(x));
    case HelperId::kPow: {
      OSGUARD_ASSIGN_OR_RETURN(double y, NumericArg(args[1], "POW exponent"));
      const double r = std::pow(x, y);
      if (!std::isfinite(r)) {
        return InvalidArgumentError("POW result is not finite");
      }
      return Value(r);
    }
    case HelperId::kMin2: {
      OSGUARD_ASSIGN_OR_RETURN(double y, NumericArg(args[1], "MIN2 argument"));
      return Value(std::min(x, y));
    }
    case HelperId::kMax2: {
      OSGUARD_ASSIGN_OR_RETURN(double y, NumericArg(args[1], "MAX2 argument"));
      return Value(std::max(x, y));
    }
    case HelperId::kClamp: {
      OSGUARD_ASSIGN_OR_RETURN(double lo, NumericArg(args[1], "CLAMP lo"));
      OSGUARD_ASSIGN_OR_RETURN(double hi, NumericArg(args[2], "CLAMP hi"));
      if (lo > hi) {
        return InvalidArgumentError("CLAMP bounds are inverted");
      }
      return Value(std::clamp(x, lo, hi));
    }
    default:
      return InternalError("not a math helper");
  }
}

}  // namespace osguard
