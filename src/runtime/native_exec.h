// Host side of the native tier: runs an AOT-compiled guardrail program and
// services its osg_ops escapes.
//
// The emitted code handles int/float arithmetic, comparisons, branches, and
// register moves inline; everything touching a Value handle, the feature
// store, or an action helper escapes here. Every escape routes into the very
// same code the interpreter uses (vm_ops.h scalars, MonitorHelperEnv helper
// dispatch), with exactly one chaos draw per helper call and the interpreter's
// fault strings reproduced verbatim — that is what makes reports, stats, and
// chaos replays bit-identical across tiers (see docs/NATIVE.md).
//
// Allocation discipline: the evaluation fast path (keyed loads, saves,
// aggregates over interned slots) boxes no arguments. Values that must
// materialize host-side (helper string/list results, MakeList) go into a
// per-run std::deque pool whose elements stay pointer-stable while registers
// hold handles to them.

#ifndef SRC_RUNTIME_NATIVE_EXEC_H_
#define SRC_RUNTIME_NATIVE_EXEC_H_

#include <array>
#include <deque>
#include <vector>

#include "src/runtime/helper_env.h"
#include "src/vm/bytecode.h"
#include "src/vm/native_abi.h"
#include "src/vm/vm.h"

namespace osguard {

using NativeEntryFn = osg_value (*)(osg_ctx*);

class NativeExec {
 public:
  // `env` is borrowed and must outlive the executor.
  explicit NativeExec(MonitorHelperEnv* env) : env_(env) {}

  // Converts a program's constant pool to the ABI representation. String and
  // list constants carry handles into `program.consts`, so the returned pool
  // is valid only while that vector lives unmoved (the engine rebuilds the
  // binding whenever a monitor generation changes).
  static std::vector<osg_value> PrepareConsts(const Program& program);

  // Executes `fn` (an AOT entry point compiled from `program`) and returns
  // the same Result<Value> the interpreter would. `stats` (may be null)
  // receives the interpreter-identical step/helper-call accounting. `budget`
  // may carry a wall deadline, honored at helper escapes; step-capped budgets
  // are the engine's cue to use the interpreter instead.
  Result<Value> Run(NativeEntryFn fn, const Program& program, const osg_value* consts,
                    const ExecBudget* budget, ExecStats* stats);

  // True while a Run is on the stack. The engine falls back to the
  // interpreter rather than re-entering (the scratch buffers are not
  // re-entrancy safe; the interpreter handles nesting with a spare file).
  bool running() const { return running_; }

 private:
  static const osg_ops kOps;

  // osg_ops entries (ctx->host is the NativeExec).
  static int OpCall(osg_ctx* ctx, int helper, unsigned slot, const osg_value* args,
                    int nargs, osg_value* out);
  static int OpBinop(osg_ctx* ctx, int op, const osg_value* a, const osg_value* b,
                     osg_value* out);
  static int OpUnop(osg_ctx* ctx, int op, const osg_value* a, osg_value* out);
  static int OpCmp(osg_ctx* ctx, int kind, const osg_value* a, const osg_value* b,
                   osg_value* out);
  static int OpMakeList(osg_ctx* ctx, const osg_value* elems, int n, osg_value* out);
  static int OpLoadSlot(osg_ctx* ctx, unsigned slot, const osg_value* args, osg_value* out);
  static int OpLoadOrSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                          osg_value* out);
  static int OpSaveSlot(osg_ctx* ctx, unsigned slot, const osg_value* args, osg_value* out);
  static int OpIncrSlot(osg_ctx* ctx, unsigned slot, const osg_value* args, int nargs,
                        osg_value* out);
  static int OpExistsSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                          osg_value* out);
  static int OpObserveSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                           osg_value* out);
  static int OpAggSlot(osg_ctx* ctx, int helper, unsigned slot, const osg_value* args,
                       osg_value* out);
  static int OpQuantileSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                            osg_value* out);
  static int OpRaise(osg_ctx* ctx, int code);

  // Deadline poll + helper-call accounting shared by every helper escape.
  int HelperPrologue(osg_ctx* ctx);
  // Records a helper failure with the interpreter's wrapped message.
  int FailHelper(const Status& status);
  // Records a plain execution fault (arith/compare semantics, no wrapping).
  int FailPlain(Status status);
  // Slot the store does not know: the interpreter's string fallback.
  int Fallback(HelperId id, const osg_value* args, int nargs, osg_value* out);
  // args[index] as a double under interpreter coercion rules (ints, floats,
  // bools; everything else is the "<what> is not numeric" helper fault).
  int NumericOsg(const osg_value& v, const char* what, double* out);

  void ToHost(const osg_value& v, Value* out) const;
  int Stash(Value&& v, osg_value* out);

  MonitorHelperEnv* env_;
  const Program* program_ = nullptr;
  const ExecBudget* budget_ = nullptr;
  Status fault_;
  bool budget_abort_ = false;
  bool running_ = false;
  int64_t helper_calls_ = 0;
  // Argument conversion buffer (capacity-reusing Values, one per register at
  // most) and the handle-target pool for values materialized during the run.
  std::array<Value, kMaxRegisters> argbuf_;
  std::deque<Value> temporaries_;
};

}  // namespace osguard

#endif  // SRC_RUNTIME_NATIVE_EXEC_H_
