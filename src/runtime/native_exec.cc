#include "src/runtime/native_exec.h"

#include <chrono>
#include <utility>

#include "src/vm/vm_ops.h"

namespace osguard {
namespace {

inline int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline NativeExec* Self(osg_ctx* ctx) { return static_cast<NativeExec*>(ctx->host); }

// OSG_OP_* -> Op for the generic arithmetic escape.
inline Op BinOpFor(int code) {
  switch (code) {
    case OSG_OP_ADD:
      return Op::kAdd;
    case OSG_OP_SUB:
      return Op::kSub;
    case OSG_OP_MUL:
      return Op::kMul;
    case OSG_OP_DIV:
      return Op::kDiv;
    default:
      return Op::kMod;
  }
}

}  // namespace

std::vector<osg_value> NativeExec::PrepareConsts(const Program& program) {
  std::vector<osg_value> pool(program.consts.size());
  for (size_t i = 0; i < program.consts.size(); ++i) {
    const Value& v = program.consts[i];
    osg_value& out = pool[i];
    out.kind = OSG_NIL;
    out.i = 0;
    out.f = 0.0;
    out.h = nullptr;
    switch (v.type()) {
      case ValueType::kNil:
        break;
      case ValueType::kInt:
        out.kind = OSG_INT;
        out.i = *v.IfInt();
        break;
      case ValueType::kFloat:
        out.kind = OSG_FLOAT;
        out.f = *v.IfFloat();
        break;
      case ValueType::kBool:
        out.kind = OSG_BOOL;
        out.i = *v.IfBool() ? 1 : 0;
        break;
      case ValueType::kString:
        out.kind = OSG_STR;
        out.h = &v;
        out.i = v.IfString()->empty() ? 0 : 1;
        break;
      case ValueType::kList:
        out.kind = OSG_LIST;
        out.h = &v;
        out.i = v.IfList()->empty() ? 0 : 1;
        break;
    }
  }
  return pool;
}

void NativeExec::ToHost(const osg_value& v, Value* out) const {
  switch (v.kind) {
    case OSG_INT:
      *out = Value(static_cast<int64_t>(v.i));
      break;
    case OSG_FLOAT:
      *out = Value(v.f);
      break;
    case OSG_BOOL:
      *out = Value(v.i != 0);
      break;
    case OSG_STR:
    case OSG_LIST:
      *out = *static_cast<const Value*>(v.h);
      break;
    default:
      *out = Value();
      break;
  }
}

int NativeExec::Stash(Value&& v, osg_value* out) {
  switch (v.type()) {
    case ValueType::kNil:
      osg_set_nil(out);
      return 1;
    case ValueType::kInt:
      osg_set_int(out, *v.IfInt());
      return 1;
    case ValueType::kFloat:
      osg_set_float(out, *v.IfFloat());
      return 1;
    case ValueType::kBool:
      osg_set_bool(out, *v.IfBool() ? 1 : 0);
      return 1;
    case ValueType::kString: {
      temporaries_.push_back(std::move(v));
      const Value& stable = temporaries_.back();
      out->kind = OSG_STR;
      out->i = stable.IfString()->empty() ? 0 : 1;
      out->f = 0.0;
      out->h = &stable;
      return 1;
    }
    case ValueType::kList: {
      temporaries_.push_back(std::move(v));
      const Value& stable = temporaries_.back();
      out->kind = OSG_LIST;
      out->i = stable.IfList()->empty() ? 0 : 1;
      out->f = 0.0;
      out->h = &stable;
      return 1;
    }
  }
  osg_set_nil(out);
  return 1;
}

int NativeExec::FailPlain(Status status) {
  fault_ = std::move(status);
  return 0;
}

int NativeExec::FailHelper(const Status& status) {
  // Interpreter's kCall/kCallKeyed failure wrapping, verbatim.
  fault_ = ExecutionError("program '" + program_->name + "': helper failed: " +
                          status.ToString());
  return 0;
}

int NativeExec::HelperPrologue(osg_ctx* ctx) {
  // The interpreter polls wall deadlines between instructions; native code
  // polls at helper escapes, which every store/action touch passes through.
  // Guardrail programs are loop-free, so the pure-compute stretch between
  // escapes is bounded by the program length.
  if (budget_ != nullptr && budget_->deadline_wall_ns > 0 &&
      SteadyNowNs() >= budget_->deadline_wall_ns) {
    budget_abort_ = true;
    fault_ = ResourceExhaustedError("program '" + program_->name +
                                    "' exceeded its runtime budget after " +
                                    std::to_string(ctx->steps) + " steps");
    return 0;
  }
  ++helper_calls_;
  return 1;
}

int NativeExec::NumericOsg(const osg_value& v, const char* what, double* out) {
  switch (v.kind) {
    case OSG_INT:
      *out = static_cast<double>(v.i);
      return 1;
    case OSG_FLOAT:
      *out = v.f;
      return 1;
    case OSG_BOOL:
      *out = v.i != 0 ? 1.0 : 0.0;
      return 1;
    default: {
      Value host;
      ToHost(v, &host);
      return FailHelper(InvalidArgumentError(std::string(what) +
                                             " is not numeric: " + host.ToString()));
    }
  }
}

int NativeExec::Fallback(HelperId id, const osg_value* args, int nargs, osg_value* out) {
  // Slot the store never interned: the interpreter routes these through the
  // unchecked string path (the keyed call already drew its chaos decision).
  for (int i = 0; i < nargs; ++i) {
    ToHost(args[i], &argbuf_[static_cast<size_t>(i)]);
  }
  auto result =
      env_->CallHelperUnchecked(id, std::span<const Value>(argbuf_.data(),
                                                           static_cast<size_t>(nargs)));
  if (!result.ok()) {
    return FailHelper(result.status());
  }
  return Stash(std::move(result).value(), out);
}

int NativeExec::OpCall(osg_ctx* ctx, int helper, unsigned slot, const osg_value* args,
                       int nargs, osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  for (int i = 0; i < nargs; ++i) {
    self->ToHost(args[i], &self->argbuf_[static_cast<size_t>(i)]);
  }
  const std::span<const Value> span(self->argbuf_.data(), static_cast<size_t>(nargs));
  const HelperId id = static_cast<HelperId>(helper);
  auto result = slot == OSG_NO_SLOT ? self->env_->CallHelper(id, span)
                                    : self->env_->CallHelperKeyed(id, slot, span);
  if (!result.ok()) {
    return self->FailHelper(result.status());
  }
  return self->Stash(std::move(result).value(), out);
}

int NativeExec::OpBinop(osg_ctx* ctx, int op, const osg_value* a, const osg_value* b,
                        osg_value* out) {
  NativeExec* self = Self(ctx);
  Value lhs;
  Value rhs;
  self->ToHost(*a, &lhs);
  self->ToHost(*b, &rhs);
  auto result = vm_ops::Arith(BinOpFor(op), lhs, rhs);
  if (!result.ok()) {
    return self->FailPlain(result.status());
  }
  return self->Stash(std::move(result).value(), out);
}

int NativeExec::OpUnop(osg_ctx* ctx, int op, const osg_value* a, osg_value* out) {
  NativeExec* self = Self(ctx);
  (void)op;  // OSG_OP_NEG is the only unop; int/float/bool negate inline
  (void)out;
  Value v;
  self->ToHost(*a, &v);
  return self->FailPlain(ExecutionError("cannot negate " + v.ToString()));
}

int NativeExec::OpCmp(osg_ctx* ctx, int kind, const osg_value* a, const osg_value* b,
                      osg_value* out) {
  NativeExec* self = Self(ctx);
  Value lhs;
  Value rhs;
  self->ToHost(*a, &lhs);
  self->ToHost(*b, &rhs);
  bool flag = false;
  Status fault;
  if (!vm_ops::DoCompare(kind, lhs, rhs, &flag, &fault)) {
    return self->FailPlain(std::move(fault));
  }
  osg_set_bool(out, flag ? 1 : 0);
  return 1;
}

int NativeExec::OpMakeList(osg_ctx* ctx, const osg_value* elems, int n, osg_value* out) {
  NativeExec* self = Self(ctx);
  std::vector<Value> list(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    self->ToHost(elems[i], &list[static_cast<size_t>(i)]);
  }
  return self->Stash(Value(std::move(list)), out);
}

int NativeExec::OpLoadSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                           osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kLoad, args, 1, out);
  }
  return self->Stash(store->LoadOr(slot, Value()), out);
}

int NativeExec::OpLoadOrSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                             osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kLoadOr, args, 2, out);
  }
  self->ToHost(args[1], &self->argbuf_[1]);
  return self->Stash(store->LoadOr(slot, self->argbuf_[1]), out);
}

int NativeExec::OpSaveSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                           osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kSave, args, 2, out);
  }
  self->ToHost(args[1], &self->argbuf_[1]);
  store->Save(slot, self->argbuf_[1]);
  osg_set_nil(out);
  return 1;
}

int NativeExec::OpIncrSlot(osg_ctx* ctx, unsigned slot, const osg_value* args, int nargs,
                           osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kIncr, args, nargs, out);
  }
  double delta = 1.0;
  if (nargs > 1 && !self->NumericOsg(args[1], "INCR delta", &delta)) {
    return 0;
  }
  osg_set_float(out, store->Increment(slot, delta));
  return 1;
}

int NativeExec::OpExistsSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                             osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kExists, args, 1, out);
  }
  osg_set_bool(out, store->Contains(slot) ? 1 : 0);
  return 1;
}

int NativeExec::OpObserveSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                              osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kObserve, args, 2, out);
  }
  double sample = 0.0;
  if (!self->NumericOsg(args[1], "OBSERVE sample", &sample)) {
    return 0;
  }
  store->Observe(slot, self->env_->envelope().now, sample);
  osg_set_nil(out);
  return 1;
}

int NativeExec::OpAggSlot(osg_ctx* ctx, int helper, unsigned slot, const osg_value* args,
                          osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  const HelperId id = static_cast<HelperId>(helper);
  if (slot >= store->key_count()) {
    return self->Fallback(id, args, 2, out);
  }
  double window = 0.0;
  if (!self->NumericOsg(args[1], "aggregate window", &window)) {
    return 0;
  }
  auto result = store->Aggregate(slot, AggKindForHelper(id),
                                 static_cast<Duration>(window), self->env_->envelope().now);
  if (!result.ok()) {
    osg_set_nil(out);  // nil on empty window / missing series
    return 1;
  }
  osg_set_float(out, result.value());
  return 1;
}

int NativeExec::OpQuantileSlot(osg_ctx* ctx, unsigned slot, const osg_value* args,
                               osg_value* out) {
  NativeExec* self = Self(ctx);
  if (!self->HelperPrologue(ctx)) {
    return 0;
  }
  if (self->env_->ChaosShouldFailHelper()) {
    return self->FailHelper(
        ExecutionError("injected helper failure (chaos site runtime.helper_fail)"));
  }
  FeatureStore* store = self->env_->store();
  if (slot >= store->key_count()) {
    return self->Fallback(HelperId::kQuantile, args, 3, out);
  }
  double q = 0.0;
  if (!self->NumericOsg(args[1], "QUANTILE q", &q)) {
    return 0;
  }
  if (q < 0.0 || q > 1.0) {
    return self->FailHelper(InvalidArgumentError("QUANTILE q must be in [0, 1]"));
  }
  double window = 0.0;
  if (!self->NumericOsg(args[2], "QUANTILE window", &window)) {
    return 0;
  }
  auto result = store->AggregateQuantile(slot, q, static_cast<Duration>(window),
                                         self->env_->envelope().now);
  if (!result.ok()) {
    osg_set_nil(out);  // nil on empty window
    return 1;
  }
  osg_set_float(out, result.value());
  return 1;
}

int NativeExec::OpRaise(osg_ctx* ctx, int code) {
  NativeExec* self = Self(ctx);
  if (code == OSG_RAISE_OFF_END) {
    self->fault_ = ExecutionError("program '" + self->program_->name + "' ran off the end");
  } else {
    self->fault_ = InternalError("native program raised unknown fault code " +
                                 std::to_string(code));
  }
  return 1;
}

const osg_ops NativeExec::kOps = {
    &NativeExec::OpCall,       &NativeExec::OpBinop,      &NativeExec::OpUnop,
    &NativeExec::OpCmp,        &NativeExec::OpMakeList,   &NativeExec::OpLoadSlot,
    &NativeExec::OpLoadOrSlot, &NativeExec::OpSaveSlot,   &NativeExec::OpIncrSlot,
    &NativeExec::OpExistsSlot, &NativeExec::OpObserveSlot, &NativeExec::OpAggSlot,
    &NativeExec::OpQuantileSlot, &NativeExec::OpRaise,
};

Result<Value> NativeExec::Run(NativeEntryFn fn, const Program& program,
                              const osg_value* consts, const ExecBudget* budget,
                              ExecStats* stats) {
  if (running_) {
    return FailedPreconditionError("re-entrant native execution");
  }
  running_ = true;
  program_ = &program;
  budget_ = budget;
  fault_ = OkStatus();
  budget_abort_ = false;
  helper_calls_ = 0;
  temporaries_.clear();

  osg_ctx ctx;
  ctx.ops = &kOps;
  ctx.consts = consts;
  ctx.host = this;
  ctx.steps = 0;
  const osg_value out = fn(&ctx);
  running_ = false;

  if (stats != nullptr) {
    stats->insns_executed += ctx.steps;
    stats->helper_calls += helper_calls_;
    if (budget_abort_) {
      ++stats->budget_aborts;
    }
  }
  if (!fault_.ok()) {
    return std::move(fault_);
  }
  Value result;
  ToHost(out, &result);
  return result;
}

}  // namespace osguard
