// Bounded-memory key lifecycle: namespace quotas, idle-TTL reclamation, and
// store memory-pressure telemetry (docs/STORE.md).
//
// The feature store interns keys into a dense slot table that PR 1 made the
// hot path fast precisely by never moving — but "never moving" degenerated
// into "never reclaimed", and the agent domain mints a key family per
// session, so the millions-of-users north star implied unbounded intern
// growth. This module is the policy half of the fix (the store ships the
// mechanism: generation-tagged slots, a free list, Pin/Reclaim):
//
//   * last-write stamps  — every store write is stamped with simulated time
//                          via the engine's write observer (O(1), no lock).
//   * namespaces         — the spec's `retention { namespace "prefix" {..} }`
//                          block declares per-prefix key budgets (max_keys)
//                          and idle TTLs; keys are classified on first write
//                          by longest-prefix match.
//   * idle reclamation   — an incremental cursor walks `scan_chunk` slots
//                          per callout boundary and reclaims governed keys
//                          whose idle age exceeded their namespace TTL.
//   * quota eviction     — a namespace over its key budget evicts its
//                          least-recently-written members first (stable
//                          tie-break: lower slot id), down to the budget.
//   * telemetry          — value-diffed `store.retention.*` counters and
//                          `engine.store.bytes.*` gauges, published at
//                          callout boundaries; writes go through the normal
//                          Save path so ONCHANGE guardrails can react to
//                          breaches (the quota-exceeded corrective hook).
//
// Determinism contract: reclamation runs ONLY at callout boundaries, ONLY on
// the coordinator (the sharded engine replicates the serial boundary
// sequence), and is a pure function of simulated state — so serial and
// sharded runs with retention enabled stay bit-identical, and the chaos
// sites `store.evict_storm` / `store.quota_breach` replay exactly.
//
// Self-correction: bookkeeping (namespace counts, byte gauges, membership
// lists) tolerates reclamations it did not perform (agent session teardown
// calls FeatureStore::ReclaimKey directly). A tracked slot that turns out to
// be dead or pinned when touched is untracked on the spot, so counts
// converge instead of drifting.
//
// Off == absent: without a `retention { }` block nothing is stamped, no keys
// are interned, and every boundary pays a single branch.

#ifndef SRC_RUNTIME_RETENTION_H_
#define SRC_RUNTIME_RETENTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/dsl/sema.h"
#include "src/store/feature_store.h"
#include "src/support/time.h"

namespace osguard {

struct RetentionNamespaceOptions {
  std::string prefix;
  uint64_t max_keys = 0;  // 0 = no key budget (TTL only)
  Duration idle_ttl = 0;  // <= 0 = no idle reclamation (quota only)
};

struct RetentionOptions {
  bool enabled = false;
  uint64_t scan_chunk = 64;  // slots examined per callout boundary
  std::vector<RetentionNamespaceOptions> namespaces;
};

struct RetentionStats {
  uint64_t reclaimed_idle = 0;    // idle-TTL reclamations (incl. storm)
  uint64_t reclaimed_quota = 0;   // LRU quota evictions
  uint64_t quota_breaches = 0;    // boundaries where a namespace was over budget
  uint64_t chaos_storms = 0;      // store.evict_storm injections taken
  uint64_t chaos_breaches = 0;    // store.quota_breach injections taken
  uint64_t stale_tracks_fixed = 0;  // externally reclaimed slots untracked lazily
};

// Full retention state for the persisted engine image: a panic landing
// mid-scan must warm-restart with the same cursor, counters, and publish
// trackers so the post-restore trajectory matches in serial and sharded
// runs. Membership, stamps, and byte gauges are NOT imaged — they are
// rebuilt exactly by ResyncAfterRestore from the restored store.
struct RetentionImage {
  uint64_t cursor = 0;
  RetentionStats stats;
  bool keys_published = false;
  uint64_t pub_reclaimed = 0;
  uint64_t pub_evictions = 0;
  uint64_t pub_breaches = 0;
  uint64_t pub_bytes_total = 0;
  uint64_t pub_live_keys = 0;
  std::vector<uint64_t> pub_ns_keys;   // aligned with configured namespaces
  std::vector<uint64_t> pub_ns_bytes;
};

class RetentionManager {
 public:
  // Interns and pins the telemetry keys when enabled. `store` may be null
  // (bare unit tests); publishing is then a no-op. Safe to call again on
  // spec reload.
  void Configure(const RetentionOptions& options, FeatureStore* store);
  // Chaos is attached separately because the kernel wires it before specs
  // load; a null engine detaches.
  void AttachChaos(ChaosEngine* chaos);

  bool enabled() const { return options_.enabled; }
  const RetentionOptions& options() const { return options_; }
  const RetentionStats& stats() const { return stats_; }

  // Write-observer hook, O(1): stamps last-write time, classifies new slot
  // tenants into namespaces, and maintains per-namespace key/byte gauges.
  void OnWrite(const StoreWriteInfo& info, const std::string& key, SimTime now);

  // Callout boundary (coordinator only): chaos sampling, incremental TTL
  // scan, quota enforcement, telemetry publish. The only place reclamation
  // happens.
  void RunAtBoundary(SimTime now);

  // Places an already-live, unpinned slot under governance (stamped with
  // `now`). The write observer only tracks slots as they are written, so a
  // key whose owner just Unpinned it (monitor unload) would otherwise be
  // invisible to the TTL scan forever. No-op for pinned, dead, or ungoverned
  // slots.
  void AdoptKey(KeyId id, SimTime now);

  // Eagerly reclaims every governed, unpinned live key with the given
  // prefix (agent session teardown). Returns the number reclaimed. Unlike
  // boundary reclamation this may run mid-callout, but only from serial
  // coordinator-side effect paths, so determinism is preserved.
  uint64_t ReclaimPrefix(std::string_view prefix);

  RetentionImage ExportState() const;
  void RestoreState(const RetentionImage& image);
  // Rebuilds membership, counts, and byte gauges from the restored store and
  // stamps every tracked slot with `now` (restore time). Deterministic: both
  // sides of a differential restore the same store and resync identically.
  void ResyncAfterRestore(SimTime now);

 private:
  // Per-slot tracking. `ns` is an index into options_.namespaces, -1 when
  // the slot's key matches no governed prefix (or the slot is pinned).
  struct Tracked {
    int32_t ns = -1;
    bool valid = false;    // believed live with this tenant
    bool in_list = false;  // physically present in members_[ns]
    uint32_t generation = 0;
    uint64_t bytes = 0;
    SimTime last_write = 0;
  };

  int32_t Classify(std::string_view key) const;
  void Untrack(KeyId id, Tracked& t);
  // Reclaims via the store; fixes tracking on pinned/dead surprises.
  // Returns true when the slot was actually reclaimed.
  bool TryReclaim(KeyId id, Tracked& t, bool quota);
  void ScanChunk(SimTime now, bool storm);
  void EnforceQuota(SimTime now, bool breach_all);
  void Publish();

  RetentionOptions options_;
  FeatureStore* store_ = nullptr;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId storm_site_ = kInvalidChaosSite;
  ChaosSiteId breach_site_ = kInvalidChaosSite;

  std::vector<Tracked> tracked_;
  std::vector<std::vector<KeyId>> members_;  // per namespace; lazily pruned
  std::vector<uint64_t> ns_keys_;            // tracked live keys per namespace
  std::vector<uint64_t> ns_bytes_;           // tracked approx bytes per namespace
  uint64_t cursor_ = 0;
  RetentionStats stats_;

  // Telemetry keys (pinned at Configure).
  KeyId k_reclaimed_ = kInvalidKeyId;
  KeyId k_evictions_ = kInvalidKeyId;
  KeyId k_breaches_ = kInvalidKeyId;
  KeyId k_bytes_total_ = kInvalidKeyId;
  KeyId k_live_keys_ = kInvalidKeyId;
  std::vector<KeyId> k_ns_keys_;
  std::vector<KeyId> k_ns_bytes_;
  bool keys_published_ = false;
  uint64_t pub_reclaimed_ = 0;
  uint64_t pub_evictions_ = 0;
  uint64_t pub_breaches_ = 0;
  uint64_t pub_bytes_total_ = 0;
  uint64_t pub_live_keys_ = 0;
  std::vector<uint64_t> pub_ns_keys_;
  std::vector<uint64_t> pub_ns_bytes_;
};

// Built-in namespace defaults applied by the engine when a retention block
// is present but does not itself govern these families: per-session agent
// keys and per-monitor uptime counters leak when their owner dies, so they
// get a conservative TTL even if the spec author forgot them.
RetentionOptions WithBuiltinNamespaces(RetentionOptions options);

}  // namespace osguard

#endif  // SRC_RUNTIME_RETENTION_H_
