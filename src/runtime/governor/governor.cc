#include "src/runtime/governor/governor.h"

#include <algorithm>

#include "src/support/logging.h"

namespace osguard {

std::string_view GovernorModeName(GovernorMode mode) {
  switch (mode) {
    case GovernorMode::kFull:
      return "full";
    case GovernorMode::kSampled:
      return "sampled";
    case GovernorMode::kCriticalOnly:
      return "critical-only";
    case GovernorMode::kFailStatic:
      return "fail-static";
  }
  return "?";
}

void OverloadGovernor::Configure(const GovernorOptions& options, FeatureStore* store) {
  options_ = options;
  options_.sample_every = std::max<uint64_t>(options_.sample_every, 1);
  options_.dwell_up = std::max(options_.dwell_up, 1);
  options_.dwell_down = std::max(options_.dwell_down, 1);
  options_.alpha = std::clamp(options_.alpha, 1e-6, 1.0);
  store_ = store;
  if (options_.enabled && store_ != nullptr) {
    k_mode_ = store_->InternKey("engine.governor.mode");
    k_transitions_ = store_->InternKey("engine.governor.transitions");
    k_sheds_ = store_->InternKey("engine.governor.sheds");
    k_static_ = store_->InternKey("engine.governor.static_applies");
    // Cached ids must survive retention (docs/STORE.md pin contract).
    store_->Pin(k_mode_);
    store_->Pin(k_transitions_);
    store_->Pin(k_sheds_);
    store_->Pin(k_static_);
  }
}

GovernorDecision OverloadGovernor::Admit(Criticality criticality, uint64_t attempt,
                                         uint64_t static_epoch_seen) {
  switch (mode_) {
    case GovernorMode::kFull:
      return GovernorDecision::kEvaluate;
    case GovernorMode::kSampled:
      if (criticality == Criticality::kBestEffort) {
        if ((attempt - 1) % options_.sample_every != 0) {
          ++stats_.sheds_besteffort;
          return GovernorDecision::kShed;
        }
        ++stats_.sampled_evals;
      }
      return GovernorDecision::kEvaluate;
    case GovernorMode::kCriticalOnly:
      if (criticality == Criticality::kCritical) {
        return GovernorDecision::kEvaluate;
      }
      if (criticality == Criticality::kBestEffort) {
        ++stats_.sheds_besteffort;
      } else {
        ++stats_.sheds_standard;
      }
      return GovernorDecision::kShed;
    case GovernorMode::kFailStatic:
      if (criticality == Criticality::kCritical) {
        if (static_epoch_seen != fail_static_epoch_) {
          // Entering this episode: the caller pins the corrective action as
          // the fail-static default (counted via CountStaticApply).
          return GovernorDecision::kStatic;
        }
        ++stats_.static_suppressed;
        return GovernorDecision::kShed;
      }
      if (criticality == Criticality::kBestEffort) {
        ++stats_.sheds_besteffort;
      } else {
        ++stats_.sheds_standard;
      }
      return GovernorDecision::kShed;
  }
  return GovernorDecision::kEvaluate;
}

void OverloadGovernor::OnCalloutEnd(SimTime now, uint64_t evals_cum, int64_t wall_cum_ns) {
  if (!options_.enabled) {
    return;
  }
  ++stats_.callouts;
  const double cost = options_.wall_cost
                          ? static_cast<double>(wall_cum_ns - last_wall_ns_)
                          : static_cast<double>(evals_cum - last_evals_);
  const double gap = static_cast<double>(std::max<SimTime>(now - last_now_, 1));
  last_evals_ = evals_cum;
  last_wall_ns_ = wall_cum_ns;
  last_now_ = now;
  const double depth =
      probe_ ? static_cast<double>(probe_()) : 0.0;
  const double bytes =
      bytes_probe_ ? static_cast<double>(bytes_probe_()) : 0.0;
  if (!primed_) {
    // Seed the EWMAs with the first observation instead of decaying up from
    // zero — the ladder must not spend its first dwell window blind.
    primed_ = true;
    cost_ewma_ = cost;
    gap_ewma_ = gap;
    depth_ewma_ = depth;
    bytes_ewma_ = bytes;
  } else {
    const double a = options_.alpha;
    cost_ewma_ = a * cost + (1.0 - a) * cost_ewma_;
    gap_ewma_ = a * gap + (1.0 - a) * gap_ewma_;
    depth_ewma_ = a * depth + (1.0 - a) * depth_ewma_;
    bytes_ewma_ = a * bytes + (1.0 - a) * bytes_ewma_;
  }
  // Pressure: cost per unit time. Sim mode: evaluations per simulated
  // second. Wall mode: host-busy ns per simulated ns (utilization ratio).
  pressure_ = options_.wall_cost
                  ? cost_ewma_ / std::max(gap_ewma_, 1.0)
                  : cost_ewma_ / std::max(gap_ewma_, 1.0) * 1e9;
  const double up = options_.wall_cost ? options_.wall_up : options_.pressure_up;
  const double down = options_.wall_cost ? options_.wall_down : options_.pressure_down;
  const bool bytes_gated = options_.store_bytes_up > 0.0;
  const bool over = pressure_ > up || depth_ewma_ > options_.depth_up ||
                    (bytes_gated && bytes_ewma_ > options_.store_bytes_up);
  const bool under = pressure_ < down && depth_ewma_ < options_.depth_down &&
                     (!bytes_gated || bytes_ewma_ < options_.store_bytes_down);
  streak_up_ = over ? streak_up_ + 1 : 0;
  streak_down_ = under ? streak_down_ + 1 : 0;
  if (over && streak_up_ >= options_.dwell_up && mode_ != GovernorMode::kFailStatic) {
    mode_ = static_cast<GovernorMode>(static_cast<uint8_t>(mode_) + 1);
    streak_up_ = 0;
    streak_down_ = 0;
    ++stats_.transitions;
    ++stats_.escalations;
    if (mode_ == GovernorMode::kFailStatic) {
      ++fail_static_epoch_;
    }
    OSGUARD_LOG(kDebug) << "governor escalated to " << GovernorModeName(mode_)
                        << " (pressure " << pressure_ << ", depth " << depth_ewma_ << ")";
  } else if (under && streak_down_ >= options_.dwell_down &&
             mode_ != GovernorMode::kFull) {
    mode_ = static_cast<GovernorMode>(static_cast<uint8_t>(mode_) - 1);
    streak_up_ = 0;
    streak_down_ = 0;
    ++stats_.transitions;
    ++stats_.deescalations;
    OSGUARD_LOG(kDebug) << "governor de-escalated to " << GovernorModeName(mode_)
                        << " (pressure " << pressure_ << ")";
  }
}

void OverloadGovernor::Publish() {
  if (!options_.enabled || store_ == nullptr || k_mode_ == kInvalidKeyId) {
    return;
  }
  const int64_t mode = static_cast<int64_t>(mode_);
  if (!keys_published_ || mode != pub_mode_) {
    keys_published_ = true;
    pub_mode_ = mode;
    store_->Save(k_mode_, Value(mode));
  }
  if (stats_.transitions != pub_transitions_) {
    pub_transitions_ = stats_.transitions;
    store_->Save(k_transitions_, Value(static_cast<int64_t>(stats_.transitions)));
  }
  const uint64_t sheds = stats_.sheds_besteffort + stats_.sheds_standard +
                         stats_.static_suppressed;
  if (sheds != pub_sheds_) {
    pub_sheds_ = sheds;
    store_->Save(k_sheds_, Value(static_cast<int64_t>(sheds)));
  }
  if (stats_.static_applies != pub_static_) {
    pub_static_ = stats_.static_applies;
    store_->Save(k_static_, Value(static_cast<int64_t>(stats_.static_applies)));
  }
}

GovernorImage OverloadGovernor::ExportState() const {
  GovernorImage image;
  image.mode = static_cast<uint8_t>(mode_);
  image.primed = primed_;
  image.cost_ewma = cost_ewma_;
  image.gap_ewma = gap_ewma_;
  image.depth_ewma = depth_ewma_;
  image.last_now = last_now_;
  image.last_evals = last_evals_;
  image.last_wall_ns = last_wall_ns_;
  image.bytes_ewma = bytes_ewma_;
  image.streak_up = streak_up_;
  image.streak_down = streak_down_;
  image.fail_static_epoch = fail_static_epoch_;
  image.stats = stats_;
  image.keys_published = keys_published_;
  image.pub_mode = pub_mode_;
  image.pub_transitions = pub_transitions_;
  image.pub_sheds = pub_sheds_;
  image.pub_static = pub_static_;
  return image;
}

void OverloadGovernor::RestoreState(const GovernorImage& image) {
  mode_ = static_cast<GovernorMode>(
      std::min<uint8_t>(image.mode, static_cast<uint8_t>(GovernorMode::kFailStatic)));
  primed_ = image.primed;
  cost_ewma_ = image.cost_ewma;
  gap_ewma_ = image.gap_ewma;
  depth_ewma_ = image.depth_ewma;
  last_now_ = image.last_now;
  last_evals_ = image.last_evals;
  last_wall_ns_ = image.last_wall_ns;
  bytes_ewma_ = image.bytes_ewma;
  streak_up_ = image.streak_up;
  streak_down_ = image.streak_down;
  fail_static_epoch_ = image.fail_static_epoch;
  stats_ = image.stats;
  keys_published_ = image.keys_published;
  pub_mode_ = image.pub_mode;
  pub_transitions_ = image.pub_transitions;
  pub_sheds_ = image.pub_sheds;
  pub_static_ = image.pub_static;
}

}  // namespace osguard
