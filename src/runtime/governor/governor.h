// Overload governor: bounded guardrail-plane cost under callout storms.
//
// The paper's framing is that guardrails must stay cheap and always-on even
// when the system around them misbehaves. This module is the "even when"
// part for load: when callout pressure spikes (a storm of instrumented
// calls, a monitor population that grew too expensive, a host event queue
// backing up), the governor walks a degradation ladder instead of letting
// monitor evaluation cost grow without bound:
//
//   kFull          every monitor evaluates (the governor is pure bookkeeping)
//   kSampled       best-effort monitors evaluate every Nth attempt
//                  (deterministic stride, no randomness), the rest in full
//   kCriticalOnly  only `criticality = critical` monitors evaluate
//   kFailStatic    evaluation stops entirely; each critical monitor's
//                  corrective action runs once as a pinned fail-static
//                  default, so the system degrades into its safe static
//                  configuration instead of running unguarded
//
// Signals are an EWMA of per-callout evaluation cost and an EWMA of host
// queue depth; escalation/de-escalation use distinct thresholds plus dwell
// counts (hysteresis), so the ladder cannot flap on a noisy boundary.
//
// Determinism contract (docs/GOVERNOR.md): in the default configuration the
// cost signal is the *evaluation count* and the time base is *simulated*
// time, so a governed run replays bit-identically and the serial engine
// remains a valid differential oracle for the sharded engine with the
// governor on — transitions, shed decisions, and the engine.governor.* store
// keys are part of the compared state. The optional wall-clock mode
// (GovernorOptions::wall_cost) keys the cost signal off host nanoseconds and
// is excluded from differentials, the same discipline as shard telemetry.
//
// Off == absent: with `enabled = false` (the default) the engine pays one
// branch per evaluation and nothing else; no keys are interned, no state
// moves, and output is bit-identical to a build without the governor.

#ifndef SRC_RUNTIME_GOVERNOR_GOVERNOR_H_
#define SRC_RUNTIME_GOVERNOR_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "src/dsl/sema.h"
#include "src/store/feature_store.h"
#include "src/support/time.h"

namespace osguard {

// Ladder rungs, ordered by increasing degradation. Values are stable: they
// appear in the persisted engine image and the engine.governor.mode key.
enum class GovernorMode : uint8_t {
  kFull = 0,
  kSampled = 1,
  kCriticalOnly = 2,
  kFailStatic = 3,
};

std::string_view GovernorModeName(GovernorMode mode);

// Per-monitor admission verdict at BeginRuleEval time.
enum class GovernorDecision : uint8_t {
  kEvaluate = 0,  // run the rule as usual
  kShed = 1,      // skip this evaluation (never returned for critical
                  // monitors unless their fail-static default is pinned)
  kStatic = 2,    // pin the corrective action once as a fail-static default,
                  // then skip (critical monitors entering kFailStatic)
};

struct GovernorOptions {
  bool enabled = false;
  // Pressure thresholds in evaluations per simulated second (cost EWMA
  // divided by inter-callout gap EWMA). Escalate above `pressure_up`,
  // de-escalate below `pressure_down`; the gap between them is the
  // hysteresis band.
  double pressure_up = 200000.0;
  double pressure_down = 50000.0;
  // Queue-depth EWMA thresholds (SetQueueProbe; the signal is 0 when no
  // probe is wired, so these never fire for a bare engine).
  double depth_up = 512.0;
  double depth_down = 64.0;
  // Consecutive over/under-threshold callouts before a one-rung move.
  int dwell_up = 4;
  int dwell_down = 32;
  // In kSampled mode a best-effort monitor evaluates on attempts
  // 1, 1+N, 1+2N, ... (deterministic stride; must be >= 1).
  uint64_t sample_every = 4;
  // EWMA smoothing factor in (0, 1].
  double alpha = 0.2;
  // Wall-clock cost mode: the cost signal becomes host nanoseconds per
  // callout and `pressure` becomes wall-busy ns per simulated ns (a
  // utilization ratio), compared against wall_up / wall_down instead of the
  // pressure thresholds. Not replayable — excluded from differentials.
  bool wall_cost = false;
  double wall_up = 0.5;
  double wall_down = 0.1;
  // Store-bytes EWMA thresholds (SetBytesProbe; approximate feature-store
  // bytes sampled once per callout boundary). 0 disables the signal, so a
  // spec without retention pressure wiring behaves exactly as before.
  double store_bytes_up = 0.0;
  double store_bytes_down = 0.0;
};

// Cumulative counters; `critical_sheds` is the invariant the benchjson
// --governor gate pins to zero — no code path increments it, because a
// critical monitor is only ever suppressed *behind a pinned fail-static
// default* (counted as static_suppressed instead).
struct GovernorStats {
  uint64_t callouts = 0;
  uint64_t transitions = 0;
  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  uint64_t sheds_besteffort = 0;
  uint64_t sheds_standard = 0;
  uint64_t sampled_evals = 0;    // best-effort evals that survived sampling
  uint64_t static_applies = 0;   // fail-static defaults pinned
  uint64_t static_suppressed = 0;  // critical evals suppressed behind a default
  uint64_t critical_sheds = 0;   // invariant: stays 0
};

// Full governor state for the persisted engine image (a panic landing
// mid-degradation must warm-restart into the same ladder state — pinned by
// tests/persist_test.cc). Plain data, serialized by Engine::EncodeImage.
struct GovernorImage {
  uint8_t mode = 0;
  bool primed = false;
  double cost_ewma = 0.0;
  double gap_ewma = 0.0;
  double depth_ewma = 0.0;
  SimTime last_now = 0;
  uint64_t last_evals = 0;
  int64_t last_wall_ns = 0;
  double bytes_ewma = 0.0;
  int64_t streak_up = 0;
  int64_t streak_down = 0;
  uint64_t fail_static_epoch = 0;
  GovernorStats stats;
  // Value-diffed publish trackers: they must survive a warm restart or the
  // first post-restart publish would diverge from an uninterrupted run.
  bool keys_published = false;
  int64_t pub_mode = 0;
  uint64_t pub_transitions = 0;
  uint64_t pub_sheds = 0;
  uint64_t pub_static = 0;
};

class OverloadGovernor {
 public:
  // Interns the engine.governor.* export keys when enabled. `store` may be
  // null (bare unit tests); publishing is then a no-op.
  void Configure(const GovernorOptions& options, FeatureStore* store);

  bool enabled() const { return options_.enabled; }
  GovernorMode mode() const { return mode_; }
  const GovernorStats& stats() const { return stats_; }
  // Current fail-static episode; bumped each time the ladder enters
  // kFailStatic, so a monitor's pinned default is re-applied once per
  // episode (Engine::Monitor::gov_static_epoch remembers the episode).
  uint64_t fail_static_epoch() const { return fail_static_epoch_; }
  // Last computed pressure signal (evals/sim-second, or the wall-utilization
  // ratio in wall mode) — introspection for tests and benches.
  double pressure() const { return pressure_; }
  double depth_ewma() const { return depth_ewma_; }
  double bytes_ewma() const { return bytes_ewma_; }

  // Host-queue depth probe, sampled once per callout boundary. The simulated
  // kernel wires its event-queue size; the value must be a deterministic
  // function of simulated state for differential runs.
  void SetQueueProbe(std::function<size_t()> probe) { probe_ = std::move(probe); }

  // Approximate store-bytes probe (third pressure input; docs/STORE.md). The
  // engine wires FeatureStore::approx_bytes, which is a deterministic
  // function of store contents, so the signal is differential-safe.
  void SetBytesProbe(std::function<uint64_t()> probe) { bytes_probe_ = std::move(probe); }

  // Admission for one monitor evaluation. `attempt` is the monitor's 1-based
  // admission counter (the sampling stride clock); `static_epoch_seen` is
  // the fail-static episode whose default the monitor already pinned.
  GovernorDecision Admit(Criticality criticality, uint64_t attempt,
                         uint64_t static_epoch_seen);
  void CountStaticApply() { ++stats_.static_applies; }

  // Callout boundary: feed the cumulative engine counters (the governor
  // diffs them internally), update the EWMAs, and move the ladder.
  void OnCalloutEnd(SimTime now, uint64_t evals_cum, int64_t wall_cum_ns);
  // Value-diffed engine.governor.* store export; callout boundaries only.
  void Publish();

  GovernorImage ExportState() const;
  void RestoreState(const GovernorImage& image);

 private:
  GovernorOptions options_;
  FeatureStore* store_ = nullptr;
  std::function<size_t()> probe_;
  std::function<uint64_t()> bytes_probe_;

  GovernorMode mode_ = GovernorMode::kFull;
  bool primed_ = false;
  double cost_ewma_ = 0.0;
  double gap_ewma_ = 0.0;
  double depth_ewma_ = 0.0;
  double bytes_ewma_ = 0.0;
  double pressure_ = 0.0;
  SimTime last_now_ = 0;
  uint64_t last_evals_ = 0;
  int64_t last_wall_ns_ = 0;
  int64_t streak_up_ = 0;
  int64_t streak_down_ = 0;
  uint64_t fail_static_epoch_ = 0;
  GovernorStats stats_;

  KeyId k_mode_ = kInvalidKeyId;
  KeyId k_transitions_ = kInvalidKeyId;
  KeyId k_sheds_ = kInvalidKeyId;
  KeyId k_static_ = kInvalidKeyId;
  bool keys_published_ = false;
  int64_t pub_mode_ = 0;
  uint64_t pub_transitions_ = 0;
  uint64_t pub_sheds_ = 0;
  uint64_t pub_static_ = 0;
};

}  // namespace osguard

#endif  // SRC_RUNTIME_GOVERNOR_GOVERNOR_H_
