#include "src/runtime/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_set>

#include "src/chaos/chaos.h"
#include "src/dsl/builtins.h"
#include "src/support/logging.h"
#include "src/vm/bytecode.h"

namespace osguard {
namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Mirrors helper_env.cc's NumericArg byte-for-byte: a worker-side type error
// must render the exact report message the serial engine would have emitted.
Result<double> NumericArg(const Value& v, const char* what) {
  if (!v.is_numeric() && v.type() != ValueType::kBool) {
    return InvalidArgumentError(std::string(what) + " is not numeric: " + v.ToString());
  }
  return v.NumericOr(0.0);
}

bool IsStoreReadHelper(HelperId id) {
  switch (id) {
    case HelperId::kLoad:
    case HelperId::kLoadOr:
    case HelperId::kExists:
    case HelperId::kCount:
    case HelperId::kSum:
    case HelperId::kMean:
    case HelperId::kMinAgg:
    case HelperId::kMaxAgg:
    case HelperId::kStdDev:
    case HelperId::kRate:
    case HelperId::kNewest:
    case HelperId::kOldest:
    case HelperId::kQuantile:
      return true;
    default:
      return false;
  }
}

bool IsStoreWriteHelper(HelperId id) {
  return id == HelperId::kSave || id == HelperId::kIncr || id == HelperId::kObserve;
}

// Store keys the engine infrastructure itself publishes at evaluation and
// callout boundaries (supervisor exports, dispatcher latency, tier/uptime/
// shard counters). A rule reading one of these observes engine-internal
// write timing, so it is pinned to its exact serial slot.
bool IsInfraKey(std::string_view key) {
  return key.starts_with("supervisor.") || key.starts_with("actions.") ||
         key.starts_with("engine.") || key.starts_with("monitor.");
}

// Static store-access footprint of one program.
struct ProgramScan {
  bool dynamic_read = false;   // store/aggregate read with an unresolved key
  bool dynamic_write = false;  // SAVE/INCR/OBSERVE with an unresolved key
  std::vector<KeyId> reads;    // slot ids read via kCallKeyed
  std::vector<KeyId> writes;   // slot ids written via kCallKeyed
};

void ScanProgram(const Program& program, ProgramScan* out) {
  for (const Insn& insn : program.insns) {
    if (insn.op != Op::kCall && insn.op != Op::kCallKeyed) {
      continue;
    }
    const HelperId id = static_cast<HelperId>(insn.imm);
    const bool keyed = insn.op == Op::kCallKeyed;
    if (IsStoreWriteHelper(id)) {
      if (keyed) {
        out->writes.push_back(static_cast<KeyId>(static_cast<uint32_t>(insn.aux)));
      } else {
        out->dynamic_write = true;
      }
    } else if (IsStoreReadHelper(id)) {
      if (keyed) {
        out->reads.push_back(static_cast<KeyId>(static_cast<uint32_t>(insn.aux)));
      } else {
        out->dynamic_read = true;
      }
    }
    // Math, NOW, and action helpers carry no store key.
  }
}

}  // namespace

// --- SnapshotHelperEnv ---

Result<Value> SnapshotHelperEnv::CallHelper(HelperId id, std::span<const Value> args) {
  // Reaches here for math helpers, NOW(), and nothing else in practice: rules
  // with unresolved store keys are classified serial by the plan, and action
  // helpers are rejected in rules by the verifier. The fallback env has no
  // chaos engine attached, matching the serial env's unarmed-site behavior
  // (an *armed* helper_fail site forces the whole callout serial).
  return fallback_.CallHelper(id, args);
}

Result<Value> SnapshotHelperEnv::CallHelperKeyed(HelperId id, uint32_t slot,
                                                 std::span<const Value> args) {
  if (slot >= view_.key_count()) {
    // Unknown slot (fuzzed or stale program): the serial env takes the string
    // slow path; its locked reads are safe during the quiescent drain.
    return fallback_.CallHelperKeyed(id, slot, args);
  }
  switch (id) {
    case HelperId::kLoad:
      return view_.LoadOr(slot, Value());  // nil when missing
    case HelperId::kLoadOr:
      return view_.LoadOr(slot, args[1]);
    case HelperId::kExists:
      return Value(view_.Contains(slot));
    case HelperId::kQuantile: {
      OSGUARD_ASSIGN_OR_RETURN(double q, NumericArg(args[1], "QUANTILE q"));
      if (q < 0.0 || q > 1.0) {
        return InvalidArgumentError("QUANTILE q must be in [0, 1]");
      }
      OSGUARD_ASSIGN_OR_RETURN(double window, NumericArg(args[2], "QUANTILE window"));
      auto result =
          view_.AggregateQuantile(slot, q, static_cast<Duration>(window), now());
      if (!result.ok()) {
        return Value();  // nil on empty window
      }
      return Value(result.value());
    }
    case HelperId::kCount:
    case HelperId::kSum:
    case HelperId::kMean:
    case HelperId::kMinAgg:
    case HelperId::kMaxAgg:
    case HelperId::kStdDev:
    case HelperId::kRate:
    case HelperId::kNewest:
    case HelperId::kOldest: {
      OSGUARD_ASSIGN_OR_RETURN(double window, NumericArg(args[1], "aggregate window"));
      auto result = view_.Aggregate(slot, AggKindForHelper(id),
                                    static_cast<Duration>(window), now());
      if (!result.ok()) {
        return Value();  // nil on empty window / missing series
      }
      return Value(result.value());
    }
    default:
      // SAVE/INCR/OBSERVE cannot appear in a rule (verifier) and everything
      // else is unkeyed; a mutation from a worker would corrupt the drain,
      // so fail loudly instead of delegating.
      return InternalError("mutating helper on the sharded read-only path");
  }
}

// --- ShardedEngine ---

ShardedEngine::ShardedEngine(Engine* engine, ShardingOptions options)
    : engine_(engine),
      options_(options),
      measure_wall_(engine->options_.measure_wall_time) {
  size_t n = options_.shards;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw > 1 ? hw - 1 : 1;
  }
  n = std::clamp<size_t>(n, 1, 16);
  if (options_.ring_capacity == 0) {
    // A zero-capacity ring could never admit a task; the batch path would
    // flush forever without progress. Reject at construction (the ring
    // itself rounds any valid capacity up to a power of two, minimum 2).
    OSGUARD_LOG(kWarning) << "sharding ring_capacity 0 is invalid; using minimum of 2";
    options_.ring_capacity = 2;
  }
  options_.probe_every = std::max<size_t>(options_.probe_every, 1);
  options_.probe_batches = std::max<size_t>(options_.probe_batches, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.ring_capacity));
  }
  for (size_t i = 0; i < n; ++i) {
    Shard* shard = shards_[i].get();
    SpscRing<EvalTask*>* ring = shard->ring.get();
    std::shared_ptr<WorkerCtl> ctl = shard->ctl;
    shard->thread = std::thread([this, shard, ring, ctl] { WorkerLoop(shard, ring, ctl); });
  }
  if (options_.telemetry) {
    FeatureStore& store = *engine_->store_;
    k_count_ = store.InternKey("engine.shard.count");
    k_batches_ = store.InternKey("engine.shard.batches");
    k_parallel_ = store.InternKey("engine.shard.parallel_evals");
    k_serial_ = store.InternKey("engine.shard.serial_evals");
    k_merge_ns_ = store.InternKey("engine.shard.merge_ns");
    k_timeouts_ = store.InternKey("engine.shard.watchdog_timeouts");
    k_stolen_ = store.InternKey("engine.shard.stolen_evals");
    k_respawns_ = store.InternKey("engine.shard.respawns");
    k_quarantine_ = store.InternKey("engine.shard.quarantine_evals");
    k_readmissions_ = store.InternKey("engine.shard.readmissions");
    k_ring_hwm_ = store.InternKey("engine.shard.ring_high_water");
    k_shard_evals_.reserve(n);
    k_shard_hwm_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const std::string prefix = "engine.shard." + std::to_string(i);
      k_shard_evals_.push_back(store.InternKey(prefix + ".evals"));
      k_shard_hwm_.push_back(store.InternKey(prefix + ".ring_hwm"));
    }
    published_shard_evals_.assign(n, 0);
    published_shard_hwm_.assign(n, 0);
  }
  OSGUARD_LOG(kDebug) << "sharded engine up: " << n << " shard worker(s), ring capacity "
                      << shards_[0]->ring->capacity();
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_release);
    doorbell_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  // Retired workers exit on stop_ too (a chaos-stalled one wakes within a
  // sleep slice); join them before the abandoned batches they point into die.
  for (RetiredWorker& worker : retired_) {
    if (worker.thread.joinable()) {
      worker.thread.join();
    }
  }
}

void ShardedEngine::AdvanceTo(SimTime t) {
  Engine& e = *engine_;
  ReapRetired();
  RefreshPlan();
  if (GlobalSerialRequired()) {
    if (!e.timers_.empty() && e.timers_.top().due <= t) {
      ++stats_.serial_callouts;
    }
    e.AdvanceTo(t);
    PublishTelemetry();
    return;
  }
  e.ApplyPendingRollbacks();
  // Pop due entries in the serial (deadline, tiebreak) order. Entries that
  // share a deadline batch into one ring-dispatched wave; a deadline
  // boundary flushes first so an entry never merges ahead of an earlier
  // deadline's side effects. Re-arms consume next_tiebreak_ at the entry's
  // exact pop position, so the heap order — and every future callout — is
  // byte-identical to the serial loop's.
  bool wave_open = false;
  SimTime wave_due = 0;
  while (!e.timers_.empty() && e.timers_.top().due <= t) {
    Engine::TimerEntry entry = e.timers_.top();
    e.timers_.pop();
    Engine::Monitor* monitor = e.ResolveEntry(entry);
    if (monitor == nullptr) {
      continue;  // unloaded or replaced since arming
    }
    if (wave_open && entry.due != wave_due) {
      FlushBatch();
      wave_open = false;
    }
    const CompiledTrigger& trigger = monitor->guardrail.triggers[entry.trigger_index];
    e.now_ = std::max(e.now_, entry.due);
    if (monitor->enabled) {
      ++e.stats_.timer_firings;
      DispatchMonitor(monitor, entry.due);
      wave_open = true;
      wave_due = entry.due;
    }
    const SimTime next = entry.due + trigger.interval;
    if (trigger.stop == 0 || next <= trigger.stop) {
      e.timers_.push(Engine::TimerEntry{next, e.next_tiebreak_++, entry.monitor_name,
                                        entry.trigger_index, entry.generation});
    }
    if (!e.pending_rollbacks_.empty()) {
      // Rollback sources (probation deploys) are serial-classified, so the
      // queue only fills synchronously, right after an inline dispatch —
      // apply it here, before the doomed version's next entry resolves,
      // exactly as the serial loop does. The swap bumps the topology, so
      // re-plan; the replacement spec may even demand global serial.
      FlushBatch();
      wave_open = false;
      e.ApplyPendingRollbacks();
      RefreshPlan();
      if (GlobalSerialRequired()) {
        ++stats_.serial_callouts;
        e.AdvanceTo(t);  // finishes the remaining entries + the boundary
        PublishTelemetry();
        return;
      }
    }
  }
  FlushBatch();
  e.now_ = std::max(e.now_, t);
  e.ApplyPendingRollbacks();
  e.PublishUptimeStats();
  e.PublishTierStats();
  e.RunRetention();
  e.FinishCalloutGovernor();
  PublishTelemetry();
  e.CommitPersist();
}

void ShardedEngine::WorkerLoop(Shard* shard, SpscRing<EvalTask*>* ring,
                               std::shared_ptr<WorkerCtl> ctl) {
  // Per-worker execution state: the Vm is not thread-safe, the snapshot
  // env's view/envelope are worker-local by design, and the NativeExec's
  // scratch buffers are single-threaded (one per worker, bound to this
  // worker's env). `ring` is passed explicitly (not shard->ring): after a
  // respawn this worker keeps draining its *old* ring, whose tasks are all
  // claimed by then.
  Vm vm;
  SnapshotHelperEnv env(engine_->store_);
  NativeExec nexec(env.fallback());
  uint64_t seen_doorbell = doorbell_.load(std::memory_order_acquire);
  while (true) {
    if (stop_.load(std::memory_order_acquire) ||
        ctl->exit.load(std::memory_order_acquire) ||
        ctl->die.load(std::memory_order_acquire)) {
      break;
    }
    const int64_t stall_until = ctl->stall_until_ns.load(std::memory_order_acquire);
    if (stall_until != 0) {
      if (WallNowNs() < stall_until) {
        // Injected stall: sleep in short slices so exit/die/stop stay
        // responsive (the watchdog will steal this worker's tasks meanwhile).
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      ctl->stall_until_ns.store(0, std::memory_order_release);
    }
    EvalTask* task = nullptr;
    if (ring->TryPop(&task)) {
      if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
        shard->evals.fetch_add(1, std::memory_order_relaxed);
        ExecuteTask(*task, vm, env, nexec);
      }
      continue;
    }
    // Brief yield-spin bridges the gap between a flush's ring publishes and
    // its doorbell, then block until the next batch (workers cost nothing
    // between callouts).
    bool got = false;
    for (int spin = 0; spin < 64 && !got; ++spin) {
      std::this_thread::yield();
      got = ring->TryPop(&task);
    }
    if (got) {
      if (!task->claimed.exchange(true, std::memory_order_acq_rel)) {
        shard->evals.fetch_add(1, std::memory_order_relaxed);
        ExecuteTask(*task, vm, env, nexec);
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             ctl->exit.load(std::memory_order_acquire) ||
             ctl->die.load(std::memory_order_acquire) ||
             doorbell_.load(std::memory_order_acquire) != seen_doorbell;
    });
    seen_doorbell = doorbell_.load(std::memory_order_acquire);
  }
  ctl->exited.store(true, std::memory_order_release);
}

void ShardedEngine::ExecuteTask(EvalTask& task, Vm& vm, SnapshotHelperEnv& env,
                                NativeExec& nexec) {
  Engine::Monitor& monitor = *task.monitor;
  env.Prepare(monitor.guardrail.name, monitor.guardrail.meta.severity, task.t,
              task.key_count);
  ExecBudget budget;
  const ExecBudget* budget_ptr = nullptr;
  if (task.prep.budget_steps > 0 || task.prep.budget_deadline_ns > 0) {
    budget.max_steps = static_cast<int64_t>(task.prep.budget_steps);
    budget.deadline_wall_ns = task.prep.budget_deadline_ns;
    budget_ptr = &budget;
  }
  const int64_t start = measure_wall_ ? WallNowNs() : 0;
  if (task.prep.injected_budget) {
    task.result = Result<Value>(ResourceExhaustedError(
        "rule of guardrail '" + monitor.guardrail.name +
        "' aborted by chaos site vm.budget_exhaust"));
    task.steps = 0;
  } else {
    const int64_t steps_before =
        monitor.guard != nullptr ? vm.stats().insns_executed : 0;
    // The coordinator picked the tier at Begin time (task.native_fn); the
    // native body's helper escapes route through the snapshot env's
    // chaos-free fallback and update the same Vm stats the interpreter
    // would, so steps/results/faults stay tier- and thread-invariant.
    task.result = task.native_fn != nullptr
                      ? nexec.Run(task.native_fn, monitor.guardrail.rule,
                                  task.native_consts, budget_ptr,
                                  &vm.mutable_stats())
                      : vm.Execute(monitor.guardrail.rule, env, budget_ptr);
    task.steps =
        monitor.guard != nullptr ? vm.stats().insns_executed - steps_before : 0;
  }
  task.wall_ns = measure_wall_ ? WallNowNs() - start : 0;
  task.done.store(true, std::memory_order_release);
}

void ShardedEngine::DrawWorkerChaos() {
  // The worker-fault sites depend on the watchdog for containment: without a
  // deadline a dead worker would strand the barrier forever, so the draws
  // are skipped entirely when it is disabled (documented in chaos.h).
  const ChaosEngine* chaos = engine_->chaos_;
  if (chaos == nullptr || options_.watchdog_ns <= 0) {
    return;
  }
  if (chaos != chaos_seen_) {
    // AttachChaos may happen any time after construction (and Reboot swaps
    // engines); register lazily and re-register if the engine changed.
    chaos_seen_ = chaos;
    ChaosEngine* mutable_chaos = engine_->chaos_;
    stall_site_ = mutable_chaos->RegisterSite(kChaosSiteShardWorkerStall);
    die_site_ = mutable_chaos->RegisterSite(kChaosSiteShardWorkerDie);
  }
  // One draw per involved shard per flush, shard-index order: the sequence
  // is a pure function of (seed, flush history), independent of worker
  // timing. The flags are set before the tasks are published, but a worker
  // already spinning may claim a task first — chaos perturbs scheduling on a
  // best-effort basis, and state identity holds either way.
  ChaosEngine* mutable_chaos = engine_->chaos_;
  const SimTime now = engine_->now_;
  for (auto& shard : shards_) {
    if (shard->inflight == 0) {
      continue;
    }
    if (die_site_ != kInvalidChaosSite && mutable_chaos->ShouldInject(die_site_, now)) {
      shard->ctl->die.store(true, std::memory_order_release);
      continue;  // a dead worker cannot also stall
    }
    if (stall_site_ != kInvalidChaosSite) {
      if (const FaultDecision d = mutable_chaos->Query(stall_site_, now)) {
        const double frac = (d.value > 0.0 && d.value <= 1.0) ? d.value : 1.0;
        const int64_t stall_ns =
            static_cast<int64_t>(static_cast<double>(options_.watchdog_ns) * 4.0 * frac);
        shard->ctl->stall_until_ns.store(WallNowNs() + stall_ns,
                                         std::memory_order_release);
      }
    }
  }
}

void ShardedEngine::RespawnWorker(Shard& shard) {
  // Retire: the old worker keeps its ring (every task in it is claimed by
  // now, so it can only pop-and-skip) and exits at the next flag check.
  shard.ctl->exit.store(true, std::memory_order_release);
  retired_.push_back(
      RetiredWorker{std::move(shard.thread), std::move(shard.ring), shard.ctl});
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    doorbell_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
  // Respawn on a fresh ring + control block, quarantined until it proves
  // itself over clean probe flushes.
  shard.ring = std::make_unique<SpscRing<EvalTask*>>(options_.ring_capacity);
  shard.ctl = std::make_shared<WorkerCtl>();
  Shard* sp = &shard;
  SpscRing<EvalTask*>* ring = shard.ring.get();
  std::shared_ptr<WorkerCtl> ctl = shard.ctl;
  shard.thread = std::thread([this, sp, ring, ctl] { WorkerLoop(sp, ring, ctl); });
  shard.quarantined = true;
  shard.clean_probes = 0;
  shard.probe_clock = 0;
  ++shard.respawns;
  ++stats_.worker_respawns;
  OSGUARD_LOG(kDebug) << "shard worker respawned (respawn #" << shard.respawns
                      << "); shard quarantined pending " << options_.probe_batches
                      << " clean probe(s)";
}

void ShardedEngine::ReapRetired() {
  if (retired_.empty()) {
    return;
  }
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (it->ctl->exited.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) {
        it->thread.join();
      }
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
  if (retired_.empty()) {
    // No stale consumer can pop an abandoned task pointer anymore.
    abandoned_.clear();
  }
}

void ShardedEngine::RefreshPlan() {
  if (plan_valid_ && plan_version_ == engine_->topology_version_) {
    return;
  }
  plan_.clear();
  plan_version_ = engine_->topology_version_;
  plan_valid_ = true;
  plan_global_serial_ = false;

  // Key-scoped ONCHANGE hazard: collect the watched-key set (every store key
  // some loaded ONCHANGE monitor observes) and pin only the monitors whose
  // static store traffic can touch it, instead of dropping the whole callout
  // to serial whenever a watcher is loaded. The one unscopeable case is a
  // watched *infra* key — the engine publishes those keys at Begin/Finish
  // and boundary time, a schedule the batch pipeline compresses, so the
  // cascade would fire at moments only the serial engine reproduces.
  std::unordered_set<KeyId> watched;
  for (size_t id = 0; id < engine_->watch_hooks_.size(); ++id) {
    if (engine_->watch_hooks_[id].empty()) {
      continue;
    }
    if (IsInfraKey(engine_->store_->KeyName(static_cast<KeyId>(id)))) {
      plan_global_serial_ = true;
      return;
    }
    watched.insert(static_cast<KeyId>(id));
  }

  // Static write closure of this topology's action programs. ONCHANGE
  // cascades only ever run monitor actions, so this also bounds everything a
  // cascade can write mid-callout. An action writing a key it only names at
  // runtime defeats the analysis: global serial.
  struct MonitorScan {
    Engine::Monitor* monitor = nullptr;
    ProgramScan rule;
    ProgramScan action;
  };
  std::vector<MonitorScan> scans;
  scans.reserve(engine_->monitors_.size());
  std::unordered_set<KeyId> action_writes;
  for (const auto& [name, monitor] : engine_->monitors_) {
    MonitorScan ms;
    ms.monitor = monitor.get();
    ScanProgram(monitor->guardrail.rule, &ms.rule);
    ScanProgram(monitor->guardrail.action, &ms.action);
    if (!monitor->guardrail.on_satisfy.empty()) {
      ScanProgram(monitor->guardrail.on_satisfy, &ms.action);
    }
    if (ms.action.dynamic_write) {
      plan_global_serial_ = true;
      return;
    }
    action_writes.insert(ms.action.writes.begin(), ms.action.writes.end());
    scans.push_back(std::move(ms));
  }

  // Per-monitor classification + round-robin partition of the parallel set.
  // monitors_ is an ordered map, so the partition is deterministic in the
  // same sorted-name order the function-hook index fires in.
  uint32_t next_shard = 0;
  size_t parallel = 0;
  size_t serial = 0;
  for (MonitorScan& ms : scans) {
    Engine::Monitor* const monitor = ms.monitor;
    bool is_serial =
        ms.rule.dynamic_read || ms.rule.dynamic_write || !ms.rule.writes.empty();
    if (!is_serial && monitor->guard != nullptr &&
        monitor->guard->config.budget_ns > 0) {
      // Wall-clock budgets deadline against the serial engine's own clock
      // reads; scheduling them off-thread would change what the deadline
      // means. Step budgets parallelize fine (the interpreter is exact).
      is_serial = true;
    }
    if (!is_serial && monitor->guard != nullptr &&
        (monitor->guard->in_probation || monitor->rollback_snapshot != nullptr)) {
      // Probation deploys can queue a bit-exact rollback from Begin or
      // Finish; keeping them inline makes the queue fill synchronously, so
      // the timer path can apply it between entries exactly like the serial
      // loop — and a promoted-then-probated monitor stays on the
      // interpreter at its serial position. Probation starts at Load (a
      // topology bump), so the plan can never miss its onset; after it ends
      // the monitor stays conservatively serial until the next topology
      // change.
      is_serial = true;
    }
    if (!is_serial) {
      for (KeyId key : ms.rule.reads) {
        if (action_writes.count(key) != 0 || IsInfraKey(engine_->store_->KeyName(key))) {
          is_serial = true;
          break;
        }
      }
    }
    if (!is_serial && !watched.empty()) {
      // A monitor whose actions write a watched key must run inside an
      // inline Evaluate: the serial protocol defers the cascade while
      // `evaluating_` and drains it after the outermost eval, whereas a
      // batched merge runs Finish outside `evaluating_`, where the write
      // would fire the watcher mid-action-program.
      for (KeyId key : ms.action.writes) {
        if (watched.count(key) != 0) {
          is_serial = true;
          break;
        }
      }
    }
    MonitorPlan mp;
    mp.serial = is_serial;
    if (!is_serial) {
      mp.shard = next_shard;
      next_shard = (next_shard + 1) % static_cast<uint32_t>(shards_.size());
      if (monitor->guard != nullptr) {
        monitor->guard->shard_id = mp.shard;
      }
      ++parallel;
    } else {
      ++serial;
    }
    plan_.emplace(monitor, mp);
  }
  OSGUARD_LOG(kDebug) << "sharded plan v" << plan_version_ << ": " << parallel
                      << " parallel / " << serial << " serial monitor(s) across "
                      << shards_.size() << " shard(s)";
}

bool ShardedEngine::GlobalSerialRequired() const {
  if (plan_global_serial_) {
    return true;
  }
  // An armed runtime.helper_fail site draws per helper call, in call order —
  // an ordering only the serial engine reproduces. Arming is runtime state
  // (chaos blocks apply at spec load, Arm() any time), so check per callout.
  const ChaosEngine* chaos = engine_->chaos_;
  if (chaos != nullptr) {
    const ChaosSiteId site = chaos->FindSite(kChaosSiteHelperFail);
    if (site != kInvalidChaosSite && chaos->PlanFor(site).mode != FaultMode::kOff) {
      return true;
    }
  }
  return false;
}

void ShardedEngine::SerialCallout(const std::vector<Engine::Monitor*>& hooked) {
  Engine& e = *engine_;
  for (Engine::Monitor* monitor : hooked) {
    if (monitor->enabled) {
      ++e.stats_.function_firings;
      e.Evaluate(*monitor, e.now_);
    }
  }
  e.ApplyPendingRollbacks();
  e.PublishUptimeStats();
  e.PublishTierStats();
  e.RunRetention();
  e.FinishCalloutGovernor();
  PublishTelemetry();
  e.CommitPersist();
}

void ShardedEngine::OnFunctionCall(std::string_view function, SimTime t) {
  Engine& e = *engine_;
  e.now_ = std::max(e.now_, t);
  ReapRetired();
  if (e.function_hooks_.empty()) {
    return;
  }
  if (e.chaos_ != nullptr) {
    if (e.chaos_->ShouldInject(e.callout_drop_site_, t)) {
      ++e.stats_.callouts_dropped;
      return;
    }
    if (const FaultDecision delay = e.chaos_->Query(e.callout_delay_site_, t)) {
      ++e.stats_.callouts_delayed;
      t += delay.latency;
      e.now_ = std::max(e.now_, t);
    }
  }
  auto it = e.function_hooks_.find(function);
  if (it == e.function_hooks_.end()) {
    return;
  }
  RefreshPlan();
  if (GlobalSerialRequired()) {
    ++stats_.serial_callouts;
    SerialCallout(it->second);
    return;
  }

  const SimTime now = e.now_;
  for (Engine::Monitor* monitor : it->second) {
    if (!monitor->enabled) {
      continue;
    }
    ++e.stats_.function_firings;
    DispatchMonitor(monitor, now);
  }
  FlushBatch();
  e.ApplyPendingRollbacks();
  e.PublishUptimeStats();
  e.PublishTierStats();
  e.RunRetention();
  e.FinishCalloutGovernor();
  PublishTelemetry();
  e.CommitPersist();
}

void ShardedEngine::DispatchMonitor(Engine::Monitor* monitor, SimTime t) {
  Engine& e = *engine_;
  const MonitorPlan& mp = plan_.at(monitor);
  if (mp.serial) {
    // Order-sensitive monitor: everything queued ahead of it completes
    // first, then it runs inline at its exact serial position.
    FlushBatch();
    ++stats_.serial_evals;
    e.Evaluate(*monitor, t);
    return;
  }
  Shard& shard = *shards_[mp.shard];
  if (shard.quarantined && (++shard.probe_clock % options_.probe_every) != 0) {
    // Quarantined shard: evaluate inline at the exact serial position
    // (identical to the mp.serial path, so identity is untouched); every
    // probe_every-th opportunity falls through as a probe of the fresh
    // worker instead.
    FlushBatch();
    ++stats_.quarantine_evals;
    e.Evaluate(*monitor, t);
    return;
  }
  if (shard.inflight == shard.ring->capacity() ||
      std::find(in_batch_.begin(), in_batch_.end(), monitor) != in_batch_.end()) {
    // Backpressure, or the same monitor twice in one callout (its second
    // Begin must observe its first Finish).
    FlushBatch();
  }
  if (e.persist_ != nullptr) {
    e.persist_->MarkDirty();
  }
  const Engine::RuleEvalPrep prep = e.BeginRuleEval(*monitor, t);
  if (prep.skip) {
    return;  // gated off / rollback queued — exactly the serial no-op
  }
  EvalTask& task = batch_.emplace_back();
  task.monitor = monitor;
  task.t = t;
  task.key_count = e.store_->key_count();
  task.prep = prep;
  if (e.options_.tier.enabled && !prep.injected_budget) {
    // Pick the execution tier now, at the coordinator, with exactly the
    // inputs serial ExecProgram would see at this monitor's exec slot:
    // nothing feeding the decision (promoted, native object, step cap,
    // probation) changes between this Begin and the worker run, because the
    // monitor's own Finish is the only mutator and it merges later.
    // Probation and wall-budget holdouts are serial-classified, so a task
    // here never carries them. The counters land in the same boundary
    // totals PublishTierStats diffs (it is a no-op mid-eval either way).
    if (monitor->promoted && monitor->native != nullptr &&
        monitor->native->rule != nullptr && prep.budget_steps == 0 &&
        (monitor->guard == nullptr || !monitor->guard->in_probation)) {
      task.native_fn = monitor->native->rule;
      task.native_consts = monitor->nat_rule_consts.data();
      ++e.tier_stats_.native_evals;
    } else {
      ++e.tier_stats_.interp_evals;
    }
    e.tier_dirty_ = true;
  }
  in_batch_.push_back(monitor);
  ++shard.inflight;
  shard.hwm = std::max(shard.hwm, shard.inflight);
}

void ShardedEngine::FlushBatch() {
  if (batch_.empty()) {
    return;
  }
  Engine& e = *engine_;
  // Chaos worker faults are decided (and worker flags set) before the tasks
  // are published, so a blocked worker observes them on wake-up.
  DrawWorkerChaos();
  // Track which quarantined shards this flush probes, before inflight resets.
  std::vector<uint32_t> probing;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->quarantined && shards_[i]->inflight > 0) {
      probing.push_back(i);
    }
  }
  // Publish: tasks go to the rings only now, after every BeginRuleEval in the
  // batch has finished mutating the store. From here until the barrier the
  // coordinator performs no store access, so the workers' lock-free views
  // read a writer-quiescent store.
  for (EvalTask& task : batch_) {
    const uint32_t shard_id =
        plan_.at(task.monitor).shard;  // plan is stable within a callout
    const bool pushed = shards_[shard_id]->ring->TryPush(&task);
    (void)pushed;  // capacity was reserved at enqueue; cannot fail
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    doorbell_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();
  // Completion barrier with a watchdog deadline: each task's release-store
  // of `done` publishes its result/steps to the coordinator. On expiry the
  // coordinator recovers the batch itself (steal + inline re-run) instead of
  // waiting on a stalled or dead worker.
  const int64_t deadline_ns =
      options_.watchdog_ns > 0 ? WallNowNs() + options_.watchdog_ns : 0;
  bool timed_out = false;
  for (EvalTask& task : batch_) {
    while (!task.done.load(std::memory_order_acquire)) {
      if (deadline_ns != 0 && WallNowNs() >= deadline_ns) {
        timed_out = true;
        break;
      }
      std::this_thread::yield();
    }
    if (timed_out) {
      break;
    }
  }
  std::vector<uint32_t> failed_shards;
  if (timed_out) {
    ++stats_.watchdog_timeouts;
    // Steal pass: claim-and-run every task no worker claimed. The claim CAS
    // makes the executor unique, and rule purity makes the inline re-run
    // bit-identical — a false positive (slow-but-alive worker) is merely a
    // wasted evaluation, never a divergence.
    Vm vm;
    SnapshotHelperEnv env(engine_->store_);
    NativeExec nexec(env.fallback());
    std::vector<bool> stolen_from(shards_.size(), false);
    for (EvalTask& task : batch_) {
      if (task.done.load(std::memory_order_acquire)) {
        continue;
      }
      if (!task.claimed.exchange(true, std::memory_order_acq_rel)) {
        ExecuteTask(task, vm, env, nexec);
        ++stats_.stolen_evals;
        stolen_from[plan_.at(task.monitor).shard] = true;
      }
    }
    // Tasks lost to the claim race have a live executor; wait them out
    // without a deadline (rules are verifier-bounded).
    for (EvalTask& task : batch_) {
      while (!task.done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      if (stolen_from[i]) {
        failed_shards.push_back(i);
      }
    }
  }
  // Deterministic merge: FinishRuleEval in the original enqueue (== serial)
  // order. All side effects — supervisor protocol, reports, action programs,
  // store writes — happen here, serially, exactly as the serial engine
  // interleaves them (eligibility guarantees no batched rule could have
  // observed them).
  // merge_ns feeds stats() (and the telemetry keys when enabled); the two
  // host-clock reads per batch are noise next to the merge itself, so it is
  // measured unconditionally — benchjson --sharded reads it telemetry-off.
  const int64_t merge_start = WallNowNs();
  for (EvalTask& task : batch_) {
    e.FinishRuleEval(*task.monitor, task.t, task.prep, std::move(task.result),
                     task.steps, task.wall_ns);
    ++stats_.parallel_evals;
  }
  stats_.merge_ns += WallNowNs() - merge_start;
  ++stats_.batches;
  // Probe accounting and shard health transitions (coordinator-owned).
  for (uint32_t i : probing) {
    Shard& shard = *shards_[i];
    if (timed_out && std::find(failed_shards.begin(), failed_shards.end(), i) !=
                         failed_shards.end()) {
      continue;  // failed its probe; RespawnWorker below restarts the count
    }
    ++stats_.probes;
    if (++shard.clean_probes >= options_.probe_batches) {
      shard.quarantined = false;
      shard.clean_probes = 0;
      ++stats_.readmissions;
      OSGUARD_LOG(kDebug) << "shard " << i << " re-admitted after clean probes";
    }
  }
  for (uint32_t i : failed_shards) {
    RespawnWorker(*shards_[i]);
  }
  for (auto& shard : shards_) {
    shard->inflight = 0;
  }
  if (timed_out) {
    // A retired worker may still pop these task pointers from its old ring;
    // keep them alive until every retired worker is reaped.
    abandoned_.push_back(std::move(batch_));
    batch_ = std::deque<EvalTask>();
  } else {
    batch_.clear();
  }
  in_batch_.clear();
}

void ShardedEngine::PublishTelemetry() {
  if (!options_.telemetry || k_count_ == kInvalidKeyId) {
    return;
  }
  FeatureStore& store = *engine_->store_;
  if (!telemetry_ready_) {
    telemetry_ready_ = true;
    store.Save(k_count_, Value(static_cast<int64_t>(shards_.size())));
  }
  const auto publish = [&store](KeyId key, uint64_t value, uint64_t& last) {
    if (value != last) {
      last = value;
      store.Save(key, Value(static_cast<int64_t>(value)));
    }
  };
  publish(k_batches_, stats_.batches, published_.batches);
  publish(k_parallel_, stats_.parallel_evals, published_.parallel_evals);
  publish(k_serial_, stats_.serial_evals, published_.serial_evals);
  if (stats_.merge_ns != published_.merge_ns) {
    published_.merge_ns = stats_.merge_ns;
    store.Save(k_merge_ns_, Value(stats_.merge_ns));
  }
  publish(k_timeouts_, stats_.watchdog_timeouts, published_.watchdog_timeouts);
  publish(k_stolen_, stats_.stolen_evals, published_.stolen_evals);
  publish(k_respawns_, stats_.worker_respawns, published_.worker_respawns);
  publish(k_quarantine_, stats_.quarantine_evals, published_.quarantine_evals);
  publish(k_readmissions_, stats_.readmissions, published_.readmissions);
  publish(k_ring_hwm_, RingHighWaterMark(), published_ring_hwm_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    publish(k_shard_evals_[i], shards_[i]->evals.load(std::memory_order_relaxed),
            published_shard_evals_[i]);
    publish(k_shard_hwm_[i], shards_[i]->hwm, published_shard_hwm_[i]);
  }
}

}  // namespace osguard
