// Sharded multi-core guardrail engine: a scheduling layer over Engine that
// evaluates rule programs on worker threads while keeping every side effect
// on the coordinator, in serial order.
//
// The output contract is *bit-identity with the serial engine*: reports,
// monitor stats, supervisor state, chaos replays, and the persisted image of
// a sharded run are byte-for-byte equal to the same workload run serially
// (the serial engine stays in-tree as the differential oracle; see
// tests/shard_diff_test.cc and docs/SHARDING.md). The trick is that rule
// programs of well-behaved guardrails are *pure reads* of the feature store
// — the verifier rejects mutating helpers inside rules — so their execution
// order is unobservable, and only their execution is parallelized:
//
//   callout --> coordinator: BeginRuleEval per monitor (gate, stats, chaos
//               draws — engine-mutating, serial, in hook order), tasks packed
//               into per-shard SPSC rings
//           --> doorbell: shard workers drain their rings, each evaluating
//               rules on a private Vm against a lock-free FeatureStore
//               ReadView (the store is writer-quiescent during the drain)
//           --> barrier, then coordinator: FinishRuleEval per task in the
//               original sequence order (supervisor protocol, reports,
//               action programs — all serial), rollbacks, publish, persist.
//
// Monitors whose evaluation is order-sensitive (rules reading keys that this
// callout's actions may write, wall-clock budgets, dynamic store keys,
// infra-key readers, probation deploys, monitors whose actions write a key an
// ONCHANGE cascade watches) are evaluated inline on the coordinator at their
// exact serial position; batches flush around them. ONCHANGE hazards are
// *key-scoped*: the plan intersects each monitor's static read/write sets
// with the watched-key set, so a cascade with disjoint keys costs nothing.
// Only two engine-wide hazards remain (an armed runtime.helper_fail chaos
// site, whose per-helper draw order only the serial engine reproduces, and
// an unprovable write set: a dynamic-key action write or a watched infra
// key) — those disable batching for the callout, and the sharded engine then
// *is* the serial engine plus a branch.
//
// The timer path runs the same pipeline: AdvanceTo pops due entries in the
// serial (deadline, tiebreak) order, Begins them on the coordinator, and
// batches entries that share a deadline into one ring-dispatched wave;
// re-arms and rollback application interleave per entry exactly as the
// serial engine's loop does. Native-tier composition: a promoted monitor's
// cached `.so` rule body runs on the shard worker (each worker owns a
// NativeExec bound to its snapshot env), with the tier chosen at Begin time
// on the coordinator — the same decision ExecProgram would make at its
// serial position, since nothing feeding it changes in between.
//
// Self-healing (docs/GOVERNOR.md): the completion barrier carries a wall-
// clock watchdog deadline. On expiry the coordinator *steals* every task its
// worker never claimed (a claim CAS on the task guarantees exactly one
// executor) and re-runs them inline — sound because rule programs are pure
// reads, so re-execution is bit-identical and the identity contract holds
// even on a false-positive steal. A shard whose tasks were stolen is
// quarantined (its monitors evaluate inline at their serial position), its
// worker is retired and a fresh one spawned, and the shard is re-admitted
// after `probe_batches` clean probe flushes. Retired workers park on their
// old ring (every task in it is already claimed) until reaped; the abandoned
// batch storage is retained until then so a stale pop never dangles. The
// chaos sites shard.worker_stall / shard.worker_die inject exactly the
// faults this machinery contains, and the differential tests pin that a
// stormed, stalled, killed sharded run still matches the serial oracle.

#ifndef SRC_RUNTIME_SHARDED_ENGINE_H_
#define SRC_RUNTIME_SHARDED_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/runtime/engine.h"
#include "src/runtime/helper_env.h"
#include "src/runtime/native_exec.h"
#include "src/store/feature_store.h"
#include "src/support/spsc_ring.h"
#include "src/vm/vm.h"

namespace osguard {

struct ShardingOptions {
  bool enabled = false;
  // Worker thread count; 0 = hardware_concurrency() - 1, clamped to [1, 16].
  size_t shards = 0;
  // Publish engine.shard.* feature-store keys at callout boundaries. The
  // differential tests turn this off: telemetry is the one store surface
  // where serial and sharded runs legitimately differ.
  bool telemetry = true;
  // Per-shard ring capacity. Validated at construction: 0 is rejected (the
  // engine logs and substitutes the minimum of 2), and any other value is
  // rounded up to a power of two by the ring itself. A batch never holds
  // more than this many in-flight tasks per shard; the coordinator flushes
  // early instead of blocking on a full ring.
  size_t ring_capacity = 256;
  // Watchdog deadline on the flush completion barrier, host nanoseconds;
  // 0 disables the watchdog (and with it the shard.worker_* chaos draws,
  // which would otherwise strand the barrier forever). The default is
  // generous — three orders of magnitude above a typical batch — because a
  // false-positive steal costs only a redundant inline evaluation.
  int64_t watchdog_ns = 500'000'000;
  // Consecutive clean probe flushes before a quarantined shard is re-admitted.
  size_t probe_batches = 3;
  // While quarantined, every `probe_every`-th enqueue opportunity routes to
  // the shard's fresh worker as a probe; the rest evaluate inline.
  size_t probe_every = 4;
};

// Aggregate counters, mirrored to engine.shard.* keys when telemetry is on.
struct ShardedStats {
  uint64_t batches = 0;          // flushes that merged >= 1 parallel task
  uint64_t parallel_evals = 0;   // rule executions on worker threads
  uint64_t serial_evals = 0;     // inline evaluations (per-monitor fallback)
  uint64_t serial_callouts = 0;  // callouts that ran fully serial (global fallback)
  int64_t merge_ns = 0;          // host-clock cost of in-order merges
  // Watchdog / self-healing counters (engine.shard.* telemetry).
  uint64_t watchdog_timeouts = 0;   // barriers that hit the deadline
  uint64_t stolen_evals = 0;        // unclaimed tasks re-run inline by the coordinator
  uint64_t worker_respawns = 0;     // workers retired + replaced
  uint64_t quarantine_evals = 0;    // quarantined-shard tasks evaluated inline
  uint64_t probes = 0;              // probe flushes routed to a quarantined shard
  uint64_t readmissions = 0;        // shards restored to full service
};

// Worker-side HelperContext: the read-only subset of MonitorHelperEnv served
// from a FeatureStore::ReadView instead of the locked accessors. Rules that
// reach a worker have every store access pre-resolved to a slot id
// (kCallKeyed) — dynamic-key rules are classified serial — so the lock-free
// view covers the hot path and everything else (math, NOW, the defensive
// string fallback for unknown slots) delegates to a chaos-free
// MonitorHelperEnv whose locked reads are safe during the quiescent drain.
// Result values and error strings are byte-identical to the serial env's.
class SnapshotHelperEnv : public HelperContext {
 public:
  explicit SnapshotHelperEnv(FeatureStore* store)
      : fallback_(store, /*dispatcher=*/nullptr), view_(store) {}

  // Per-task setup on the worker: envelope + the slot-id space the
  // coordinator captured when the batch was sealed (stamped through the task
  // so workers never touch the store mutex on the hot path).
  void Prepare(const std::string& guardrail, Severity severity, SimTime now,
               size_t key_count) {
    fallback_.UpdateEnvelope(guardrail, severity, now);
    view_.set_key_count(key_count);
  }

  Result<Value> CallHelper(HelperId id, std::span<const Value> args) override;
  Result<Value> CallHelperKeyed(HelperId id, uint32_t slot,
                                std::span<const Value> args) override;
  SimTime now() const override { return fallback_.envelope().now; }

  // The chaos-free env a worker-local NativeExec binds to: native helper
  // escapes route through its locked reads, which are safe (and value-equal
  // to the seqlock view) during the writer-quiescent drain.
  MonitorHelperEnv* fallback() { return &fallback_; }

  uint64_t view_retries() const { return view_.retries(); }

 private:
  MonitorHelperEnv fallback_;  // chaos-free, dispatcher-free
  FeatureStore::ReadView view_;
};

class ShardedEngine {
 public:
  // `engine` is borrowed and must outlive this object. Worker threads start
  // in the constructor and join in the destructor; between callouts they
  // sleep on a doorbell condvar and cost nothing.
  ShardedEngine(Engine* engine, ShardingOptions options);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Drop-in replacements for the engine callouts. AdvanceTo batches due
  // timer entries that share a deadline into one eval wave and flushes at
  // every deadline boundary, rollback, or serial-classified entry, so fires
  // and re-arms stay byte-identical to the serial loop.
  void OnFunctionCall(std::string_view function, SimTime t);
  void AdvanceTo(SimTime t);

  size_t shard_count() const { return shards_.size(); }
  const ShardedStats& stats() const { return stats_; }
  // Ring-occupancy high-water mark of shard `i` (telemetry).
  size_t RingHighWater(size_t i) const { return shards_[i]->hwm; }
  // Max ring-occupancy high-water mark across shards: the governor's
  // queue-depth probe adds this to the sim event-queue depth, and telemetry
  // exports it as engine.shard.ring_high_water.
  size_t RingHighWaterMark() const {
    size_t hwm = 0;
    for (const auto& shard : shards_) {
      hwm = std::max(hwm, shard->hwm);
    }
    return hwm;
  }
  uint64_t ShardEvals(size_t i) const {
    return shards_[i]->evals.load(std::memory_order_relaxed);
  }
  bool ShardQuarantined(size_t i) const { return shards_[i]->quarantined; }
  uint64_t ShardRespawns(size_t i) const { return shards_[i]->respawns; }
  // Workers retired by the watchdog and not yet joined (coordinator thread).
  size_t RetiredWorkerCount() const { return retired_.size(); }

 private:
  struct EvalTask {
    Engine::Monitor* monitor = nullptr;
    SimTime t = 0;
    size_t key_count = 0;  // store slot-id space when the batch was sealed
    Engine::RuleEvalPrep prep;
    // Native-tier composition: non-null when the coordinator picked the AOT
    // rule body at Begin time (promoted, no step cap, not in probation). The
    // pointers stay valid across the flush — the monitor's shared_ptr pins
    // the NativeObject, and demotion never clears it.
    NativeObject::EntryFn native_fn = nullptr;
    const osg_value* native_consts = nullptr;
    // Worker outputs, published by the `done` release store.
    Result<Value> result = Value();
    int64_t steps = 0;
    int64_t wall_ns = 0;
    // Claim CAS: whoever flips claimed false->true executes the task. The
    // worker claims after popping; the watchdog claims when stealing. A task
    // lost to the worker has a live executor, so the coordinator may wait
    // for its `done` without a deadline.
    std::atomic<bool> claimed{false};
    std::atomic<bool> done{false};
  };

  // Per-worker control block, shared between the coordinator and one worker
  // thread (and kept alive by the retired list after a respawn). `exit`
  // retires the worker; `die` / `stall_until_ns` are the chaos payloads.
  struct WorkerCtl {
    std::atomic<bool> exit{false};
    std::atomic<bool> exited{false};
    std::atomic<bool> die{false};
    std::atomic<int64_t> stall_until_ns{0};
  };

  struct Shard {
    Shard(size_t capacity)
        : ring(std::make_unique<SpscRing<EvalTask*>>(capacity)),
          ctl(std::make_shared<WorkerCtl>()) {}
    // unique_ptr so a respawn can hand the old ring to the retired worker
    // that still pops from it.
    std::unique_ptr<SpscRing<EvalTask*>> ring;
    std::shared_ptr<WorkerCtl> ctl;
    std::thread thread;
    // Batch-local producer-side occupancy (coordinator only).
    size_t inflight = 0;
    // Telemetry. Atomic (relaxed) because a slow-but-alive worker may still
    // be finishing its claimed task while the coordinator reads; `hwm` is
    // coordinator-owned.
    std::atomic<uint64_t> evals{0};
    size_t hwm = 0;
    // Watchdog state, coordinator-owned. Quarantine affects only *where* a
    // task runs (inline vs worker), never results — wall-clock-dependent
    // scheduling stays outside the identity surface.
    bool quarantined = false;
    uint64_t clean_probes = 0;
    uint64_t probe_clock = 0;
    uint64_t respawns = 0;
  };

  // A worker retired by the watchdog: it keeps its old ring (whose tasks are
  // all claimed, so it only pops and skips) until it observes `exit` and is
  // joined by ReapRetired or the destructor.
  struct RetiredWorker {
    std::thread thread;
    std::unique_ptr<SpscRing<EvalTask*>> ring;
    std::shared_ptr<WorkerCtl> ctl;
  };

  // Eligibility classification of one monitor (plan entry).
  struct MonitorPlan {
    bool serial = false;  // evaluate inline on the coordinator
    uint32_t shard = 0;
  };

  void WorkerLoop(Shard* shard, SpscRing<EvalTask*>* ring,
                  std::shared_ptr<WorkerCtl> ctl);
  void ExecuteTask(EvalTask& task, Vm& vm, SnapshotHelperEnv& env,
                   NativeExec& nexec);

  void RespawnWorker(Shard& shard);
  // Joins retired workers that have observed their exit flag; once none
  // remain, the abandoned batch storage is released.
  void ReapRetired();
  // Registers the shard.worker_* chaos sites once a chaos engine is attached
  // (AttachChaos can happen after construction), then draws them — one draw
  // per involved shard per flush, in shard-index order, so the sequence
  // replays deterministically.
  void DrawWorkerChaos();

  // Rebuilds the partition + eligibility plan iff the engine's monitor
  // topology changed since the cached plan was built.
  void RefreshPlan();
  // Engine-wide batching disablers re-checked per callout (chaos arming is
  // runtime state, not topology).
  bool GlobalSerialRequired() const;
  // One monitor firing at its serial position: inline (serial-classified /
  // quarantine), or Begin + enqueue on its shard. Shared by the function and
  // timer callouts.
  void DispatchMonitor(Engine::Monitor* monitor, SimTime t);
  // Kicks the workers and merges every in-flight task in sequence order.
  void FlushBatch();
  // Fully serial callout body (global fallback), identical to the engine's.
  void SerialCallout(const std::vector<Engine::Monitor*>& hooked);
  void PublishTelemetry();

  Engine* engine_;
  ShardingOptions options_;
  bool measure_wall_;  // cached engine options_.measure_wall_time

  std::vector<std::unique_ptr<Shard>> shards_;
  // Batch storage: deque for pointer stability (tasks are shared with
  // workers by address); cleared after every flush. A timed-out batch is
  // moved to abandoned_ instead — a retired worker may still pop its task
  // pointers — and released once every retired worker is reaped.
  std::deque<EvalTask> batch_;
  std::vector<Engine::Monitor*> in_batch_;  // dup detection (batches are small)
  std::vector<std::deque<EvalTask>> abandoned_;
  std::vector<RetiredWorker> retired_;

  // Doorbell: workers sleep on the condvar when their ring is empty; the
  // coordinator bumps the counter under the mutex on every flush.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> doorbell_{0};
  std::atomic<bool> stop_{false};

  // Cached plan, keyed on the engine's topology version.
  uint64_t plan_version_ = 0;
  bool plan_valid_ = false;
  bool plan_global_serial_ = false;  // topology-level: watched infra key /
                                     // dynamic-key action write
  std::unordered_map<const Engine::Monitor*, MonitorPlan> plan_;

  // Chaos sites, registered lazily (off == absent: nothing registers until a
  // chaos engine is attached, and kOff sites consume no randomness).
  const ChaosEngine* chaos_seen_ = nullptr;
  ChaosSiteId stall_site_ = kInvalidChaosSite;
  ChaosSiteId die_site_ = kInvalidChaosSite;

  ShardedStats stats_;
  ShardedStats published_;  // last telemetry values written to the store
  bool telemetry_ready_ = false;
  KeyId k_count_ = kInvalidKeyId;
  KeyId k_batches_ = kInvalidKeyId;
  KeyId k_parallel_ = kInvalidKeyId;
  KeyId k_serial_ = kInvalidKeyId;
  KeyId k_merge_ns_ = kInvalidKeyId;
  KeyId k_timeouts_ = kInvalidKeyId;
  KeyId k_stolen_ = kInvalidKeyId;
  KeyId k_respawns_ = kInvalidKeyId;
  KeyId k_quarantine_ = kInvalidKeyId;
  KeyId k_readmissions_ = kInvalidKeyId;
  KeyId k_ring_hwm_ = kInvalidKeyId;  // engine.shard.ring_high_water (max over shards)
  uint64_t published_ring_hwm_ = 0;
  std::vector<KeyId> k_shard_evals_;
  std::vector<KeyId> k_shard_hwm_;
  std::vector<uint64_t> published_shard_evals_;
  std::vector<uint64_t> published_shard_hwm_;
};

}  // namespace osguard

#endif  // SRC_RUNTIME_SHARDED_ENGINE_H_
