// Sharded multi-core guardrail engine: a scheduling layer over Engine that
// evaluates rule programs on worker threads while keeping every side effect
// on the coordinator, in serial order.
//
// The output contract is *bit-identity with the serial engine*: reports,
// monitor stats, supervisor state, chaos replays, and the persisted image of
// a sharded run are byte-for-byte equal to the same workload run serially
// (the serial engine stays in-tree as the differential oracle; see
// tests/shard_diff_test.cc and docs/SHARDING.md). The trick is that rule
// programs of well-behaved guardrails are *pure reads* of the feature store
// — the verifier rejects mutating helpers inside rules — so their execution
// order is unobservable, and only their execution is parallelized:
//
//   callout --> coordinator: BeginRuleEval per monitor (gate, stats, chaos
//               draws — engine-mutating, serial, in hook order), tasks packed
//               into per-shard SPSC rings
//           --> doorbell: shard workers drain their rings, each evaluating
//               rules on a private Vm against a lock-free FeatureStore
//               ReadView (the store is writer-quiescent during the drain)
//           --> barrier, then coordinator: FinishRuleEval per task in the
//               original sequence order (supervisor protocol, reports,
//               action programs — all serial), rollbacks, publish, persist.
//
// Monitors whose evaluation is order-sensitive (rules reading keys that this
// callout's actions may write, wall-clock budgets, dynamic store keys,
// infra-key readers) are evaluated inline on the coordinator at their exact
// serial position; batches flush around them. Engine-wide hazards (ONCHANGE
// monitors, the native tier, an armed runtime.helper_fail chaos site,
// actions with unprovable write sets) disable batching entirely for the
// callout — the sharded engine then *is* the serial engine plus a branch.

#ifndef SRC_RUNTIME_SHARDED_ENGINE_H_
#define SRC_RUNTIME_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/runtime/engine.h"
#include "src/runtime/helper_env.h"
#include "src/store/feature_store.h"
#include "src/support/spsc_ring.h"
#include "src/vm/vm.h"

namespace osguard {

struct ShardingOptions {
  bool enabled = false;
  // Worker thread count; 0 = hardware_concurrency() - 1, clamped to [1, 16].
  size_t shards = 0;
  // Publish engine.shard.* feature-store keys at callout boundaries. The
  // differential tests turn this off: telemetry is the one store surface
  // where serial and sharded runs legitimately differ.
  bool telemetry = true;
  // Per-shard ring capacity (rounded up to a power of two). A batch never
  // holds more than this many in-flight tasks per shard; the coordinator
  // flushes early instead of blocking on a full ring.
  size_t ring_capacity = 256;
};

// Aggregate counters, mirrored to engine.shard.* keys when telemetry is on.
struct ShardedStats {
  uint64_t batches = 0;          // flushes that merged >= 1 parallel task
  uint64_t parallel_evals = 0;   // rule executions on worker threads
  uint64_t serial_evals = 0;     // inline evaluations (per-monitor fallback)
  uint64_t serial_callouts = 0;  // callouts that ran fully serial (global fallback)
  int64_t merge_ns = 0;          // host-clock cost of in-order merges
};

// Worker-side HelperContext: the read-only subset of MonitorHelperEnv served
// from a FeatureStore::ReadView instead of the locked accessors. Rules that
// reach a worker have every store access pre-resolved to a slot id
// (kCallKeyed) — dynamic-key rules are classified serial — so the lock-free
// view covers the hot path and everything else (math, NOW, the defensive
// string fallback for unknown slots) delegates to a chaos-free
// MonitorHelperEnv whose locked reads are safe during the quiescent drain.
// Result values and error strings are byte-identical to the serial env's.
class SnapshotHelperEnv : public HelperContext {
 public:
  explicit SnapshotHelperEnv(FeatureStore* store)
      : fallback_(store, /*dispatcher=*/nullptr), view_(store) {}

  // Per-task setup on the worker: envelope + the slot-id space the
  // coordinator captured when the batch was sealed (stamped through the task
  // so workers never touch the store mutex on the hot path).
  void Prepare(const std::string& guardrail, Severity severity, SimTime now,
               size_t key_count) {
    fallback_.UpdateEnvelope(guardrail, severity, now);
    view_.set_key_count(key_count);
  }

  Result<Value> CallHelper(HelperId id, std::span<const Value> args) override;
  Result<Value> CallHelperKeyed(HelperId id, uint32_t slot,
                                std::span<const Value> args) override;
  SimTime now() const override { return fallback_.envelope().now; }

  uint64_t view_retries() const { return view_.retries(); }

 private:
  MonitorHelperEnv fallback_;  // chaos-free, dispatcher-free
  FeatureStore::ReadView view_;
};

class ShardedEngine {
 public:
  // `engine` is borrowed and must outlive this object. Worker threads start
  // in the constructor and join in the destructor; between callouts they
  // sleep on a doorbell condvar and cost nothing.
  ShardedEngine(Engine* engine, ShardingOptions options);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Drop-in replacements for the engine callouts. AdvanceTo delegates
  // unconditionally — TIMER cadences are long and interleave with rollback
  // application per entry, so batching them buys nothing and risks much.
  void OnFunctionCall(std::string_view function, SimTime t);
  void AdvanceTo(SimTime t);

  size_t shard_count() const { return shards_.size(); }
  const ShardedStats& stats() const { return stats_; }
  // Ring-occupancy high-water mark of shard `i` (telemetry).
  size_t RingHighWater(size_t i) const { return shards_[i]->hwm; }
  uint64_t ShardEvals(size_t i) const { return shards_[i]->evals; }

 private:
  struct EvalTask {
    Engine::Monitor* monitor = nullptr;
    SimTime t = 0;
    size_t key_count = 0;  // store slot-id space when the batch was sealed
    Engine::RuleEvalPrep prep;
    // Worker outputs, published by the `done` release store.
    Result<Value> result = Value();
    int64_t steps = 0;
    int64_t wall_ns = 0;
    std::atomic<bool> done{false};
  };

  struct Shard {
    explicit Shard(size_t capacity) : ring(capacity) {}
    SpscRing<EvalTask*> ring;
    std::thread thread;
    // Batch-local producer-side occupancy (coordinator only).
    size_t inflight = 0;
    // Telemetry. `evals` is written by the worker and read by the
    // coordinator strictly after the completion barrier (the tasks' done
    // acquire-loads order it); `hwm` is coordinator-owned.
    uint64_t evals = 0;
    size_t hwm = 0;
  };

  // Eligibility classification of one monitor (plan entry).
  struct MonitorPlan {
    bool serial = false;  // evaluate inline on the coordinator
    uint32_t shard = 0;
  };

  void WorkerLoop(Shard& shard);
  void ExecuteTask(EvalTask& task, Vm& vm, SnapshotHelperEnv& env, Shard& shard);

  // Rebuilds the partition + eligibility plan iff the engine's monitor
  // topology changed since the cached plan was built.
  void RefreshPlan();
  // Engine-wide batching disablers re-checked per callout (chaos arming is
  // runtime state, not topology).
  bool GlobalSerialRequired() const;
  // Kicks the workers and merges every in-flight task in sequence order.
  void FlushBatch();
  // Fully serial callout body (global fallback), identical to the engine's.
  void SerialCallout(const std::vector<Engine::Monitor*>& hooked);
  void PublishTelemetry();

  Engine* engine_;
  ShardingOptions options_;
  bool measure_wall_;  // cached engine options_.measure_wall_time

  std::vector<std::unique_ptr<Shard>> shards_;
  // Batch storage: deque for pointer stability (tasks are shared with
  // workers by address); cleared after every flush.
  std::deque<EvalTask> batch_;
  std::vector<Engine::Monitor*> in_batch_;  // dup detection (batches are small)

  // Doorbell: workers sleep on the condvar when their ring is empty; the
  // coordinator bumps the counter under the mutex on every flush.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<uint64_t> doorbell_{0};
  std::atomic<bool> stop_{false};

  // Cached plan, keyed on the engine's topology version.
  uint64_t plan_version_ = 0;
  bool plan_valid_ = false;
  bool plan_global_serial_ = false;  // topology-level: ONCHANGE / tier / writes
  std::unordered_map<const Engine::Monitor*, MonitorPlan> plan_;

  ShardedStats stats_;
  ShardedStats published_;  // last telemetry values written to the store
  bool telemetry_ready_ = false;
  KeyId k_count_ = kInvalidKeyId;
  KeyId k_batches_ = kInvalidKeyId;
  KeyId k_parallel_ = kInvalidKeyId;
  KeyId k_serial_ = kInvalidKeyId;
  KeyId k_merge_ns_ = kInvalidKeyId;
  std::vector<KeyId> k_shard_evals_;
  std::vector<KeyId> k_shard_hwm_;
  std::vector<uint64_t> published_shard_evals_;
  std::vector<uint64_t> published_shard_hwm_;
};

}  // namespace osguard

#endif  // SRC_RUNTIME_SHARDED_ENGINE_H_
