#include "src/runtime/retention.h"

#include <algorithm>

#include "src/support/logging.h"

namespace osguard {

namespace {
constexpr Duration kBuiltinAgentSessionTtl = Seconds(120);
constexpr Duration kBuiltinMonitorCounterTtl = Seconds(600);
}  // namespace

RetentionOptions WithBuiltinNamespaces(RetentionOptions options) {
  if (!options.enabled) {
    return options;
  }
  auto governs = [&options](std::string_view prefix) {
    for (const RetentionNamespaceOptions& ns : options.namespaces) {
      if (ns.prefix == prefix) {
        return true;
      }
    }
    return false;
  };
  // Per-session agent keys ("agent.s<sid>.*"). The agent globals that share
  // the prefix (agent.sessions, agent.seen_sessions) are pinned by their
  // owners, so the namespace only ever reclaims true session state.
  if (!governs("agent.s")) {
    RetentionNamespaceOptions ns;
    ns.prefix = "agent.s";
    ns.idle_ttl = kBuiltinAgentSessionTtl;
    options.namespaces.push_back(std::move(ns));
  }
  // Per-monitor uptime/tier counters ("monitor.<name>.*") left behind by
  // unloaded monitors. Live monitors pin their counter ids, so only
  // orphaned counters age out.
  if (!governs("monitor.")) {
    RetentionNamespaceOptions ns;
    ns.prefix = "monitor.";
    ns.idle_ttl = kBuiltinMonitorCounterTtl;
    options.namespaces.push_back(std::move(ns));
  }
  return options;
}

void RetentionManager::Configure(const RetentionOptions& options, FeatureStore* store) {
  options_ = options;
  options_.scan_chunk = std::max<uint64_t>(options_.scan_chunk, 1);
  store_ = store;
  const size_t n = options_.namespaces.size();
  tracked_.clear();
  members_.assign(n, {});
  ns_keys_.assign(n, 0);
  ns_bytes_.assign(n, 0);
  cursor_ = 0;
  k_ns_keys_.assign(n, kInvalidKeyId);
  k_ns_bytes_.assign(n, kInvalidKeyId);
  pub_ns_keys_.assign(n, 0);
  pub_ns_bytes_.assign(n, 0);
  keys_published_ = false;
  pub_reclaimed_ = pub_evictions_ = pub_breaches_ = 0;
  pub_bytes_total_ = pub_live_keys_ = 0;
  if (options_.enabled && store_ != nullptr) {
    k_reclaimed_ = store_->InternKey("store.retention.reclaimed");
    k_evictions_ = store_->InternKey("store.retention.evictions");
    k_breaches_ = store_->InternKey("store.retention.breaches");
    k_bytes_total_ = store_->InternKey("engine.store.bytes.total");
    k_live_keys_ = store_->InternKey("engine.store.keys.live");
    store_->Pin(k_reclaimed_);
    store_->Pin(k_evictions_);
    store_->Pin(k_breaches_);
    store_->Pin(k_bytes_total_);
    store_->Pin(k_live_keys_);
    for (size_t i = 0; i < n; ++i) {
      k_ns_keys_[i] = store_->InternKey("engine.store.keys." + options_.namespaces[i].prefix);
      k_ns_bytes_[i] = store_->InternKey("engine.store.bytes." + options_.namespaces[i].prefix);
      store_->Pin(k_ns_keys_[i]);
      store_->Pin(k_ns_bytes_[i]);
    }
  }
  if (chaos_ != nullptr && options_.enabled) {
    storm_site_ = chaos_->RegisterSite(kChaosSiteStoreEvictStorm);
    breach_site_ = chaos_->RegisterSite(kChaosSiteStoreQuotaBreach);
  }
}

void RetentionManager::AttachChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  if (chaos_ != nullptr && options_.enabled) {
    storm_site_ = chaos_->RegisterSite(kChaosSiteStoreEvictStorm);
    breach_site_ = chaos_->RegisterSite(kChaosSiteStoreQuotaBreach);
  } else {
    storm_site_ = kInvalidChaosSite;
    breach_site_ = kInvalidChaosSite;
  }
}

int32_t RetentionManager::Classify(std::string_view key) const {
  // Longest-prefix match so "agent.s" and a more specific "agent.s42." can
  // coexist with the expected precedence.
  int32_t best = -1;
  size_t best_len = 0;
  for (size_t i = 0; i < options_.namespaces.size(); ++i) {
    const std::string& prefix = options_.namespaces[i].prefix;
    if (key.size() >= prefix.size() && prefix.size() >= best_len &&
        key.compare(0, prefix.size(), prefix) == 0) {
      best = static_cast<int32_t>(i);
      best_len = prefix.size();
    }
  }
  return best;
}

void RetentionManager::Untrack(KeyId id, Tracked& t) {
  (void)id;
  if (t.valid && t.ns >= 0) {
    ns_keys_[t.ns] -= 1;
    ns_bytes_[t.ns] -= t.bytes;
  }
  t.valid = false;
  t.ns = -1;
  t.bytes = 0;
  // in_list stays as-is: the member entry (if any) is pruned by the next
  // collection pass, which clears the flag.
}

void RetentionManager::OnWrite(const StoreWriteInfo& info, const std::string& key,
                               SimTime now) {
  if (!options_.enabled) {
    return;
  }
  if (info.id >= tracked_.size()) {
    tracked_.resize(info.id + 1);
  }
  Tracked& t = tracked_[info.id];
  if (info.pinned) {
    // Pinned keys are lifecycle-exempt; drop any tracking acquired before
    // the owner pinned the id.
    if (t.valid) {
      Untrack(info.id, t);
    }
    return;
  }
  if (!t.valid || t.generation != info.generation) {
    // New tenant (first write, or the slot was reclaimed and recycled).
    if (t.valid) {
      Untrack(info.id, t);
    }
    const int32_t ns = Classify(key);
    t.generation = info.generation;
    if (ns < 0) {
      t.valid = false;
      t.ns = -1;
      t.bytes = 0;
      t.last_write = now;
      return;
    }
    t.valid = true;
    t.ns = ns;
    t.bytes = 0;
    ns_keys_[ns] += 1;
    if (!t.in_list) {
      members_[ns].push_back(info.id);
      t.in_list = true;
    }
  }
  t.last_write = now;
  ns_bytes_[t.ns] += info.approx_bytes - t.bytes;
  t.bytes = info.approx_bytes;
}

bool RetentionManager::TryReclaim(KeyId id, Tracked& t, bool quota) {
  const Status status = store_->ReclaimKeyId(id);
  if (status.ok()) {
    Untrack(id, t);
    if (quota) {
      ++stats_.reclaimed_quota;
    } else {
      ++stats_.reclaimed_idle;
    }
    return true;
  }
  // Pinned (FailedPrecondition) or already dead (NotFound): either way this
  // slot is not ours to govern right now — untrack so counts converge.
  if (status.code() == ErrorCode::kNotFound) {
    ++stats_.stale_tracks_fixed;
  }
  Untrack(id, t);
  return false;
}

void RetentionManager::ScanChunk(SimTime now, bool storm) {
  if (tracked_.empty()) {
    return;
  }
  const uint64_t budget = storm ? tracked_.size() : options_.scan_chunk;
  for (uint64_t step = 0; step < budget; ++step) {
    if (cursor_ >= tracked_.size()) {
      cursor_ = 0;
    }
    const KeyId id = static_cast<KeyId>(cursor_++);
    Tracked& t = tracked_[id];
    if (!t.valid || t.ns < 0) {
      continue;
    }
    const Duration ttl = options_.namespaces[t.ns].idle_ttl;
    if (storm) {
      TryReclaim(id, t, /*quota=*/false);
    } else if (ttl > 0 && now - t.last_write >= ttl) {
      TryReclaim(id, t, /*quota=*/false);
    }
  }
}

void RetentionManager::EnforceQuota(SimTime now, bool breach_all) {
  (void)now;
  for (size_t i = 0; i < options_.namespaces.size(); ++i) {
    const uint64_t configured = options_.namespaces[i].max_keys;
    uint64_t budget = configured;
    if (breach_all) {
      // Injected breach: pretend the namespace budget collapsed to half its
      // live population, forcing LRU eviction pressure deterministically.
      budget = ns_keys_[i] / 2;
    } else if (configured == 0 || ns_keys_[i] <= configured) {
      continue;
    }
    // Collection pass: compact the member list, recompute the exact count,
    // and fix any tracking the lazy bookkeeping left behind.
    std::vector<KeyId>& members = members_[i];
    std::vector<KeyId> live;
    live.reserve(members.size());
    for (const KeyId id : members) {
      Tracked& t = tracked_[id];
      if (t.valid && t.ns == static_cast<int32_t>(i)) {
        // A tracked entry only counts against the budget if the slot still
        // holds the tenant we stamped: externally reclaimed or recycled
        // slots would inflate the census and evict healthy keys.
        if (store_->IsLive(id) && store_->GenerationOf(id) == t.generation) {
          if (store_->IsPinned(id)) {
            Untrack(id, t);  // pinned after tracking: now exempt
            t.in_list = false;
            continue;
          }
          live.push_back(id);
          continue;
        }
        ++stats_.stale_tracks_fixed;
        Untrack(id, t);
      }
      t.in_list = false;
    }
    members = live;
    if (ns_keys_[i] != live.size()) {
      // Count drifted (external reclaims); the exact census wins.
      ns_keys_[i] = live.size();
    }
    if (budget >= live.size() || live.empty()) {
      continue;
    }
    ++stats_.quota_breaches;
    // LRU by last write, stable tie-break on slot id.
    std::sort(live.begin(), live.end(), [this](KeyId a, KeyId b) {
      if (tracked_[a].last_write != tracked_[b].last_write) {
        return tracked_[a].last_write < tracked_[b].last_write;
      }
      return a < b;
    });
    const uint64_t excess = live.size() - budget;
    uint64_t evicted = 0;
    for (const KeyId id : live) {
      if (evicted >= excess) {
        break;
      }
      if (TryReclaim(id, tracked_[id], /*quota=*/true)) {
        ++evicted;
      }
    }
    if (evicted > 0) {
      OSGUARD_LOG(kDebug) << "retention evicted " << evicted << " keys from '"
                          << options_.namespaces[i].prefix << "'";
    }
  }
}

void RetentionManager::RunAtBoundary(SimTime now) {
  if (!options_.enabled || store_ == nullptr) {
    return;
  }
  bool storm = false;
  bool breach = false;
  if (chaos_ != nullptr) {
    if (storm_site_ != kInvalidChaosSite && chaos_->ShouldInject(storm_site_, now)) {
      storm = true;
      ++stats_.chaos_storms;
    }
    if (breach_site_ != kInvalidChaosSite && chaos_->ShouldInject(breach_site_, now)) {
      breach = true;
      ++stats_.chaos_breaches;
    }
  }
  ScanChunk(now, storm);
  EnforceQuota(now, breach);
  Publish();
}

void RetentionManager::AdoptKey(KeyId id, SimTime now) {
  if (!options_.enabled || store_ == nullptr) {
    return;
  }
  if (id >= store_->key_count() || !store_->IsLive(id) || store_->IsPinned(id)) {
    return;
  }
  const int32_t ns = Classify(store_->KeyName(id));
  if (ns < 0) {
    return;
  }
  if (id >= tracked_.size()) {
    tracked_.resize(id + 1);
  }
  Tracked& t = tracked_[id];
  if (t.valid) {
    return;  // already governed
  }
  t.ns = ns;
  t.valid = true;
  t.generation = store_->GenerationOf(id);
  t.bytes = store_->SlotApproxBytes(id);
  t.last_write = now;
  ns_keys_[ns] += 1;
  ns_bytes_[ns] += t.bytes;
  if (!t.in_list) {
    members_[ns].push_back(id);
    t.in_list = true;
  }
}

uint64_t RetentionManager::ReclaimPrefix(std::string_view prefix) {
  if (!options_.enabled || store_ == nullptr) {
    return 0;
  }
  uint64_t reclaimed = 0;
  for (KeyId id = 0; id < tracked_.size(); ++id) {
    Tracked& t = tracked_[id];
    if (!t.valid || t.ns < 0) {
      continue;
    }
    const std::string& key = store_->KeyName(id);
    if (key.size() < prefix.size() || key.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (TryReclaim(id, t, /*quota=*/false)) {
      ++reclaimed;
    }
  }
  return reclaimed;
}

void RetentionManager::Publish() {
  if (store_ == nullptr || k_reclaimed_ == kInvalidKeyId) {
    return;
  }
  const uint64_t reclaimed = stats_.reclaimed_idle;
  if (!keys_published_ || reclaimed != pub_reclaimed_) {
    pub_reclaimed_ = reclaimed;
    store_->Save(k_reclaimed_, Value(static_cast<int64_t>(reclaimed)));
  }
  if (!keys_published_ || stats_.reclaimed_quota != pub_evictions_) {
    pub_evictions_ = stats_.reclaimed_quota;
    store_->Save(k_evictions_, Value(static_cast<int64_t>(stats_.reclaimed_quota)));
  }
  if (!keys_published_ || stats_.quota_breaches != pub_breaches_) {
    pub_breaches_ = stats_.quota_breaches;
    store_->Save(k_breaches_, Value(static_cast<int64_t>(stats_.quota_breaches)));
  }
  const uint64_t bytes_total = store_->approx_bytes();
  if (!keys_published_ || bytes_total != pub_bytes_total_) {
    pub_bytes_total_ = bytes_total;
    store_->Save(k_bytes_total_, Value(static_cast<int64_t>(bytes_total)));
  }
  const uint64_t live = store_->live_key_count();
  if (!keys_published_ || live != pub_live_keys_) {
    pub_live_keys_ = live;
    store_->Save(k_live_keys_, Value(static_cast<int64_t>(live)));
  }
  for (size_t i = 0; i < k_ns_keys_.size(); ++i) {
    if (!keys_published_ || ns_keys_[i] != pub_ns_keys_[i]) {
      pub_ns_keys_[i] = ns_keys_[i];
      store_->Save(k_ns_keys_[i], Value(static_cast<int64_t>(ns_keys_[i])));
    }
    if (!keys_published_ || ns_bytes_[i] != pub_ns_bytes_[i]) {
      pub_ns_bytes_[i] = ns_bytes_[i];
      store_->Save(k_ns_bytes_[i], Value(static_cast<int64_t>(ns_bytes_[i])));
    }
  }
  keys_published_ = true;
}

RetentionImage RetentionManager::ExportState() const {
  RetentionImage image;
  image.cursor = cursor_;
  image.stats = stats_;
  image.keys_published = keys_published_;
  image.pub_reclaimed = pub_reclaimed_;
  image.pub_evictions = pub_evictions_;
  image.pub_breaches = pub_breaches_;
  image.pub_bytes_total = pub_bytes_total_;
  image.pub_live_keys = pub_live_keys_;
  image.pub_ns_keys = pub_ns_keys_;
  image.pub_ns_bytes = pub_ns_bytes_;
  return image;
}

void RetentionManager::RestoreState(const RetentionImage& image) {
  cursor_ = image.cursor;
  stats_ = image.stats;
  keys_published_ = image.keys_published;
  pub_reclaimed_ = image.pub_reclaimed;
  pub_evictions_ = image.pub_evictions;
  pub_breaches_ = image.pub_breaches;
  pub_bytes_total_ = image.pub_bytes_total;
  pub_live_keys_ = image.pub_live_keys;
  const size_t n = options_.namespaces.size();
  pub_ns_keys_ = image.pub_ns_keys;
  pub_ns_keys_.resize(n, 0);
  pub_ns_bytes_ = image.pub_ns_bytes;
  pub_ns_bytes_.resize(n, 0);
}

void RetentionManager::ResyncAfterRestore(SimTime now) {
  if (!options_.enabled || store_ == nullptr) {
    return;
  }
  const size_t n = options_.namespaces.size();
  members_.assign(n, {});
  ns_keys_.assign(n, 0);
  ns_bytes_.assign(n, 0);
  const size_t count = store_->key_count();
  tracked_.assign(count, Tracked{});
  for (KeyId id = 0; id < count; ++id) {
    if (!store_->IsLive(id) || store_->IsPinned(id)) {
      continue;
    }
    const int32_t ns = Classify(store_->KeyName(id));
    if (ns < 0) {
      continue;
    }
    Tracked& t = tracked_[id];
    t.ns = ns;
    t.valid = true;
    t.in_list = true;
    t.generation = store_->GenerationOf(id);
    t.bytes = store_->SlotApproxBytes(id);
    // Restore-time stamp: write times are not persisted, and both sides of
    // a differential restore identically, so this stays deterministic.
    t.last_write = now;
    members_[ns].push_back(id);
    ns_keys_[ns] += 1;
    ns_bytes_[ns] += t.bytes;
  }
  if (cursor_ >= tracked_.size()) {
    cursor_ = 0;
  }
}

}  // namespace osguard
