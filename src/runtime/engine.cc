#include "src/runtime/engine.h"

#include <chrono>

#include "src/dsl/parser.h"
#include "src/vm/verifier.h"

#include "src/support/logging.h"

namespace osguard {
namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Helpers whose first argument is a feature-store key — candidates for the
// kCall -> kCallKeyed slot-id rewrite.
bool IsKeyedHelper(HelperId id) {
  switch (id) {
    case HelperId::kLoad:
    case HelperId::kLoadOr:
    case HelperId::kSave:
    case HelperId::kIncr:
    case HelperId::kExists:
    case HelperId::kObserve:
    case HelperId::kCount:
    case HelperId::kSum:
    case HelperId::kMean:
    case HelperId::kMinAgg:
    case HelperId::kMaxAgg:
    case HelperId::kStdDev:
    case HelperId::kRate:
    case HelperId::kNewest:
    case HelperId::kOldest:
    case HelperId::kQuantile:
      return true;
    default:
      return false;
  }
}

// Destination register of an instruction, or -1 if it writes none.
int DefRegOf(const Insn& insn) {
  switch (insn.op) {
    case Op::kJump:
    case Op::kJumpIfFalse:
    case Op::kJumpIfTrue:
    case Op::kRet:
      return -1;
    default:
      return insn.a;
  }
}

// Load-time specialization: for every store/aggregate kCall whose key operand
// is provably the program constant loaded immediately-dominating the call,
// intern the key into `store` and rewrite the call to kCallKeyed carrying the
// slot id in aux. The analysis is deliberately conservative — it walks the
// straight-line predecessor block and gives up at any join point (jump
// target), non-fall-through instruction, or non-constant reaching definition.
// Calls it cannot prove stay on the string path; semantics never change.
void RewriteKeyedCalls(Program& program, FeatureStore& store) {
  const size_t n = program.insns.size();
  std::vector<char> is_target(n, 0);
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = program.insns[pc];
    int32_t off = 0;
    switch (insn.op) {
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
        off = insn.imm;
        break;
      case Op::kCmpConstJf:
      case Op::kCmpConstJt:
      case Op::kCmpRegJf:
      case Op::kCmpRegJt:
        off = insn.aux;
        break;
      default:
        continue;
    }
    const size_t target = pc + 1 + static_cast<size_t>(off);
    if (target < n) {
      is_target[target] = 1;
    }
  }
  for (size_t pc = 0; pc < n; ++pc) {
    Insn& call = program.insns[pc];
    if (call.op != Op::kCall || call.c < 1 ||
        !IsKeyedHelper(static_cast<HelperId>(call.imm))) {
      continue;
    }
    if (is_target[pc]) {
      continue;  // multiple predecessors: the key register isn't provable
    }
    const int key_reg = call.b;
    for (size_t k = pc; k-- > 0;) {
      const Insn& def = program.insns[k];
      if (def.op == Op::kJump || def.op == Op::kRet) {
        break;  // the call isn't reached by falling through this pc
      }
      if (DefRegOf(def) == key_reg) {
        // Nearest reaching definition. It dominates the call even if `k` is
        // itself a jump target — every path through k runs this def.
        if (def.op == Op::kLoadConst) {
          const Value& v = program.consts[static_cast<size_t>(def.imm)];
          if (const std::string* key = v.IfString()) {
            call.op = Op::kCallKeyed;
            const KeyId id = store.InternKey(*key);
            // The id is baked into the program, so the slot must never be
            // recycled under it (docs/STORE.md pin contract).
            store.Pin(id);
            call.aux = static_cast<int32_t>(id);
          }
        }
        break;
      }
      if (is_target[k]) {
        break;  // join point before the def: another path may differ
      }
    }
  }
}

}  // namespace

Engine::Engine(FeatureStore* store, PolicyRegistry* registry, TaskControl* task_control,
               EngineOptions options)
    : store_(store),
      registry_(registry),
      options_(options),
      reporter_(options.reporter_capacity),
      retrain_queue_(options.retrain),
      dispatcher_(&reporter_, registry, &retrain_queue_, task_control),
      env_(store, &dispatcher_),
      native_exec_(&env_) {
  dispatcher_.SetStore(store);  // publishes the actions.* failure counters
  dispatcher_.SetMeasureWallTime(options_.measure_wall_time);
  supervisor_.SetStore(store);  // publishes the supervisor.* health keys
  governor_.Configure(options_.governor, store);  // interns engine.governor.*
  // Third pressure input: approximate store bytes — a deterministic function
  // of store contents, so governed differential runs stay replayable.
  governor_.SetBytesProbe([store] { return store->approx_bytes(); });
  pending_changes_.reserve(64);
  drain_batch_.reserve(64);
  if (options_.tier.enabled) {
    aot_ = std::make_unique<NativeAot>(NativeAotOptions{
        .compiler = options_.tier.compiler, .cache_dir = options_.tier.cache_dir});
    gk_tier_promotions_ = store_->InternKey("engine.tier.promotions");
    gk_tier_demotions_ = store_->InternKey("engine.tier.demotions");
    gk_tier_native_evals_ = store_->InternKey("engine.tier.native_evals");
    gk_tier_interp_evals_ = store_->InternKey("engine.tier.interp_evals");
    store_->Pin(gk_tier_promotions_);
    store_->Pin(gk_tier_demotions_);
    store_->Pin(gk_tier_native_evals_);
    store_->Pin(gk_tier_interp_evals_);
    tier_dirty_ = true;
    PublishTierStats();  // keys exist (as zeros) from the start
  }
}

void Engine::ArmTimers(Monitor& monitor) {
  for (size_t i = 0; i < monitor.guardrail.triggers.size(); ++i) {
    const CompiledTrigger& trigger = monitor.guardrail.triggers[i];
    if (trigger.kind != TriggerKind::kTimer) {
      continue;
    }
    // A monitor loaded mid-run starts checking strictly after the current
    // time (no retroactive or immediate firings at load).
    SimTime first = trigger.start;
    if (first <= now_) {
      const Duration interval = trigger.interval;
      const int64_t missed = (now_ - trigger.start) / interval + 1;
      first = trigger.start + missed * interval;
    }
    if (trigger.stop != 0 && first > trigger.stop) {
      continue;
    }
    timers_.push(
        TimerEntry{first, next_tiebreak_++, monitor.guardrail.name, i, monitor.generation});
  }
}

Engine::Monitor* Engine::ResolveEntry(const TimerEntry& entry) const {
  auto it = monitors_.find(entry.monitor_name);
  if (it == monitors_.end() || it->second->generation != entry.generation) {
    return nullptr;
  }
  return it->second.get();
}

void Engine::RebuildFunctionIndex() {
  ++topology_version_;  // invalidates the sharded engine's cached plan
  function_hooks_.clear();
  watch_hooks_.assign(store_->key_count(), {});
  watch_hook_count_ = 0;
  monitor_names_.clear();
  monitor_names_.reserve(monitors_.size());
  for (auto& [name, monitor] : monitors_) {
    monitor_names_.push_back(name);
    for (const CompiledTrigger& trigger : monitor->guardrail.triggers) {
      if (trigger.kind == TriggerKind::kFunction) {
        function_hooks_[trigger.function_name].push_back(monitor.get());
      } else if (trigger.kind == TriggerKind::kOnChange) {
        const KeyId id = store_->InternKey(trigger.watch_key);
        store_->Pin(id);  // watch dispatch caches the id in watch_hooks_
        if (id >= watch_hooks_.size()) {
          watch_hooks_.resize(id + 1);
        }
        watch_hooks_[id].push_back(monitor.get());
        ++watch_hook_count_;
      }
    }
  }
}

Status Engine::Load(CompiledGuardrail guardrail) {
  if (guardrail.name.empty()) {
    return InvalidArgumentError("guardrail has no name");
  }
  // Defense in depth: never trust that the caller verified.
  OSGUARD_RETURN_IF_ERROR(Verify(guardrail.rule, VerifyOptions{.allow_actions = false}));
  OSGUARD_RETURN_IF_ERROR(Verify(guardrail.action, VerifyOptions{.allow_actions = true}));
  if (!guardrail.on_satisfy.empty()) {
    OSGUARD_RETURN_IF_ERROR(Verify(guardrail.on_satisfy, VerifyOptions{.allow_actions = true}));
  }
  // Bind constant store keys to slot ids, then re-verify: the rewrite only
  // flips kCall -> kCallKeyed and fills aux, but the verifier is the
  // authority on what runs, so it gets the final word on the mutated form.
  RewriteKeyedCalls(guardrail.rule, *store_);
  RewriteKeyedCalls(guardrail.action, *store_);
  OSGUARD_RETURN_IF_ERROR(Verify(guardrail.rule, VerifyOptions{.allow_actions = false}));
  OSGUARD_RETURN_IF_ERROR(Verify(guardrail.action, VerifyOptions{.allow_actions = true}));
  if (!guardrail.on_satisfy.empty()) {
    RewriteKeyedCalls(guardrail.on_satisfy, *store_);
    OSGUARD_RETURN_IF_ERROR(Verify(guardrail.on_satisfy, VerifyOptions{.allow_actions = true}));
  }
  auto monitor = std::make_unique<Monitor>();
  monitor->guardrail = std::move(guardrail);
  monitor->enabled = monitor->guardrail.meta.enabled;
  monitor->generation = next_generation_++;
  const std::string name = monitor->guardrail.name;
  auto existing = monitors_.find(name);
  const bool replacing = existing != monitors_.end();
  if (replacing) {
    // Replace-by-name carry-over (explicit policy): the counters describe
    // the outgoing program version and reset with it, but the
    // violation-protocol clocks describe the monitored property, so they
    // persist — a hot replace can neither bypass an active cooldown nor
    // discard accumulated hysteresis evidence, and a rule fixed while in
    // violation still emits its satisfied edge.
    const MonitorStats& old = existing->second->stats;
    monitor->stats.in_violation = old.in_violation;
    monitor->stats.consecutive_violations = old.consecutive_violations;
    monitor->stats.last_action_time = old.last_action_time;
    // uptime_evals counts the monitored *name*, not the program version.
    monitor->stats.uptime_evals = old.uptime_evals;
    monitor->uptime_published = existing->second->uptime_published;
  }
  const GuardrailHealth& health = monitor->guardrail.meta.health;
  if (replacing && health.supervised && health.probation > 0) {
    // Staged deployment: retain the verified, key-rewritten outgoing program
    // so a regressing deploy can be rolled back to it bit-identically.
    monitor->rollback_snapshot =
        std::make_unique<CompiledGuardrail>(existing->second->guardrail);
  }
  monitor->guard = supervisor_.OnLoad(name, health, now_, replacing,
                                      replacing ? existing->second->guard : nullptr);
  if (options_.tier.enabled) {
    // Per-monitor tier state mirrors the supervisor.* convention: 0 while
    // interpreted, 1 once promoted to the native object.
    monitor->tier_key = store_->InternKey("engine.tier." + name);
    store_->Pin(monitor->tier_key);
    monitor->promote_at = monitor->guardrail.meta.tier == TierHint::kNative
                              ? 0
                              : options_.tier.promote_after;
    store_->Save(monitor->tier_key, Value(static_cast<int64_t>(0)));
  }
  monitor->uptime_key = store_->InternKey("monitor." + name + ".uptime_evals");
  store_->Pin(monitor->uptime_key);
  monitors_[name] = std::move(monitor);  // replace-by-name is the update path
  ArmTimers(*monitors_[name]);
  RebuildFunctionIndex();
  if (persist_ != nullptr) {
    persist_->MarkDirty();
  }
  OSGUARD_LOG(kDebug) << "loaded guardrail '" << name << "'";
  return OkStatus();
}

Status Engine::LoadSource(const std::string& source) {
  // Run the pipeline in stages (rather than CompileSource) so the analyzed
  // chaos block is visible before compilation.
  OSGUARD_ASSIGN_OR_RETURN(SpecFile spec, ParseSpecSource(source));
  OSGUARD_ASSIGN_OR_RETURN(AnalyzedSpec analyzed, Analyze(std::move(spec)));
  if (analyzed.chaos.has_value() && chaos_ != nullptr) {
    OSGUARD_RETURN_IF_ERROR(ApplyChaosSpec(*analyzed.chaos, *chaos_));
  }
  // Same contract as chaos: a persist block with no manager attached is
  // validated but inert.
  if (analyzed.persist.has_value() && persist_ != nullptr) {
    persist_->Configure(analyzed.persist->snapshot_interval,
                        analyzed.persist->journal_budget);
  }
  if (analyzed.retention.has_value()) {
    RetentionOptions ropts;
    ropts.enabled = true;
    ropts.scan_chunk = analyzed.retention->scan_chunk;
    for (const AnalyzedRetentionNamespace& ns : analyzed.retention->namespaces) {
      ropts.namespaces.push_back(
          RetentionNamespaceOptions{ns.prefix, ns.max_keys, ns.idle_ttl});
    }
    retention_.Configure(WithBuiltinNamespaces(std::move(ropts)), store_);
    retention_.AttachChaos(chaos_);
  }
  OSGUARD_ASSIGN_OR_RETURN(std::vector<CompiledGuardrail> compiled, CompileSpec(analyzed));
  for (CompiledGuardrail& guardrail : compiled) {
    OSGUARD_RETURN_IF_ERROR(Load(std::move(guardrail)));
  }
  return OkStatus();
}

void Engine::SetChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  env_.SetChaos(chaos);
  dispatcher_.SetChaos(chaos);
  supervisor_.SetChaos(chaos);  // supervisor.probe_fail, vm.budget_exhaust
  retention_.AttachChaos(chaos);  // store.evict_storm, store.quota_breach
  if (chaos != nullptr) {
    callout_drop_site_ = chaos->RegisterSite(kChaosSiteCalloutDrop);
    callout_delay_site_ = chaos->RegisterSite(kChaosSiteCalloutDelay);
  } else {
    callout_drop_site_ = kInvalidChaosSite;
    callout_delay_site_ = kInvalidChaosSite;
  }
}

Status Engine::Unload(const std::string& name) {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return NotFoundError("no guardrail named '" + name + "'");
  }
  // The dead monitor's counter keys lose their pins and are handed to the
  // retention manager: with a retention block they age out via the
  // "monitor." namespace TTL instead of leaking. (Adoption is explicit —
  // the write observer only tracks slots as they are written, and nothing
  // writes an unloaded monitor's counters again.)
  if (it->second->uptime_key != kInvalidKeyId) {
    store_->Unpin(it->second->uptime_key);
    retention_.AdoptKey(it->second->uptime_key, now_);
  }
  if (it->second->tier_key != kInvalidKeyId) {
    store_->Unpin(it->second->tier_key);
    retention_.AdoptKey(it->second->tier_key, now_);
  }
  monitors_.erase(it);  // queued timer entries die via generation mismatch
  supervisor_.OnUnload(name);
  RebuildFunctionIndex();
  if (persist_ != nullptr) {
    persist_->MarkDirty();
  }
  return OkStatus();
}

Status Engine::SetEnabled(const std::string& name, bool enabled) {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return NotFoundError("no guardrail named '" + name + "'");
  }
  it->second->enabled = enabled;
  if (persist_ != nullptr) {
    persist_->MarkDirty();
  }
  return OkStatus();
}

bool Engine::Contains(const std::string& name) const { return monitors_.count(name) > 0; }

Result<MonitorStats> Engine::StatsFor(const std::string& name) const {
  const MonitorStats* stats = FindStats(name);
  if (stats == nullptr) {
    return NotFoundError("no guardrail named '" + name + "'");
  }
  return *stats;
}

const MonitorStats* Engine::FindStats(const std::string& name) const {
  auto it = monitors_.find(name);
  return it == monitors_.end() ? nullptr : &it->second->stats;
}

const CompiledGuardrail* Engine::FindGuardrail(const std::string& name) const {
  auto it = monitors_.find(name);
  return it == monitors_.end() ? nullptr : &it->second->guardrail;
}

std::optional<SimTime> Engine::NextTimerDeadline() const {
  // The heap may hold stale entries; a const peek can't pop them, so scan
  // down lazily via a copy of the top. Stale entries are rare (only after
  // unload/replace), so in the common case this is O(1).
  auto copy = timers_;
  while (!copy.empty()) {
    const TimerEntry& top = copy.top();
    if (ResolveEntry(top) != nullptr) {
      return top.due;
    }
    copy.pop();
  }
  return std::nullopt;
}

void Engine::AdvanceTo(SimTime t) {
  ApplyPendingRollbacks();
  while (!timers_.empty() && timers_.top().due <= t) {
    TimerEntry entry = timers_.top();
    timers_.pop();
    // Drop entries whose monitor was unloaded or replaced.
    Monitor* monitor = ResolveEntry(entry);
    if (monitor == nullptr) {
      continue;
    }
    const CompiledTrigger& trigger = monitor->guardrail.triggers[entry.trigger_index];
    now_ = std::max(now_, entry.due);
    if (monitor->enabled) {
      ++stats_.timer_firings;
      Evaluate(*monitor, entry.due);
    }
    const SimTime next = entry.due + trigger.interval;
    if (trigger.stop == 0 || next <= trigger.stop) {
      timers_.push(TimerEntry{next, next_tiebreak_++, entry.monitor_name, entry.trigger_index,
                              entry.generation});
    }
    // Between timer entries no Monitor pointers or trigger references are
    // live, so a rollback queued by the evaluation applies here — before the
    // doomed version can see another trigger.
    ApplyPendingRollbacks();
  }
  now_ = std::max(now_, t);
  PublishUptimeStats();
  PublishTierStats();
  RunRetention();
  FinishCalloutGovernor();
  CommitPersist();
}

void Engine::OnFunctionCall(std::string_view function, SimTime t) {
  now_ = std::max(now_, t);
  if (function_hooks_.empty()) {
    return;  // hot path when no FUNCTION guardrail is loaded
  }
  if (chaos_ != nullptr) {
    // Dropped callouts advance the clock (time is the kernel's) but the
    // hooked monitors never see the call; delayed callouts evaluate at the
    // shifted timestamp, modeling instrumentation latency.
    if (chaos_->ShouldInject(callout_drop_site_, t)) {
      ++stats_.callouts_dropped;
      return;
    }
    if (const FaultDecision delay = chaos_->Query(callout_delay_site_, t)) {
      ++stats_.callouts_delayed;
      t += delay.latency;
      now_ = std::max(now_, t);
    }
  }
  auto it = function_hooks_.find(function);  // heterogeneous: no temp string
  if (it == function_hooks_.end()) {
    return;
  }
  for (Monitor* monitor : it->second) {
    if (monitor->enabled) {
      ++stats_.function_firings;
      Evaluate(*monitor, now_);
    }
  }
  ApplyPendingRollbacks();  // after the loop: `it` is dead past this point
  PublishUptimeStats();
  PublishTierStats();
  RunRetention();
  FinishCalloutGovernor();
  CommitPersist();
}

void Engine::OnStoreWrite(KeyId id) {
  if (watch_hook_count_ == 0) {
    return;  // hot path when no ONCHANGE guardrail is loaded
  }
  if (id >= watch_hooks_.size() || watch_hooks_[id].empty()) {
    return;
  }
  if (evaluating_) {
    // Write performed by a running monitor program: defer (see header).
    pending_changes_.push_back(id);
    return;
  }
  // Copy: Evaluate may load/unload monitors indirectly in future revisions.
  const std::vector<Monitor*> hooked = watch_hooks_[id];
  for (Monitor* monitor : hooked) {
    if (monitor->enabled) {
      ++stats_.change_firings;
      Evaluate(*monitor, now_);
    }
  }
  DrainPendingChanges();
  ApplyPendingRollbacks();
}

void Engine::OnStoreWrite(const StoreWriteInfo& info, const std::string& key) {
  if (retention_.enabled()) {
    retention_.OnWrite(info, key, now_);
  }
  OnStoreWrite(info.id);
}

void Engine::OnStoreWrite(const std::string& key) {
  if (watch_hook_count_ == 0) {
    return;
  }
  const KeyId id = store_->FindKey(key);
  if (id == kInvalidKeyId) {
    return;  // never interned, so certainly unwatched
  }
  OnStoreWrite(id);
}

void Engine::DrainPendingChanges() {
  if (draining_) {
    return;  // the outermost drain loop owns the queue
  }
  draining_ = true;
  // Bounded cascade: monitor actions may write watched keys, which would
  // re-trigger other ONCHANGE monitors. Process at most this many deferred
  // evaluations per drain; anything beyond is dropped and counted.
  constexpr int kCascadeBudget = 64;
  int processed = 0;
  while (!pending_changes_.empty()) {
    drain_batch_.clear();
    drain_batch_.swap(pending_changes_);
    for (const KeyId id : drain_batch_) {
      if (id >= watch_hooks_.size()) {
        continue;
      }
      for (Monitor* monitor : watch_hooks_[id]) {
        if (!monitor->enabled) {
          continue;
        }
        if (processed >= kCascadeBudget) {
          ++stats_.change_cascade_suppressed;
          continue;
        }
        ++processed;
        ++stats_.change_firings;
        Evaluate(*monitor, now_);
      }
    }
    if (processed >= kCascadeBudget) {
      stats_.change_cascade_suppressed += pending_changes_.size();
      pending_changes_.clear();
      break;
    }
  }
  draining_ = false;
}

void Engine::QueueRollback(Monitor& monitor) {
  if (monitor.rollback_queued) {
    return;
  }
  if (monitor.rollback_snapshot == nullptr) {
    // Nothing to restore (first load of this name): clear the request so the
    // monitor isn't skipped forever waiting on an impossible rollback.
    if (monitor.guard != nullptr) {
      monitor.guard->rollback_pending = false;
    }
    return;
  }
  monitor.rollback_queued = true;
  pending_rollbacks_.emplace_back(monitor.guardrail.name, monitor.generation);
}

void Engine::ApplyPendingRollbacks() {
  if (evaluating_ || pending_rollbacks_.empty()) {
    return;
  }
  std::vector<std::pair<std::string, uint64_t>> pending;
  pending.swap(pending_rollbacks_);
  for (const auto& [name, generation] : pending) {
    auto it = monitors_.find(name);
    if (it == monitors_.end() || it->second->generation != generation ||
        it->second->rollback_snapshot == nullptr) {
      continue;  // unloaded or replaced again since the rollback was queued
    }
    Monitor& doomed = *it->second;
    auto restored = std::make_unique<Monitor>();
    // The snapshot was verified and key-rewritten at its original load, so
    // the restored program is bit-identical to the pre-deploy version; no
    // re-verification or rewrite may touch it here.
    restored->guardrail = std::move(*doomed.rollback_snapshot);
    restored->enabled = restored->guardrail.meta.enabled;
    restored->generation = next_generation_++;
    // Same carry-over policy as a replace: the violation-protocol clocks
    // describe the monitored property and persist across the swap.
    restored->stats.in_violation = doomed.stats.in_violation;
    restored->stats.consecutive_violations = doomed.stats.consecutive_violations;
    restored->stats.last_action_time = doomed.stats.last_action_time;
    restored->guard =
        supervisor_.OnRollback(name, restored->guardrail.meta.health, now_);
    reporter_.Report(ReportRecord{0, now_, ReportKind::kMonitorError,
                                  restored->guardrail.meta.severity, name,
                                  "probation deploy rolled back by supervisor",
                                  {}});
    restored->stats.uptime_evals = doomed.stats.uptime_evals;
    restored->uptime_published = doomed.uptime_published;
    restored->uptime_key = doomed.uptime_key;
    it->second = std::move(restored);
    ArmTimers(*it->second);
    RebuildFunctionIndex();
    if (persist_ != nullptr) {
      persist_->MarkDirty();
    }
    OSGUARD_LOG(kDebug) << "rolled back guardrail '" << name
                        << "' to its pre-deploy version";
  }
}

bool Engine::TierOf(const std::string& name) const {
  auto it = monitors_.find(name);
  return it != monitors_.end() && it->second->promoted;
}

void Engine::MaybePromote(Monitor& monitor) {
  if (monitor.promoted || monitor.native_failed) {
    return;
  }
  if (monitor.guardrail.meta.tier == TierHint::kInterpreter) {
    monitor.native_failed = true;  // pinned; stop re-checking every eval
    return;
  }
  const GuardHealth* guard = monitor.guard;
  if (guard != nullptr) {
    if (guard->config.budget_steps > 0) {
      // A step cap demands the interpreter's exact mid-program abort point;
      // native code only polls budgets at helper escapes. The cap never
      // lifts for this program version, so stop considering it.
      monitor.native_failed = true;
      return;
    }
    if (guard->in_probation) {
      // A probation deploy gathers health evidence on the tier it will keep
      // after the window closes; defer promotion, don't forbid it.
      return;
    }
  }
  if (monitor.stats.evaluations < monitor.promote_at) {
    return;
  }
  if (aot_ == nullptr || !aot_->Available()) {
    monitor.native_failed = true;
    return;
  }
  auto compiled = aot_->Compile(monitor.guardrail);
  if (!compiled.ok()) {
    monitor.native_failed = true;
    ++tier_stats_.compile_failures;
    OSGUARD_LOG(kDebug) << "native compile failed for '" << monitor.guardrail.name
                        << "': " << compiled.status().ToString();
    return;
  }
  monitor.native = std::move(compiled.value());
  monitor.nat_rule_consts = NativeExec::PrepareConsts(monitor.guardrail.rule);
  monitor.nat_action_consts = NativeExec::PrepareConsts(monitor.guardrail.action);
  if (!monitor.guardrail.on_satisfy.empty()) {
    monitor.nat_satisfy_consts = NativeExec::PrepareConsts(monitor.guardrail.on_satisfy);
  }
  monitor.promoted = true;
  ++tier_stats_.promotions;
  tier_dirty_ = true;
  if (monitor.tier_key != kInvalidKeyId) {
    store_->Save(monitor.tier_key, Value(static_cast<int64_t>(1)));
  }
  OSGUARD_LOG(kDebug) << "promoted guardrail '" << monitor.guardrail.name
                      << "' to the native tier (object " << monitor.native->content_hash
                      << ")";
}

void Engine::Demote(Monitor& monitor) {
  if (!monitor.promoted) {
    return;
  }
  monitor.promoted = false;
  // Re-promotion barrier: a demoted monitor must prove itself hot again from
  // here, not inherit the heat that preceded the demotion.
  monitor.promote_at = monitor.stats.evaluations + options_.tier.promote_after;
  ++tier_stats_.demotions;
  tier_dirty_ = true;
  if (monitor.tier_key != kInvalidKeyId) {
    store_->Save(monitor.tier_key, Value(static_cast<int64_t>(0)));
  }
}

Result<Value> Engine::ExecProgram(Monitor& monitor, const Program& program,
                                  const ExecBudget* budget) {
  // Native only when step accounting cannot abort mid-program (no step cap)
  // and no native frame is already live (actions re-enter via the rule's
  // frame; the interpreter handles the nested program).
  if (monitor.promoted && monitor.native != nullptr && !native_exec_.running() &&
      (budget == nullptr || budget->max_steps == 0) &&
      (monitor.guard == nullptr || !monitor.guard->in_probation)) {
    NativeObject::EntryFn fn = nullptr;
    const std::vector<osg_value>* consts = nullptr;
    if (&program == &monitor.guardrail.rule) {
      fn = monitor.native->rule;
      consts = &monitor.nat_rule_consts;
    } else if (&program == &monitor.guardrail.action) {
      fn = monitor.native->action;
      consts = &monitor.nat_action_consts;
    } else if (&program == &monitor.guardrail.on_satisfy) {
      fn = monitor.native->on_satisfy;
      consts = &monitor.nat_satisfy_consts;
    }
    if (fn != nullptr) {
      ++tier_stats_.native_evals;
      tier_dirty_ = true;
      return native_exec_.Run(fn, program, consts->data(), budget,
                              &vm_.mutable_stats());
    }
  }
  if (options_.tier.enabled) {
    ++tier_stats_.interp_evals;
    tier_dirty_ = true;
  }
  return vm_.Execute(program, env_, budget);
}

void Engine::PublishTierStats() {
  // Deferred out of evaluation: a Save here while a monitor runs would feed
  // the ONCHANGE queue mid-eval. AdvanceTo / OnFunctionCall flush instead.
  if (evaluating_ || !tier_dirty_ || gk_tier_promotions_ == kInvalidKeyId) {
    return;
  }
  tier_dirty_ = false;
  store_->Save(gk_tier_promotions_, Value(static_cast<int64_t>(tier_stats_.promotions)));
  store_->Save(gk_tier_demotions_, Value(static_cast<int64_t>(tier_stats_.demotions)));
  store_->Save(gk_tier_native_evals_,
               Value(static_cast<int64_t>(tier_stats_.native_evals)));
  store_->Save(gk_tier_interp_evals_,
               Value(static_cast<int64_t>(tier_stats_.interp_evals)));
}

void Engine::RunActions(Monitor& monitor, const Program& program, SimTime t) {
  env_.UpdateEnvelope(monitor.guardrail.name, monitor.guardrail.meta.severity, t);
  // Supervised monitors run their action programs under the same per-eval
  // budget as the rule; an over-budget action program is killed mid-flight.
  ExecBudget budget;
  const ExecBudget* budget_ptr = nullptr;
  if (monitor.guard != nullptr) {
    const GuardrailHealth& cfg = monitor.guard->config;
    if (cfg.budget_steps > 0 || cfg.budget_ns > 0) {
      budget.max_steps = cfg.budget_steps;
      if (cfg.budget_ns > 0) {
        budget.deadline_wall_ns = WallNowNs() + cfg.budget_ns;
      }
      budget_ptr = &budget;
    }
  }
  const uint64_t failures_before =
      monitor.guard != nullptr ? dispatcher_.failure_count() : 0;
  const int64_t start = options_.measure_wall_time ? WallNowNs() : 0;
  auto result = ExecProgram(monitor, program, budget_ptr);
  if (options_.measure_wall_time) {
    const int64_t elapsed = WallNowNs() - start;
    monitor.stats.action_wall_ns += elapsed;
    stats_.total_wall_ns += elapsed;
  }
  if (!result.ok()) {
    ++monitor.stats.errors;
    ++stats_.errors;
    reporter_.Report(ReportRecord{0, t, ReportKind::kMonitorError,
                                  monitor.guardrail.meta.severity, monitor.guardrail.name,
                                  result.status().ToString(),
                                  {}});
  }
  if (monitor.guard != nullptr) {
    // Failure events against the breaker: every dispatch chain that exhausted
    // its retries during this program (counted even when a fallback rescued
    // the VM-level result), plus one for a program fault with no exhausted
    // chain behind it (type error, budget abort). An exhausted chain that
    // also faulted the program counts once, via the dispatcher delta.
    uint64_t events = dispatcher_.failure_count() - failures_before;
    if (!result.ok() && events == 0) {
      events = 1;
    }
    if (events > 0) {
      supervisor_.OnActionFailures(*monitor.guard, monitor.guardrail.name, events, t);
    }
  }
}

void Engine::Evaluate(Monitor& monitor, SimTime t) {
  if (persist_ != nullptr) {
    // Every evaluation moves protocol state (stats, gate counters, EWMAs),
    // so the boundary that follows must commit a frame.
    persist_->MarkDirty();
  }
  // Mark the engine as evaluating so store writes made by this monitor's
  // own programs defer their ONCHANGE processing (no re-entrant evaluation).
  const bool outermost = !evaluating_;
  evaluating_ = true;
  EvaluateInner(monitor, t);
  if (outermost) {
    evaluating_ = false;
    DrainPendingChanges();
  }
}

void Engine::EvaluateInner(Monitor& monitor, SimTime t) {
  const RuleEvalPrep prep = BeginRuleEval(monitor, t);
  if (prep.skip) {
    return;
  }
  env_.UpdateEnvelope(monitor.guardrail.name, monitor.guardrail.meta.severity, t);
  ExecBudget budget;
  const ExecBudget* budget_ptr = nullptr;
  if (prep.budget_steps > 0 || prep.budget_deadline_ns > 0) {
    budget.max_steps = prep.budget_steps;
    budget.deadline_wall_ns = prep.budget_deadline_ns;
    budget_ptr = &budget;
  }
  int64_t steps_before = 0;
  if (monitor.guard != nullptr) {
    steps_before = vm_.stats().insns_executed;
  }
  const int64_t start = options_.measure_wall_time ? WallNowNs() : 0;
  auto result = prep.injected_budget
                    ? Result<Value>(ResourceExhaustedError(
                          "rule of guardrail '" + monitor.guardrail.name +
                          "' aborted by chaos site vm.budget_exhaust"))
                    : ExecProgram(monitor, monitor.guardrail.rule, budget_ptr);
  const int64_t wall_ns = options_.measure_wall_time ? WallNowNs() - start : 0;
  const int64_t steps =
      monitor.guard != nullptr ? vm_.stats().insns_executed - steps_before : 0;
  FinishRuleEval(monitor, t, prep, std::move(result), steps, wall_ns);
}

Engine::RuleEvalPrep Engine::BeginRuleEval(Monitor& monitor, SimTime t) {
  RuleEvalPrep prep;
  if (governor_.enabled()) {
    // Overload ladder first: a shed evaluation must cost nothing, so it
    // skips even the supervisor gate (identically in serial and sharded
    // runs — Begin order is hook order in both).
    const GovernorDecision decision =
        governor_.Admit(monitor.guardrail.meta.criticality, ++monitor.gov_attempts,
                        monitor.gov_static_epoch);
    if (decision == GovernorDecision::kShed) {
      prep.skip = true;
      return prep;
    }
    if (decision == GovernorDecision::kStatic) {
      // Fail-static: pin this critical monitor's corrective action once as
      // the safe static default for the episode, then suppress evaluation
      // until the ladder de-escalates.
      monitor.gov_static_epoch = governor_.fail_static_epoch();
      governor_.CountStaticApply();
      reporter_.Report(ReportRecord{0, t, ReportKind::kMonitorError,
                                    monitor.guardrail.meta.severity,
                                    monitor.guardrail.name,
                                    "overload governor fail-static: applying corrective default",
                                    {}});
      RunActions(monitor, monitor.guardrail.action, t);
      prep.skip = true;
      return prep;
    }
  }
  if (monitor.guard != nullptr) {
    GuardHealth& guard = *monitor.guard;
    prep.gate = supervisor_.Gate(guard, t);
    if (guard.rollback_pending) {
      QueueRollback(monitor);
      prep.skip = true;
      return prep;
    }
    if (prep.gate == GateDecision::kSkip) {
      prep.skip = true;
      return prep;
    }
  }
  MonitorStats& stats = monitor.stats;
  ++stats.evaluations;
  ++stats.uptime_evals;
  uptime_dirty_ = true;
  ++stats_.evaluations;
  if (options_.tier.enabled) {
    MaybePromote(monitor);
  }
  if (monitor.guard != nullptr) {
    const GuardrailHealth& cfg = monitor.guard->config;
    prep.budget_steps = cfg.budget_steps;
    if (cfg.budget_ns > 0) {
      prep.budget_deadline_ns = WallNowNs() + cfg.budget_ns;
    }
    prep.injected_budget = supervisor_.InjectBudgetExhaust(t);
  }
  return prep;
}

void Engine::FinishRuleEval(Monitor& monitor, SimTime t, const RuleEvalPrep& prep,
                            Result<Value> result, int64_t steps, int64_t wall_ns) {
  MonitorStats& stats = monitor.stats;
  if (options_.measure_wall_time) {
    stats.rule_wall_ns += wall_ns;
    stats_.total_wall_ns += wall_ns;
  }
  GuardHealth* guard = monitor.guard;
  if (guard != nullptr) {
    EvalOutcome outcome = EvalOutcome::kOk;
    if (!result.ok()) {
      outcome = result.status().code() == ErrorCode::kResourceExhausted
                    ? EvalOutcome::kBudgetExceeded
                    : EvalOutcome::kError;
    }
    supervisor_.OnEvalResult(*guard, monitor.guardrail.name, prep.gate, outcome, steps, t);
  }

  if (!result.ok()) {
    // "No decision": a faulty monitor must neither crash the kernel nor
    // trigger corrective actions.
    ++stats.errors;
    ++stats_.errors;
    reporter_.Report(ReportRecord{0, t, ReportKind::kMonitorError,
                                  monitor.guardrail.meta.severity, monitor.guardrail.name,
                                  result.status().ToString(),
                                  {}});
  } else if (TruthyValue(result.value())) {
    // Property holds.
    if (stats.in_violation) {
      stats.in_violation = false;
      ++stats.satisfy_firings;
      reporter_.Report(ReportRecord{0, t, ReportKind::kSatisfied,
                                    monitor.guardrail.meta.severity, monitor.guardrail.name,
                                    "property satisfied again",
                                    {}});
      if (guard != nullptr) {
        supervisor_.OnViolationFlip(*guard, monitor.guardrail.name, t);
      }
      if (!monitor.guardrail.on_satisfy.empty()) {
        RunActions(monitor, monitor.guardrail.on_satisfy, t);
      }
    }
    stats.consecutive_violations = 0;
  } else {
    // Violation path.
    ++stats.violations;
    ++stats_.violations;
    ++stats.consecutive_violations;
    if (stats.consecutive_violations < monitor.guardrail.meta.hysteresis) {
      ++stats.suppressed_hysteresis;
    } else {
      const Duration cooldown = monitor.guardrail.meta.cooldown;
      if (stats.last_action_time >= 0 && cooldown > 0 &&
          t - stats.last_action_time < cooldown) {
        ++stats.suppressed_cooldown;
      } else {
        const bool entered_violation = !stats.in_violation;
        stats.in_violation = true;
        stats.last_action_time = t;
        ++stats.action_firings;
        ++stats_.action_firings;
        reporter_.Report(ReportRecord{0, t, ReportKind::kViolation,
                                      monitor.guardrail.meta.severity,
                                      monitor.guardrail.name,
                                      "rule violated",
                                      {}});
        if (entered_violation && guard != nullptr) {
          supervisor_.OnViolationFlip(*guard, monitor.guardrail.name, t);
        }
        RunActions(monitor, monitor.guardrail.action, t);
      }
    }
  }

  // Quarantine / rollback tail — runs after *every* non-skipped evaluation,
  // including the error path above.
  if (guard != nullptr) {
    if (supervisor_.ConsumeQuarantineAction(*guard)) {
      // A quarantined monitor drops back to the interpreter: whatever tripped
      // the breaker deserves the tier with exact step accounting and no native
      // frame in the way while the supervisor probes it back to health.
      Demote(monitor);
      // The breaker just opened: apply the corrective action once as the
      // quarantine fail-safe default, then suppress evals until a probe
      // reinstates the guardrail. (The breaker is open, so any failures the
      // default itself reports cannot re-trip it.)
      reporter_.Report(ReportRecord{0, t, ReportKind::kMonitorError,
                                    monitor.guardrail.meta.severity,
                                    monitor.guardrail.name,
                                    "quarantined by supervisor; applying corrective default",
                                    {}});
      RunActions(monitor, monitor.guardrail.action, t);
    }
    if (guard->rollback_pending) {
      QueueRollback(monitor);
    }
  }
}

// --- Crash consistency (osguard::persist) ---

namespace {

// v2 appended the overload-governor ladder state (global + per-monitor): a
// panic landing mid-degradation must warm-restart into the same ladder state.
constexpr uint32_t kImageVersion = 3;  // v3: governor bytes_ewma + retention image

void WriteReportRecord(ByteWriter& w, const ReportRecord& record) {
  w.U64(record.sequence);
  w.I64(record.time);
  w.U8(static_cast<uint8_t>(record.kind));
  w.U8(static_cast<uint8_t>(record.severity));
  w.Str(record.guardrail);
  w.Str(record.message);
  w.U32(static_cast<uint32_t>(record.payload.size()));
  for (const Value& v : record.payload) {
    WriteValue(w, v);
  }
}

Result<ReportRecord> ReadReportRecord(ByteReader& r) {
  ReportRecord record;
  OSGUARD_ASSIGN_OR_RETURN(record.sequence, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(record.time, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind > static_cast<uint8_t>(ReportKind::kMonitorError)) {
    return InvalidArgumentError("report record: bad kind " + std::to_string(kind));
  }
  record.kind = static_cast<ReportKind>(kind);
  OSGUARD_ASSIGN_OR_RETURN(uint8_t severity, r.U8());
  if (severity > static_cast<uint8_t>(Severity::kCritical)) {
    return InvalidArgumentError("report record: bad severity " + std::to_string(severity));
  }
  record.severity = static_cast<Severity>(severity);
  OSGUARD_ASSIGN_OR_RETURN(std::string_view guardrail, r.Str());
  record.guardrail = std::string(guardrail);
  OSGUARD_ASSIGN_OR_RETURN(std::string_view message, r.Str());
  record.message = std::string(message);
  OSGUARD_ASSIGN_OR_RETURN(uint32_t payload_count, r.U32());
  if (payload_count > r.remaining()) {
    return InvalidArgumentError("report record: payload count " +
                                std::to_string(payload_count) + " exceeds input");
  }
  record.payload.reserve(payload_count);
  for (uint32_t i = 0; i < payload_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    record.payload.push_back(std::move(v));
  }
  return record;
}

// Per-monitor image payload, decoded whether or not the monitor still
// exists (the bytes must be consumed either way).
struct MonitorImage {
  std::string name;
  bool enabled = true;
  MonitorStats stats;
  bool promoted = false;
  bool native_failed = false;
  uint64_t promote_at = 0;
  bool has_guard = false;
  GuardHealth guard;  // config / export keys unused; protocol fields only
  uint64_t gov_attempts = 0;
  uint64_t gov_static_epoch = 0;
};

void WriteGovernorImage(ByteWriter& w, const GovernorImage& g) {
  w.U8(g.mode);
  w.U8(g.primed ? 1 : 0);
  w.F64(g.cost_ewma);
  w.F64(g.gap_ewma);
  w.F64(g.depth_ewma);
  w.I64(g.last_now);
  w.U64(g.last_evals);
  w.I64(g.last_wall_ns);
  w.F64(g.bytes_ewma);
  w.I64(g.streak_up);
  w.I64(g.streak_down);
  w.U64(g.fail_static_epoch);
  w.U64(g.stats.callouts);
  w.U64(g.stats.transitions);
  w.U64(g.stats.escalations);
  w.U64(g.stats.deescalations);
  w.U64(g.stats.sheds_besteffort);
  w.U64(g.stats.sheds_standard);
  w.U64(g.stats.sampled_evals);
  w.U64(g.stats.static_applies);
  w.U64(g.stats.static_suppressed);
  w.U64(g.stats.critical_sheds);
  w.U8(g.keys_published ? 1 : 0);
  w.I64(g.pub_mode);
  w.U64(g.pub_transitions);
  w.U64(g.pub_sheds);
  w.U64(g.pub_static);
}

Status ReadGovernorImage(ByteReader& r, GovernorImage* g) {
  OSGUARD_ASSIGN_OR_RETURN(g->mode, r.U8());
  if (g->mode > static_cast<uint8_t>(GovernorMode::kFailStatic)) {
    return InvalidArgumentError("image: bad governor mode " + std::to_string(g->mode));
  }
  OSGUARD_ASSIGN_OR_RETURN(uint8_t primed, r.U8());
  g->primed = primed != 0;
  OSGUARD_ASSIGN_OR_RETURN(g->cost_ewma, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(g->gap_ewma, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(g->depth_ewma, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(g->last_now, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(g->last_evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->last_wall_ns, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(g->bytes_ewma, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(g->streak_up, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(g->streak_down, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(g->fail_static_epoch, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.callouts, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.transitions, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.escalations, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.deescalations, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.sheds_besteffort, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.sheds_standard, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.sampled_evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.static_applies, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.static_suppressed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->stats.critical_sheds, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t keys_published, r.U8());
  g->keys_published = keys_published != 0;
  OSGUARD_ASSIGN_OR_RETURN(g->pub_mode, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(g->pub_transitions, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->pub_sheds, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->pub_static, r.U64());
  return OkStatus();
}

void WriteRetentionImage(ByteWriter& w, const RetentionImage& ret) {
  w.U64(ret.cursor);
  w.U64(ret.stats.reclaimed_idle);
  w.U64(ret.stats.reclaimed_quota);
  w.U64(ret.stats.quota_breaches);
  w.U64(ret.stats.chaos_storms);
  w.U64(ret.stats.chaos_breaches);
  w.U64(ret.stats.stale_tracks_fixed);
  w.U8(ret.keys_published ? 1 : 0);
  w.U64(ret.pub_reclaimed);
  w.U64(ret.pub_evictions);
  w.U64(ret.pub_breaches);
  w.U64(ret.pub_bytes_total);
  w.U64(ret.pub_live_keys);
  w.U32(static_cast<uint32_t>(ret.pub_ns_keys.size()));
  for (size_t i = 0; i < ret.pub_ns_keys.size(); ++i) {
    w.U64(ret.pub_ns_keys[i]);
    w.U64(ret.pub_ns_bytes[i]);
  }
}

Status ReadRetentionImage(ByteReader& r, RetentionImage* ret) {
  OSGUARD_ASSIGN_OR_RETURN(ret->cursor, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->stats.reclaimed_idle, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->stats.reclaimed_quota, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->stats.quota_breaches, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->stats.chaos_storms, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->stats.chaos_breaches, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->stats.stale_tracks_fixed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t published, r.U8());
  ret->keys_published = published != 0;
  OSGUARD_ASSIGN_OR_RETURN(ret->pub_reclaimed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->pub_evictions, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->pub_breaches, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->pub_bytes_total, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(ret->pub_live_keys, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(uint32_t ns_count, r.U32());
  ret->pub_ns_keys.resize(ns_count);
  ret->pub_ns_bytes.resize(ns_count);
  for (uint32_t i = 0; i < ns_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(ret->pub_ns_keys[i], r.U64());
    OSGUARD_ASSIGN_OR_RETURN(ret->pub_ns_bytes[i], r.U64());
  }
  return OkStatus();
}

void WriteGuardHealth(ByteWriter& w, const GuardHealth& g) {
  w.U8(static_cast<uint8_t>(g.state));
  w.F64(g.fail_ewma);
  w.F64(g.cost_ewma_steps);
  w.I64(g.failure_streak);
  w.U64(g.open_triggers);
  w.I64(g.probe_successes);
  w.U32(static_cast<uint32_t>(g.flips.size()));
  for (const SimTime flip : g.flips) {
    w.I64(flip);
  }
  w.U8(g.in_probation ? 1 : 0);
  w.I64(g.probation_until);
  w.F64(g.baseline_fail_ewma);
  w.U8(g.rollback_pending ? 1 : 0);
  w.U8(g.quarantine_action_pending ? 1 : 0);
  w.U64(g.evals);
  w.U64(g.budget_aborts);
  w.U64(g.eval_errors);
  w.U64(g.action_failures);
  w.U64(g.flap_events);
  w.U64(g.skipped);
  w.U64(g.probes);
  w.U64(g.probe_failures);
  w.U64(g.quarantines);
  w.U64(g.reinstatements);
}

Status ReadGuardHealth(ByteReader& r, GuardHealth* g) {
  OSGUARD_ASSIGN_OR_RETURN(uint8_t state, r.U8());
  if (state > static_cast<uint8_t>(BreakerState::kHalfOpen)) {
    return InvalidArgumentError("image: bad breaker state " + std::to_string(state));
  }
  g->state = static_cast<BreakerState>(state);
  OSGUARD_ASSIGN_OR_RETURN(g->fail_ewma, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(g->cost_ewma_steps, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(int64_t streak, r.I64());
  g->failure_streak = static_cast<int>(streak);
  OSGUARD_ASSIGN_OR_RETURN(g->open_triggers, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(int64_t probe_successes, r.I64());
  g->probe_successes = static_cast<int>(probe_successes);
  OSGUARD_ASSIGN_OR_RETURN(uint32_t flip_count, r.U32());
  if (flip_count > r.remaining()) {
    return InvalidArgumentError("image: flip count " + std::to_string(flip_count) +
                                " exceeds input");
  }
  g->flips.clear();
  for (uint32_t i = 0; i < flip_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(SimTime flip, r.I64());
    g->flips.push_back(flip);
  }
  OSGUARD_ASSIGN_OR_RETURN(uint8_t in_probation, r.U8());
  g->in_probation = in_probation != 0;
  OSGUARD_ASSIGN_OR_RETURN(g->probation_until, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(g->baseline_fail_ewma, r.F64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t rollback_pending, r.U8());
  g->rollback_pending = rollback_pending != 0;
  OSGUARD_ASSIGN_OR_RETURN(uint8_t quarantine_pending, r.U8());
  g->quarantine_action_pending = quarantine_pending != 0;
  OSGUARD_ASSIGN_OR_RETURN(g->evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->budget_aborts, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->eval_errors, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->action_failures, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->flap_events, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->skipped, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->probes, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->probe_failures, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->quarantines, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(g->reinstatements, r.U64());
  return OkStatus();
}

Status ReadMonitorImage(ByteReader& r, MonitorImage* m) {
  OSGUARD_ASSIGN_OR_RETURN(std::string_view name, r.Str());
  m->name = std::string(name);
  OSGUARD_ASSIGN_OR_RETURN(uint8_t enabled, r.U8());
  m->enabled = enabled != 0;
  MonitorStats& s = m->stats;
  OSGUARD_ASSIGN_OR_RETURN(s.evaluations, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.violations, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.action_firings, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.satisfy_firings, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.errors, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.suppressed_hysteresis, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.suppressed_cooldown, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(s.rule_wall_ns, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(s.action_wall_ns, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t in_violation, r.U8());
  s.in_violation = in_violation != 0;
  OSGUARD_ASSIGN_OR_RETURN(int64_t consecutive, r.I64());
  s.consecutive_violations = static_cast<int>(consecutive);
  OSGUARD_ASSIGN_OR_RETURN(s.last_action_time, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(s.uptime_evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t promoted, r.U8());
  m->promoted = promoted != 0;
  OSGUARD_ASSIGN_OR_RETURN(uint8_t native_failed, r.U8());
  m->native_failed = native_failed != 0;
  OSGUARD_ASSIGN_OR_RETURN(m->promote_at, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(uint8_t has_guard, r.U8());
  m->has_guard = has_guard != 0;
  if (m->has_guard) {
    OSGUARD_RETURN_IF_ERROR(ReadGuardHealth(r, &m->guard));
  }
  OSGUARD_ASSIGN_OR_RETURN(m->gov_attempts, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(m->gov_static_epoch, r.U64());
  return OkStatus();
}

}  // namespace

void Engine::SetPersist(PersistManager* persist) {
  persist_ = persist;
  if (persist_ != nullptr) {
    persist_->AttachStore(store_);
    last_report_mark_ = reporter_.total_reports();
  }
}

void Engine::FinishCalloutGovernor() {
  if (!governor_.enabled() || evaluating_) {
    return;
  }
  governor_.OnCalloutEnd(now_, stats_.evaluations, stats_.total_wall_ns);
  governor_.Publish();
}

void Engine::RunRetention() {
  if (!retention_.enabled() || evaluating_) {
    return;
  }
  retention_.RunAtBoundary(now_);
}

void Engine::PublishUptimeStats() {
  if (evaluating_ || !uptime_dirty_) {
    return;
  }
  uptime_dirty_ = false;
  for (auto& [name, monitor] : monitors_) {
    if (monitor->uptime_key == kInvalidKeyId ||
        monitor->stats.uptime_evals == monitor->uptime_published) {
      continue;
    }
    monitor->uptime_published = monitor->stats.uptime_evals;
    store_->Save(monitor->uptime_key,
                 Value(static_cast<int64_t>(monitor->stats.uptime_evals)));
  }
}

void Engine::CommitPersist() {
  if (persist_ == nullptr || evaluating_ || !persist_->dirty()) {
    return;
  }
  std::string image = EncodeImage();
  const uint64_t mark = reporter_.total_reports();
  const Status committed =
      persist_->CommitFrame(now_, EncodeReportDelta(last_report_mark_), image);
  // The delta mark advances even on failure: the records were offered once.
  last_report_mark_ = mark;
  if (!committed.ok()) {
    OSGUARD_LOG(kWarning) << "persist commit failed: " << committed.ToString();
    return;
  }
  if (persist_->SnapshotDue(now_)) {
    const Status snapshot = persist_->WriteSnapshot(
        now_, store_->DumpSlots(), EncodeReportRing(), std::move(image));
    if (!snapshot.ok()) {
      OSGUARD_LOG(kWarning) << "persist snapshot failed: " << snapshot.ToString();
    }
  }
}

std::string Engine::EncodeImage() const {
  std::string out;
  ByteWriter w(&out);
  w.U32(kImageVersion);
  w.I64(now_);
  w.U64(next_tiebreak_);
  w.U64(stats_.timer_firings);
  w.U64(stats_.function_firings);
  w.U64(stats_.change_firings);
  w.U64(stats_.change_cascade_suppressed);
  w.U64(stats_.evaluations);
  w.U64(stats_.violations);
  w.U64(stats_.action_firings);
  w.U64(stats_.errors);
  w.U64(stats_.callouts_dropped);
  w.U64(stats_.callouts_delayed);
  w.I64(stats_.total_wall_ns);
  w.U64(tier_stats_.promotions);
  w.U64(tier_stats_.demotions);
  w.U64(tier_stats_.native_evals);
  w.U64(tier_stats_.interp_evals);
  w.U64(tier_stats_.compile_failures);
  const ActionStats actions = dispatcher_.stats();
  w.U64(actions.reports);
  w.U64(actions.replaces);
  w.U64(actions.replace_noops);
  w.U64(actions.retrains_requested);
  w.U64(actions.retrains_suppressed);
  w.U64(actions.deprioritizes);
  w.U64(actions.failures);
  w.U64(actions.retries);
  w.U64(actions.fallbacks);
  w.U64(actions.injected_failures);
  w.U64(actions.dispatches);
  w.I64(actions.latency_min_ns);
  w.I64(actions.latency_max_ns);
  w.I64(actions.latency_total_ns);
  const ReporterSnapshot reports = reporter_.SnapshotCounters();
  w.U64(reports.next_sequence);
  w.U32(static_cast<uint32_t>(reports.per_guardrail.size()));
  for (const auto& [guardrail, count] : reports.per_guardrail) {
    w.Str(guardrail);
    w.U64(count);
  }
  w.U32(static_cast<uint32_t>(reports.per_kind.size()));
  for (const auto& [kind, count] : reports.per_kind) {
    w.U32(static_cast<uint32_t>(kind));
    w.U64(count);
  }
  const RetrainQueueState retrain = retrain_queue_.ExportState();
  w.U32(static_cast<uint32_t>(retrain.queue.size()));
  for (const RetrainRequest& request : retrain.queue) {
    w.Str(request.model);
    w.Str(request.data_key);
    w.I64(request.requested_at);
  }
  w.U32(static_cast<uint32_t>(retrain.last_accepted.size()));
  for (const auto& [model, at] : retrain.last_accepted) {
    w.Str(model);
    w.I64(at);
  }
  w.U32(static_cast<uint32_t>(retrain.queued_count.size()));
  for (const auto& [model, count] : retrain.queued_count) {
    w.Str(model);
    w.I64(count);
  }
  w.U64(retrain.stats.accepted);
  w.U64(retrain.stats.throttled);
  w.U64(retrain.stats.coalesced);
  w.U64(retrain.stats.overflowed);
  w.U64(retrain.stats.drained);
  const SupervisorStats& sup = supervisor_.stats();
  w.U64(sup.supervised);
  w.U64(sup.budget_aborts);
  w.U64(sup.eval_errors);
  w.U64(sup.flap_events);
  w.U64(sup.quarantines);
  w.U64(sup.skipped_evals);
  w.U64(sup.probes);
  w.U64(sup.probe_failures);
  w.U64(sup.reinstatements);
  w.U64(sup.rollbacks);
  w.U64(sup.commits);
  WriteGovernorImage(w, governor_.ExportState());
  w.U32(static_cast<uint32_t>(monitors_.size()));
  for (const auto& [name, monitor] : monitors_) {  // std::map: sorted order
    w.Str(name);
    w.U8(monitor->enabled ? 1 : 0);
    const MonitorStats& s = monitor->stats;
    w.U64(s.evaluations);
    w.U64(s.violations);
    w.U64(s.action_firings);
    w.U64(s.satisfy_firings);
    w.U64(s.errors);
    w.U64(s.suppressed_hysteresis);
    w.U64(s.suppressed_cooldown);
    w.I64(s.rule_wall_ns);
    w.I64(s.action_wall_ns);
    w.U8(s.in_violation ? 1 : 0);
    w.I64(s.consecutive_violations);
    w.I64(s.last_action_time);
    w.U64(s.uptime_evals);
    w.U8(monitor->promoted ? 1 : 0);
    w.U8(monitor->native_failed ? 1 : 0);
    w.U64(monitor->promote_at);
    w.U8(monitor->guard != nullptr ? 1 : 0);
    if (monitor->guard != nullptr) {
      WriteGuardHealth(w, *monitor->guard);
    }
    w.U64(monitor->gov_attempts);
    w.U64(monitor->gov_static_epoch);
  }
  // Live timer entries, drained in heap (timestamp) order; stale entries
  // are stale forever, so they are not worth persisting.
  auto timers = timers_;
  std::vector<const TimerEntry*> live;
  std::vector<TimerEntry> drained;
  drained.reserve(timers.size());
  while (!timers.empty()) {
    drained.push_back(timers.top());
    timers.pop();
  }
  for (const TimerEntry& entry : drained) {
    if (ResolveEntry(entry) != nullptr) {
      live.push_back(&entry);
    }
  }
  w.U32(static_cast<uint32_t>(live.size()));
  for (const TimerEntry* entry : live) {
    w.I64(entry->due);
    w.U64(entry->tiebreak);
    w.Str(entry->monitor_name);
    w.U64(entry->trigger_index);
  }
  WriteRetentionImage(w, retention_.ExportState());
  return out;
}

Status Engine::ApplyImage(std::string_view image) {
  ByteReader r(image);
  OSGUARD_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kImageVersion) {
    return InvalidArgumentError("image version " + std::to_string(version) +
                                " is not supported (expected " +
                                std::to_string(kImageVersion) + ")");
  }
  OSGUARD_ASSIGN_OR_RETURN(now_, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(uint64_t next_tiebreak, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.timer_firings, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.function_firings, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.change_firings, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.change_cascade_suppressed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.evaluations, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.violations, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.action_firings, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.errors, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.callouts_dropped, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.callouts_delayed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(stats_.total_wall_ns, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(tier_stats_.promotions, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(tier_stats_.demotions, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(tier_stats_.native_evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(tier_stats_.interp_evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(tier_stats_.compile_failures, r.U64());
  ActionStats actions;
  OSGUARD_ASSIGN_OR_RETURN(actions.reports, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.replaces, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.replace_noops, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.retrains_requested, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.retrains_suppressed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.deprioritizes, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.failures, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.retries, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.fallbacks, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.injected_failures, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.dispatches, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(actions.latency_min_ns, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(actions.latency_max_ns, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(actions.latency_total_ns, r.I64());
  dispatcher_.RestoreStats(actions);
  ReporterSnapshot reports;
  OSGUARD_ASSIGN_OR_RETURN(reports.next_sequence, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(uint32_t guardrail_count, r.U32());
  for (uint32_t i = 0; i < guardrail_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(std::string_view guardrail, r.Str());
    OSGUARD_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    reports.per_guardrail.emplace_back(std::string(guardrail), count);
  }
  OSGUARD_ASSIGN_OR_RETURN(uint32_t kind_count, r.U32());
  for (uint32_t i = 0; i < kind_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(uint32_t kind, r.U32());
    OSGUARD_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    reports.per_kind.emplace_back(static_cast<int>(kind), count);
  }
  reporter_.RestoreCounters(reports);
  RetrainQueueState retrain;
  OSGUARD_ASSIGN_OR_RETURN(uint32_t queue_count, r.U32());
  for (uint32_t i = 0; i < queue_count; ++i) {
    RetrainRequest request;
    OSGUARD_ASSIGN_OR_RETURN(std::string_view model, r.Str());
    request.model = std::string(model);
    OSGUARD_ASSIGN_OR_RETURN(std::string_view data_key, r.Str());
    request.data_key = std::string(data_key);
    OSGUARD_ASSIGN_OR_RETURN(request.requested_at, r.I64());
    retrain.queue.push_back(std::move(request));
  }
  OSGUARD_ASSIGN_OR_RETURN(uint32_t accepted_count, r.U32());
  for (uint32_t i = 0; i < accepted_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(std::string_view model, r.Str());
    OSGUARD_ASSIGN_OR_RETURN(SimTime at, r.I64());
    retrain.last_accepted.emplace_back(std::string(model), at);
  }
  OSGUARD_ASSIGN_OR_RETURN(uint32_t queued_count, r.U32());
  for (uint32_t i = 0; i < queued_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(std::string_view model, r.Str());
    OSGUARD_ASSIGN_OR_RETURN(int64_t count, r.I64());
    retrain.queued_count.emplace_back(std::string(model), static_cast<int>(count));
  }
  OSGUARD_ASSIGN_OR_RETURN(retrain.stats.accepted, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(retrain.stats.throttled, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(retrain.stats.coalesced, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(retrain.stats.overflowed, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(retrain.stats.drained, r.U64());
  retrain_queue_.RestoreState(retrain);
  SupervisorStats sup;
  OSGUARD_ASSIGN_OR_RETURN(sup.supervised, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.budget_aborts, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.eval_errors, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.flap_events, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.quarantines, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.skipped_evals, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.probes, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.probe_failures, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.reinstatements, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.rollbacks, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(sup.commits, r.U64());
  supervisor_.RestoreStats(sup);
  GovernorImage gov;
  OSGUARD_RETURN_IF_ERROR(ReadGovernorImage(r, &gov));
  governor_.RestoreState(gov);
  OSGUARD_ASSIGN_OR_RETURN(uint32_t monitor_count, r.U32());
  for (uint32_t i = 0; i < monitor_count; ++i) {
    MonitorImage m;
    OSGUARD_RETURN_IF_ERROR(ReadMonitorImage(r, &m));
    auto it = monitors_.find(m.name);
    if (it == monitors_.end()) {
      OSGUARD_LOG(kWarning) << "persist: image carries monitor '" << m.name
                            << "' which is not loaded; skipping its state";
      continue;
    }
    Monitor& monitor = *it->second;
    monitor.enabled = m.enabled;
    monitor.stats = m.stats;
    monitor.uptime_published = m.stats.uptime_evals;
    // The native object itself is not persisted (it lives in the AOT
    // content-hash cache). A promoted monitor restores as interpreted with
    // promote_at = 0, so its first evaluation re-promotes through the cache;
    // an unpromoted one keeps its original threshold.
    monitor.promoted = false;
    monitor.native = nullptr;
    monitor.native_failed = m.native_failed;
    monitor.promote_at = m.promoted ? 0 : m.promote_at;
    // Governor per-monitor state: the sampling stride position and the
    // fail-static episode already pinned must survive a warm restart, or the
    // resumed run would re-apply the static default / shift the stride.
    monitor.gov_attempts = m.gov_attempts;
    monitor.gov_static_epoch = m.gov_static_epoch;
    if (m.has_guard) {
      if (monitor.guard == nullptr) {
        OSGUARD_LOG(kWarning)
            << "persist: image carries supervisor state for '" << m.name
            << "' but the reloaded spec does not supervise it; skipping";
      } else {
        GuardHealth& g = *monitor.guard;
        g.state = m.guard.state;
        g.fail_ewma = m.guard.fail_ewma;
        g.cost_ewma_steps = m.guard.cost_ewma_steps;
        g.failure_streak = m.guard.failure_streak;
        g.open_triggers = m.guard.open_triggers;
        g.probe_successes = m.guard.probe_successes;
        g.flips = m.guard.flips;
        g.in_probation = m.guard.in_probation;
        g.probation_until = m.guard.probation_until;
        g.baseline_fail_ewma = m.guard.baseline_fail_ewma;
        g.rollback_pending = m.guard.rollback_pending;
        g.quarantine_action_pending = m.guard.quarantine_action_pending;
        g.evals = m.guard.evals;
        g.budget_aborts = m.guard.budget_aborts;
        g.eval_errors = m.guard.eval_errors;
        g.action_failures = m.guard.action_failures;
        g.flap_events = m.guard.flap_events;
        g.skipped = m.guard.skipped;
        g.probes = m.guard.probes;
        g.probe_failures = m.guard.probe_failures;
        g.quarantines = m.guard.quarantines;
        g.reinstatements = m.guard.reinstatements;
      }
    }
  }
  // The timer queue is replaced wholesale: load-time arming described a cold
  // start, the image describes the committed schedule. Entries are remapped
  // to the current monitor generations.
  OSGUARD_ASSIGN_OR_RETURN(uint32_t timer_count, r.U32());
  decltype(timers_) timers;
  for (uint32_t i = 0; i < timer_count; ++i) {
    TimerEntry entry;
    OSGUARD_ASSIGN_OR_RETURN(entry.due, r.I64());
    OSGUARD_ASSIGN_OR_RETURN(entry.tiebreak, r.U64());
    OSGUARD_ASSIGN_OR_RETURN(std::string_view monitor_name, r.Str());
    entry.monitor_name = std::string(monitor_name);
    OSGUARD_ASSIGN_OR_RETURN(entry.trigger_index, r.U64());
    auto it = monitors_.find(entry.monitor_name);
    if (it == monitors_.end() ||
        entry.trigger_index >= it->second->guardrail.triggers.size()) {
      OSGUARD_LOG(kWarning) << "persist: dropping timer entry for unknown monitor '"
                            << entry.monitor_name << "'";
      continue;
    }
    entry.generation = it->second->generation;
    timers.push(std::move(entry));
  }
  RetentionImage ret;
  OSGUARD_RETURN_IF_ERROR(ReadRetentionImage(r, &ret));
  retention_.RestoreState(ret);
  if (!r.done()) {
    return InvalidArgumentError("image: " + std::to_string(r.remaining()) +
                                " trailing bytes");
  }
  timers_ = std::move(timers);
  next_tiebreak_ = next_tiebreak;
  // The store holds the committed tier/uptime exports already (via slot dump
  // + op replay); the restored counters match them, so nothing is stale.
  tier_dirty_ = false;
  uptime_dirty_ = false;
  return OkStatus();
}

std::string Engine::EncodeReportDelta(uint64_t from) const {
  const std::vector<ReportRecord> records = reporter_.RecordsSince(from);
  std::string out;
  ByteWriter w(&out);
  w.U32(static_cast<uint32_t>(records.size()));
  for (const ReportRecord& record : records) {
    WriteReportRecord(w, record);
  }
  return out;
}

std::string Engine::EncodeReportRing() const {
  const std::vector<ReportRecord> records = reporter_.Records();
  std::string out;
  ByteWriter w(&out);
  w.U32(static_cast<uint32_t>(records.size()));
  for (const ReportRecord& record : records) {
    WriteReportRecord(w, record);
  }
  return out;
}

Status Engine::ApplyReportBlob(std::string_view blob) {
  ByteReader r(blob);
  OSGUARD_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  for (uint32_t i = 0; i < count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(ReportRecord record, ReadReportRecord(r));
    reporter_.RestoreRecord(std::move(record));
  }
  if (!r.done()) {
    return InvalidArgumentError("report blob: " + std::to_string(r.remaining()) +
                                " trailing bytes");
  }
  return OkStatus();
}

Result<RecoveryInfo> Engine::Restore(PersistManager& persist) {
  OSGUARD_ASSIGN_OR_RETURN(RecoveredState state, persist.LoadForRecovery());
  OSGUARD_RETURN_IF_ERROR(persist.Open());
  if (state.info.cold_start) {
    last_report_mark_ = reporter_.total_reports();
    return state.info;
  }
  // Replay must not re-journal its own writes or fire ONCHANGE monitors:
  // the recovered state already reflects every evaluation those writes
  // caused in the original run.
  store_->SetObserversSuppressed(true);
  store_->RestoreSlots(state.base.store);
  Status status = OkStatus();
  if (!state.base.report_ring.empty()) {
    status = ApplyReportBlob(state.base.report_ring);
  }
  std::string_view final_image = state.base.image;
  for (const JournalFrame& frame : state.frames) {
    if (!status.ok()) {
      break;
    }
    for (const StoreOp& op : frame.ops) {
      switch (op.kind) {
        case StoreMutation::Kind::kSave:
          store_->Save(op.key, op.value);
          break;
        case StoreMutation::Kind::kObserve:
          store_->Observe(op.key, op.time, op.sample);
          break;
        case StoreMutation::Kind::kErase:
          // A reclaim frame must replay as a reclaim, not a plain erase:
          // reclamation recycles the slot and bumps its generation, and the
          // ops that follow may intern into the recycled slot. Best-effort —
          // the key may already be gone (NotFound) in a replayed prefix.
          if (op.reclaim) {
            (void)store_->ReclaimKey(op.key);
          } else {
            (void)store_->Erase(op.key);
          }
          break;
        case StoreMutation::Kind::kSetSeriesOptions:
          store_->SetSeriesOptions(
              op.key, SeriesOptions{static_cast<size_t>(op.max_samples), op.max_age});
          break;
      }
    }
    if (!frame.report_delta.empty()) {
      status = ApplyReportBlob(frame.report_delta);
    }
    if (!frame.image.empty()) {
      final_image = frame.image;
    }
  }
  if (status.ok() && !final_image.empty()) {
    status = ApplyImage(final_image);
  }
  store_->SetObserversSuppressed(false);
  OSGUARD_RETURN_IF_ERROR(Annotate(status, "warm restart failed"));
  // Replay ran with observers suppressed, so the retention manager saw none
  // of the writes. Rebuild its membership and stamps from the restored store
  // (deterministic: both sides of a differential restore the same slots).
  retention_.ResyncAfterRestore(now_);
  last_report_mark_ = reporter_.total_reports();
  return state.info;
}

}  // namespace osguard
