#include "src/runtime/engine.h"

#include <chrono>

#include "src/vm/verifier.h"

#include "src/support/logging.h"

namespace osguard {
namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Engine::Engine(FeatureStore* store, PolicyRegistry* registry, TaskControl* task_control,
               EngineOptions options)
    : store_(store),
      registry_(registry),
      options_(options),
      reporter_(options.reporter_capacity),
      retrain_queue_(options.retrain),
      dispatcher_(&reporter_, registry, &retrain_queue_, task_control),
      env_(store, &dispatcher_) {}

void Engine::ArmTimers(Monitor& monitor) {
  for (size_t i = 0; i < monitor.guardrail.triggers.size(); ++i) {
    const CompiledTrigger& trigger = monitor.guardrail.triggers[i];
    if (trigger.kind != TriggerKind::kTimer) {
      continue;
    }
    // A monitor loaded mid-run starts checking strictly after the current
    // time (no retroactive or immediate firings at load).
    SimTime first = trigger.start;
    if (first <= now_) {
      const Duration interval = trigger.interval;
      const int64_t missed = (now_ - trigger.start) / interval + 1;
      first = trigger.start + missed * interval;
    }
    if (trigger.stop != 0 && first > trigger.stop) {
      continue;
    }
    timers_.push(
        TimerEntry{first, next_tiebreak_++, monitor.guardrail.name, i, monitor.generation});
  }
}

Engine::Monitor* Engine::ResolveEntry(const TimerEntry& entry) const {
  auto it = monitors_.find(entry.monitor_name);
  if (it == monitors_.end() || it->second->generation != entry.generation) {
    return nullptr;
  }
  return it->second.get();
}

void Engine::RebuildFunctionIndex() {
  function_hooks_.clear();
  watch_hooks_.clear();
  for (auto& [name, monitor] : monitors_) {
    for (const CompiledTrigger& trigger : monitor->guardrail.triggers) {
      if (trigger.kind == TriggerKind::kFunction) {
        function_hooks_[trigger.function_name].push_back(monitor.get());
      } else if (trigger.kind == TriggerKind::kOnChange) {
        watch_hooks_[trigger.watch_key].push_back(monitor.get());
      }
    }
  }
}

Status Engine::Load(CompiledGuardrail guardrail) {
  if (guardrail.name.empty()) {
    return InvalidArgumentError("guardrail has no name");
  }
  // Defense in depth: never trust that the caller verified.
  OSGUARD_RETURN_IF_ERROR(Verify(guardrail.rule, VerifyOptions{.allow_actions = false}));
  OSGUARD_RETURN_IF_ERROR(Verify(guardrail.action, VerifyOptions{.allow_actions = true}));
  if (!guardrail.on_satisfy.empty()) {
    OSGUARD_RETURN_IF_ERROR(Verify(guardrail.on_satisfy, VerifyOptions{.allow_actions = true}));
  }
  auto monitor = std::make_unique<Monitor>();
  monitor->guardrail = std::move(guardrail);
  monitor->enabled = monitor->guardrail.meta.enabled;
  monitor->generation = next_generation_++;
  const std::string name = monitor->guardrail.name;
  monitors_[name] = std::move(monitor);  // replace-by-name is the update path
  ArmTimers(*monitors_[name]);
  RebuildFunctionIndex();
  OSGUARD_LOG(kDebug) << "loaded guardrail '" << name << "'";
  return OkStatus();
}

Status Engine::LoadSource(const std::string& source) {
  OSGUARD_ASSIGN_OR_RETURN(std::vector<CompiledGuardrail> compiled, CompileSource(source));
  for (CompiledGuardrail& guardrail : compiled) {
    OSGUARD_RETURN_IF_ERROR(Load(std::move(guardrail)));
  }
  return OkStatus();
}

Status Engine::Unload(const std::string& name) {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return NotFoundError("no guardrail named '" + name + "'");
  }
  monitors_.erase(it);  // queued timer entries die via generation mismatch
  RebuildFunctionIndex();
  return OkStatus();
}

Status Engine::SetEnabled(const std::string& name, bool enabled) {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return NotFoundError("no guardrail named '" + name + "'");
  }
  it->second->enabled = enabled;
  return OkStatus();
}

std::vector<std::string> Engine::MonitorNames() const {
  std::vector<std::string> names;
  names.reserve(monitors_.size());
  for (const auto& [name, monitor] : monitors_) {
    names.push_back(name);
  }
  return names;
}

bool Engine::Contains(const std::string& name) const { return monitors_.count(name) > 0; }

Result<MonitorStats> Engine::StatsFor(const std::string& name) const {
  auto it = monitors_.find(name);
  if (it == monitors_.end()) {
    return NotFoundError("no guardrail named '" + name + "'");
  }
  return it->second->stats;
}

std::optional<SimTime> Engine::NextTimerDeadline() const {
  // The heap may hold stale entries; a const peek can't pop them, so scan
  // down lazily via a copy of the top. Stale entries are rare (only after
  // unload/replace), so in the common case this is O(1).
  auto copy = timers_;
  while (!copy.empty()) {
    const TimerEntry& top = copy.top();
    if (ResolveEntry(top) != nullptr) {
      return top.due;
    }
    copy.pop();
  }
  return std::nullopt;
}

void Engine::AdvanceTo(SimTime t) {
  while (!timers_.empty() && timers_.top().due <= t) {
    TimerEntry entry = timers_.top();
    timers_.pop();
    // Drop entries whose monitor was unloaded or replaced.
    Monitor* monitor = ResolveEntry(entry);
    if (monitor == nullptr) {
      continue;
    }
    const CompiledTrigger& trigger = monitor->guardrail.triggers[entry.trigger_index];
    now_ = std::max(now_, entry.due);
    if (monitor->enabled) {
      ++stats_.timer_firings;
      Evaluate(*monitor, entry.due);
    }
    const SimTime next = entry.due + trigger.interval;
    if (trigger.stop == 0 || next <= trigger.stop) {
      timers_.push(TimerEntry{next, next_tiebreak_++, entry.monitor_name, entry.trigger_index,
                              entry.generation});
    }
  }
  now_ = std::max(now_, t);
}

void Engine::OnFunctionCall(std::string_view function, SimTime t) {
  now_ = std::max(now_, t);
  auto it = function_hooks_.find(std::string(function));
  if (it == function_hooks_.end()) {
    return;
  }
  for (Monitor* monitor : it->second) {
    if (monitor->enabled) {
      ++stats_.function_firings;
      Evaluate(*monitor, now_);
    }
  }
}

void Engine::OnStoreWrite(const std::string& key) {
  if (watch_hooks_.empty()) {
    return;  // hot path when no ONCHANGE guardrail is loaded
  }
  if (watch_hooks_.find(key) == watch_hooks_.end()) {
    return;
  }
  if (evaluating_) {
    // Write performed by a running monitor program: defer (see header).
    pending_changes_.push_back(key);
    return;
  }
  auto it = watch_hooks_.find(key);
  // Copy: Evaluate may load/unload monitors indirectly in future revisions.
  const std::vector<Monitor*> hooked = it->second;
  for (Monitor* monitor : hooked) {
    if (monitor->enabled) {
      ++stats_.change_firings;
      Evaluate(*monitor, now_);
    }
  }
  DrainPendingChanges();
}

void Engine::DrainPendingChanges() {
  if (draining_) {
    return;  // the outermost drain loop owns the queue
  }
  draining_ = true;
  // Bounded cascade: monitor actions may write watched keys, which would
  // re-trigger other ONCHANGE monitors. Process at most this many deferred
  // evaluations per drain; anything beyond is dropped and counted.
  constexpr int kCascadeBudget = 64;
  int processed = 0;
  while (!pending_changes_.empty()) {
    std::vector<std::string> batch;
    batch.swap(pending_changes_);
    for (const std::string& key : batch) {
      auto it = watch_hooks_.find(key);
      if (it == watch_hooks_.end()) {
        continue;
      }
      for (Monitor* monitor : it->second) {
        if (!monitor->enabled) {
          continue;
        }
        if (processed >= kCascadeBudget) {
          ++stats_.change_cascade_suppressed;
          continue;
        }
        ++processed;
        ++stats_.change_firings;
        Evaluate(*monitor, now_);
      }
    }
    if (processed >= kCascadeBudget) {
      stats_.change_cascade_suppressed += pending_changes_.size();
      pending_changes_.clear();
      break;
    }
  }
  draining_ = false;
}

void Engine::RunActions(Monitor& monitor, const Program& program, SimTime t) {
  env_.SetEnvelope(
      ActionEnvelope{monitor.guardrail.name, monitor.guardrail.meta.severity, t});
  const int64_t start = options_.measure_wall_time ? WallNowNs() : 0;
  auto result = vm_.Execute(program, env_);
  if (options_.measure_wall_time) {
    const int64_t elapsed = WallNowNs() - start;
    monitor.stats.action_wall_ns += elapsed;
    stats_.total_wall_ns += elapsed;
  }
  if (!result.ok()) {
    ++monitor.stats.errors;
    ++stats_.errors;
    reporter_.Report(ReportRecord{0, t, ReportKind::kMonitorError,
                                  monitor.guardrail.meta.severity, monitor.guardrail.name,
                                  result.status().ToString(),
                                  {}});
  }
}

void Engine::Evaluate(Monitor& monitor, SimTime t) {
  // Mark the engine as evaluating so store writes made by this monitor's
  // own programs defer their ONCHANGE processing (no re-entrant evaluation).
  const bool outermost = !evaluating_;
  evaluating_ = true;
  EvaluateInner(monitor, t);
  if (outermost) {
    evaluating_ = false;
    DrainPendingChanges();
  }
}

void Engine::EvaluateInner(Monitor& monitor, SimTime t) {
  MonitorStats& stats = monitor.stats;
  ++stats.evaluations;
  ++stats_.evaluations;

  env_.SetEnvelope(
      ActionEnvelope{monitor.guardrail.name, monitor.guardrail.meta.severity, t});
  const int64_t start = options_.measure_wall_time ? WallNowNs() : 0;
  auto result = vm_.Execute(monitor.guardrail.rule, env_);
  if (options_.measure_wall_time) {
    const int64_t elapsed = WallNowNs() - start;
    stats.rule_wall_ns += elapsed;
    stats_.total_wall_ns += elapsed;
  }

  if (!result.ok()) {
    // "No decision": a faulty monitor must neither crash the kernel nor
    // trigger corrective actions.
    ++stats.errors;
    ++stats_.errors;
    reporter_.Report(ReportRecord{0, t, ReportKind::kMonitorError,
                                  monitor.guardrail.meta.severity, monitor.guardrail.name,
                                  result.status().ToString(),
                                  {}});
    return;
  }

  const bool holds = TruthyValue(result.value());
  if (holds) {
    if (stats.in_violation) {
      stats.in_violation = false;
      ++stats.satisfy_firings;
      reporter_.Report(ReportRecord{0, t, ReportKind::kSatisfied,
                                    monitor.guardrail.meta.severity, monitor.guardrail.name,
                                    "property satisfied again",
                                    {}});
      if (!monitor.guardrail.on_satisfy.empty()) {
        RunActions(monitor, monitor.guardrail.on_satisfy, t);
      }
    }
    stats.consecutive_violations = 0;
    return;
  }

  // Violation path.
  ++stats.violations;
  ++stats_.violations;
  ++stats.consecutive_violations;
  if (stats.consecutive_violations < monitor.guardrail.meta.hysteresis) {
    ++stats.suppressed_hysteresis;
    return;
  }
  const Duration cooldown = monitor.guardrail.meta.cooldown;
  if (stats.last_action_time >= 0 && cooldown > 0 &&
      t - stats.last_action_time < cooldown) {
    ++stats.suppressed_cooldown;
    return;
  }
  stats.in_violation = true;
  stats.last_action_time = t;
  ++stats.action_firings;
  ++stats_.action_firings;
  reporter_.Report(ReportRecord{0, t, ReportKind::kViolation,
                                monitor.guardrail.meta.severity, monitor.guardrail.name,
                                "rule violated",
                                {}});
  RunActions(monitor, monitor.guardrail.action, t);
}

}  // namespace osguard
