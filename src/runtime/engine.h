// The guardrail engine: owns loaded monitors, fires triggers, evaluates rule
// programs, applies hysteresis/cooldown, and runs action programs.
//
// This is the in-kernel "guardrail monitor" runtime of §3.3, hosted by the
// simulator. The kernel (simulated or test harness) drives it through two
// callouts:
//
//   * AdvanceTo(t)        — simulated time progressed; fire due TIMER
//                           triggers in timestamp order.
//   * OnFunctionCall(f,t) — instrumented kernel function `f` was invoked;
//                           fire FUNCTION-triggered monitors.
//
// Violation protocol per monitor evaluation:
//   rule true  -> property holds. If the monitor was in violation, run the
//                 on_satisfy program (if any) and emit a kSatisfied report.
//   rule false -> violation. After `hysteresis` consecutive violations and
//                 subject to `cooldown` between firings, run the action
//                 program and emit a kViolation report.
//   rule error -> counted, reported as kMonitorError; treated as "no
//                 decision" (neither violation nor satisfaction). A faulty
//                 monitor never crashes the kernel and never fires actions.
//
// Monitors can be loaded, replaced (same name), disabled, and unloaded at
// run time — the incremental-deployment property of §3.3, and the
// "update guardrails at runtime without requiring a kernel reboot" question
// of §6.

#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/actions/dispatcher.h"
#include "src/actions/policy_registry.h"
#include "src/chaos/chaos.h"
#include "src/actions/report.h"
#include "src/actions/retrain.h"
#include "src/actions/task_control.h"
#include "src/persist/persist.h"
#include "src/runtime/governor/governor.h"
#include "src/runtime/retention.h"
#include "src/runtime/helper_env.h"
#include "src/runtime/native_exec.h"
#include "src/store/feature_store.h"
#include "src/supervisor/supervisor.h"
#include "src/support/hash.h"
#include "src/vm/compiler.h"
#include "src/vm/native_aot.h"
#include "src/vm/vm.h"

namespace osguard {

// Per-monitor counters. Three lifecycles touch these fields, with different
// survival rules (pinned by tests/persist_test.cc, MonitorStatsSemantics):
//
//   * cold start  — everything zero; uptime_evals == evaluations.
//   * hot replace — the counters describe the outgoing program version and
//     reset with it. Only the violation-protocol clocks (in_violation,
//     consecutive_violations, last_action_time) and uptime_evals (which
//     describes the monitored *name*, not the program version) carry over.
//   * warm restart (osguard::persist) — every field is restored verbatim;
//     a reboot is invisible to the stats.
struct MonitorStats {
  uint64_t evaluations = 0;
  uint64_t violations = 0;            // evaluations where the rule was false
  uint64_t action_firings = 0;        // times the action program ran
  uint64_t satisfy_firings = 0;       // times the on_satisfy program ran
  uint64_t errors = 0;                // rule/action program faults
  uint64_t suppressed_hysteresis = 0; // violations absorbed before threshold
  uint64_t suppressed_cooldown = 0;   // firings blocked by cooldown
  int64_t rule_wall_ns = 0;           // host-clock cost of rule evaluations
  int64_t action_wall_ns = 0;         // host-clock cost of action programs
  bool in_violation = false;
  int consecutive_violations = 0;
  SimTime last_action_time = -1;
  // Evaluations across every program version loaded under this name —
  // survives hot replaces (unlike `evaluations`) and warm restarts alike.
  // Exported as the `monitor.<name>.uptime_evals` store key at callout
  // boundaries.
  uint64_t uptime_evals = 0;
};

struct EngineStats {
  uint64_t timer_firings = 0;
  uint64_t function_firings = 0;
  uint64_t change_firings = 0;          // ONCHANGE trigger evaluations
  uint64_t change_cascade_suppressed = 0;  // deferred writes dropped at the budget
  uint64_t evaluations = 0;
  uint64_t violations = 0;
  uint64_t action_firings = 0;
  uint64_t errors = 0;
  uint64_t callouts_dropped = 0;  // FUNCTION callouts eaten by the chaos layer
  uint64_t callouts_delayed = 0;  // FUNCTION callouts time-shifted by chaos
  int64_t total_wall_ns = 0;  // rule + action host-clock cost across monitors
};

// Native AOT tier configuration. Off by default: deterministic unit tests
// and replays should not depend on a host compiler being present. When
// enabled, hot monitors are promoted from the bytecode interpreter to
// AOT-compiled shared objects; results, reports, stats, and chaos replays
// are bit-identical across tiers (see docs/NATIVE.md).
struct NativeTierOptions {
  bool enabled = false;
  // Evaluations before a monitor is promoted. A `meta { tier = native }`
  // hint promotes at the first evaluation; `tier = interpreter` never
  // promotes. After a demotion the monitor must re-earn promotion with this
  // many further interpreted evaluations.
  uint64_t promote_after = 64;
  // Passed through to NativeAotOptions (empty = environment defaults).
  std::string compiler;
  std::string cache_dir;
};

// Cumulative tier activity, exported as engine.tier.* feature-store keys
// (mirroring the supervisor.* convention) at callout boundaries.
struct TierStats {
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t native_evals = 0;  // program executions on the native tier
  uint64_t interp_evals = 0;  // program executions on the interpreter
  uint64_t compile_failures = 0;
};

struct EngineOptions {
  size_t reporter_capacity = 4096;
  RetrainQueueOptions retrain;
  // Measure per-evaluation host-clock cost (small overhead itself; the E1
  // bench turns it on, unit tests don't care).
  bool measure_wall_time = true;
  NativeTierOptions tier;
  // Overload governor (src/runtime/governor): load shedding by criticality
  // class when callout pressure spikes. Off by default (off == absent).
  GovernorOptions governor;
};

class Engine {
 public:
  // `store` and `registry` are borrowed; `task_control` may be null.
  Engine(FeatureStore* store, PolicyRegistry* registry, TaskControl* task_control = nullptr,
         EngineOptions options = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Loading ---

  // Installs a compiled guardrail. Re-loading an existing name atomically
  // replaces it: triggers are re-armed from the current time and the
  // counters reset (they describe the outgoing program version), but the
  // violation-protocol clocks — in_violation, consecutive_violations,
  // last_action_time — persist, so a hot replace can neither bypass an
  // active cooldown nor discard accumulated hysteresis evidence (see
  // docs/DSL.md "Reload semantics"). uptime_evals also carries over: it
  // counts evaluations of the *name* across program versions (the full
  // replace/restore/cold-start survival matrix is documented on
  // MonitorStats and pinned by tests/persist_test.cc). If the incoming guardrail carries a
  // `health { probation = ... }` block, the replace is a staged deployment:
  // the outgoing program is retained and the supervisor rolls back to it if
  // the new version's health regresses during the probation window.
  Status Load(CompiledGuardrail guardrail);

  // Compiles `source` (full pipeline) and loads every guardrail in it. If
  // the spec carries a `chaos { ... }` block and a chaos engine is attached
  // (SetChaos), the block is applied to it; with no engine attached the
  // block is validated but inert, so the same spec drives both a chaos run
  // and its clean shadow run.
  Status LoadSource(const std::string& source);

  // Attaches the fault-injection engine (borrowed; null detaches).
  // Monitor-facing sites: engine.callout_drop (FUNCTION callouts silently
  // eaten), engine.callout_delay (callouts time-shifted by the plan's
  // latency), runtime.helper_fail (helper calls fail cleanly inside monitor
  // programs), actions.dispatch_fail (corrective actions fail and retry).
  void SetChaos(ChaosEngine* chaos);

  Status Unload(const std::string& name);
  Status SetEnabled(const std::string& name, bool enabled);
  // Sorted monitor names; the vector is cached and rebuilt on load/unload,
  // so calling this per-tick is free.
  const std::vector<std::string>& MonitorNames() const { return monitor_names_; }
  bool Contains(const std::string& name) const;

  // --- Kernel callouts ---

  // Fires all TIMER triggers due at or before `t`, in timestamp order, then
  // advances the engine clock to `t`. Time must be non-decreasing.
  void AdvanceTo(SimTime t);

  // Earliest pending TIMER deadline, if any (lets an event-driven host skip
  // idle time).
  std::optional<SimTime> NextTimerDeadline() const;

  // Kernel function `function` was called at time `t`; fires FUNCTION
  // triggers registered for it.
  void OnFunctionCall(std::string_view function, SimTime t);

  // Feature-store key `key` was written; fires ONCHANGE triggers watching
  // it at the engine's current time. Writes performed *by monitor programs*
  // (actions SAVE-ing state) are deferred until the running evaluation
  // finishes and are processed with a bounded cascade budget, so two
  // ONCHANGE guardrails whose actions touch each other's keys cannot loop
  // the engine (§6's feedback-loop hazard, contained at the trigger layer).
  //
  // The KeyId overload is the hot path — the store's write observer hands the
  // interned slot id straight through, so dispatch is an array index. The
  // string overload resolves the id first (never interning a key the store
  // doesn't know).
  void OnStoreWrite(KeyId id);
  void OnStoreWrite(const std::string& key);
  // Write-observer entry (kernel wiring): stamps the retention manager's
  // last-write clock before the ONCHANGE dispatch.
  void OnStoreWrite(const StoreWriteInfo& info, const std::string& key);

  // --- Introspection ---

  SimTime now() const { return now_; }
  Result<MonitorStats> StatsFor(const std::string& name) const;
  // Zero-copy variant: pointer into the live monitor (invalidated by
  // unload/replace), or nullptr if no such monitor. Preferred in bench loops.
  const MonitorStats* FindStats(const std::string& name) const;
  // The live compiled program of a monitor (invalidated by unload/replace),
  // or nullptr. Lets tests assert a rollback restored the old bytecode
  // bit-identically.
  const CompiledGuardrail* FindGuardrail(const std::string& name) const;
  EngineStats stats() const { return stats_; }
  GuardrailSupervisor& supervisor() { return supervisor_; }
  const GuardrailSupervisor& supervisor() const { return supervisor_; }

  FeatureStore& store() { return *store_; }
  PolicyRegistry& registry() { return *registry_; }
  Reporter& reporter() { return reporter_; }
  RetrainQueue& retrain_queue() { return retrain_queue_; }
  ActionDispatcher& dispatcher() { return dispatcher_; }
  Vm& vm() { return vm_; }

  // Native tier introspection. tier_stats() is live; native_aot() is null
  // unless the tier was enabled in EngineOptions. TierOf returns whether a
  // monitor currently runs native (false for unknown names).
  const TierStats& tier_stats() const { return tier_stats_; }
  NativeAot* native_aot() { return aot_.get(); }
  bool TierOf(const std::string& name) const;

  // Overload governor (inert unless EngineOptions::governor.enabled).
  OverloadGovernor& governor() { return governor_; }
  const OverloadGovernor& governor() const { return governor_; }

  // Bounded-memory key lifecycle (inert without a spec `retention {}` block).
  RetentionManager& retention() { return retention_; }
  const RetentionManager& retention() const { return retention_; }

  // --- Crash consistency (osguard::persist) ---

  // Attaches the persist manager (borrowed; null detaches). From here on the
  // engine journals its state transitions at callout boundaries: every
  // AdvanceTo / OnFunctionCall that changed state commits one frame, and a
  // compacted snapshot is rotated in when the manager says one is due.
  void SetPersist(PersistManager* persist);

  // Warm restart: recovers engine state from `persist`'s directory. Call on
  // a freshly constructed engine *after* loading the same spec the crashed
  // run had loaded (LoadSource) — recovery matches monitors by name and
  // re-interns store keys, so the load must come first for KeyId stability.
  // Applies the recovery ladder (newest valid snapshot -> previous ->
  // cold start), replays the journal suffix, and leaves the manager open
  // for subsequent commits. A cold start (nothing to recover) is success.
  Result<RecoveryInfo> Restore(PersistManager& persist);

  // Full engine state (clock, stats, per-monitor records, timer queue,
  // reporter/retrain/supervisor counters) as an opaque versioned blob —
  // the image carried by every journal frame and snapshot. Public so the
  // differential tests can compare two engines bit-for-bit.
  std::string EncodeImage() const;
  // The full retained report ring (snapshot payload; frames carry deltas).
  std::string EncodeReportRing() const;

 private:
  // The sharded engine is a scheduling layer over this engine: it borrows the
  // monitor table, runs BeginRuleEval / rule execution / FinishRuleEval
  // itself (rule exec on worker threads, everything else on the coordinator),
  // and needs the private evaluation surface to do so. See
  // src/runtime/sharded_engine.h and docs/SHARDING.md.
  friend class ShardedEngine;

  struct Monitor {
    CompiledGuardrail guardrail;
    MonitorStats stats;
    bool enabled = true;
    uint64_t generation = 0;  // invalidates queued timer entries on unload
    // Supervisor record for supervised monitors (owned by the supervisor,
    // stable for this monitor's lifetime); null = unsupervised, and the
    // evaluation path pays exactly one null check (off == absent).
    GuardHealth* guard = nullptr;
    // Pre-deploy program retained while a probation deploy is under watch.
    std::unique_ptr<CompiledGuardrail> rollback_snapshot;
    bool rollback_queued = false;

    // --- Native tier state ---
    bool promoted = false;       // currently executing on the native tier
    bool native_failed = false;  // AOT compile failed once: stay interpreted
    // stats.evaluations threshold for (re-)promotion; demotions push it back
    // by promote_after so a demoted monitor re-earns its promotion.
    uint64_t promote_at = 0;
    std::shared_ptr<NativeObject> native;
    // ABI-converted constant pools (handles point into `guardrail`, which is
    // immutable and pointer-stable for this monitor generation).
    std::vector<osg_value> nat_rule_consts;
    std::vector<osg_value> nat_action_consts;
    std::vector<osg_value> nat_satisfy_consts;
    KeyId tier_key = kInvalidKeyId;  // engine.tier.<name> export slot

    // monitor.<name>.uptime_evals export slot and the last value published
    // to it (publish happens at callout boundaries, only on change).
    KeyId uptime_key = kInvalidKeyId;
    uint64_t uptime_published = 0;

    // --- Overload governor state ---
    // Admission attempts (the deterministic sampling stride clock) and the
    // fail-static episode whose corrective default this monitor has pinned
    // (0 = none; compared against OverloadGovernor::fail_static_epoch()).
    uint64_t gov_attempts = 0;
    uint64_t gov_static_epoch = 0;
  };

  // Timer entries reference monitors by (name, generation) rather than by
  // pointer: a hot replace or unload frees the Monitor while its entries are
  // still queued, so entries must be validated against the live map before
  // any dereference.
  struct TimerEntry {
    SimTime due;
    uint64_t tiebreak;  // preserves FIFO order among equal deadlines
    std::string monitor_name;
    size_t trigger_index;
    uint64_t generation;
    bool operator>(const TimerEntry& other) const {
      return due != other.due ? due > other.due : tiebreak > other.tiebreak;
    }
  };

  // The live monitor for a queued entry, or null if the entry is stale.
  Monitor* ResolveEntry(const TimerEntry& entry) const;

  void ArmTimers(Monitor& monitor);
  void RebuildFunctionIndex();
  void Evaluate(Monitor& monitor, SimTime t);
  void EvaluateInner(Monitor& monitor, SimTime t);

  // One rule evaluation, split around the rule-program execution so the
  // sharded engine can run the execution on a worker thread while keeping
  // every side effect (stats, supervisor protocol, reports, actions) on the
  // coordinator in serial order. The serial path is EvaluateInner ==
  // BeginRuleEval -> execute -> FinishRuleEval, bit-identical to the
  // pre-split engine.
  struct RuleEvalPrep {
    GateDecision gate = GateDecision::kEvaluate;
    bool skip = false;             // gated off / rollback pending: no eval
    bool injected_budget = false;  // chaos vm.budget_exhaust fired
    uint64_t budget_steps = 0;     // 0 = unlimited
    int64_t budget_deadline_ns = 0;  // absolute wall deadline; 0 = none
  };
  // Gate, rollback check, stats/uptime increments, tier promotion, budget
  // setup and the chaos budget-exhaust draw. Mutates engine state — must run
  // on the coordinator, and (in a batch) before any worker starts reading
  // the store.
  RuleEvalPrep BeginRuleEval(Monitor& monitor, SimTime t);
  // Everything after the rule program ran: wall accounting, supervisor
  // OnEvalResult, the error / satisfied / violation protocol (reports +
  // action programs), then the quarantine / rollback tail. `steps` is the
  // interpreter instruction count of the rule execution (0 when
  // unsupervised — it is only consumed by the supervisor).
  void FinishRuleEval(Monitor& monitor, SimTime t, const RuleEvalPrep& prep,
                      Result<Value> result, int64_t steps, int64_t wall_ns);

  void RunActions(Monitor& monitor, const Program& program, SimTime t);
  // Tier-dispatching program execution: runs `program` natively when the
  // monitor is promoted and the budget/replay constraints allow it, falling
  // back to the interpreter otherwise. Results are tier-invariant.
  Result<Value> ExecProgram(Monitor& monitor, const Program& program,
                            const ExecBudget* budget);
  void MaybePromote(Monitor& monitor);
  void Demote(Monitor& monitor);
  // Writes the engine.tier.* counters to the store. No-op mid-evaluation
  // (callout boundaries only) and when nothing changed.
  void PublishTierStats();
  void DrainPendingChanges();
  // Rollbacks are queued during evaluation and applied at callout
  // boundaries, where no Monitor pointers or trigger references are live.
  void QueueRollback(Monitor& monitor);
  void ApplyPendingRollbacks();

  // Governor callout boundary: feed the cumulative eval/wall counters into
  // the overload ladder and publish engine.governor.* (value-diffed). No-op
  // mid-evaluation and when the governor is disabled.
  void FinishCalloutGovernor();

  // Retention callout boundary: the ONLY place keys are reclaimed (chaos
  // sampling, incremental TTL scan, quota eviction, telemetry publish).
  // Runs before FinishCalloutGovernor so the governor's store-bytes probe
  // sees the post-reclamation footprint, and before CommitPersist so the
  // reclaim Erase frames journal with this boundary. No-op mid-evaluation
  // and without a retention block.
  void RunRetention();

  // --- Crash consistency (osguard::persist) ---
  // Publishes monitor.<name>.uptime_evals for monitors whose count moved.
  // Callout boundaries only, like PublishTierStats.
  void PublishUptimeStats();
  // End-of-callout hook: commits a journal frame if anything changed since
  // the last commit, then rotates a snapshot in when one is due. Errors are
  // logged and swallowed — persistence failures degrade durability (the
  // recovery point moves back), never the running engine.
  void CommitPersist();
  // Report records since sequence `from`, wire-encoded (a frame's delta).
  std::string EncodeReportDelta(uint64_t from) const;
  // Decodes a report blob and re-inserts each record via RestoreRecord.
  Status ApplyReportBlob(std::string_view blob);
  // Applies a decoded state image. Unknown monitor names are skipped with a
  // log line; the timer queue is replaced wholesale (entries remapped to
  // the current monitor generations).
  Status ApplyImage(std::string_view image);

  FeatureStore* store_;
  PolicyRegistry* registry_;
  EngineOptions options_;
  Reporter reporter_;
  RetrainQueue retrain_queue_;
  ActionDispatcher dispatcher_;
  MonitorHelperEnv env_;
  Vm vm_;

  SimTime now_ = 0;
  uint64_t next_tiebreak_ = 0;
  uint64_t next_generation_ = 1;
  std::map<std::string, std::unique_ptr<Monitor>> monitors_;
  std::vector<std::string> monitor_names_;  // cache backing MonitorNames()
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>> timers_;
  // Heterogeneous lookup: OnFunctionCall probes with its string_view argument
  // directly — no temporary std::string on the callout hot path.
  std::unordered_map<std::string, std::vector<Monitor*>, TransparentStringHash,
                     std::equal_to<>>
      function_hooks_;
  // Indexed by KeyId (watch keys are interned into the store at load), so an
  // ONCHANGE dispatch is a bounds check + vector index.
  std::vector<std::vector<Monitor*>> watch_hooks_;
  size_t watch_hook_count_ = 0;  // total hooked monitors; 0 = fast bail-out
  bool evaluating_ = false;
  bool draining_ = false;
  std::vector<KeyId> pending_changes_;
  std::vector<KeyId> drain_batch_;  // swap buffer; keeps capacity across drains
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId callout_drop_site_ = kInvalidChaosSite;
  ChaosSiteId callout_delay_site_ = kInvalidChaosSite;
  GuardrailSupervisor supervisor_;
  OverloadGovernor governor_;
  RetentionManager retention_;
  // (name, generation) of monitors whose probation deploy must roll back.
  std::vector<std::pair<std::string, uint64_t>> pending_rollbacks_;
  EngineStats stats_;
  // Bumped whenever the monitor topology changes (load / unload / rollback
  // swap). The sharded engine caches a partition + eligibility plan keyed on
  // this counter and rebuilds it lazily on mismatch.
  uint64_t topology_version_ = 0;

  // --- Native tier ---
  std::unique_ptr<NativeAot> aot_;  // null unless options_.tier.enabled
  NativeExec native_exec_;
  TierStats tier_stats_;
  bool tier_dirty_ = false;  // counters changed since the last publish
  KeyId gk_tier_promotions_ = kInvalidKeyId;
  KeyId gk_tier_demotions_ = kInvalidKeyId;
  KeyId gk_tier_native_evals_ = kInvalidKeyId;
  KeyId gk_tier_interp_evals_ = kInvalidKeyId;

  // --- Crash consistency (osguard::persist) ---
  PersistManager* persist_ = nullptr;  // borrowed; null = persistence off
  // Reporter sequence at the last committed frame; the next frame's delta
  // starts here.
  uint64_t last_report_mark_ = 0;
  bool uptime_dirty_ = false;  // some monitor evaluated since last publish
};

}  // namespace osguard

#endif  // SRC_RUNTIME_ENGINE_H_
