// The runtime's HelperContext implementation: binds monitor programs to the
// feature store, the action dispatcher, and simulated time.
//
// Missing-data semantics: LOAD of an absent key and aggregates over empty
// windows return nil rather than faulting. Comparisons against nil *do*
// fault (caught by the engine and counted as a monitor error), so rules that
// must be robust at cold start guard themselves:
//
//   rule { COUNT(page_fault_lat, 10s) == 0 || MEAN(page_fault_lat, 10s) <= 2ms }
//
// or use LOAD_OR(key, default). This keeps "no data yet" distinguishable
// from "data says zero", which matters for properties like P1/P4.

#ifndef SRC_RUNTIME_HELPER_ENV_H_
#define SRC_RUNTIME_HELPER_ENV_H_

#include "src/actions/dispatcher.h"
#include "src/chaos/chaos.h"
#include "src/store/feature_store.h"
#include "src/vm/vm.h"

namespace osguard {

// HelperId -> windowed-aggregate kind. Shared by the interpreter's helper
// dispatch and the native tier's host shim so the mapping cannot drift.
inline AggKind AggKindForHelper(HelperId id) {
  switch (id) {
    case HelperId::kCount:
      return AggKind::kCount;
    case HelperId::kSum:
      return AggKind::kSum;
    case HelperId::kMean:
      return AggKind::kMean;
    case HelperId::kMinAgg:
      return AggKind::kMin;
    case HelperId::kMaxAgg:
      return AggKind::kMax;
    case HelperId::kStdDev:
      return AggKind::kStdDev;
    case HelperId::kRate:
      return AggKind::kRate;
    case HelperId::kNewest:
      return AggKind::kNewest;
    default:
      return AggKind::kOldest;
  }
}

class MonitorHelperEnv : public HelperContext {
 public:
  // Both dependencies are borrowed and must outlive the env. `dispatcher`
  // may be null for rule-only execution (actions then fault cleanly).
  MonitorHelperEnv(FeatureStore* store, ActionDispatcher* dispatcher)
      : store_(store), dispatcher_(dispatcher) {}

  // The engine updates the envelope before every program execution.
  void SetEnvelope(ActionEnvelope envelope) { envelope_ = std::move(envelope); }
  const ActionEnvelope& envelope() const { return envelope_; }

  // Hot-path envelope refresh: only touches the guardrail-name string when it
  // actually changed, so repeated evaluations of the same monitor never
  // allocate (std::string assignment reuses capacity otherwise).
  void UpdateEnvelope(const std::string& guardrail, Severity severity, SimTime now) {
    if (envelope_.guardrail != guardrail) {
      envelope_.guardrail = guardrail;
    }
    envelope_.severity = severity;
    envelope_.now = now;
  }

  // Attaches the fault-injection engine (borrowed; null detaches). When site
  // runtime.helper_fail injects, the helper call fails with a clean
  // ExecutionError before touching the store — the engine's monitor-error
  // path (count, report, no actions) is exactly what gets exercised.
  void SetChaos(ChaosEngine* chaos) {
    chaos_ = chaos;
    helper_fail_site_ =
        chaos != nullptr ? chaos->RegisterSite(kChaosSiteHelperFail) : kInvalidChaosSite;
  }

  Result<Value> CallHelper(HelperId id, std::span<const Value> args) override;

  // kCallKeyed fast path: store/aggregate helpers dispatch on the pre-resolved
  // slot id, skipping the string hash probe entirely. Slots the store doesn't
  // know about (a fuzzed or stale program) fall back to the string path, so
  // the hint is purely an optimization.
  Result<Value> CallHelperKeyed(HelperId id, uint32_t slot,
                                std::span<const Value> args) override;

  SimTime now() const override { return envelope_.now; }

  // Native-tier shim surface (src/runtime/native_exec.cc). The shim's
  // specialized slot ops reproduce CallHelperKeyed piecewise — exactly one
  // chaos draw per helper call, then either the keyed store path or the
  // string fallback — so its building blocks are exposed here. Not intended
  // for general callers.
  bool ChaosShouldFailHelper() {
    return chaos_ != nullptr && chaos_->ShouldInject(helper_fail_site_, envelope_.now);
  }
  FeatureStore* store() { return store_; }
  Result<Value> CallHelperUnchecked(HelperId id, std::span<const Value> args);

 private:
  Result<Value> StoreHelper(HelperId id, std::span<const Value> args);
  Result<Value> StoreHelperKeyed(HelperId id, KeyId key, std::span<const Value> args);
  Result<Value> AggregateHelper(HelperId id, std::span<const Value> args);
  Result<Value> AggregateHelperKeyed(HelperId id, KeyId key, std::span<const Value> args);
  Result<Value> MathHelper(HelperId id, std::span<const Value> args);

  FeatureStore* store_;
  ActionDispatcher* dispatcher_;
  ActionEnvelope envelope_;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId helper_fail_site_ = kInvalidChaosSite;
};

}  // namespace osguard

#endif  // SRC_RUNTIME_HELPER_ENV_H_
