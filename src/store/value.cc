#include "src/store/value.h"

#include <cstdio>

namespace osguard {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNil:
      return "nil";
    case ValueType::kInt:
      return "int";
    case ValueType::kFloat:
      return "float";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
    case ValueType::kList:
      return "list";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNil;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kFloat;
    case 3:
      return ValueType::kBool;
    case 4:
      return ValueType::kString;
    case 5:
      return ValueType::kList;
  }
  return ValueType::kNil;
}

Result<int64_t> Value::AsInt() const {
  if (const auto* v = std::get_if<int64_t>(&data_)) {
    return *v;
  }
  if (const auto* v = std::get_if<double>(&data_)) {
    return static_cast<int64_t>(*v);
  }
  return InvalidArgumentError("value is not numeric: " + ToString());
}

Result<double> Value::AsFloat() const {
  if (const auto* v = std::get_if<double>(&data_)) {
    return *v;
  }
  if (const auto* v = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*v);
  }
  return InvalidArgumentError("value is not numeric: " + ToString());
}

Result<bool> Value::AsBool() const {
  if (const auto* v = std::get_if<bool>(&data_)) {
    return *v;
  }
  if (const auto* v = std::get_if<int64_t>(&data_)) {
    return *v != 0;
  }
  if (const auto* v = std::get_if<double>(&data_)) {
    return *v != 0.0;
  }
  return InvalidArgumentError("value is not boolean: " + ToString());
}

Result<std::string> Value::AsString() const {
  if (const auto* v = std::get_if<std::string>(&data_)) {
    return *v;
  }
  return InvalidArgumentError("value is not a string: " + ToString());
}

Result<std::vector<Value>> Value::AsList() const {
  if (const auto* v = std::get_if<std::vector<Value>>(&data_)) {
    return *v;
  }
  return InvalidArgumentError("value is not a list: " + ToString());
}

double Value::NumericOr(double fallback) const {
  switch (data_.index()) {
    case 1:
      return static_cast<double>(std::get<int64_t>(data_));
    case 2:
      return std::get<double>(data_);
    case 3:
      return std::get<bool>(data_) ? 1.0 : 0.0;
    default:
      return fallback;
  }
}

std::string Value::ToString() const {
  switch (data_.index()) {
    case 0:
      return "nil";
    case 1:
      return std::to_string(std::get<int64_t>(data_));
    case 2: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    }
    case 3:
      return std::get<bool>(data_) ? "true" : "false";
    case 4:
      return "\"" + std::get<std::string>(data_) + "\"";
    case 5: {
      const auto& list = std::get<std::vector<Value>>(data_);
      std::string out = "{";
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += list[i].ToString();
      }
      out += "}";
      return out;
    }
  }
  return "nil";
}

}  // namespace osguard
