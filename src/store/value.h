// Typed values for the feature store and the guardrail VM.
//
// The DSL's value universe is deliberately small — the paper's examples only
// ever move numbers, booleans, and identifiers through SAVE/LOAD — so Value
// is a tagged union over exactly those plus strings for report payloads.

#ifndef SRC_STORE_VALUE_H_
#define SRC_STORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/support/status.h"

namespace osguard {

enum class ValueType {
  kNil = 0,
  kInt,
  kFloat,
  kBool,
  kString,
  kList,
};

std::string_view ValueTypeName(ValueType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}                       // NOLINT(google-explicit-constructor)
  Value(int v) : data_(static_cast<int64_t>(v)) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                        // NOLINT(google-explicit-constructor)
  Value(bool v) : data_(v) {}                          // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}        // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}      // NOLINT(google-explicit-constructor)
  Value(std::vector<Value> v) : data_(std::move(v)) {} // NOLINT(google-explicit-constructor)

  ValueType type() const;
  bool is_nil() const { return type() == ValueType::kNil; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kFloat;
  }

  // Checked accessors.
  Result<int64_t> AsInt() const;
  Result<double> AsFloat() const;   // ints widen to double
  Result<bool> AsBool() const;      // numerics: nonzero is true
  Result<std::string> AsString() const;
  Result<std::vector<Value>> AsList() const;

  // Zero-cost type-tested views for the interpreter's fast paths: a direct
  // pointer into the variant, or nullptr when the value holds another type.
  // No Status machinery, no copies.
  const int64_t* IfInt() const { return std::get_if<int64_t>(&data_); }
  const double* IfFloat() const { return std::get_if<double>(&data_); }
  const bool* IfBool() const { return std::get_if<bool>(&data_); }
  const std::string* IfString() const { return std::get_if<std::string>(&data_); }
  const std::vector<Value>* IfList() const { return std::get_if<std::vector<Value>>(&data_); }

  // Unchecked numeric view: nil -> 0, bool -> 0/1, string -> 0.
  double NumericOr(double fallback) const;

  // "3", "2.5", "true", "\"text\"", "nil" — used by REPORT payloads and tests.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string, std::vector<Value>> data_;
};

}  // namespace osguard

#endif  // SRC_STORE_VALUE_H_
