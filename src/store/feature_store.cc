#include "src/store/feature_store.h"

#include <algorithm>
#include <cmath>

#include "src/support/stats.h"

namespace osguard {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMean:
      return "MEAN";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kStdDev:
      return "STDDEV";
    case AggKind::kRate:
      return "RATE";
    case AggKind::kNewest:
      return "NEWEST";
    case AggKind::kOldest:
      return "OLDEST";
  }
  return "?";
}

void FeatureStore::Save(const std::string& key, Value value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    scalars_[key] = std::move(value);
  }
  NotifyWrite(key);
}

Result<Value> FeatureStore::Load(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scalars_.find(key);
  if (it == scalars_.end()) {
    return NotFoundError("feature store has no key '" + key + "'");
  }
  return it->second;
}

Value FeatureStore::LoadOr(const std::string& key, Value fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scalars_.find(key);
  return it == scalars_.end() ? std::move(fallback) : it->second;
}

bool FeatureStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return scalars_.count(key) > 0;
}

Status FeatureStore::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (scalars_.erase(key) == 0) {
    return NotFoundError("feature store has no key '" + key + "'");
  }
  return OkStatus();
}

double FeatureStore::Increment(const std::string& key, double delta) {
  double next = delta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scalars_.find(key);
    if (it != scalars_.end()) {
      next += it->second.NumericOr(0.0);
    }
    scalars_[key] = Value(next);
  }
  NotifyWrite(key);
  return next;
}

void FeatureStore::Observe(const std::string& key, SimTime now, double sample) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Series& series = series_[key];
    SimTime t = now;
    if (!series.samples.empty() && t < series.samples.back().time) {
      t = series.samples.back().time;  // clamp out-of-order samples
    }
    series.samples.push_back(Sample{t, sample});
    EvictLocked(series, t);
  }
  NotifyWrite(key);
}

void FeatureStore::SetSeriesOptions(const std::string& key, SeriesOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = series_[key];
  series.options = options;
  if (!series.samples.empty()) {
    EvictLocked(series, series.samples.back().time);
  }
}

void FeatureStore::EvictLocked(Series& series, SimTime now) const {
  const SimTime cutoff = now - series.options.max_age;
  while (!series.samples.empty() && series.samples.front().time < cutoff) {
    series.samples.pop_front();
  }
  while (series.samples.size() > series.options.max_samples) {
    series.samples.pop_front();
  }
}

Result<double> FeatureStore::Aggregate(const std::string& key, AggKind kind, Duration window,
                                       SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  const bool empty_ok =
      kind == AggKind::kCount || kind == AggKind::kSum || kind == AggKind::kRate;
  if (it == series_.end()) {
    if (empty_ok) {
      return 0.0;
    }
    return NotFoundError("no time series for key '" + key + "'");
  }
  const SimTime cutoff = now - window;
  StreamingStats stats;
  double newest = 0.0;
  double oldest = 0.0;
  bool first = true;
  for (const Sample& s : it->second.samples) {
    if (s.time <= cutoff || s.time > now) {
      continue;
    }
    stats.Add(s.value);
    if (first) {
      oldest = s.value;
      first = false;
    }
    newest = s.value;
  }
  if (stats.count() == 0 && !empty_ok) {
    return NotFoundError("window for key '" + key + "' is empty");
  }
  switch (kind) {
    case AggKind::kCount:
      return static_cast<double>(stats.count());
    case AggKind::kSum:
      return stats.sum();
    case AggKind::kMean:
      return stats.mean();
    case AggKind::kMin:
      return stats.min();
    case AggKind::kMax:
      return stats.max();
    case AggKind::kStdDev:
      return stats.stddev();
    case AggKind::kRate: {
      if (window <= 0) {
        return 0.0;
      }
      return static_cast<double>(stats.count()) / ToSeconds(window);
    }
    case AggKind::kNewest:
      return newest;
    case AggKind::kOldest:
      return oldest;
  }
  return InternalError("unknown aggregation kind");
}

Result<double> FeatureStore::AggregateQuantile(const std::string& key, double q, Duration window,
                                               SimTime now) const {
  std::vector<double> samples = WindowSamples(key, window, now);
  if (samples.empty()) {
    return NotFoundError("window for key '" + key + "' is empty");
  }
  return ExactQuantile(std::move(samples), q);
}

std::vector<double> FeatureStore::WindowSamples(const std::string& key, Duration window,
                                                SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> out;
  auto it = series_.find(key);
  if (it == series_.end()) {
    return out;
  }
  const SimTime cutoff = now - window;
  for (const Sample& s : it->second.samples) {
    if (s.time > cutoff && s.time <= now) {
      out.push_back(s.value);
    }
  }
  return out;
}

size_t FeatureStore::scalar_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scalars_.size();
}

size_t FeatureStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::vector<std::string> FeatureStore::ScalarKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(scalars_.size());
  for (const auto& [key, value] : scalars_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void FeatureStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  scalars_.clear();
  series_.clear();
}

}  // namespace osguard
