#include "src/store/feature_store.h"

#include <algorithm>
#include <cmath>

#include "src/support/stats.h"

namespace osguard {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMean:
      return "MEAN";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kStdDev:
      return "STDDEV";
    case AggKind::kRate:
      return "RATE";
    case AggKind::kNewest:
      return "NEWEST";
    case AggKind::kOldest:
      return "OLDEST";
  }
  return "?";
}

// --- Interning ---

KeyId FeatureStore::InternLocked(std::string_view key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    return it->second;
  }
  KeyId id;
  if (!free_slots_.empty()) {
    // Recycle the most recently freed slot. Its generation was bumped at
    // reclaim time, so any tag captured for the previous tenant mismatches.
    id = free_slots_.back();
    free_slots_.pop_back();
    Slot& slot = slots_[id];
    slot.key = std::string(key);
    slot.live = true;
    RefreshBytesLocked(slot);
  } else {
    id = static_cast<KeyId>(slots_.size());
    slots_.emplace_back();
    slots_.back().key = std::string(key);
    RefreshBytesLocked(slots_.back());
  }
  index_.emplace(slots_[id].key, id);
  return id;
}

// --- Byte accounting ---
//
// Approximate by design: the goal is a pressure signal with stable ordering
// (more keys / more samples => more bytes), not a malloc-accurate census.
// Deterministic across hosts — sizes come from the wire-stable dump structs,
// not from std::deque block geometry.

uint64_t FeatureStore::SlotBytes(const Slot& slot) {
  uint64_t bytes = sizeof(Slot) + slot.key.size();
  if (slot.has_scalar) {
    if (const std::string* s = slot.scalar.IfString()) {
      bytes += s->size();
    }
  }
  if (slot.series != nullptr) {
    const Series& s = *slot.series;
    bytes += sizeof(Series);
    bytes += s.samples.size() * sizeof(StoreSampleDump);
    bytes += (s.minima.size() + s.maxima.size()) * sizeof(StoreExtremumDump);
  }
  return bytes;
}

void FeatureStore::RefreshBytesLocked(Slot& slot) {
  const uint64_t now_bytes = SlotBytes(slot);
  approx_bytes_ += now_bytes - slot.bytes;
  slot.bytes = now_bytes;
}

KeyId FeatureStore::FindLocked(std::string_view key) const {
  auto it = index_.find(key);
  return it == index_.end() ? kInvalidKeyId : it->second;
}

KeyId FeatureStore::InternKey(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  SeqWriteGuard seq(this);
  return InternLocked(key);
}

KeyId FeatureStore::FindKey(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(key);
}

size_t FeatureStore::key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

size_t FeatureStore::live_key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size() - free_slots_.size();
}

const std::string& FeatureStore::KeyName(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[id].key;
}

// --- Key lifecycle ---

void FeatureStore::Pin(KeyId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < slots_.size()) {
    slots_[id].pinned = true;
  }
}

void FeatureStore::Unpin(KeyId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < slots_.size()) {
    slots_[id].pinned = false;
  }
}

bool FeatureStore::IsPinned(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < slots_.size() && slots_[id].pinned;
}

uint32_t FeatureStore::GenerationOf(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GenerationOfUnlocked(id);
}

bool FeatureStore::IsLive(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < slots_.size() && slots_[id].live;
}

Status FeatureStore::ReclaimLocked(KeyId id, StoreMutation* m, bool* capture,
                                   std::string* name) {
  if (id >= slots_.size() || !slots_[id].live) {
    return NotFoundError("feature store has no live slot " + std::to_string(id));
  }
  Slot& slot = slots_[id];
  if (slot.pinned) {
    return FailedPreconditionError("key '" + slot.key + "' is pinned and cannot be reclaimed");
  }
  if (*capture) {
    m->kind = StoreMutation::Kind::kErase;
    m->id = id;
    m->reclaim = true;
    *name = slot.key;  // the slot's copy is cleared below
  }
  SeqWriteGuard seq(this);
  index_.erase(slot.key);
  // Drop the tenant name too: a dead slot must account (and dump) exactly
  // like a restored dead slot, or byte telemetry diverges across restarts.
  slot.key.clear();
  slot.has_scalar = false;
  slot.scalar = Value();
  slot.series.reset();
  slot.live = false;
  ++slot.generation;
  free_slots_.push_back(id);
  RefreshBytesLocked(slot);
  return OkStatus();
}

Status FeatureStore::ReclaimKey(std::string_view key) {
  bool capture = WantMutations();
  StoreMutation m;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const KeyId id = FindLocked(key);
    if (id == kInvalidKeyId) {
      return NotFoundError("feature store has no key '" + std::string(key) + "'");
    }
    OSGUARD_RETURN_IF_ERROR(ReclaimLocked(id, &m, &capture, &name));
  }
  if (capture) {
    mutation_observer_(m, name);
  }
  return OkStatus();
}

Status FeatureStore::ReclaimKeyId(KeyId id) {
  bool capture = WantMutations();
  StoreMutation m;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    OSGUARD_RETURN_IF_ERROR(ReclaimLocked(id, &m, &capture, &name));
  }
  if (capture) {
    mutation_observer_(m, name);
  }
  return OkStatus();
}

Value FeatureStore::LoadOrTagged(KeyId id, uint32_t gen, Value fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= slots_.size() || !slots_[id].live || slots_[id].generation != gen) {
    if (id < slots_.size() && slots_[id].generation != gen) {
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return fallback;
  }
  return LoadOrUnlocked(id, fallback);
}

bool FeatureStore::ContainsTagged(KeyId id, uint32_t gen) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= slots_.size() || !slots_[id].live || slots_[id].generation != gen) {
    if (id < slots_.size() && slots_[id].generation != gen) {
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  return ContainsUnlocked(id);
}

Result<double> FeatureStore::AggregateTagged(KeyId id, uint32_t gen, AggKind kind,
                                             Duration window, SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= slots_.size() || !slots_[id].live || slots_[id].generation != gen) {
    if (id < slots_.size() && slots_[id].generation != gen) {
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return NotFoundError("stale or reclaimed slot " + std::to_string(id));
  }
  return AggregateUnlocked(id, kind, window, now);
}

uint64_t FeatureStore::approx_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return approx_bytes_;
}

uint64_t FeatureStore::SlotApproxBytes(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < slots_.size() ? slots_[id].bytes : 0;
}

// --- Scalars ---
//
// Mutation capture: when a mutation observer is attached (and not
// suppressed) each write path builds a StoreMutation while it still holds
// the lock — the observed value is the committed one, not a later
// overwrite — and fires it after the lock is released, before NotifyWrite.

void FeatureStore::Save(std::string_view key, Value value) {
  KeyId id;
  const bool capture = WantMutations();
  StoreMutation m;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SeqWriteGuard seq(this);
    id = InternLocked(key);
    if (capture) {
      m.kind = StoreMutation::Kind::kSave;
      m.id = id;
      m.value = value;
    }
    slots_[id].scalar = std::move(value);
    slots_[id].has_scalar = true;
    RefreshBytesLocked(slots_[id]);
  }
  if (capture) {
    NotifyMutation(m);
  }
  NotifyWrite(id);
}

void FeatureStore::Save(KeyId id, Value value) {
  const bool capture = WantMutations();
  StoreMutation m;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!slots_[id].live) {
      return;  // a stale cached id cannot resurrect a reclaimed slot
    }
    SeqWriteGuard seq(this);
    if (capture) {
      m.kind = StoreMutation::Kind::kSave;
      m.id = id;
      m.value = value;
    }
    slots_[id].scalar = std::move(value);
    slots_[id].has_scalar = true;
    RefreshBytesLocked(slots_[id]);
  }
  if (capture) {
    NotifyMutation(m);
  }
  NotifyWrite(id);
}

Result<Value> FeatureStore::Load(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const KeyId id = FindLocked(key);
  if (id == kInvalidKeyId || !slots_[id].has_scalar) {
    return NotFoundError("feature store has no key '" + std::string(key) + "'");
  }
  return slots_[id].scalar;
}

Result<Value> FeatureStore::Load(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= slots_.size() || !slots_[id].has_scalar) {
    return NotFoundError("feature store has no slot " + std::to_string(id));
  }
  return slots_[id].scalar;
}

Value FeatureStore::LoadOr(std::string_view key, Value fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const KeyId id = FindLocked(key);
  if (id == kInvalidKeyId || !slots_[id].has_scalar) {
    return fallback;
  }
  return slots_[id].scalar;
}

Value FeatureStore::LoadOr(KeyId id, Value fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LoadOrUnlocked(id, fallback);
}

Value FeatureStore::LoadOrUnlocked(KeyId id, const Value& fallback) const {
  if (id >= slots_.size() || !slots_[id].has_scalar) {
    return fallback;
  }
  return slots_[id].scalar;
}

bool FeatureStore::Contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const KeyId id = FindLocked(key);
  return id != kInvalidKeyId && slots_[id].has_scalar;
}

bool FeatureStore::Contains(KeyId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ContainsUnlocked(id);
}

bool FeatureStore::ContainsUnlocked(KeyId id) const {
  return id < slots_.size() && slots_[id].has_scalar;
}

Status FeatureStore::Erase(std::string_view key) {
  KeyId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = FindLocked(key);
    if (id == kInvalidKeyId || !slots_[id].has_scalar) {
      return NotFoundError("feature store has no key '" + std::string(key) + "'");
    }
    SeqWriteGuard seq(this);
    slots_[id].has_scalar = false;
    slots_[id].scalar = Value();
    RefreshBytesLocked(slots_[id]);
  }
  if (WantMutations()) {
    StoreMutation m;
    m.kind = StoreMutation::Kind::kErase;
    m.id = id;
    NotifyMutation(m);
  }
  return OkStatus();
}

double FeatureStore::Increment(std::string_view key, double delta) {
  KeyId id;
  double next = delta;
  const bool capture = WantMutations();
  {
    std::lock_guard<std::mutex> lock(mu_);
    SeqWriteGuard seq(this);
    id = InternLocked(key);
    Slot& slot = slots_[id];
    if (slot.has_scalar) {
      next += slot.scalar.NumericOr(0.0);
    }
    slot.scalar = Value(next);
    slot.has_scalar = true;
    RefreshBytesLocked(slot);
  }
  if (capture) {
    StoreMutation m;
    m.kind = StoreMutation::Kind::kSave;  // post-increment scalar: replay is a plain Save
    m.id = id;
    m.value = Value(next);
    NotifyMutation(m);
  }
  NotifyWrite(id);
  return next;
}

double FeatureStore::Increment(KeyId id, double delta) {
  double next = delta;
  const bool capture = WantMutations();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[id];
    if (!slot.live) {
      return 0.0;  // stale cached id: no resurrection, no observer
    }
    SeqWriteGuard seq(this);
    if (slot.has_scalar) {
      next += slot.scalar.NumericOr(0.0);
    }
    slot.scalar = Value(next);
    slot.has_scalar = true;
    RefreshBytesLocked(slot);
  }
  if (capture) {
    StoreMutation m;
    m.kind = StoreMutation::Kind::kSave;
    m.id = id;
    m.value = Value(next);
    NotifyMutation(m);
  }
  NotifyWrite(id);
  return next;
}

// --- Time series ---

void FeatureStore::AppendLocked(Series& series, SimTime t, double sample) {
  if (!series.samples.empty() && t < series.samples.back().time) {
    t = series.samples.back().time;  // clamp out-of-order samples
  }
  double cum_sum = sample;
  double cum_sumsq = sample * sample;
  if (!series.samples.empty()) {
    cum_sum += series.samples.back().cum_sum;
    cum_sumsq += series.samples.back().cum_sumsq;
  }
  const uint64_t seq = series.next_seq++;
  series.samples.push_back(Sample{t, sample, cum_sum, cum_sumsq, seq});
  // Maintain the monotonic extrema deques (amortized O(1)): a new sample
  // invalidates every older candidate that it dominates.
  while (!series.minima.empty() && series.minima.back().value >= sample) {
    series.minima.pop_back();
  }
  series.minima.push_back(Extremum{seq, t, sample});
  while (!series.maxima.empty() && series.maxima.back().value <= sample) {
    series.maxima.pop_back();
  }
  series.maxima.push_back(Extremum{seq, t, sample});
  EvictLocked(series, t);
}

void FeatureStore::EvictLocked(Series& series, SimTime now) {
  const SimTime cutoff = now - series.options.max_age;
  auto pop_front = [&series] {
    const uint64_t seq = series.samples.front().seq;
    if (!series.minima.empty() && series.minima.front().seq == seq) {
      series.minima.pop_front();
    }
    if (!series.maxima.empty() && series.maxima.front().seq == seq) {
      series.maxima.pop_front();
    }
    series.samples.pop_front();
  };
  while (!series.samples.empty() && series.samples.front().time < cutoff) {
    pop_front();
  }
  while (series.samples.size() > series.options.max_samples) {
    pop_front();
  }
  // Rebase point: with no retained samples the prefix accumulators restart
  // from zero on the next append (bounds floating-point drift).
}

void FeatureStore::Observe(std::string_view key, SimTime now, double sample) {
  KeyId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SeqWriteGuard seq(this);
    id = InternLocked(key);
    if (slots_[id].series == nullptr) {
      slots_[id].series = std::make_unique<Series>();
    }
    AppendLocked(*slots_[id].series, now, sample);
    RefreshBytesLocked(slots_[id]);
  }
  if (WantMutations()) {
    StoreMutation m;
    m.kind = StoreMutation::Kind::kObserve;
    m.id = id;
    m.time = now;
    m.sample = sample;
    NotifyMutation(m);
  }
  NotifyWrite(id);
}

void FeatureStore::Observe(KeyId id, SimTime now, double sample) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!slots_[id].live) {
      return;  // stale cached id: no resurrection, no observer
    }
    SeqWriteGuard seq(this);
    if (slots_[id].series == nullptr) {
      slots_[id].series = std::make_unique<Series>();
    }
    AppendLocked(*slots_[id].series, now, sample);
    RefreshBytesLocked(slots_[id]);
  }
  if (WantMutations()) {
    StoreMutation m;
    m.kind = StoreMutation::Kind::kObserve;
    m.id = id;
    m.time = now;
    m.sample = sample;
    NotifyMutation(m);
  }
  NotifyWrite(id);
}

void FeatureStore::SetSeriesOptions(std::string_view key, SeriesOptions options) {
  KeyId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SeqWriteGuard seq(this);
    id = InternLocked(key);
    if (slots_[id].series == nullptr) {
      slots_[id].series = std::make_unique<Series>();
    }
    Series& series = *slots_[id].series;
    series.options = options;
    if (!series.samples.empty()) {
      EvictLocked(series, series.samples.back().time);
    }
    RefreshBytesLocked(slots_[id]);
  }
  if (WantMutations()) {
    StoreMutation m;
    m.kind = StoreMutation::Kind::kSetSeriesOptions;
    m.id = id;
    m.options = options;
    NotifyMutation(m);
  }
}

namespace {

struct WindowRange {
  size_t lo = 0;
  size_t hi = 0;  // inclusive
  bool empty = true;
};

// Deque indices covered by (cutoff, now]; times are non-decreasing so both
// bounds are binary searches.
template <typename Deque>
WindowRange FindWindow(const Deque& samples, SimTime cutoff, SimTime now) {
  WindowRange r;
  if (samples.empty()) {
    return r;
  }
  auto lo_it = std::upper_bound(samples.begin(), samples.end(), cutoff,
                                [](SimTime t, const auto& s) { return t < s.time; });
  auto hi_it = std::upper_bound(samples.begin(), samples.end(), now,
                                [](SimTime t, const auto& s) { return t < s.time; });
  if (lo_it == samples.end() || lo_it == hi_it) {
    return r;
  }
  r.lo = static_cast<size_t>(lo_it - samples.begin());
  r.hi = static_cast<size_t>(hi_it - samples.begin()) - 1;
  r.empty = false;
  return r;
}

}  // namespace

Result<double> FeatureStore::Aggregate(KeyId id, AggKind kind, Duration window,
                                       SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return AggregateUnlocked(id, kind, window, now);
}

Result<double> FeatureStore::AggregateUnlocked(KeyId id, AggKind kind, Duration window,
                                               SimTime now) const {
  const bool empty_ok =
      kind == AggKind::kCount || kind == AggKind::kSum || kind == AggKind::kRate;
  const Series* series = id < slots_.size() ? slots_[id].series.get() : nullptr;
  if (series == nullptr) {
    if (empty_ok) {
      return 0.0;
    }
    return NotFoundError("no time series for key '" +
                         (id < slots_.size() ? slots_[id].key : std::to_string(id)) + "'");
  }
  const SimTime cutoff = now - window;
  const WindowRange r = FindWindow(series->samples, cutoff, now);
  if (r.empty) {
    if (empty_ok) {
      return 0.0;
    }
    return NotFoundError("window for key '" + slots_[id].key + "' is empty");
  }
  const Sample& first = series->samples[r.lo];
  const Sample& last = series->samples[r.hi];
  const double count = static_cast<double>(last.seq - first.seq + 1);
  switch (kind) {
    case AggKind::kCount:
      return count;
    case AggKind::kSum:
      return last.cum_sum - (first.cum_sum - first.value);
    case AggKind::kMean:
      return (last.cum_sum - (first.cum_sum - first.value)) / count;
    case AggKind::kMin:
    case AggKind::kMax: {
      const bool suffix = r.hi + 1 == series->samples.size();
      if (suffix) {
        const auto& candidates = kind == AggKind::kMin ? series->minima : series->maxima;
        // First candidate with seq >= first.seq is the suffix extremum.
        auto it = std::lower_bound(candidates.begin(), candidates.end(), first.seq,
                                   [](const Extremum& e, uint64_t s) { return e.seq < s; });
        if (it != candidates.end()) {
          return it->value;
        }
        return InternalError("extrema deque out of sync");  // unreachable
      }
      // Query bounded away from the newest sample (now < back.time): rare —
      // the engine's clock is monotone — so a linear scan is acceptable.
      double extreme = series->samples[r.lo].value;
      for (size_t i = r.lo + 1; i <= r.hi; ++i) {
        const double v = series->samples[i].value;
        extreme = kind == AggKind::kMin ? std::min(extreme, v) : std::max(extreme, v);
      }
      return extreme;
    }
    case AggKind::kStdDev: {
      if (count < 2.0) {
        return 0.0;
      }
      const double sum = last.cum_sum - (first.cum_sum - first.value);
      const double sumsq = last.cum_sumsq - (first.cum_sumsq - first.value * first.value);
      const double mean = sum / count;
      // Clamp: prefix-difference cancellation can drive tiny windows
      // fractionally negative.
      const double var = std::max(0.0, (sumsq - sum * mean) / (count - 1.0));
      return std::sqrt(var);
    }
    case AggKind::kRate: {
      if (window <= 0) {
        return 0.0;
      }
      return count / ToSeconds(window);
    }
    case AggKind::kNewest:
      return last.value;
    case AggKind::kOldest:
      return first.value;
  }
  return InternalError("unknown aggregation kind");
}

Result<double> FeatureStore::Aggregate(std::string_view key, AggKind kind, Duration window,
                                       SimTime now) const {
  KeyId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = FindLocked(key);
  }
  if (id == kInvalidKeyId) {
    if (kind == AggKind::kCount || kind == AggKind::kSum || kind == AggKind::kRate) {
      return 0.0;
    }
    return NotFoundError("no time series for key '" + std::string(key) + "'");
  }
  return Aggregate(id, kind, window, now);
}

Result<double> FeatureStore::AggregateQuantile(KeyId id, double q, Duration window,
                                               SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return AggregateQuantileUnlocked(id, q, window, now);
}

Result<double> FeatureStore::AggregateQuantileUnlocked(KeyId id, double q, Duration window,
                                                       SimTime now) const {
  std::vector<double> samples = WindowSamplesUnlocked(id, window, now);
  if (samples.empty()) {
    return NotFoundError("window for slot " + std::to_string(id) + " is empty");
  }
  return ExactQuantile(std::move(samples), q);
}

Result<double> FeatureStore::AggregateQuantile(std::string_view key, double q, Duration window,
                                               SimTime now) const {
  std::vector<double> samples = WindowSamples(key, window, now);
  if (samples.empty()) {
    return NotFoundError("window for key '" + std::string(key) + "' is empty");
  }
  return ExactQuantile(std::move(samples), q);
}

std::vector<double> FeatureStore::WindowSamples(KeyId id, Duration window, SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowSamplesUnlocked(id, window, now);
}

std::vector<double> FeatureStore::WindowSamplesUnlocked(KeyId id, Duration window,
                                                        SimTime now) const {
  std::vector<double> out;
  const Series* series = id < slots_.size() ? slots_[id].series.get() : nullptr;
  if (series == nullptr) {
    return out;
  }
  const WindowRange r = FindWindow(series->samples, now - window, now);
  if (r.empty) {
    return out;
  }
  out.reserve(r.hi - r.lo + 1);
  for (size_t i = r.lo; i <= r.hi; ++i) {
    out.push_back(series->samples[i].value);
  }
  return out;
}

std::vector<double> FeatureStore::WindowSamples(std::string_view key, Duration window,
                                                SimTime now) const {
  KeyId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = FindLocked(key);
  }
  if (id == kInvalidKeyId) {
    return {};
  }
  return WindowSamples(id, window, now);
}

// --- Introspection ---

size_t FeatureStore::scalar_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const Slot& slot : slots_) {
    count += slot.has_scalar ? 1 : 0;
  }
  return count;
}

size_t FeatureStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const Slot& slot : slots_) {
    count += slot.series != nullptr ? 1 : 0;
  }
  return count;
}

std::vector<std::string> FeatureStore::ScalarKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    if (slot.has_scalar) {
      keys.push_back(slot.key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void FeatureStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  SeqWriteGuard seq(this);
  for (Slot& slot : slots_) {
    slot.has_scalar = false;
    slot.scalar = Value();
    slot.series.reset();
    if (!slot.live) {
      // Compaction: a dead slot no longer needs its retained key string.
      slot.key.clear();
      slot.key.shrink_to_fit();
    }
    RefreshBytesLocked(slot);
  }
  // Trim trailing dead slots. Live ids never move, so every id a monitor
  // has cached (all of which point at live, pinned slots) stays valid.
  while (!slots_.empty() && !slots_.back().live) {
    const KeyId dead = static_cast<KeyId>(slots_.size() - 1);
    approx_bytes_ -= slots_.back().bytes;
    slots_.pop_back();
    free_slots_.erase(std::remove(free_slots_.begin(), free_slots_.end(), dead),
                      free_slots_.end());
  }
}

void FeatureStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  SeqWriteGuard seq(this);
  slots_.clear();
  index_.clear();
  free_slots_.clear();
  approx_bytes_ = 0;
}

// --- Persistence ---

std::vector<StoreSlotDump> FeatureStore::DumpSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoreSlotDump> dump;
  dump.reserve(slots_.size());
  for (KeyId id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    StoreSlotDump d;
    d.key = slot.key;
    d.generation = slot.generation;
    d.live = slot.live;
    if (!slot.live) {
      auto it = std::find(free_slots_.begin(), free_slots_.end(), id);
      d.free_rank = it == free_slots_.end()
                        ? 0
                        : static_cast<uint32_t>(it - free_slots_.begin()) + 1;
    }
    d.has_scalar = slot.has_scalar;
    if (slot.has_scalar) {
      d.scalar = slot.scalar;
    }
    if (slot.series != nullptr) {
      d.has_series = true;
      const Series& s = *slot.series;
      d.series.max_samples = static_cast<uint64_t>(s.options.max_samples);
      d.series.max_age = s.options.max_age;
      d.series.next_seq = s.next_seq;
      d.series.samples.reserve(s.samples.size());
      for (const Sample& sample : s.samples) {
        d.series.samples.push_back(
            StoreSampleDump{sample.time, sample.value, sample.cum_sum, sample.cum_sumsq,
                            sample.seq});
      }
      d.series.minima.reserve(s.minima.size());
      for (const Extremum& e : s.minima) {
        d.series.minima.push_back(StoreExtremumDump{e.seq, e.time, e.value});
      }
      d.series.maxima.reserve(s.maxima.size());
      for (const Extremum& e : s.maxima) {
        d.series.maxima.push_back(StoreExtremumDump{e.seq, e.time, e.value});
      }
    }
    dump.push_back(std::move(d));
  }
  return dump;
}

void FeatureStore::RestoreSlots(const std::vector<StoreSlotDump>& dump) {
  std::lock_guard<std::mutex> lock(mu_);
  SeqWriteGuard seq(this);
  // Positional restore: dump index i describes slot i. This preserves the
  // generation map, so a monitor's (id, generation) tag minted before a
  // snapshot reads identically after warm restart.
  if (slots_.size() < dump.size()) {
    slots_.resize(dump.size());
  }
  std::vector<std::pair<uint32_t, KeyId>> freed;  // (free_rank, id)
  for (KeyId id = 0; id < dump.size(); ++id) {
    const StoreSlotDump& d = dump[id];
    Slot& slot = slots_[id];
    if (!d.live) {
      // Current pinned slots belong to the engine's post-restore topology;
      // a dead dump entry must not kill them.
      if (!slot.pinned) {
        if (slot.live && !slot.key.empty()) {
          index_.erase(slot.key);
        }
        slot.key.clear();
        slot.has_scalar = false;
        slot.scalar = Value();
        slot.series.reset();
        slot.live = false;
        slot.generation = d.generation;
        freed.emplace_back(d.free_rank, id);
      }
      RefreshBytesLocked(slot);
      continue;
    }
    if (slot.live && slot.key != d.key && !slot.key.empty()) {
      index_.erase(slot.key);
    }
    slot.key = d.key;
    slot.live = true;
    slot.generation = d.generation;
    index_[slot.key] = id;
    slot.has_scalar = d.has_scalar;
    slot.scalar = d.has_scalar ? d.scalar : Value();
    if (!d.has_series) {
      slot.series.reset();
      RefreshBytesLocked(slot);
      continue;
    }
    slot.series = std::make_unique<Series>();
    Series& s = *slot.series;
    s.options.max_samples = static_cast<size_t>(d.series.max_samples);
    s.options.max_age = d.series.max_age;
    s.next_seq = d.series.next_seq;
    for (const StoreSampleDump& sample : d.series.samples) {
      s.samples.push_back(
          Sample{sample.time, sample.value, sample.cum_sum, sample.cum_sumsq, sample.seq});
    }
    for (const StoreExtremumDump& e : d.series.minima) {
      s.minima.push_back(Extremum{e.seq, e.time, e.value});
    }
    for (const StoreExtremumDump& e : d.series.maxima) {
      s.maxima.push_back(Extremum{e.seq, e.time, e.value});
    }
    RefreshBytesLocked(slot);
  }
  // Rebuild the free list in dump order so recycling after restart picks the
  // same slots in the same order as the pre-crash store would have.
  std::sort(freed.begin(), freed.end());
  free_slots_.clear();
  for (const auto& [rank, id] : freed) {
    (void)rank;
    free_slots_.push_back(id);
  }
}

// --- ReadView (epoch-validated lock-free reads) ---

FeatureStore::ReadView::ReadView(const FeatureStore* store) : store_(store) {
  key_count_ = store_->key_count();
}

// Seqlock read recipe: sample the epoch (acquire), bail if a write is in
// flight (odd), run the read body, then re-sample — an acquire fence keeps
// the body's loads from sinking below the second sample. A stable even pair
// means no write overlapped. The bounded loop + mutex fallback means a
// protocol violation degrades to a locked read rather than a livelock.
template <typename Fn>
auto FeatureStore::ReadView::Validated(Fn&& fn) const {
  constexpr int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const uint64_t e1 = store_->epoch_.load(std::memory_order_acquire);
    if ((e1 & 1) == 0) {
      auto result = fn();
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t e2 = store_->epoch_.load(std::memory_order_relaxed);
      if (e1 == e2) {
        return result;
      }
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(store_->mu_);
  return fn();
}

Value FeatureStore::ReadView::LoadOr(KeyId id, const Value& fallback) const {
  return Validated([&] { return store_->LoadOrUnlocked(id, fallback); });
}

bool FeatureStore::ReadView::Contains(KeyId id) const {
  return Validated([&] { return store_->ContainsUnlocked(id); });
}

uint32_t FeatureStore::ReadView::GenerationOf(KeyId id) const {
  return Validated([&] { return store_->GenerationOfUnlocked(id); });
}

Result<double> FeatureStore::ReadView::Aggregate(KeyId id, AggKind kind, Duration window,
                                                 SimTime now) const {
  return Validated([&] { return store_->AggregateUnlocked(id, kind, window, now); });
}

Result<double> FeatureStore::ReadView::AggregateQuantile(KeyId id, double q, Duration window,
                                                         SimTime now) const {
  return Validated([&] { return store_->AggregateQuantileUnlocked(id, q, window, now); });
}

}  // namespace osguard
