// The global feature store (paper §4.3).
//
// Guardrails evaluate properties over system-wide metrics that are produced
// at many kernel sites and consumed at one monitor. The paper's answer is a
// lightweight global store accessed through SAVE(key, value) / LOAD(key).
// This implementation adds the windowed time-series substrate those rules
// need in practice: kernel sites call Observe(key, now, sample) and monitors
// query Aggregate("page_fault_lat", kMean, 10s window).
//
// Concurrency: all operations are guarded by a single mutex. In the kernel
// the store would be per-CPU sharded; a single lock is faithful enough for a
// simulator and keeps the semantics (strict serializability of SAVE/LOAD)
// simple to reason about.

#ifndef SRC_STORE_FEATURE_STORE_H_
#define SRC_STORE_FEATURE_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/store/value.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// Aggregations available over a time-series key. The DSL exposes these as
// MEAN(key, window), RATE(key, window), etc.
enum class AggKind {
  kCount,   // number of samples in the window
  kSum,     // sum of sample values
  kMean,    // arithmetic mean (0 when empty)
  kMin,
  kMax,
  kStdDev,  // sample standard deviation
  kRate,    // samples per second over the window span
  kNewest,  // most recent sample value
  kOldest,  // oldest retained sample within the window
};

std::string_view AggKindName(AggKind kind);

// Per-series retention limits. A series drops samples older than max_age and
// keeps at most max_samples; both bounds keep monitor memory bounded, which
// is a precondition for running in the kernel.
struct SeriesOptions {
  size_t max_samples = 65536;
  Duration max_age = Seconds(300);
};

// Invoked after a key is written (Save / Increment / Observe), outside the
// store's lock, on the writing thread. Used by the engine's ONCHANGE
// triggers (dependency-driven checking, the paper's §6 idea).
using WriteObserver = std::function<void(const std::string& key)>;

class FeatureStore {
 public:
  FeatureStore() = default;
  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  // Registers the single write observer (nullptr to clear). The observer is
  // called after the write commits and after the store lock is released, so
  // it may freely read the store.
  void SetWriteObserver(WriteObserver observer) { observer_ = std::move(observer); }

  // --- Scalar KV (the paper's SAVE/LOAD) ---

  // Stores or overwrites a scalar. Nil values are stored (LOAD distinguishes
  // "stored nil" from "missing" via status).
  void Save(const std::string& key, Value value);

  // Returns the stored scalar, or kNotFound.
  Result<Value> Load(const std::string& key) const;

  // Returns the stored scalar or `fallback` if missing.
  Value LoadOr(const std::string& key, Value fallback) const;

  bool Contains(const std::string& key) const;
  Status Erase(const std::string& key);

  // Atomic read-modify-write for numeric counters; creates the key at
  // `delta` if absent. Returns the post-increment value.
  double Increment(const std::string& key, double delta = 1.0);

  // --- Time series ---

  // Appends a timestamped sample. Samples must be observed with
  // non-decreasing timestamps per key (simulation time is monotone);
  // out-of-order samples are clamped to the newest retained timestamp.
  void Observe(const std::string& key, SimTime now, double sample);

  void SetSeriesOptions(const std::string& key, SeriesOptions options);

  // Aggregates samples with timestamp in (now - window, now]. Missing series
  // or empty windows: kCount/kSum/kRate yield 0.0; the others yield
  // kNotFound so rules can distinguish "no data" from "zero".
  Result<double> Aggregate(const std::string& key, AggKind kind, Duration window,
                           SimTime now) const;

  // Value at quantile q in [0,1] over the window (exact, on retained samples).
  Result<double> AggregateQuantile(const std::string& key, double q, Duration window,
                                   SimTime now) const;

  // Copies the samples in the window, oldest first (for P1's KS-test style
  // distribution comparisons).
  std::vector<double> WindowSamples(const std::string& key, Duration window, SimTime now) const;

  // --- Introspection ---

  size_t scalar_count() const;
  size_t series_count() const;
  std::vector<std::string> ScalarKeys() const;

  // Erases everything (tests / between benchmark repetitions).
  void Clear();

 private:
  struct Sample {
    SimTime time;
    double value;
  };

  struct Series {
    std::deque<Sample> samples;
    SeriesOptions options;
  };

  void EvictLocked(Series& series, SimTime now) const;
  void NotifyWrite(const std::string& key) const {
    if (observer_) {
      observer_(key);
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, Value> scalars_;
  mutable std::unordered_map<std::string, Series> series_;
  WriteObserver observer_;
};

}  // namespace osguard

#endif  // SRC_STORE_FEATURE_STORE_H_
