// The global feature store (paper §4.3).
//
// Guardrails evaluate properties over system-wide metrics that are produced
// at many kernel sites and consumed at one monitor. The paper's answer is a
// lightweight global store accessed through SAVE(key, value) / LOAD(key).
// This implementation adds the windowed time-series substrate those rules
// need in practice: kernel sites call Observe(key, now, sample) and monitors
// query Aggregate("page_fault_lat", kMean, 10s window).
//
// Hot-path design (the P5 "decision overhead" budget):
//
//   * Keys are interned to dense slot ids (KeyId). The engine resolves every
//     compile-time-constant key to a slot at monitor load, so steady-state
//     helper calls are an array index — no hashing, no std::string
//     construction. The string API remains as the slow path for dynamic keys
//     and does exactly one (transparent, string_view) hash probe.
//   * Every series keeps incremental window state: per-sample running
//     sum/sum-of-squares prefixes and monotonic min/max deques. Aggregate
//     queries are O(log n) binary searches + O(1) arithmetic instead of an
//     O(n) scan; Observe/evict maintenance is amortized O(1).
//
// Concurrency: all operations are guarded by a single mutex. In the kernel
// the store would be per-CPU sharded; a single lock is faithful enough for a
// simulator and keeps the semantics (strict serializability of SAVE/LOAD)
// simple to reason about.
//
// The sharded engine adds one refinement on top of the mutex: an epoch
// counter (seqlock discipline) that every write path bumps twice — odd while
// a mutation is in flight, even when quiescent. ReadView exploits it for
// lock-free reads during the engine's writer-quiescent drain phases; see the
// class comment below and docs/SHARDING.md for the protocol.

#ifndef SRC_STORE_FEATURE_STORE_H_
#define SRC_STORE_FEATURE_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/store/value.h"
#include "src/support/hash.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// Dense identifier for an interned feature-store key; indexes directly into
// the slot array. Ids are assigned in interning order. A *pinned* slot
// (Pin()) is stable for the lifetime of the store — Clear() resets values
// but keeps the intern table, so monitor-cached ids stay valid; the engine
// pins every id it caches at load time. Unpinned slots participate in the
// key lifecycle: ReclaimKey() frees the slot onto a free list, bumps its
// generation, and a later intern of a *different* key may recycle the slot.
// Consumers that cache ids of reclaimable keys must carry the generation
// (GenerationOf at resolve time) and read through the tagged accessors — a
// stale generation reads as absent, never as the recycled key's data.
using KeyId = uint32_t;
inline constexpr KeyId kInvalidKeyId = 0xffffffffu;

// Aggregations available over a time-series key. The DSL exposes these as
// MEAN(key, window), RATE(key, window), etc.
enum class AggKind {
  kCount,   // number of samples in the window
  kSum,     // sum of sample values
  kMean,    // arithmetic mean (0 when empty)
  kMin,
  kMax,
  kStdDev,  // sample standard deviation
  kRate,    // samples per second over the window span
  kNewest,  // most recent sample value
  kOldest,  // oldest retained sample within the window
};

std::string_view AggKindName(AggKind kind);

// Per-series retention limits. A series drops samples older than max_age and
// keeps at most max_samples; both bounds keep monitor memory bounded, which
// is a precondition for running in the kernel.
struct SeriesOptions {
  size_t max_samples = 65536;
  Duration max_age = Seconds(300);
};

// Slot facts riding along with every write notification, read from the
// committed slot so consumers (ONCHANGE dispatch, retention stamping) need
// no extra store lock round-trip.
struct StoreWriteInfo {
  KeyId id = kInvalidKeyId;
  uint32_t generation = 0;   // slot tenant generation at commit time
  uint64_t approx_bytes = 0; // slot's approximate footprint after the write
  bool pinned = false;       // lifecycle-exempt (cached-id contract)
};

// Invoked after a key is written (Save / Increment / Observe), outside the
// store's lock, on the writing thread. Used by the engine's ONCHANGE
// triggers (dependency-driven checking, the paper's §6 idea) and by the
// retention manager's last-write stamping. The id is the key's interned
// slot so the consumer can dispatch without re-hashing; the string
// reference stays valid for the lifetime of the store.
using WriteObserver = std::function<void(const StoreWriteInfo& info, const std::string& key)>;

// A committed store mutation, as observed by the persistence layer
// (osguard::persist journals these and replays them through the public API
// on recovery). Which fields are meaningful depends on `kind`:
//   kSave             -> value (Increment reports its post-increment scalar
//                        as a kSave, so replay needs no read-modify-write)
//   kObserve          -> time, sample
//   kErase            -> key only; fired only when the erase succeeded.
//                        `reclaim` distinguishes a full slot reclamation
//                        (ReclaimKey: series dropped, slot freed) from a
//                        scalar erase, so journal replay reproduces the
//                        free-list and generation state bit-identically.
//   kSetSeriesOptions -> options
struct StoreMutation {
  enum class Kind : uint8_t { kSave = 0, kObserve = 1, kErase = 2, kSetSeriesOptions = 3 };
  Kind kind = Kind::kSave;
  KeyId id = kInvalidKeyId;
  Value value;
  SimTime time = 0;
  double sample = 0.0;
  SeriesOptions options;
  bool reclaim = false;
};

// Invoked after a mutation commits, outside the store's lock, before the
// WriteObserver for the same write. The key reference is stable for the
// lifetime of the store.
using MutationObserver = std::function<void(const StoreMutation& m, const std::string& key)>;

// Full value dump of one slot — everything needed to reconstruct the slot
// bit-identically, including the series' incremental window state (prefix
// accumulators, monotonic extrema deques, per-series sequence counter).
// Produced by DumpSlots() in interning order; consumed by RestoreSlots()
// and by osguard::persist snapshots.
struct StoreSampleDump {
  SimTime time = 0;
  double value = 0.0;
  double cum_sum = 0.0;
  double cum_sumsq = 0.0;
  uint64_t seq = 0;
};
struct StoreExtremumDump {
  uint64_t seq = 0;
  SimTime time = 0;
  double value = 0.0;
};
struct StoreSeriesDump {
  std::vector<StoreSampleDump> samples;
  std::vector<StoreExtremumDump> minima;
  std::vector<StoreExtremumDump> maxima;
  uint64_t max_samples = 0;
  Duration max_age = 0;
  uint64_t next_seq = 0;
};
struct StoreSlotDump {
  std::string key;
  bool has_scalar = false;
  Value scalar;
  bool has_series = false;
  StoreSeriesDump series;
  // --- Generation map (key lifecycle) ---
  // Reclaimed slots are dumped too (live = false, values empty) so a warm
  // restart reconstructs the slot table positionally: generations, the
  // free-list membership, and its LIFO order (free_rank: 1-based position in
  // the free list, 0 for live slots) all survive bit-identically.
  uint32_t generation = 0;
  bool live = true;
  uint32_t free_rank = 0;
};

class FeatureStore {
 public:
  FeatureStore() = default;
  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  // Registers the single write observer (nullptr to clear). The observer is
  // called after the write commits and after the store lock is released, so
  // it may freely read the store.
  void SetWriteObserver(WriteObserver observer) { observer_ = std::move(observer); }

  // Registers the single mutation observer (nullptr to clear). Fired for
  // every committed mutation — Save/Increment/Observe like the write
  // observer, plus successful Erase and SetSeriesOptions — before the write
  // observer, outside the lock. This is the persistence layer's journal tap.
  void SetMutationObserver(MutationObserver observer) {
    mutation_observer_ = std::move(observer);
  }

  // While suppressed, neither observer fires. Recovery replays journaled
  // mutations through the public API; suppression keeps the replay from
  // re-journaling itself or re-firing ONCHANGE triggers mid-restore.
  void SetObserversSuppressed(bool suppressed) { observers_suppressed_ = suppressed; }

  // --- Key interning ---

  // Returns the slot id for `key`, creating an empty slot if absent. A freed
  // slot may be recycled (LIFO) — the returned id then carries the bumped
  // generation that distinguishes it from the slot's previous tenant.
  KeyId InternKey(std::string_view key);

  // Returns the slot id for `key` or kInvalidKeyId if it was never interned
  // (or was reclaimed).
  KeyId FindKey(std::string_view key) const;

  // Slot-table size (live + freed slots); all valid KeyIds are < key_count().
  size_t key_count() const;

  // Number of live (not reclaimed) slots.
  size_t live_key_count() const;

  // The key string for a valid id (stable reference; a freed slot keeps its
  // last tenant's name until the slot is recycled or compacted).
  const std::string& KeyName(KeyId id) const;

  // --- Key lifecycle (bounded-memory store; docs/STORE.md) ---

  // Pins / unpins a slot. Pinned slots are never reclaimed — ReclaimKey
  // refuses with kFailedPrecondition — so cached KeyIds of pinned keys stay
  // valid forever. The engine pins every id it resolves at monitor load.
  void Pin(KeyId id);
  void Unpin(KeyId id);
  bool IsPinned(KeyId id) const;

  // Slot generation: bumped each time the slot is reclaimed. Capture it next
  // to a cached KeyId and read through the tagged accessors below.
  uint32_t GenerationOf(KeyId id) const;
  // Whether the slot is currently interned (not freed).
  bool IsLive(KeyId id) const;

  // Frees the slot: drops scalar and series state, removes the key from the
  // intern index, bumps the generation, and pushes the slot onto the free
  // list for recycling. Refuses pinned slots (kFailedPrecondition) and
  // missing/already-freed keys (kNotFound). Fires the mutation observer as a
  // kErase with reclaim = true (journaled as an ordinary erase frame); like
  // Erase, it does not fire the write observer — reclamation never triggers
  // ONCHANGE cascades.
  Status ReclaimKey(std::string_view key);
  Status ReclaimKeyId(KeyId id);

  // Generation-validated reads: absent (fallback / kNotFound / empty) when
  // the slot was reclaimed or recycled since `gen` was captured — a stale
  // tag can never observe the recycled slot's new tenant. Stale hits are
  // counted (stale_hits) as proof the validation is doing work.
  Value LoadOrTagged(KeyId id, uint32_t gen, Value fallback) const;
  bool ContainsTagged(KeyId id, uint32_t gen) const;
  Result<double> AggregateTagged(KeyId id, uint32_t gen, AggKind kind, Duration window,
                                 SimTime now) const;
  uint64_t stale_hits() const { return stale_hits_.load(std::memory_order_relaxed); }

  // Approximate heap footprint of the store: slot table, key strings, scalar
  // payloads, series sample buffers and window-aggregate state. Maintained
  // incrementally (O(1) per mutation); the engine exports it as
  // engine.store.bytes.total and feeds it to the overload governor.
  uint64_t approx_bytes() const;
  // Approximate footprint of one slot (0 for out-of-range ids).
  uint64_t SlotApproxBytes(KeyId id) const;

  // --- Scalar KV (the paper's SAVE/LOAD) ---

  // Stores or overwrites a scalar. Nil values are stored (LOAD distinguishes
  // "stored nil" from "missing" via status).
  void Save(std::string_view key, Value value);
  void Save(KeyId id, Value value);

  // Returns the stored scalar, or kNotFound.
  Result<Value> Load(std::string_view key) const;
  Result<Value> Load(KeyId id) const;

  // Returns the stored scalar or `fallback` if missing.
  Value LoadOr(std::string_view key, Value fallback) const;
  Value LoadOr(KeyId id, Value fallback) const;

  bool Contains(std::string_view key) const;
  bool Contains(KeyId id) const;
  Status Erase(std::string_view key);

  // Atomic read-modify-write for numeric counters; creates the key at
  // `delta` if absent. Returns the post-increment value.
  double Increment(std::string_view key, double delta = 1.0);
  double Increment(KeyId id, double delta = 1.0);

  // --- Time series ---

  // Appends a timestamped sample. Samples must be observed with
  // non-decreasing timestamps per key (simulation time is monotone);
  // out-of-order samples are clamped to the newest retained timestamp.
  void Observe(std::string_view key, SimTime now, double sample);
  void Observe(KeyId id, SimTime now, double sample);

  void SetSeriesOptions(std::string_view key, SeriesOptions options);

  // Aggregates samples with timestamp in (now - window, now]. Missing series
  // or empty windows: kCount/kSum/kRate yield 0.0; the others yield
  // kNotFound so rules can distinguish "no data" from "zero".
  Result<double> Aggregate(std::string_view key, AggKind kind, Duration window,
                           SimTime now) const;
  Result<double> Aggregate(KeyId id, AggKind kind, Duration window, SimTime now) const;

  // Value at quantile q in [0,1] over the window (exact, on retained samples).
  Result<double> AggregateQuantile(std::string_view key, double q, Duration window,
                                   SimTime now) const;
  Result<double> AggregateQuantile(KeyId id, double q, Duration window, SimTime now) const;

  // Copies the samples in the window, oldest first (for P1's KS-test style
  // distribution comparisons).
  std::vector<double> WindowSamples(std::string_view key, Duration window, SimTime now) const;
  std::vector<double> WindowSamples(KeyId id, Duration window, SimTime now) const;

  // --- Introspection ---

  size_t scalar_count() const;
  size_t series_count() const;
  std::vector<std::string> ScalarKeys() const;

  // Erases all values (tests / between benchmark repetitions). The intern
  // table survives so previously resolved KeyIds remain valid. Free-listed
  // slots are compacted: their retained key strings are released and any
  // trailing run of freed slots is trimmed from the table (live slot ids
  // never move, so the cached-KeyId stability contract holds — pinned by
  // tests/store_test.cc).
  void Clear();

  // Clear() plus drops the intern table itself — a pristine store, as after
  // construction. Every previously resolved KeyId is invalidated; callers
  // that cached ids (engine monitors, supervisor exports) must be rebuilt.
  // This is the honest crash semantics Kernel::Reboot needs: a rebooted
  // kernel does not remember interning order.
  void Reset();

  // --- Persistence (osguard::persist) ---

  // Snapshot of every slot in interning order — including freed slots, whose
  // dump carries the generation map and free-list rank — with full
  // incremental series state. Observers do not fire.
  std::vector<StoreSlotDump> DumpSlots() const;

  // Reinstates a DumpSlots() snapshot positionally: dump index i describes
  // slot i (prefix-consistent with the original interning order, so
  // monitor-cached KeyIds resolved after a same-spec reload stay correct).
  // Live dumped slots replace whatever the slot currently holds; dead dumped
  // slots are freed (unless the current slot is pinned — a pinned slot's
  // owner re-interned it before the restore) and the free list is rebuilt in
  // the dumped LIFO order. Slots already interned past the dump are left
  // untouched. Observers do not fire.
  void RestoreSlots(const std::vector<StoreSlotDump>& dump);

  // --- Epoch snapshot publication (sharded engine) ---

  // Write-epoch counter: even = quiescent, odd = a mutation is in flight.
  // Every mutating method bumps it twice (under the mutex, with seqlock
  // ordering), so a reader that observes the same even value before and
  // after a read knows no write overlapped it.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Lock-free read-only view over interned slots, for the sharded engine's
  // worker threads. Only the KeyId fast paths are exposed — a parallel rule
  // has every store call pre-resolved to a slot id at load time.
  //
  // Protocol contract: a ReadView is only meaningful while the store is
  // writer-quiescent (the sharded engine's batch-drain phase — the
  // coordinator enqueues, kicks the workers, and touches the store again
  // only after the completion barrier; the ring publish / barrier edges
  // provide the cross-thread happens-before). The epoch validation converts
  // a protocol violation (a write slipping into a drain phase) into a
  // bounded retry and then a mutex-guarded fallback read instead of a torn
  // result. Results are bit-identical to the locked accessors.
  class ReadView {
   public:
    explicit ReadView(const FeatureStore* store);

    // Slot-id space captured at construction; ids >= key_count() were not
    // interned when the view was taken.
    size_t key_count() const { return key_count_; }
    // Re-stamps the slot-id space without touching the store: the sharded
    // coordinator reads key_count() once per batch (while quiescent) and
    // hands it to the workers through their tasks, so the per-eval hot path
    // never takes the store mutex.
    void set_key_count(size_t n) { key_count_ = n; }

    Value LoadOr(KeyId id, const Value& fallback) const;
    bool Contains(KeyId id) const;
    Result<double> Aggregate(KeyId id, AggKind kind, Duration window, SimTime now) const;
    Result<double> AggregateQuantile(KeyId id, double q, Duration window,
                                     SimTime now) const;
    // Slot generation under the same epoch validation — the sharded engine
    // checks pre-resolved slots against their load-time generation before
    // trusting a keyed fast path (a reclaimed/recycled slot falls back to
    // the by-name slow path, which is correct by construction).
    uint32_t GenerationOf(KeyId id) const;

    // Epoch-validation failures observed through this view (telemetry; 0 in
    // a correctly quiescent drain phase).
    uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

   private:
    template <typename Fn>
    auto Validated(Fn&& fn) const;

    const FeatureStore* store_;
    size_t key_count_ = 0;
    mutable std::atomic<uint64_t> retries_{0};
  };

 private:
  struct Sample {
    SimTime time;
    double value;
    // Running prefixes from the series' last rebase point (the most recent
    // moment the sample deque was empty) through this sample. Window totals
    // are prefix differences; absolute prefixes never need fixup on evict.
    double cum_sum;
    double cum_sumsq;
    uint64_t seq;  // monotone per-series sample number (count via diff)
  };

  // Monotonic deque entry for O(1)-amortized window min/max.
  struct Extremum {
    uint64_t seq;
    SimTime time;
    double value;
  };

  struct Series {
    std::deque<Sample> samples;
    // minima: values strictly increase front->back; front is min of the
    // retained suffix starting at its seq. maxima: values strictly decrease.
    std::deque<Extremum> minima;
    std::deque<Extremum> maxima;
    SeriesOptions options;
    uint64_t next_seq = 0;
  };

  struct Slot {
    std::string key;
    bool has_scalar = false;
    Value scalar;
    std::unique_ptr<Series> series;  // null until first Observe/SetSeriesOptions
    // --- Key lifecycle ---
    uint32_t generation = 0;  // bumped on reclaim; tagged reads validate it
    bool live = true;         // false after ReclaimKey, until recycled
    bool pinned = false;      // never reclaimed; id is stable forever
    uint64_t bytes = 0;       // cached approximate footprint (see RefreshBytesLocked)
  };

  KeyId InternLocked(std::string_view key);
  KeyId FindLocked(std::string_view key) const;
  static void AppendLocked(Series& series, SimTime t, double sample);
  static void EvictLocked(Series& series, SimTime now);
  // Approximate footprint of one slot (key string, scalar payload, series
  // buffers + extrema deques). O(1): deque sizes, no traversal.
  static uint64_t SlotBytes(const Slot& slot);
  // Re-prices `slot` after a mutation and folds the delta into the store
  // total. Every write path that touches slot payloads calls this last.
  void RefreshBytesLocked(Slot& slot);
  // `name` receives the reclaimed key's name when `*capture` is set (the
  // slot's own copy is wiped as part of the reclaim).
  Status ReclaimLocked(KeyId id, StoreMutation* m, bool* capture, std::string* name);

  // RAII seqlock write section: constructor bumps epoch_ to odd (release
  // after the store so prior slot writes aren't reordered past the "write in
  // flight" mark... the important edge is the *second* bump), destructor
  // bumps it back to even with release so the mutation is fully visible
  // before the epoch reads even again. Must be held while mu_ is held.
  class SeqWriteGuard {
   public:
    explicit SeqWriteGuard(const FeatureStore* store) : store_(store) {
      store_->epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~SeqWriteGuard() { store_->epoch_.fetch_add(1, std::memory_order_release); }
    SeqWriteGuard(const SeqWriteGuard&) = delete;
    SeqWriteGuard& operator=(const SeqWriteGuard&) = delete;

   private:
    const FeatureStore* store_;
  };

  // Read bodies shared by the mutex-guarded public accessors and ReadView's
  // epoch-validated lock-free path. Callers must hold mu_ *or* be inside a
  // ReadView validation loop.
  Value LoadOrUnlocked(KeyId id, const Value& fallback) const;
  bool ContainsUnlocked(KeyId id) const;
  uint32_t GenerationOfUnlocked(KeyId id) const {
    return id < slots_.size() ? slots_[id].generation : 0;
  }
  Result<double> AggregateUnlocked(KeyId id, AggKind kind, Duration window,
                                   SimTime now) const;
  std::vector<double> WindowSamplesUnlocked(KeyId id, Duration window, SimTime now) const;
  Result<double> AggregateQuantileUnlocked(KeyId id, double q, Duration window,
                                           SimTime now) const;
  void NotifyWrite(KeyId id) const {
    if (observer_ && !observers_suppressed_) {
      const Slot& slot = slots_[id];
      StoreWriteInfo info;
      info.id = id;
      info.generation = slot.generation;
      info.approx_bytes = slot.bytes;
      info.pinned = slot.pinned;
      observer_(info, slot.key);
    }
  }
  void NotifyMutation(const StoreMutation& m) const {
    if (mutation_observer_ && !observers_suppressed_) {
      mutation_observer_(m, slots_[m.id].key);
    }
  }
  // Whether write paths should bother building a StoreMutation at all.
  bool WantMutations() const {
    return mutation_observer_ != nullptr && !observers_suppressed_;
  }

  mutable std::mutex mu_;
  // Seqlock write epoch (see epoch() above). Mutated only under mu_, so
  // writers never race each other; readers are ReadView's validation loops.
  mutable std::atomic<uint64_t> epoch_{0};
  // deque: slots never move, so KeyName() references and the observer's key
  // strings stay valid across interning.
  std::deque<Slot> slots_;
  std::unordered_map<std::string, KeyId, TransparentStringHash, std::equal_to<>> index_;
  // Freed slots awaiting recycling, LIFO. Order is deterministic (reclaims
  // happen at coordinator callout boundaries) and survives snapshots via
  // StoreSlotDump::free_rank, so warm restarts recycle identically.
  std::vector<KeyId> free_slots_;
  uint64_t approx_bytes_ = 0;  // incremental total of Slot::bytes
  mutable std::atomic<uint64_t> stale_hits_{0};
  WriteObserver observer_;
  MutationObserver mutation_observer_;
  bool observers_suppressed_ = false;
};

}  // namespace osguard

#endif  // SRC_STORE_FEATURE_STORE_H_
