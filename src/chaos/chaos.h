// Deterministic fault injection (osguard::chaos).
//
// The paper's core claim is that guardrails keep a system safe when the
// learned policy misbehaves — which means the repo has to be able to *make*
// policies and plumbing misbehave, on demand and reproducibly. This
// subsystem provides that: named injection sites scattered through the
// simulator and monitor runtime (SSD latency spikes, I/O errors, model
// misprediction storms, dropped/delayed FUNCTION callouts, helper and
// action-dispatch failures), each driven by a seeded fault plan.
//
// Determinism contract (what tests/chaos_test.cc enforces):
//   * Every site draws from its own RNG stream, seeded from
//     splitmix64(master_seed ^ fnv1a(site_name)) — so arming, querying, or
//     re-ordering *other* sites never perturbs a site's decisions, and
//     registration order is irrelevant.
//   * Decisions depend only on (site seed, per-site query index, query
//     time). Replaying a run with the same seed is bit-identical.
//   * An unarmed (or kOff) site consumes no randomness and returns
//     "no injection", so a chaos-attached run with rate 0 produces exactly
//     the trace of a run with no chaos engine at all (the differential
//     baseline property).
//
// Threading: the simulator is single-threaded; ChaosEngine is not locked.

#ifndef SRC_CHAOS_CHAOS_H_
#define SRC_CHAOS_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/dsl/sema.h"
#include "src/support/hash.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// Dense handle for a registered injection site (index into the site table).
using ChaosSiteId = uint32_t;
inline constexpr ChaosSiteId kInvalidChaosSite = 0xffffffffu;

// Canonical site names. Components register these when chaos is attached;
// specs arm them by name in a `chaos { site <name> { ... } }` block.
inline constexpr char kChaosSiteSsdLatency[] = "ssd.latency_spike";
inline constexpr char kChaosSiteSsdError[] = "ssd.io_error";
inline constexpr char kChaosSiteMispredict[] = "model.mispredict";
inline constexpr char kChaosSiteWeightCorrupt[] = "ml.weight_corrupt";
inline constexpr char kChaosSiteCalloutDrop[] = "engine.callout_drop";
inline constexpr char kChaosSiteCalloutDelay[] = "engine.callout_delay";
inline constexpr char kChaosSiteHelperFail[] = "runtime.helper_fail";
inline constexpr char kChaosSiteDispatchFail[] = "actions.dispatch_fail";
inline constexpr char kChaosSiteProbeFail[] = "supervisor.probe_fail";
inline constexpr char kChaosSiteBudgetExhaust[] = "vm.budget_exhaust";
// Persistence-layer faults (osguard::persist). These damage the *files*, not
// the in-memory state — the process keeps running unaware, and the damage is
// discovered (and must be survived) at recovery time:
//   persist.torn_write    — journal append stops mid-frame (decision value in
//                           (0,1] = fraction of the frame that lands; 0.5
//                           when unset)
//   persist.crc_corrupt   — one bit of the frame payload flips after the CRC
//                           was computed
//   persist.truncate_tail — the journal loses its final bytes after a
//                           successful append (value = fraction of the frame)
//   persist.snapshot_fail — a snapshot write aborts before the atomic rename
inline constexpr char kChaosSitePersistTornWrite[] = "persist.torn_write";
inline constexpr char kChaosSitePersistCrcCorrupt[] = "persist.crc_corrupt";
inline constexpr char kChaosSitePersistTruncateTail[] = "persist.truncate_tail";
inline constexpr char kChaosSitePersistSnapshotFail[] = "persist.snapshot_fail";
// Agent tool-call callout faults (osguard::agent, docs/AGENT.md). Both model
// instrumentation pathologies on the Kernel::OnToolCall path:
//   agent.event_drop  — the tool-call event is lost before admission: no
//                       feature-store publication, no callout, as if the
//                       instrumentation hook never fired
//   agent.dup_session — the event is delivered twice, the duplicate under a
//                       ghost session id (original id XOR a fixed constant),
//                       modeling a session-id collision in the event bus
inline constexpr char kChaosSiteAgentEventDrop[] = "agent.event_drop";
inline constexpr char kChaosSiteAgentDupSession[] = "agent.dup_session";
// Sharded-engine worker faults (osguard::ShardedEngine). Drawn by the
// coordinator once per flushed shard, in shard-index order, so the draw
// sequence replays deterministically; the injection itself only perturbs
// *scheduling* (the watchdog steals the stranded tasks and re-runs them
// inline), never results — state stays bit-identical to the serial oracle:
//   shard.worker_stall — the shard's worker sleeps past the watchdog deadline
//                        before claiming this batch's tasks (decision value in
//                        (0,1] scales the stall; full deadline x4 when unset)
//   shard.worker_die   — the shard's worker thread exits before claiming
inline constexpr char kChaosSiteShardWorkerStall[] = "shard.worker_stall";
inline constexpr char kChaosSiteShardWorkerDie[] = "shard.worker_die";

// Store retention sites (docs/STORE.md), sampled once per callout boundary on
// the coordinator — reclamation is itself a boundary-only, coordinator-only
// mechanism, so injected storms replay identically in serial and sharded runs:
//   store.evict_storm  — this boundary reclaims every unpinned idle key in
//                        governed namespaces regardless of TTL (cardinality
//                        flood flushing the store)
//   store.quota_breach — this boundary treats every governed namespace as
//                        over its key budget, forcing LRU eviction pressure
inline constexpr char kChaosSiteStoreEvictStorm[] = "store.evict_storm";
inline constexpr char kChaosSiteStoreQuotaBreach[] = "store.quota_breach";

enum class FaultMode {
  kOff = 0,    // never inject (the default for every registered site)
  kBernoulli,  // inject each query independently with probability p
  kSchedule,   // inject at fixed 0-based query indices (bit-exact replay)
  kBurst,      // periodic storm windows: inject with probability p while
               // (now % period) < burst
};

std::string_view FaultModeName(FaultMode mode);

// One site's plan. Magnitudes (latency / value) ride along on every
// injecting decision; the consuming site interprets them (extra service
// latency, weight-noise stddev, callout delay, ...).
struct FaultPlanConfig {
  FaultMode mode = FaultMode::kOff;
  double p = 0.0;              // kBernoulli / kBurst in-window probability
  std::vector<uint64_t> nth;   // kSchedule: sorted 0-based query indices
  Duration period = 0;         // kBurst cycle length
  Duration burst = 0;          // kBurst storm length from each cycle start
  Duration latency = 0;        // magnitude: extra latency / delay
  double value = 0.0;          // magnitude: generic payload
};

// Validates mode-specific fields (p in [0,1], burst windows sane, schedule
// sorted). Arm() calls this; exposed for the DSL loader's diagnostics.
Status ValidateFaultPlan(const FaultPlanConfig& config);

struct FaultDecision {
  bool inject = false;
  Duration latency = 0;  // plan magnitude, 0 when not injecting
  double value = 0.0;

  explicit operator bool() const { return inject; }
};

struct ChaosSiteStats {
  uint64_t queries = 0;   // since the site was last armed (or registered)
  uint64_t injected = 0;
};

class ChaosEngine {
 public:
  explicit ChaosEngine(uint64_t seed = 0) : seed_(seed) {}
  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  uint64_t seed() const { return seed_; }

  // Re-seeds every site's stream and resets counters. Existing site ids
  // stay valid; armed plans stay armed.
  void Reseed(uint64_t seed);

  // Returns the id for `name`, creating an unarmed (kOff) site if absent.
  // Idempotent; ids are stable for the engine's lifetime.
  ChaosSiteId RegisterSite(std::string_view name);

  // The id for `name`, or kInvalidChaosSite if never registered.
  ChaosSiteId FindSite(std::string_view name) const;

  // Installs a plan at `name` (registering the site if needed). Resets the
  // site's query counter and re-derives its RNG stream, so a plan's behavior
  // is a pure function of (engine seed, site name, queries after arming).
  Status Arm(std::string_view name, FaultPlanConfig config);

  // Returns the site to kOff (keeps the id and stats).
  void Disarm(std::string_view name);
  void DisarmAll();

  // The hot call: should site `id` inject at simulated time `now`?
  // Unarmed/kOff sites return false without consuming randomness.
  FaultDecision Query(ChaosSiteId id, SimTime now);
  bool ShouldInject(ChaosSiteId id, SimTime now) { return Query(id, now).inject; }

  // --- Introspection ---
  size_t site_count() const { return sites_.size(); }
  const std::string& SiteName(ChaosSiteId id) const { return sites_[id].name; }
  const FaultPlanConfig& PlanFor(ChaosSiteId id) const { return sites_[id].plan; }
  ChaosSiteStats StatsFor(ChaosSiteId id) const { return sites_[id].stats; }
  Result<ChaosSiteStats> StatsFor(std::string_view name) const;
  uint64_t total_injected() const;
  std::vector<std::string> SiteNames() const;

 private:
  struct Site {
    std::string name;
    FaultPlanConfig plan;
    Rng rng{0};
    uint64_t next_schedule = 0;  // cursor into plan.nth
    ChaosSiteStats stats;
  };

  void RederiveStream(Site& site);

  uint64_t seed_;
  std::vector<Site> sites_;
  std::unordered_map<std::string, ChaosSiteId, TransparentStringHash, std::equal_to<>>
      index_;
};

// Applies an analyzed `chaos { ... }` spec block: reseeds (when the block
// carries a seed) and arms every declared site. Unknown site names are fine
// — sites are registered on demand, so specs can arm sites whose components
// attach later.
Status ApplyChaosSpec(const AnalyzedChaos& spec, ChaosEngine& chaos);

}  // namespace osguard

#endif  // SRC_CHAOS_CHAOS_H_
