#include "src/chaos/chaos.h"

#include <algorithm>
#include <utility>

namespace osguard {

namespace {

// FNV-1a over the site name. Used (not std::hash) so site-stream derivation
// is identical across standard libraries and platforms — determinism here is
// an API promise, not an implementation detail.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finalizer: decorrelates master_seed ^ name_hash so similar
// seeds (0, 1, 2, ...) still yield unrelated site streams.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kOff:
      return "off";
    case FaultMode::kBernoulli:
      return "bernoulli";
    case FaultMode::kSchedule:
      return "schedule";
    case FaultMode::kBurst:
      return "burst";
  }
  return "?";
}

Status ValidateFaultPlan(const FaultPlanConfig& config) {
  if (config.p < 0.0 || config.p > 1.0) {
    return InvalidArgumentError("fault plan p must be in [0, 1]");
  }
  if (config.latency < 0) {
    return InvalidArgumentError("fault plan latency must be >= 0");
  }
  switch (config.mode) {
    case FaultMode::kOff:
      return OkStatus();
    case FaultMode::kBernoulli:
      if (config.p <= 0.0) {
        return InvalidArgumentError("bernoulli fault plan needs p > 0");
      }
      return OkStatus();
    case FaultMode::kSchedule:
      if (config.nth.empty()) {
        return InvalidArgumentError("schedule fault plan needs a non-empty nth list");
      }
      if (!std::is_sorted(config.nth.begin(), config.nth.end())) {
        return InvalidArgumentError("schedule fault plan nth list must be sorted");
      }
      if (std::adjacent_find(config.nth.begin(), config.nth.end()) != config.nth.end()) {
        return InvalidArgumentError("schedule fault plan nth list must not repeat indices");
      }
      return OkStatus();
    case FaultMode::kBurst:
      if (config.period <= 0 || config.burst <= 0) {
        return InvalidArgumentError("burst fault plan needs period > 0 and burst > 0");
      }
      if (config.burst > config.period) {
        return InvalidArgumentError("burst fault plan burst must not exceed period");
      }
      if (config.p <= 0.0) {
        return InvalidArgumentError("burst fault plan needs p > 0");
      }
      return OkStatus();
  }
  return InternalError("unhandled fault mode");
}

void ChaosEngine::RederiveStream(Site& site) {
  site.rng.Seed(Mix(seed_ ^ Fnv1a(site.name)));
  site.next_schedule = 0;
  site.stats = ChaosSiteStats{};
}

void ChaosEngine::Reseed(uint64_t seed) {
  seed_ = seed;
  for (Site& site : sites_) {
    RederiveStream(site);
  }
}

ChaosSiteId ChaosEngine::RegisterSite(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) {
    return it->second;
  }
  const ChaosSiteId id = static_cast<ChaosSiteId>(sites_.size());
  Site site;
  site.name = std::string(name);
  RederiveStream(site);
  sites_.push_back(std::move(site));
  index_.emplace(sites_.back().name, id);
  return id;
}

ChaosSiteId ChaosEngine::FindSite(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidChaosSite : it->second;
}

Status ChaosEngine::Arm(std::string_view name, FaultPlanConfig config) {
  OSGUARD_RETURN_IF_ERROR(ValidateFaultPlan(config));
  Site& site = sites_[RegisterSite(name)];
  site.plan = std::move(config);
  // Arming defines time zero for the plan: the stream restarts so the plan's
  // decisions depend only on (engine seed, site name, queries since arming).
  RederiveStream(site);
  return OkStatus();
}

void ChaosEngine::Disarm(std::string_view name) {
  const ChaosSiteId id = FindSite(name);
  if (id != kInvalidChaosSite) {
    sites_[id].plan = FaultPlanConfig{};
  }
}

void ChaosEngine::DisarmAll() {
  for (Site& site : sites_) {
    site.plan = FaultPlanConfig{};
  }
}

FaultDecision ChaosEngine::Query(ChaosSiteId id, SimTime now) {
  Site& site = sites_[id];
  const FaultPlanConfig& plan = site.plan;
  if (plan.mode == FaultMode::kOff) {
    // No counter bump and no RNG draw: an engine full of kOff sites is
    // stream-identical to no engine at all.
    return FaultDecision{};
  }
  const uint64_t index = site.stats.queries++;
  bool inject = false;
  switch (plan.mode) {
    case FaultMode::kOff:
      break;
    case FaultMode::kBernoulli:
      inject = site.rng.Bernoulli(plan.p);
      break;
    case FaultMode::kSchedule:
      // nth is sorted and the query index is monotone, so a cursor suffices.
      if (site.next_schedule < plan.nth.size() &&
          plan.nth[site.next_schedule] == index) {
        ++site.next_schedule;
        inject = true;
      }
      break;
    case FaultMode::kBurst: {
      const Duration phase = now >= 0 ? now % plan.period : 0;
      // Every in-window query draws — out-of-window queries must not, or the
      // storm phase would shift every site decision after the first cycle.
      inject = phase < plan.burst && site.rng.Bernoulli(plan.p);
      break;
    }
  }
  if (!inject) {
    return FaultDecision{};
  }
  ++site.stats.injected;
  return FaultDecision{true, plan.latency, plan.value};
}

Result<ChaosSiteStats> ChaosEngine::StatsFor(std::string_view name) const {
  const ChaosSiteId id = FindSite(name);
  if (id == kInvalidChaosSite) {
    return NotFoundError("unknown chaos site '" + std::string(name) + "'");
  }
  return sites_[id].stats;
}

uint64_t ChaosEngine::total_injected() const {
  uint64_t total = 0;
  for (const Site& site : sites_) {
    total += site.stats.injected;
  }
  return total;
}

std::vector<std::string> ChaosEngine::SiteNames() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const Site& site : sites_) {
    names.push_back(site.name);
  }
  return names;
}

Status ApplyChaosSpec(const AnalyzedChaos& spec, ChaosEngine& chaos) {
  if (spec.has_seed) {
    chaos.Reseed(spec.seed);
  }
  for (const AnalyzedChaosSite& site : spec.sites) {
    FaultPlanConfig config;
    switch (site.mode) {
      case ChaosMode::kOff:
        config.mode = FaultMode::kOff;
        break;
      case ChaosMode::kBernoulli:
        config.mode = FaultMode::kBernoulli;
        break;
      case ChaosMode::kSchedule:
        config.mode = FaultMode::kSchedule;
        break;
      case ChaosMode::kBurst:
        config.mode = FaultMode::kBurst;
        break;
    }
    config.p = site.p;
    config.nth = site.nth;
    config.period = site.period;
    config.burst = site.burst;
    config.latency = site.latency;
    config.value = site.value;
    if (config.mode == FaultMode::kOff) {
      chaos.Disarm(site.name);
      chaos.RegisterSite(site.name);
      continue;
    }
    OSGUARD_RETURN_IF_ERROR(chaos.Arm(site.name, std::move(config)));
  }
  return OkStatus();
}

}  // namespace osguard
