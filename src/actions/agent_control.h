// Agent governance control plane: deny / throttle / kill.
//
// The agent guardrail family (specs/agent_governance.osg) corrects through
// the store, following the paper's Listing-2 idiom (SAVE to a control key
// that the governed component consults): a tripped spec SAVEs one of the
// agent.ctl.* keys below, and the kernel's tool-call admission pipeline
// (src/sim/agent_callout) reads them before every call. This module owns
// the key vocabulary and the admission decision so the kernel, the specs,
// and the tests all agree on the semantics:
//
//   deny     — agent.ctl.deny.<tool> = true blocks a whole tool class
//              (allowlist enforcement);
//   throttle — agent.ctl.throttle_session = <sid> caps that session to
//              agent.ctl.throttle_limit calls per throttle window
//              (rate-limit enforcement, windowed, self-clearing as the
//              window drains);
//   kill     — agent.ctl.kill_session = <sid> permanently terminates the
//              session: its next call latches agent.s<sid>.killed and every
//              subsequent call is rejected (sequence-property enforcement).
//
// All state lives in the feature store, never in kernel RAM, so the control
// plane inherits crash consistency (persist journal) and warm-restart
// bit-identity for free.

#ifndef SRC_ACTIONS_AGENT_CONTROL_H_
#define SRC_ACTIONS_AGENT_CONTROL_H_

#include <cstdint>
#include <string>

#include "src/agent/tool_call.h"
#include "src/store/feature_store.h"
#include "src/support/time.h"

namespace osguard {

// --- Control keys (written by guardrail actions, read at admission) ---

// Prefix for per-tool denials: "agent.ctl.deny.file|net|exec" (bool).
inline constexpr char kAgentCtlDenyPrefix[] = "agent.ctl.deny.";
// Session id currently throttled (int64; 0 / absent = none).
inline constexpr char kAgentCtlThrottleSession[] = "agent.ctl.throttle_session";
// Max calls per throttle window for the throttled session (int64).
inline constexpr char kAgentCtlThrottleLimit[] = "agent.ctl.throttle_limit";
// Throttle window length in milliseconds (int64).
inline constexpr char kAgentCtlThrottleWindowMs[] = "agent.ctl.throttle_window_ms";
// Session id to terminate (int64; 0 / absent = none). Kills are permanent:
// the admission path latches agent.s<sid>.killed on the session's next call.
inline constexpr char kAgentCtlKillSession[] = "agent.ctl.kill_session";

// Defaults when the ctl keys are absent (specs may override via SAVE).
inline constexpr int64_t kAgentThrottleLimitDefault = 8;
inline constexpr int64_t kAgentThrottleWindowMsDefault = 1000;

// "agent.ctl.deny.<tool>" for a tool class.
std::string AgentDenyKey(agent::ToolClass tool);

// "agent.s<sid>.<suffix>" — per-session governance key.
std::string AgentSessionKey(uint64_t session, std::string_view suffix);

// --- Admission ---

enum class AgentAdmitVerdict : uint8_t {
  kAllow = 0,
  kDeny = 1,      // tool class denied by allowlist guardrail
  kThrottle = 2,  // session over its throttle budget for this window
  kKill = 3,      // session terminated by kill guardrail
};

const char* AgentAdmitVerdictName(AgentAdmitVerdict verdict);

// Pure read-side admission decision for one tool call: consults the
// agent.ctl.* keys and the session's windowed call series. Deterministic
// (store state + event + now only); the caller applies the side effects
// (latching kills, counters, publication).
AgentAdmitVerdict DecideAgentAdmission(const FeatureStore& store,
                                       const agent::ToolCallEvent& event,
                                       SimTime now);

}  // namespace osguard

#endif  // SRC_ACTIONS_AGENT_CONTROL_H_
