// Action dispatcher: routes the four corrective-action helpers from monitor
// programs to their implementations.
//
//   A1 REPORT       -> Reporter ring + logger
//   A2 REPLACE      -> PolicyRegistry::Replace
//   A3 RETRAIN      -> RetrainQueue::Request (rate-limited, best-effort)
//   A4 DEPRIORITIZE -> TaskControl::Deprioritize
//
// The dispatcher defines the crash-free semantics §4.2 asks for: action
// helpers validate their arguments at run time and convert every failure
// into a reported monitor error rather than propagating a fault into the
// kernel. The only errors returned to the VM are argument-shape violations
// that the verifier cannot see (e.g. REPLACE of an unregistered policy).
//
// Hardening (exercised by the chaos layer, tests/actions_retry_test.cc):
//   * bounded retry — a failing action is re-attempted up to
//     RetryOptions::max_attempts times with a recorded geometric backoff
//     schedule (the simulator cannot sleep, so backoff is accounting the
//     host would honor, not wall-clock delay);
//   * fallback chaining — when a REPLACE chain exhausts its retries, the
//     configured fallback policies are tried in order, at most once per
//     exhausted chain;
//   * failure counters surfaced through the feature store
//     (actions.failures / actions.retries / actions.fallbacks), so
//     guardrails can guard their own corrective actions with ONCHANGE.

#ifndef SRC_ACTIONS_DISPATCHER_H_
#define SRC_ACTIONS_DISPATCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/actions/policy_registry.h"
#include "src/actions/report.h"
#include "src/actions/retrain.h"
#include "src/actions/task_control.h"
#include "src/chaos/chaos.h"
#include "src/dsl/builtins.h"
#include "src/store/feature_store.h"
#include "src/store/value.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// Who is acting, with what authority — threaded from the engine through the
// helper context into every action.
struct ActionEnvelope {
  std::string guardrail;
  Severity severity = Severity::kWarning;
  SimTime now = 0;
};

struct ActionStats {
  uint64_t reports = 0;
  uint64_t replaces = 0;           // calls that rebound >= 1 slot
  uint64_t replace_noops = 0;      // idempotent re-fires
  uint64_t retrains_requested = 0; // accepted by the queue
  uint64_t retrains_suppressed = 0;
  uint64_t deprioritizes = 0;
  uint64_t failures = 0;           // chains that exhausted every attempt
  uint64_t retries = 0;            // re-attempts after a failed attempt
  uint64_t fallbacks = 0;          // fallback engagements (<= exhausted chains)
  uint64_t injected_failures = 0;  // attempts failed by the chaos layer
  // Per-dispatch host-clock latency of the full chain (attempts + retries +
  // fallback), in nanoseconds. min is 0 until the first dispatch completes.
  uint64_t dispatches = 0;
  int64_t latency_min_ns = 0;
  int64_t latency_max_ns = 0;
  int64_t latency_total_ns = 0;  // mean = total / dispatches
};

// Bounded-retry policy for failing actions. The defaults reproduce the
// pre-hardening behavior exactly: one attempt, no retries.
struct RetryOptions {
  int max_attempts = 1;                     // total attempts per dispatch (>= 1)
  Duration backoff_base = Milliseconds(1);  // delay recorded before retry 1
  double backoff_multiplier = 2.0;          // geometric growth (clamped >= 1)
};

// Feature-store keys the dispatcher increments (see header comment).
inline constexpr char kActionFailuresKey[] = "actions.failures";
inline constexpr char kActionRetriesKey[] = "actions.retries";
inline constexpr char kActionFallbacksKey[] = "actions.fallbacks";
// Dispatch-latency gauges (nanoseconds, host clock), refreshed per dispatch.
inline constexpr char kActionLatencyMinKey[] = "actions.latency.min_ns";
inline constexpr char kActionLatencyMeanKey[] = "actions.latency.mean_ns";
inline constexpr char kActionLatencyMaxKey[] = "actions.latency.max_ns";

class ActionDispatcher {
 public:
  // All dependencies are borrowed; the owner (Kernel/engine harness) must
  // outlive the dispatcher. `task_control` may be null (falls back to an
  // internal recorder).
  ActionDispatcher(Reporter* reporter, PolicyRegistry* registry, RetrainQueue* retrain_queue,
                   TaskControl* task_control);

  // Executes action helper `id`. Only called with is_action builtins.
  // Applies the retry/fallback policy around the single-attempt helpers.
  Result<Value> Dispatch(HelperId id, std::span<const Value> args,
                         const ActionEnvelope& envelope);

  // Bounded retry with recorded backoff (max_attempts clamped >= 1,
  // backoff_multiplier clamped >= 1 so the schedule is monotone).
  void SetRetryOptions(RetryOptions options);
  const RetryOptions& retry_options() const { return retry_; }

  // Fault injection at site actions.dispatch_fail. Borrowed; may be null.
  void SetChaos(ChaosEngine* chaos);

  // Feature store for the actions.* counters. Borrowed; may be null (no
  // counters published — unit-test dispatchers need no store).
  void SetStore(FeatureStore* store) { store_ = store; }

  // Host-clock latency measurement around each dispatch (on by default).
  // When off, the latency stats stay zero and the actions.latency.* keys are
  // never published — deterministic replays (persist differential, chaos
  // replay) need two runs of the same simulation to write identical store
  // contents, and wall-clock gauges are the one source of divergence.
  void SetMeasureWallTime(bool measure) { measure_wall_time_ = measure; }

  // Reinstates persisted counters (osguard::persist warm restart).
  void RestoreStats(const ActionStats& stats);

  // Fallback policies for exhausted REPLACE chains, tried in order; the
  // first one the registry accepts wins. At most one fallback engagement
  // per exhausted chain.
  void SetReplaceFallbacks(std::vector<std::string> policies);

  // Backoff schedule recorded by the most recent dispatch that retried
  // (oldest first). For tests asserting the schedule is monotone.
  std::vector<Duration> last_backoff_schedule() const;

  ActionStats stats() const;
  // Exhausted-chain count alone; one lock and one word read, cheap enough for
  // the supervisor to snapshot around every supervised evaluation.
  uint64_t failure_count() const;
  RecordingTaskControl& fallback_task_control() { return fallback_task_control_; }

 private:
  Result<Value> DispatchChain(HelperId id, std::span<const Value> args,
                              const ActionEnvelope& envelope);
  Result<Value> RunAction(HelperId id, std::span<const Value> args,
                          const ActionEnvelope& envelope);
  Result<Value> RunReplaceFallback(std::span<const Value> args,
                                   const ActionEnvelope& envelope);
  Result<Value> DoReport(std::span<const Value> args, const ActionEnvelope& envelope);
  Result<Value> DoReplace(std::span<const Value> args, const ActionEnvelope& envelope);
  Result<Value> DoRetrain(std::span<const Value> args, const ActionEnvelope& envelope);
  Result<Value> DoDeprioritize(std::span<const Value> args, const ActionEnvelope& envelope);

  Reporter* reporter_;
  PolicyRegistry* registry_;
  RetrainQueue* retrain_queue_;
  TaskControl* task_control_;
  RecordingTaskControl fallback_task_control_;

  RetryOptions retry_;
  bool measure_wall_time_ = true;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId fail_site_ = kInvalidChaosSite;
  FeatureStore* store_ = nullptr;
  std::vector<std::string> replace_fallbacks_;

  mutable std::mutex mu_;
  ActionStats stats_;
  std::vector<Duration> last_backoff_schedule_;
};

}  // namespace osguard

#endif  // SRC_ACTIONS_DISPATCHER_H_
