// Action dispatcher: routes the four corrective-action helpers from monitor
// programs to their implementations.
//
//   A1 REPORT       -> Reporter ring + logger
//   A2 REPLACE      -> PolicyRegistry::Replace
//   A3 RETRAIN      -> RetrainQueue::Request (rate-limited, best-effort)
//   A4 DEPRIORITIZE -> TaskControl::Deprioritize
//
// The dispatcher defines the crash-free semantics §4.2 asks for: action
// helpers validate their arguments at run time and convert every failure
// into a reported monitor error rather than propagating a fault into the
// kernel. The only errors returned to the VM are argument-shape violations
// that the verifier cannot see (e.g. REPLACE of an unregistered policy).

#ifndef SRC_ACTIONS_DISPATCHER_H_
#define SRC_ACTIONS_DISPATCHER_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/actions/policy_registry.h"
#include "src/actions/report.h"
#include "src/actions/retrain.h"
#include "src/actions/task_control.h"
#include "src/dsl/builtins.h"
#include "src/store/value.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// Who is acting, with what authority — threaded from the engine through the
// helper context into every action.
struct ActionEnvelope {
  std::string guardrail;
  Severity severity = Severity::kWarning;
  SimTime now = 0;
};

struct ActionStats {
  uint64_t reports = 0;
  uint64_t replaces = 0;           // calls that rebound >= 1 slot
  uint64_t replace_noops = 0;      // idempotent re-fires
  uint64_t retrains_requested = 0; // accepted by the queue
  uint64_t retrains_suppressed = 0;
  uint64_t deprioritizes = 0;
  uint64_t failures = 0;
};

class ActionDispatcher {
 public:
  // All dependencies are borrowed; the owner (Kernel/engine harness) must
  // outlive the dispatcher. `task_control` may be null (falls back to an
  // internal recorder).
  ActionDispatcher(Reporter* reporter, PolicyRegistry* registry, RetrainQueue* retrain_queue,
                   TaskControl* task_control);

  // Executes action helper `id`. Only called with is_action builtins.
  Result<Value> Dispatch(HelperId id, std::span<const Value> args,
                         const ActionEnvelope& envelope);

  ActionStats stats() const;
  RecordingTaskControl& fallback_task_control() { return fallback_task_control_; }

 private:
  Result<Value> DoReport(std::span<const Value> args, const ActionEnvelope& envelope);
  Result<Value> DoReplace(std::span<const Value> args, const ActionEnvelope& envelope);
  Result<Value> DoRetrain(std::span<const Value> args, const ActionEnvelope& envelope);
  Result<Value> DoDeprioritize(std::span<const Value> args, const ActionEnvelope& envelope);

  Reporter* reporter_;
  PolicyRegistry* registry_;
  RetrainQueue* retrain_queue_;
  TaskControl* task_control_;
  RecordingTaskControl fallback_task_control_;

  mutable std::mutex mu_;
  ActionStats stats_;
};

}  // namespace osguard

#endif  // SRC_ACTIONS_DISPATCHER_H_
