#include "src/actions/retrain.h"

namespace osguard {

bool RetrainQueue::Request(const std::string& model, const std::string& data_key, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto last = last_accepted_.find(model);
  if (last != last_accepted_.end() && now - last->second < options_.min_interval) {
    ++stats_.throttled;
    return false;
  }
  if (queued_count_[model] > 0) {
    ++stats_.coalesced;
    return false;
  }
  if (queue_.size() >= options_.max_depth) {
    ++stats_.overflowed;
    return false;
  }
  queue_.push_back(RetrainRequest{model, data_key, now});
  queued_count_[model] += 1;
  last_accepted_[model] = now;
  ++stats_.accepted;
  return true;
}

std::optional<RetrainRequest> RetrainQueue::Pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  RetrainRequest request = std::move(queue_.front());
  queue_.pop_front();
  queued_count_[request.model] -= 1;
  ++stats_.drained;
  return request;
}

size_t RetrainQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

RetrainQueueStats RetrainQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RetrainQueue::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  queued_count_.clear();
  last_accepted_.clear();
  stats_ = RetrainQueueStats{};
}

}  // namespace osguard
