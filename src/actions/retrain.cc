#include "src/actions/retrain.h"

#include <algorithm>

namespace osguard {

bool RetrainQueue::Request(const std::string& model, const std::string& data_key, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto last = last_accepted_.find(model);
  if (last != last_accepted_.end() && now - last->second < options_.min_interval) {
    ++stats_.throttled;
    return false;
  }
  if (queued_count_[model] > 0) {
    ++stats_.coalesced;
    return false;
  }
  if (queue_.size() >= options_.max_depth) {
    ++stats_.overflowed;
    return false;
  }
  queue_.push_back(RetrainRequest{model, data_key, now});
  queued_count_[model] += 1;
  last_accepted_[model] = now;
  ++stats_.accepted;
  return true;
}

std::optional<RetrainRequest> RetrainQueue::Pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  RetrainRequest request = std::move(queue_.front());
  queue_.pop_front();
  queued_count_[request.model] -= 1;
  ++stats_.drained;
  return request;
}

size_t RetrainQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

RetrainQueueStats RetrainQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RetrainQueue::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
  queued_count_.clear();
  last_accepted_.clear();
  stats_ = RetrainQueueStats{};
}

RetrainQueueState RetrainQueue::ExportState() const {
  std::lock_guard<std::mutex> lock(mu_);
  RetrainQueueState state;
  state.queue.assign(queue_.begin(), queue_.end());
  state.last_accepted.assign(last_accepted_.begin(), last_accepted_.end());
  std::sort(state.last_accepted.begin(), state.last_accepted.end());
  state.queued_count.assign(queued_count_.begin(), queued_count_.end());
  std::sort(state.queued_count.begin(), state.queued_count.end());
  state.stats = stats_;
  return state;
}

void RetrainQueue::RestoreState(const RetrainQueueState& state) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.assign(state.queue.begin(), state.queue.end());
  last_accepted_.clear();
  for (const auto& [model, at] : state.last_accepted) {
    last_accepted_[model] = at;
  }
  queued_count_.clear();
  for (const auto& [model, count] : state.queued_count) {
    queued_count_[model] = count;
  }
  stats_ = state.stats;
}

}  // namespace osguard
