#include "src/actions/dispatcher.h"

namespace osguard {

ActionDispatcher::ActionDispatcher(Reporter* reporter, PolicyRegistry* registry,
                                   RetrainQueue* retrain_queue, TaskControl* task_control)
    : reporter_(reporter),
      registry_(registry),
      retrain_queue_(retrain_queue),
      task_control_(task_control != nullptr ? task_control : &fallback_task_control_) {}

Result<Value> ActionDispatcher::Dispatch(HelperId id, std::span<const Value> args,
                                         const ActionEnvelope& envelope) {
  Result<Value> result = [&]() -> Result<Value> {
    switch (id) {
      case HelperId::kReport:
        return DoReport(args, envelope);
      case HelperId::kReplace:
        return DoReplace(args, envelope);
      case HelperId::kRetrain:
        return DoRetrain(args, envelope);
      case HelperId::kDeprioritize:
        return DoDeprioritize(args, envelope);
      default:
        return InternalError("helper is not an action");
    }
  }();
  if (!result.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
  }
  return result;
}

Result<Value> ActionDispatcher::DoReport(std::span<const Value> args,
                                         const ActionEnvelope& envelope) {
  ReportRecord record;
  record.time = envelope.now;
  record.kind = ReportKind::kActionPayload;
  record.severity = envelope.severity;
  record.guardrail = envelope.guardrail;
  record.payload.assign(args.begin(), args.end());
  // First string argument doubles as the human-readable message.
  for (const Value& arg : args) {
    if (arg.type() == ValueType::kString) {
      record.message = arg.AsString().value();
      break;
    }
  }
  reporter_->Report(std::move(record));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reports;
  }
  return Value();
}

Result<Value> ActionDispatcher::DoReplace(std::span<const Value> args,
                                          const ActionEnvelope& envelope) {
  OSGUARD_ASSIGN_OR_RETURN(std::string old_policy, args[0].AsString());
  OSGUARD_ASSIGN_OR_RETURN(std::string new_policy, args[1].AsString());
  OSGUARD_ASSIGN_OR_RETURN(int rebound, registry_->Replace(old_policy, new_policy,
                                                           envelope.now));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rebound > 0) {
      ++stats_.replaces;
    } else {
      ++stats_.replace_noops;
    }
  }
  return Value(static_cast<int64_t>(rebound));
}

Result<Value> ActionDispatcher::DoRetrain(std::span<const Value> args,
                                          const ActionEnvelope& envelope) {
  OSGUARD_ASSIGN_OR_RETURN(std::string model, args[0].AsString());
  std::string data_key;
  if (args.size() > 1) {
    OSGUARD_ASSIGN_OR_RETURN(data_key, args[1].AsString());
  }
  const bool accepted = retrain_queue_->Request(model, data_key, envelope.now);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (accepted) {
      ++stats_.retrains_requested;
    } else {
      ++stats_.retrains_suppressed;
    }
  }
  return Value(accepted);
}

Result<Value> ActionDispatcher::DoDeprioritize(std::span<const Value> args,
                                               const ActionEnvelope& envelope) {
  OSGUARD_ASSIGN_OR_RETURN(std::vector<Value> task_values, args[0].AsList());
  OSGUARD_ASSIGN_OR_RETURN(std::vector<Value> priority_values, args[1].AsList());
  if (task_values.size() != priority_values.size()) {
    return InvalidArgumentError(
        "DEPRIORITIZE: task list and priority list have different lengths (" +
        std::to_string(task_values.size()) + " vs " + std::to_string(priority_values.size()) +
        ")");
  }
  std::vector<std::string> tasks;
  std::vector<double> priorities;
  tasks.reserve(task_values.size());
  priorities.reserve(priority_values.size());
  for (const Value& v : task_values) {
    OSGUARD_ASSIGN_OR_RETURN(std::string task, v.AsString());
    tasks.push_back(std::move(task));
  }
  for (const Value& v : priority_values) {
    if (!v.is_numeric()) {
      return InvalidArgumentError("DEPRIORITIZE: priority is not numeric: " + v.ToString());
    }
    priorities.push_back(v.NumericOr(0.0));
  }
  OSGUARD_RETURN_IF_ERROR(task_control_->Deprioritize(tasks, priorities, envelope.now));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deprioritizes;
  }
  return Value(static_cast<int64_t>(tasks.size()));
}

ActionStats ActionDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace osguard
