#include "src/actions/dispatcher.h"

#include <algorithm>
#include <chrono>

namespace osguard {

ActionDispatcher::ActionDispatcher(Reporter* reporter, PolicyRegistry* registry,
                                   RetrainQueue* retrain_queue, TaskControl* task_control)
    : reporter_(reporter),
      registry_(registry),
      retrain_queue_(retrain_queue),
      task_control_(task_control != nullptr ? task_control : &fallback_task_control_) {}

void ActionDispatcher::SetRetryOptions(RetryOptions options) {
  options.max_attempts = std::max(1, options.max_attempts);
  options.backoff_base = std::max<Duration>(0, options.backoff_base);
  options.backoff_multiplier = std::max(1.0, options.backoff_multiplier);
  retry_ = options;
}

void ActionDispatcher::SetChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  fail_site_ = chaos != nullptr ? chaos->RegisterSite(kChaosSiteDispatchFail)
                                : kInvalidChaosSite;
}

void ActionDispatcher::SetReplaceFallbacks(std::vector<std::string> policies) {
  replace_fallbacks_ = std::move(policies);
}

std::vector<Duration> ActionDispatcher::last_backoff_schedule() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_backoff_schedule_;
}

Result<Value> ActionDispatcher::RunAction(HelperId id, std::span<const Value> args,
                                          const ActionEnvelope& envelope) {
  switch (id) {
    case HelperId::kReport:
      return DoReport(args, envelope);
    case HelperId::kReplace:
      return DoReplace(args, envelope);
    case HelperId::kRetrain:
      return DoRetrain(args, envelope);
    case HelperId::kDeprioritize:
      return DoDeprioritize(args, envelope);
    default:
      return InternalError("helper is not an action");
  }
}

Result<Value> ActionDispatcher::Dispatch(HelperId id, std::span<const Value> args,
                                         const ActionEnvelope& envelope) {
  if (!measure_wall_time_) {
    Result<Value> result = DispatchChain(id, args, envelope);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dispatches;
    return result;
  }
  const auto start = std::chrono::steady_clock::now();
  Result<Value> result = DispatchChain(id, args, envelope);
  const int64_t elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
  uint64_t dispatches;
  int64_t min_ns;
  int64_t max_ns;
  int64_t total_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dispatches;
    if (stats_.dispatches == 1 || elapsed_ns < stats_.latency_min_ns) {
      stats_.latency_min_ns = elapsed_ns;
    }
    if (elapsed_ns > stats_.latency_max_ns) {
      stats_.latency_max_ns = elapsed_ns;
    }
    stats_.latency_total_ns += elapsed_ns;
    dispatches = stats_.dispatches;
    min_ns = stats_.latency_min_ns;
    max_ns = stats_.latency_max_ns;
    total_ns = stats_.latency_total_ns;
  }
  if (store_ != nullptr) {
    store_->Save(kActionLatencyMinKey, Value(min_ns));
    store_->Save(kActionLatencyMeanKey,
                 Value(total_ns / static_cast<int64_t>(dispatches)));
    store_->Save(kActionLatencyMaxKey, Value(max_ns));
  }
  return result;
}

Result<Value> ActionDispatcher::DispatchChain(HelperId id, std::span<const Value> args,
                                              const ActionEnvelope& envelope) {
  const int max_attempts = std::max(1, retry_.max_attempts);
  Duration backoff = retry_.backoff_base;
  std::vector<Duration> schedule;
  Result<Value> result = Value();
  int attempts = 0;
  for (;;) {
    ++attempts;
    bool injected = false;
    if (chaos_ != nullptr && fail_site_ != kInvalidChaosSite) {
      injected = chaos_->ShouldInject(fail_site_, envelope.now);
    }
    if (injected) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.injected_failures;
    }
    result = injected ? Result<Value>(ExecutionError(
                            "injected action failure (chaos site actions.dispatch_fail)"))
                      : RunAction(id, args, envelope);
    if (result.ok() || attempts >= max_attempts) {
      break;
    }
    // The simulator cannot sleep: the backoff delay is recorded (and would
    // be honored by a wall-clock host) rather than waited out.
    schedule.push_back(backoff);
    backoff = static_cast<Duration>(static_cast<double>(backoff) * retry_.backoff_multiplier);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    if (store_ != nullptr) {
      store_->Increment(kActionRetriesKey, 1.0);
    }
  }
  if (!schedule.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    last_backoff_schedule_ = std::move(schedule);
  }
  if (!result.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
    }
    if (store_ != nullptr) {
      store_->Increment(kActionFailuresKey, 1.0);
    }
    if (id == HelperId::kReplace) {
      // Fallback chain: tried exactly once per exhausted chain.
      Result<Value> fallback = RunReplaceFallback(args, envelope);
      if (fallback.ok()) {
        return fallback;
      }
    }
  }
  return result;
}

// Tries the configured fallback policies for an exhausted REPLACE chain.
// Returns the rebound count if a fallback engaged, or the original error.
Result<Value> ActionDispatcher::RunReplaceFallback(std::span<const Value> args,
                                                   const ActionEnvelope& envelope) {
  if (replace_fallbacks_.empty() || args.size() < 2) {
    return ExecutionError("no REPLACE fallback configured");
  }
  auto old_policy = args[0].AsString();
  if (!old_policy.ok()) {
    return old_policy.status();
  }
  for (const std::string& candidate : replace_fallbacks_) {
    auto rebound = registry_->Replace(old_policy.value(), candidate, envelope.now);
    if (!rebound.ok()) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fallbacks;
    }
    if (store_ != nullptr) {
      store_->Increment(kActionFallbacksKey, 1.0);
    }
    if (reporter_ != nullptr) {
      reporter_->Report(ReportRecord{0, envelope.now, ReportKind::kActionPayload,
                                     envelope.severity, envelope.guardrail,
                                     "REPLACE fallback engaged: '" + candidate + "'",
                                     {}});
    }
    return Value(static_cast<int64_t>(rebound.value()));
  }
  return ExecutionError("every REPLACE fallback policy was rejected");
}

Result<Value> ActionDispatcher::DoReport(std::span<const Value> args,
                                         const ActionEnvelope& envelope) {
  ReportRecord record;
  record.time = envelope.now;
  record.kind = ReportKind::kActionPayload;
  record.severity = envelope.severity;
  record.guardrail = envelope.guardrail;
  record.payload.assign(args.begin(), args.end());
  // First string argument doubles as the human-readable message.
  for (const Value& arg : args) {
    if (arg.type() == ValueType::kString) {
      record.message = arg.AsString().value();
      break;
    }
  }
  reporter_->Report(std::move(record));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reports;
  }
  return Value();
}

Result<Value> ActionDispatcher::DoReplace(std::span<const Value> args,
                                          const ActionEnvelope& envelope) {
  OSGUARD_ASSIGN_OR_RETURN(std::string old_policy, args[0].AsString());
  OSGUARD_ASSIGN_OR_RETURN(std::string new_policy, args[1].AsString());
  OSGUARD_ASSIGN_OR_RETURN(int rebound, registry_->Replace(old_policy, new_policy,
                                                           envelope.now));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rebound > 0) {
      ++stats_.replaces;
    } else {
      ++stats_.replace_noops;
    }
  }
  return Value(static_cast<int64_t>(rebound));
}

Result<Value> ActionDispatcher::DoRetrain(std::span<const Value> args,
                                          const ActionEnvelope& envelope) {
  OSGUARD_ASSIGN_OR_RETURN(std::string model, args[0].AsString());
  std::string data_key;
  if (args.size() > 1) {
    OSGUARD_ASSIGN_OR_RETURN(data_key, args[1].AsString());
  }
  const bool accepted = retrain_queue_->Request(model, data_key, envelope.now);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (accepted) {
      ++stats_.retrains_requested;
    } else {
      ++stats_.retrains_suppressed;
    }
  }
  return Value(accepted);
}

Result<Value> ActionDispatcher::DoDeprioritize(std::span<const Value> args,
                                               const ActionEnvelope& envelope) {
  OSGUARD_ASSIGN_OR_RETURN(std::vector<Value> task_values, args[0].AsList());
  OSGUARD_ASSIGN_OR_RETURN(std::vector<Value> priority_values, args[1].AsList());
  if (task_values.size() != priority_values.size()) {
    return InvalidArgumentError(
        "DEPRIORITIZE: task list and priority list have different lengths (" +
        std::to_string(task_values.size()) + " vs " + std::to_string(priority_values.size()) +
        ")");
  }
  std::vector<std::string> tasks;
  std::vector<double> priorities;
  tasks.reserve(task_values.size());
  priorities.reserve(priority_values.size());
  for (const Value& v : task_values) {
    OSGUARD_ASSIGN_OR_RETURN(std::string task, v.AsString());
    tasks.push_back(std::move(task));
  }
  for (const Value& v : priority_values) {
    if (!v.is_numeric()) {
      return InvalidArgumentError("DEPRIORITIZE: priority is not numeric: " + v.ToString());
    }
    priorities.push_back(v.NumericOr(0.0));
  }
  OSGUARD_RETURN_IF_ERROR(task_control_->Deprioritize(tasks, priorities, envelope.now));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deprioritizes;
  }
  return Value(static_cast<int64_t>(tasks.size()));
}

ActionStats ActionDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ActionDispatcher::RestoreStats(const ActionStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = stats;
}

uint64_t ActionDispatcher::failure_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.failures;
}

}  // namespace osguard
