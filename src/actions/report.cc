#include "src/actions/report.h"

#include <algorithm>
#include <utility>

#include "src/support/logging.h"

namespace osguard {

std::string_view ReportKindName(ReportKind kind) {
  switch (kind) {
    case ReportKind::kViolation:
      return "violation";
    case ReportKind::kActionPayload:
      return "report";
    case ReportKind::kSatisfied:
      return "satisfied";
    case ReportKind::kMonitorError:
      return "monitor-error";
  }
  return "?";
}

std::string ReportRecord::ToString() const {
  std::string out = "[" + FormatDuration(time) + "] " + std::string(SeverityName(severity)) +
                    " " + std::string(ReportKindName(kind)) + " guardrail=" + guardrail;
  if (!message.empty()) {
    out += " msg=\"" + message + "\"";
  }
  if (!payload.empty()) {
    out += " payload=";
    for (size_t i = 0; i < payload.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += payload[i].ToString();
    }
  }
  return out;
}

void Reporter::Report(ReportRecord record) {
  LogLevel level = LogLevel::kInfo;
  if (record.severity == Severity::kWarning) {
    level = LogLevel::kWarning;
  } else if (record.severity == Severity::kCritical) {
    level = LogLevel::kError;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.sequence = next_sequence_++;
    per_guardrail_[record.guardrail] += 1;
    per_kind_[static_cast<int>(record.kind)] += 1;
    records_.push_back(record);
    while (records_.size() > capacity_) {
      records_.pop_front();
    }
  }
  if (Logger::Global().Enabled(level)) {
    Logger::Global().Log(level, record.ToString());
  }
}

std::vector<ReportRecord> Reporter::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {records_.begin(), records_.end()};
}

std::vector<ReportRecord> Reporter::RecordsFor(const std::string& guardrail) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReportRecord> out;
  for (const ReportRecord& record : records_) {
    if (record.guardrail == guardrail) {
      out.push_back(record);
    }
  }
  return out;
}

std::vector<ReportRecord> Reporter::RecordsSince(uint64_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReportRecord> out;
  for (const ReportRecord& record : records_) {
    if (record.sequence >= from) {
      out.push_back(record);
    }
  }
  return out;
}

ReporterSnapshot Reporter::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  ReporterSnapshot snapshot;
  snapshot.next_sequence = next_sequence_;
  snapshot.per_guardrail.assign(per_guardrail_.begin(), per_guardrail_.end());
  std::sort(snapshot.per_guardrail.begin(), snapshot.per_guardrail.end());
  snapshot.per_kind.assign(per_kind_.begin(), per_kind_.end());
  std::sort(snapshot.per_kind.begin(), snapshot.per_kind.end());
  return snapshot;
}

void Reporter::RestoreCounters(const ReporterSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  next_sequence_ = snapshot.next_sequence;
  per_guardrail_.clear();
  for (const auto& [name, count] : snapshot.per_guardrail) {
    per_guardrail_[name] = count;
  }
  per_kind_.clear();
  for (const auto& [kind, count] : snapshot.per_kind) {
    per_kind_[kind] = count;
  }
}

void Reporter::RestoreRecord(ReportRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) {
    records_.pop_front();
  }
}

uint64_t Reporter::total_reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

uint64_t Reporter::CountFor(const std::string& guardrail) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_guardrail_.find(guardrail);
  return it == per_guardrail_.end() ? 0 : it->second;
}

uint64_t Reporter::CountOfKind(ReportKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_kind_.find(static_cast<int>(kind));
  return it == per_kind_.end() ? 0 : it->second;
}

void Reporter::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  per_guardrail_.clear();
  per_kind_.clear();
  next_sequence_ = 0;
}

}  // namespace osguard
