// Retrain queue: the RETRAIN action (A3).
//
// The paper envisions retraining as an *offline, asynchronous* process that
// "must be protected to prevent abuse from malicious processes by
// intentionally triggering frequent retraining" (§3.2). The queue therefore
// enforces, per model:
//   * a minimum interval between accepted requests (token-style throttle),
//   * a bound on outstanding requests (duplicates for the same model
//     coalesce rather than queue), and
//   * a global queue-depth cap.
// Consumers (the ML substrate's trainer loop) drain requests with Pop().

#ifndef SRC_ACTIONS_RETRAIN_H_
#define SRC_ACTIONS_RETRAIN_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

struct RetrainRequest {
  std::string model;
  std::string data_key;  // feature-store key naming the new training window
  SimTime requested_at = 0;
};

struct RetrainQueueOptions {
  // Minimum simulated time between accepted requests for one model.
  Duration min_interval = Seconds(60);
  // Global cap on outstanding (un-popped) requests.
  size_t max_depth = 64;
};

struct RetrainQueueStats {
  uint64_t accepted = 0;
  uint64_t throttled = 0;   // rejected by min_interval
  uint64_t coalesced = 0;   // duplicate for an already-queued model
  uint64_t overflowed = 0;  // rejected by max_depth
  uint64_t drained = 0;
};

// Full queue state in deterministic (sorted) order, for osguard::persist.
// The throttle map matters across a reboot: forgetting last_accepted would
// let a crash bypass the §3.2 anti-abuse rate limit.
struct RetrainQueueState {
  std::vector<RetrainRequest> queue;  // FIFO order
  std::vector<std::pair<std::string, SimTime>> last_accepted;  // sorted by model
  std::vector<std::pair<std::string, int>> queued_count;       // sorted by model
  RetrainQueueStats stats;
};

class RetrainQueue {
 public:
  explicit RetrainQueue(RetrainQueueOptions options = {}) : options_(options) {}
  RetrainQueue(const RetrainQueue&) = delete;
  RetrainQueue& operator=(const RetrainQueue&) = delete;

  // Requests retraining of `model` on `data_key`. Returns true if the
  // request was queued, false if it was throttled/coalesced/overflowed
  // (never an error — RETRAIN is best-effort by design).
  bool Request(const std::string& model, const std::string& data_key, SimTime now);

  // Next request to service, FIFO. nullopt when empty.
  std::optional<RetrainRequest> Pop();

  size_t depth() const;
  RetrainQueueStats stats() const;
  void Clear();

  // --- Persistence (osguard::persist) ---
  RetrainQueueState ExportState() const;
  void RestoreState(const RetrainQueueState& state);

 private:
  RetrainQueueOptions options_;
  mutable std::mutex mu_;
  std::deque<RetrainRequest> queue_;
  std::unordered_map<std::string, SimTime> last_accepted_;
  std::unordered_map<std::string, int> queued_count_;
  RetrainQueueStats stats_;
};

}  // namespace osguard

#endif  // SRC_ACTIONS_RETRAIN_H_
