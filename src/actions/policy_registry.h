// Policy registry: the substrate for the REPLACE action (A2).
//
// A *policy* is a named decision component (learned or heuristic). A *slot*
// is a decision point in the kernel ("io.submit_predictor",
// "sched.pick_next", "mem.placement") bound to exactly one active policy.
// Subsystems look up their slot's active policy on every decision, so
// REPLACE(old, new) — rebinding every slot whose active policy is `old` to
// `new` — takes effect on the very next decision, which is what gives the
// paper's fallback action its immediacy ("most OS policies rely on limited
// history and state, they are often able to start making decisions
// immediately").

#ifndef SRC_ACTIONS_POLICY_REGISTRY_H_
#define SRC_ACTIONS_POLICY_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// Base class for every registered policy. Subsystems define richer
// interfaces (e.g. IoLatencyPolicy) deriving from this.
class Policy {
 public:
  virtual ~Policy() = default;

  // Unique registry name, e.g. "linnos_model" or "heuristic_submit".
  virtual std::string name() const = 0;

  // Learned policies are the ones guardrails exist to regulate; the flag is
  // surfaced in introspection and reports.
  virtual bool is_learned() const { return false; }
};

// One REPLACE event, for auditing (the reproducibility concern in §1).
struct ReplaceEvent {
  std::string slot;
  std::string old_policy;
  std::string new_policy;
  SimTime time = 0;
};

class PolicyRegistry {
 public:
  PolicyRegistry() = default;
  PolicyRegistry(const PolicyRegistry&) = delete;
  PolicyRegistry& operator=(const PolicyRegistry&) = delete;

  // Registers a policy under policy->name(). Names must be unique.
  Status Register(std::shared_ptr<Policy> policy);

  Result<std::shared_ptr<Policy>> Get(const std::string& name) const;

  // Creates or rebinds a slot to a registered policy.
  Status BindSlot(const std::string& slot, const std::string& policy_name);

  // The policy a subsystem should consult right now for `slot`.
  Result<std::shared_ptr<Policy>> Active(const std::string& slot) const;

  // Typed lookup; kFailedPrecondition if the active policy is not a T.
  template <typename T>
  Result<std::shared_ptr<T>> ActiveAs(const std::string& slot) const {
    OSGUARD_ASSIGN_OR_RETURN(std::shared_ptr<Policy> policy, Active(slot));
    auto typed = std::dynamic_pointer_cast<T>(policy);
    if (typed == nullptr) {
      return FailedPreconditionError("policy '" + policy->name() + "' bound to slot '" + slot +
                                     "' has the wrong type");
    }
    return typed;
  }

  // The REPLACE action: rebinds every slot whose active policy is
  // `old_policy` to `new_policy`. Returns the number of slots rebound;
  // kNotFound if `new_policy` is not registered, and 0 rebinds (not an
  // error) if nothing was bound to `old_policy` — REPLACE must be
  // idempotent so a guardrail that fires repeatedly is harmless.
  Result<int> Replace(const std::string& old_policy, const std::string& new_policy,
                      SimTime now);

  std::vector<ReplaceEvent> replace_history() const;
  std::vector<std::string> SlotNames() const;
  size_t policy_count() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Policy>> policies_;
  std::unordered_map<std::string, std::string> slots_;  // slot -> policy name
  std::vector<ReplaceEvent> history_;
};

}  // namespace osguard

#endif  // SRC_ACTIONS_POLICY_REGISTRY_H_
