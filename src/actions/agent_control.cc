#include "src/actions/agent_control.h"

namespace osguard {

std::string AgentDenyKey(agent::ToolClass tool) {
  const char* name = agent::ToolClassName(tool);
  return std::string(kAgentCtlDenyPrefix) + (name != nullptr ? name : "invalid");
}

std::string AgentSessionKey(uint64_t session, std::string_view suffix) {
  std::string key = "agent.s";
  key += std::to_string(session);
  key += '.';
  key += suffix;
  return key;
}

const char* AgentAdmitVerdictName(AgentAdmitVerdict verdict) {
  switch (verdict) {
    case AgentAdmitVerdict::kAllow:
      return "allow";
    case AgentAdmitVerdict::kDeny:
      return "deny";
    case AgentAdmitVerdict::kThrottle:
      return "throttle";
    case AgentAdmitVerdict::kKill:
      return "kill";
  }
  return "invalid";
}

AgentAdmitVerdict DecideAgentAdmission(const FeatureStore& store,
                                       const agent::ToolCallEvent& event,
                                       SimTime now) {
  // Kill wins over everything: a terminated session makes no calls at all.
  // NumericOr everywhere: spec actions SAVE through the VM, which may store
  // these ids/limits as doubles; admission must not care.
  const double kill_sid =
      store.LoadOr(kAgentCtlKillSession, Value(int64_t{0})).NumericOr(0.0);
  if (kill_sid != 0.0 && kill_sid == static_cast<double>(event.session)) {
    return AgentAdmitVerdict::kKill;
  }
  if (store.LoadOr(AgentSessionKey(event.session, "killed"), Value(false))
          .AsBool().value_or(false)) {
    return AgentAdmitVerdict::kKill;
  }
  // Allowlist: a denied tool class is rejected regardless of session.
  if (store.LoadOr(AgentDenyKey(event.tool), Value(false)).AsBool().value_or(false)) {
    return AgentAdmitVerdict::kDeny;
  }
  // Throttle: cap the flagged session to `limit` calls per window, counting
  // previously *accepted* calls (the governor's per-session series). The
  // throttle self-clears as the window drains — it shapes, it does not ban.
  const double throttled =
      store.LoadOr(kAgentCtlThrottleSession, Value(int64_t{0})).NumericOr(0.0);
  if (throttled != 0.0 && throttled == static_cast<double>(event.session)) {
    const double limit =
        store.LoadOr(kAgentCtlThrottleLimit, Value(kAgentThrottleLimitDefault))
            .NumericOr(static_cast<double>(kAgentThrottleLimitDefault));
    const int64_t window_ms = static_cast<int64_t>(
        store
            .LoadOr(kAgentCtlThrottleWindowMs, Value(kAgentThrottleWindowMsDefault))
            .NumericOr(static_cast<double>(kAgentThrottleWindowMsDefault)));
    const double in_window =
        store
            .Aggregate(AgentSessionKey(event.session, "calls"), AggKind::kCount,
                       Milliseconds(window_ms), now)
            .value_or(0.0);
    if (in_window >= limit) {
      return AgentAdmitVerdict::kThrottle;
    }
  }
  return AgentAdmitVerdict::kAllow;
}

}  // namespace osguard
