// Violation reporting: the REPORT action (A1) and the engine's audit trail.
//
// REPORT "logs relevant system context when the property is violated". The
// Reporter keeps a bounded in-memory ring of structured records (what a
// kernel deployment would push to a trace buffer) plus per-guardrail
// counters, and mirrors records to the process logger at a severity-mapped
// level.

#ifndef SRC_ACTIONS_REPORT_H_
#define SRC_ACTIONS_REPORT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dsl/sema.h"
#include "src/store/value.h"
#include "src/support/time.h"

namespace osguard {

enum class ReportKind {
  kViolation,       // rule evaluated false
  kActionPayload,   // explicit REPORT(...) payload from an action program
  kSatisfied,       // violated -> satisfied transition
  kMonitorError,    // rule/action program faulted
};

std::string_view ReportKindName(ReportKind kind);

struct ReportRecord {
  // THE total-order / stable-sort key over the report stream. Assigned by
  // Reporter::Report at emission time, strictly increasing, never reused
  // (a warm restart resumes from the persisted next_sequence). Emission
  // order is explicitly deterministic — not incidental — at every engine
  // site, which is what makes the sharded engine's shard-then-sequence
  // merge reproduce the serial stream bit-identically:
  //   * within a callout, monitors fire in the hook index's registration
  //     order (sorted monitor-name order, rebuilt on every topology change);
  //   * a monitor's own records (violation / satisfied / error, then any
  //     action REPORTs, then the quarantine default) follow its evaluation
  //     protocol order inside FinishRuleEval;
  //   * replace/rollback records are emitted at callout boundaries in
  //     rollback-queue insertion order, which is evaluation order — NOT
  //     name order (pinned by tests/shard_test.cc, RollbackReportOrder).
  // Consumers that need a total order over records sort by `sequence` alone;
  // `time` is simulation time and routinely carries ties.
  uint64_t sequence = 0;
  SimTime time = 0;
  ReportKind kind = ReportKind::kViolation;
  Severity severity = Severity::kWarning;
  std::string guardrail;
  std::string message;          // rendered, human-readable
  std::vector<Value> payload;   // raw REPORT(...) arguments, if any

  std::string ToString() const;
};

// Counter state of a Reporter, in deterministic (sorted) order so two
// reporters with identical history snapshot to identical bytes. Used by
// osguard::persist via the engine's state image.
struct ReporterSnapshot {
  uint64_t next_sequence = 0;
  std::vector<std::pair<std::string, uint64_t>> per_guardrail;  // sorted by name
  std::vector<std::pair<int, uint64_t>> per_kind;               // sorted by kind
};

class Reporter {
 public:
  explicit Reporter(size_t capacity = 4096) : capacity_(capacity) {}
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  void Report(ReportRecord record);

  // Most recent records, oldest first (bounded by construction capacity).
  std::vector<ReportRecord> Records() const;
  std::vector<ReportRecord> RecordsFor(const std::string& guardrail) const;

  // Retained records with sequence >= from, oldest first (the persist
  // layer's per-frame delta: records reported since the last commit).
  std::vector<ReportRecord> RecordsSince(uint64_t from) const;

  uint64_t total_reports() const;
  uint64_t CountFor(const std::string& guardrail) const;
  uint64_t CountOfKind(ReportKind kind) const;

  // --- Persistence (osguard::persist) ---

  ReporterSnapshot SnapshotCounters() const;
  void RestoreCounters(const ReporterSnapshot& snapshot);

  // Re-inserts a persisted record verbatim: the stored sequence number is
  // preserved, counters do not advance (RestoreCounters carries them), and
  // nothing is mirrored to the logger. Evicts at capacity, so replaying a
  // baseline run's records yields a bit-identical ring even when the replay
  // spans more records than the ring holds.
  void RestoreRecord(ReportRecord record);

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_sequence_ = 0;
  std::deque<ReportRecord> records_;
  std::unordered_map<std::string, uint64_t> per_guardrail_;
  std::unordered_map<int, uint64_t> per_kind_;
};

}  // namespace osguard

#endif  // SRC_ACTIONS_REPORT_H_
