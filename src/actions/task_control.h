// Task control: the DEPRIORITIZE action (A4).
//
// DEPRIORITIZE({tasks}, {priorities}) changes the workload/environment when
// model-directed recovery is not enough — the OOM-killer-style last resort
// of Figure 1. The runtime only defines the interface; subsystems that own
// tasks (the scheduler substrate, the block layer's tenant queues) implement
// it. A recording fake is provided for engines without a task-owning
// substrate and for tests.

#ifndef SRC_ACTIONS_TASK_CONTROL_H_
#define SRC_ACTIONS_TASK_CONTROL_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

struct DeprioritizeEvent {
  std::vector<std::string> tasks;
  std::vector<double> priorities;
  SimTime time = 0;
};

class TaskControl {
 public:
  virtual ~TaskControl() = default;

  // Applies new priorities to tasks (lower value = lower priority; a
  // priority < 0 requests termination, mirroring the OOM-killer analogy).
  // tasks.size() == priorities.size() is guaranteed by the dispatcher.
  virtual Status Deprioritize(const std::vector<std::string>& tasks,
                              const std::vector<double>& priorities, SimTime now) = 0;
};

// Records requests without acting on them; also the default when no
// subsystem has registered a real implementation.
class RecordingTaskControl : public TaskControl {
 public:
  Status Deprioritize(const std::vector<std::string>& tasks,
                      const std::vector<double>& priorities, SimTime now) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(DeprioritizeEvent{tasks, priorities, now});
    return OkStatus();
  }

  std::vector<DeprioritizeEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<DeprioritizeEvent> events_;
};

}  // namespace osguard

#endif  // SRC_ACTIONS_TASK_CONTROL_H_
