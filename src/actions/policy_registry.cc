#include "src/actions/policy_registry.h"

#include <algorithm>

namespace osguard {

Status PolicyRegistry::Register(std::shared_ptr<Policy> policy) {
  if (policy == nullptr) {
    return InvalidArgumentError("cannot register a null policy");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = policy->name();
  if (name.empty()) {
    return InvalidArgumentError("policy name must not be empty");
  }
  if (!policies_.emplace(name, std::move(policy)).second) {
    return AlreadyExistsError("policy '" + name + "' is already registered");
  }
  return OkStatus();
}

Result<std::shared_ptr<Policy>> PolicyRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    return NotFoundError("no policy named '" + name + "'");
  }
  return it->second;
}

Status PolicyRegistry::BindSlot(const std::string& slot, const std::string& policy_name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (policies_.count(policy_name) == 0) {
    return NotFoundError("cannot bind slot '" + slot + "': no policy named '" + policy_name +
                         "'");
  }
  slots_[slot] = policy_name;
  return OkStatus();
}

Result<std::shared_ptr<Policy>> PolicyRegistry::Active(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFoundError("no slot named '" + slot + "'");
  }
  auto policy_it = policies_.find(it->second);
  if (policy_it == policies_.end()) {
    return InternalError("slot '" + slot + "' is bound to unregistered policy '" + it->second +
                         "'");
  }
  return policy_it->second;
}

Result<int> PolicyRegistry::Replace(const std::string& old_policy,
                                    const std::string& new_policy, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (policies_.count(new_policy) == 0) {
    return NotFoundError("REPLACE: no policy named '" + new_policy + "'");
  }
  int rebound = 0;
  for (auto& [slot, active] : slots_) {
    if (active == old_policy) {
      active = new_policy;
      history_.push_back(ReplaceEvent{slot, old_policy, new_policy, now});
      ++rebound;
    }
  }
  return rebound;
}

std::vector<ReplaceEvent> PolicyRegistry::replace_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::vector<std::string> PolicyRegistry::SlotNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [slot, policy] : slots_) {
    names.push_back(slot);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t PolicyRegistry::policy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policies_.size();
}

}  // namespace osguard
