#include "src/ml/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace osguard {
namespace {

double Activate(Activation activation, double z) {
  switch (activation) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      return z > 0.0 ? z : 0.0;
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-z));
    case Activation::kTanh:
      return std::tanh(z);
  }
  return z;
}

// Derivative in terms of pre-activation z and post-activation a.
double ActivateGrad(Activation activation, double z, double a) {
  switch (activation) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kRelu:
      return z > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return a * (1.0 - a);
    case Activation::kTanh:
      return 1.0 - a * a;
  }
  return 1.0;
}

}  // namespace

Result<Mlp> Mlp::Create(const MlpConfig& config) {
  if (config.layer_sizes.size() < 2) {
    return InvalidArgumentError("MLP needs at least input and output layer sizes");
  }
  for (int size : config.layer_sizes) {
    if (size < 1) {
      return InvalidArgumentError("MLP layer sizes must be >= 1");
    }
  }
  if (config.learning_rate <= 0.0) {
    return InvalidArgumentError("learning_rate must be > 0");
  }
  if (config.batch_size < 1 || config.epochs < 0) {
    return InvalidArgumentError("bad batch_size/epochs");
  }
  if (config.loss == LossKind::kBinaryCrossEntropy &&
      config.output_activation != Activation::kSigmoid) {
    return InvalidArgumentError("binary cross-entropy requires a sigmoid output layer");
  }
  Rng rng(config.seed);
  std::vector<Layer> layers;
  for (size_t l = 0; l + 1 < config.layer_sizes.size(); ++l) {
    Layer layer;
    layer.in = config.layer_sizes[l];
    layer.out = config.layer_sizes[l + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    layer.weights.resize(static_cast<size_t>(layer.in) * layer.out);
    for (double& w : layer.weights) {
      w = rng.Normal(0.0, scale);
    }
    layer.bias.assign(static_cast<size_t>(layer.out), 0.0);
    layers.push_back(std::move(layer));
  }
  return Mlp(config, std::move(layers));
}

void Mlp::ForwardTrace(const std::vector<double>& x, std::vector<std::vector<double>>& pre,
                       std::vector<std::vector<double>>& post) const {
  assert(static_cast<int>(x.size()) == input_dim());
  pre.clear();
  post.clear();
  std::vector<double> current = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const Activation activation =
        l + 1 == layers_.size() ? config_.output_activation : config_.hidden_activation;
    std::vector<double> z(static_cast<size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      double sum = layer.bias[static_cast<size_t>(o)];
      const double* row = &layer.weights[static_cast<size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) {
        sum += row[i] * current[static_cast<size_t>(i)];
      }
      z[static_cast<size_t>(o)] = sum;
    }
    std::vector<double> a(z.size());
    for (size_t o = 0; o < z.size(); ++o) {
      a[o] = Activate(activation, z[o]);
    }
    pre.push_back(std::move(z));
    current = a;
    post.push_back(std::move(a));
  }
}

std::vector<double> Mlp::Predict(const std::vector<double>& x) const {
  std::vector<std::vector<double>> pre;
  std::vector<std::vector<double>> post;
  ForwardTrace(x, pre, post);
  return post.back();
}

Result<TrainReport> Mlp::Train(const Dataset& data) {
  if (data.size() == 0) {
    return InvalidArgumentError("cannot train on an empty dataset");
  }
  if (static_cast<int>(data.feature_dim()) != input_dim()) {
    return InvalidArgumentError("dataset feature dim " + std::to_string(data.feature_dim()) +
                                " does not match network input dim " +
                                std::to_string(input_dim()));
  }
  TrainReport report;
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    size_t processed = 0;
    while (processed < order.size()) {
      const size_t batch_end =
          std::min(processed + static_cast<size_t>(config_.batch_size), order.size());
      const double batch_n = static_cast<double>(batch_end - processed);

      // Accumulated gradients for the batch.
      std::vector<std::vector<double>> grad_w(layers_.size());
      std::vector<std::vector<double>> grad_b(layers_.size());
      for (size_t l = 0; l < layers_.size(); ++l) {
        grad_w[l].assign(layers_[l].weights.size(), 0.0);
        grad_b[l].assign(layers_[l].bias.size(), 0.0);
      }

      for (size_t bi = processed; bi < batch_end; ++bi) {
        const auto& x = data.features[order[bi]];
        const double y = data.labels[order[bi]];
        std::vector<std::vector<double>> pre;
        std::vector<std::vector<double>> post;
        ForwardTrace(x, pre, post);
        const std::vector<double>& output = post.back();

        // Output-layer delta. For sigmoid+BCE and identity+MSE the combined
        // gradient collapses to (a - y).
        std::vector<double> delta(output.size());
        if (config_.loss == LossKind::kBinaryCrossEntropy) {
          const double a = std::clamp(output[0], 1e-9, 1.0 - 1e-9);
          epoch_loss += -(y * std::log(a) + (1.0 - y) * std::log(1.0 - a));
          delta[0] = output[0] - y;
        } else {
          for (size_t o = 0; o < output.size(); ++o) {
            const double target = output.size() == 1 ? y : (o == 0 ? y : 0.0);
            const double err = output[o] - target;
            epoch_loss += 0.5 * err * err;
            delta[o] = err * ActivateGrad(config_.output_activation, pre.back()[o], output[o]);
          }
        }

        // Backpropagate.
        for (size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<double>& input_act = l == 0 ? x : post[l - 1];
          for (int o = 0; o < layer.out; ++o) {
            grad_b[l][static_cast<size_t>(o)] += delta[static_cast<size_t>(o)];
            double* gw = &grad_w[l][static_cast<size_t>(o) * layer.in];
            for (int i = 0; i < layer.in; ++i) {
              gw[i] += delta[static_cast<size_t>(o)] * input_act[static_cast<size_t>(i)];
            }
          }
          if (l == 0) {
            break;
          }
          const Activation prev_activation =
              l - 1 + 1 == layers_.size() ? config_.output_activation
                                          : config_.hidden_activation;
          std::vector<double> next_delta(static_cast<size_t>(layer.in), 0.0);
          for (int i = 0; i < layer.in; ++i) {
            double sum = 0.0;
            for (int o = 0; o < layer.out; ++o) {
              sum += layer.weights[static_cast<size_t>(o) * layer.in + i] *
                     delta[static_cast<size_t>(o)];
            }
            next_delta[static_cast<size_t>(i)] =
                sum * ActivateGrad(prev_activation, pre[l - 1][static_cast<size_t>(i)],
                                   post[l - 1][static_cast<size_t>(i)]);
          }
          delta = std::move(next_delta);
        }
      }

      // Apply averaged gradients with optional L2.
      const double lr = config_.learning_rate;
      for (size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (size_t w = 0; w < layer.weights.size(); ++w) {
          layer.weights[w] -=
              lr * (grad_w[l][w] / batch_n + config_.l2 * layer.weights[w]);
        }
        for (size_t b = 0; b < layer.bias.size(); ++b) {
          layer.bias[b] -= lr * grad_b[l][b] / batch_n;
        }
      }
      processed = batch_end;
    }
    report.epoch_losses.push_back(epoch_loss / static_cast<double>(data.size()));
  }
  report.epochs = config_.epochs;
  report.final_loss = report.epoch_losses.empty() ? 0.0 : report.epoch_losses.back();
  return report;
}

double Mlp::Evaluate(const Dataset& data) const {
  if (data.size() == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const std::vector<double> output = Predict(data.features[i]);
    const double y = data.labels[i];
    if (config_.loss == LossKind::kBinaryCrossEntropy) {
      const double a = std::clamp(output[0], 1e-9, 1.0 - 1e-9);
      total += -(y * std::log(a) + (1.0 - y) * std::log(1.0 - a));
    } else {
      for (size_t o = 0; o < output.size(); ++o) {
        const double target = output.size() == 1 ? y : (o == 0 ? y : 0.0);
        const double err = output[o] - target;
        total += 0.5 * err * err;
      }
    }
  }
  return total / static_cast<double>(data.size());
}

std::vector<double> Mlp::GetWeights() const {
  std::vector<double> out;
  out.reserve(ParameterCount());
  for (const Layer& layer : layers_) {
    out.insert(out.end(), layer.weights.begin(), layer.weights.end());
    out.insert(out.end(), layer.bias.begin(), layer.bias.end());
  }
  return out;
}

Status Mlp::SetWeights(const std::vector<double>& weights) {
  if (weights.size() != ParameterCount()) {
    return InvalidArgumentError("weight blob has " + std::to_string(weights.size()) +
                                " parameters, network expects " +
                                std::to_string(ParameterCount()));
  }
  size_t offset = 0;
  for (Layer& layer : layers_) {
    std::copy_n(weights.begin() + static_cast<ptrdiff_t>(offset), layer.weights.size(),
                layer.weights.begin());
    offset += layer.weights.size();
    std::copy_n(weights.begin() + static_cast<ptrdiff_t>(offset), layer.bias.size(),
                layer.bias.begin());
    offset += layer.bias.size();
  }
  return OkStatus();
}

size_t Mlp::ParameterCount() const {
  size_t count = 0;
  for (const Layer& layer : layers_) {
    count += layer.weights.size() + layer.bias.size();
  }
  return count;
}

void Mlp::PerturbWeights(double stddev, uint64_t seed) {
  if (stddev <= 0.0) {
    return;
  }
  Rng noise(seed);
  for (Layer& layer : layers_) {
    for (double& w : layer.weights) {
      w += noise.Normal(0.0, stddev);
    }
    for (double& b : layer.bias) {
      b += noise.Normal(0.0, stddev);
    }
  }
}

}  // namespace osguard
