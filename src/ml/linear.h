// Logistic regression: the simple-model baseline.
//
// Prior work (and the paper's P5 discussion) manages inference overhead by
// "employing simple models"; logistic regression is the canonical example
// and serves as the cheap comparator the decision-overhead benchmarks sweep
// against the MLP.

#ifndef SRC_ML_LINEAR_H_
#define SRC_ML_LINEAR_H_

#include <vector>

#include "src/ml/dataset.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace osguard {

struct LogisticConfig {
  int feature_dim = 0;
  double learning_rate = 0.1;
  double l2 = 0.0;
  int epochs = 20;
  uint64_t seed = 7;
};

class LogisticRegression {
 public:
  static Result<LogisticRegression> Create(const LogisticConfig& config);

  double PredictProbability(const std::vector<double>& x) const;
  bool PredictBinary(const std::vector<double>& x, double threshold = 0.5) const {
    return PredictProbability(x) >= threshold;
  }

  Status Train(const Dataset& data);

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  explicit LogisticRegression(LogisticConfig config)
      : config_(config), weights_(static_cast<size_t>(config.feature_dim), 0.0) {}

  LogisticConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace osguard

#endif  // SRC_ML_LINEAR_H_
