#include "src/ml/metrics.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace osguard {

void ConfusionMatrix::Add(bool predicted, bool actual) {
  if (predicted && actual) {
    ++true_positive;
  } else if (predicted && !actual) {
    ++false_positive;
  } else if (!predicted && actual) {
    ++false_negative;
  } else {
    ++true_negative;
  }
}

double ConfusionMatrix::accuracy() const {
  const uint64_t n = total();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(true_positive + true_negative) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const uint64_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const uint64_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::miss_rate() const {
  const uint64_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(false_negative) / static_cast<double>(n);
}

std::string ConfusionMatrix::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "tp=%llu fp=%llu tn=%llu fn=%llu acc=%.3f prec=%.3f rec=%.3f f1=%.3f",
                static_cast<unsigned long long>(true_positive),
                static_cast<unsigned long long>(false_positive),
                static_cast<unsigned long long>(true_negative),
                static_cast<unsigned long long>(false_negative), accuracy(), precision(),
                recall(), f1());
  return buf;
}

double MeanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  if (predicted.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    total += std::abs(predicted[i] - actual[i]);
  }
  return total / static_cast<double>(predicted.size());
}

double RootMeanSquaredError(const std::vector<double>& predicted,
                            const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  if (predicted.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double err = predicted[i] - actual[i];
    total += err * err;
  }
  return std::sqrt(total / static_cast<double>(predicted.size()));
}

}  // namespace osguard
