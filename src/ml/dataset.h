// Datasets for the learned-policy substrate.
//
// Feature matrices are dense row-major doubles; labels are doubles (0/1 for
// the binary classifiers LinnOS-style models use, arbitrary for regressors).

#ifndef SRC_ML_DATASET_H_
#define SRC_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "src/support/rng.h"

namespace osguard {

struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<double> labels;

  size_t size() const { return features.size(); }
  size_t feature_dim() const { return features.empty() ? 0 : features[0].size(); }

  void Add(std::vector<double> x, double y) {
    features.push_back(std::move(x));
    labels.push_back(y);
  }

  // Deterministic shuffle + split; `train_fraction` of rows (rounded down)
  // go to the first returned set.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng& rng) const;
};

// Per-feature affine normalizer (z-score). Fitting on the training set and
// applying at inference is part of the "in-distribution" story: P1 drift
// detectors compare live inputs against the fitted statistics.
class Normalizer {
 public:
  void Fit(const Dataset& data);
  std::vector<double> Apply(const std::vector<double>& x) const;
  Dataset Apply(const Dataset& data) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace osguard

#endif  // SRC_ML_DATASET_H_
