#include "src/ml/dataset.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace osguard {

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction, Rng& rng) const {
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const size_t train_count = static_cast<size_t>(train_fraction * static_cast<double>(size()));
  Dataset train;
  Dataset test;
  for (size_t i = 0; i < order.size(); ++i) {
    Dataset& target = i < train_count ? train : test;
    target.Add(features[order[i]], labels[order[i]]);
  }
  return {std::move(train), std::move(test)};
}

void Normalizer::Fit(const Dataset& data) {
  const size_t dim = data.feature_dim();
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  if (data.size() == 0) {
    return;
  }
  for (const auto& row : data.features) {
    for (size_t j = 0; j < dim; ++j) {
      mean_[j] += row[j];
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    mean_[j] /= static_cast<double>(data.size());
  }
  for (const auto& row : data.features) {
    for (size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean_[j];
      stddev_[j] += d * d;
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    stddev_[j] = std::sqrt(stddev_[j] / static_cast<double>(data.size()));
    if (stddev_[j] < 1e-12) {
      stddev_[j] = 1.0;  // constant features pass through unscaled
    }
  }
}

std::vector<double> Normalizer::Apply(const std::vector<double>& x) const {
  assert(x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

Dataset Normalizer::Apply(const Dataset& data) const {
  Dataset out;
  out.labels = data.labels;
  out.features.reserve(data.size());
  for (const auto& row : data.features) {
    out.features.push_back(Apply(row));
  }
  return out;
}

}  // namespace osguard
