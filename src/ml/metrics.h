// Classification / regression metrics.
//
// Guardrail properties over model quality (P4) are phrased in these terms:
// "accuracy of the classifier > 90% over a time window", false-submit rate,
// etc. The kernel-side metric pipeline feeds these into the feature store;
// this header is the offline counterpart used in training and tests.

#ifndef SRC_ML_METRICS_H_
#define SRC_ML_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace osguard {

struct ConfusionMatrix {
  uint64_t true_positive = 0;
  uint64_t false_positive = 0;
  uint64_t true_negative = 0;
  uint64_t false_negative = 0;

  void Add(bool predicted, bool actual);
  uint64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double accuracy() const;
  double precision() const;  // TP / (TP + FP); 0 if undefined
  double recall() const;     // TP / (TP + FN); 0 if undefined
  double f1() const;
  // The LinnOS failure metric: predicted-negative-but-actually-positive rate
  // over all predictions, i.e. FN / total. ("false submit" = model said fast,
  // device was slow.)
  double miss_rate() const;

  std::string ToString() const;
};

double MeanAbsoluteError(const std::vector<double>& predicted,
                         const std::vector<double>& actual);
double RootMeanSquaredError(const std::vector<double>& predicted,
                            const std::vector<double>& actual);

}  // namespace osguard

#endif  // SRC_ML_METRICS_H_
