// Multi-layer perceptron with SGD training.
//
// This is the "light neural network" class of model LinnOS runs in the
// kernel: a few small fully-connected layers, trained offline, cheap enough
// to evaluate on the I/O submission path. Everything is from scratch —
// forward pass, backprop, minibatch SGD — with deterministic weight init
// from an explicit Rng.

#ifndef SRC_ML_MLP_H_
#define SRC_ML_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ml/dataset.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace osguard {

enum class Activation {
  kIdentity,
  kRelu,
  kSigmoid,
  kTanh,
};

enum class LossKind {
  kMse,                 // regression
  kBinaryCrossEntropy,  // binary classification; final layer should be sigmoid
};

struct MlpConfig {
  std::vector<int> layer_sizes;  // e.g. {9, 16, 16, 1}: input, hidden..., output
  Activation hidden_activation = Activation::kRelu;
  Activation output_activation = Activation::kSigmoid;
  LossKind loss = LossKind::kBinaryCrossEntropy;
  double learning_rate = 0.05;
  double l2 = 0.0;
  int batch_size = 32;
  int epochs = 10;
  uint64_t seed = 42;
};

struct TrainReport {
  int epochs = 0;
  double final_loss = 0.0;
  std::vector<double> epoch_losses;
};

class Mlp {
 public:
  // Builds and initializes the network (He/Xavier-style scaled uniform).
  static Result<Mlp> Create(const MlpConfig& config);

  // Forward pass on one example.
  std::vector<double> Predict(const std::vector<double>& x) const;

  // Convenience for single-output networks.
  double PredictScalar(const std::vector<double>& x) const { return Predict(x)[0]; }

  // Binary decision with threshold (default 0.5).
  bool PredictBinary(const std::vector<double>& x, double threshold = 0.5) const {
    return PredictScalar(x) >= threshold;
  }

  // Minibatch SGD over `data` per the config. May be called repeatedly
  // (e.g. by the retrain loop) to continue training on new data.
  Result<TrainReport> Train(const Dataset& data);

  // Mean loss over a dataset (no updates).
  double Evaluate(const Dataset& data) const;

  int input_dim() const { return config_.layer_sizes.front(); }
  int output_dim() const { return config_.layer_sizes.back(); }
  const MlpConfig& config() const { return config_; }

  // Flat weight serialization (layer-major, weights then biases), for
  // save/restore and for tests asserting retraining changed the model.
  std::vector<double> GetWeights() const;
  Status SetWeights(const std::vector<double>& weights);
  size_t ParameterCount() const;

  // Adds zero-mean Gaussian noise with the given stddev to every parameter,
  // from a throwaway Rng(seed) — the training rng is untouched, so a
  // perturb-then-retrain sequence stays reproducible. Used by the chaos
  // layer (site ml.weight_corrupt) to model bit-rot / botched model pushes.
  void PerturbWeights(double stddev, uint64_t seed);

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> weights;  // out x in, row-major
    std::vector<double> bias;     // out
  };

  Mlp(MlpConfig config, std::vector<Layer> layers)
      : config_(std::move(config)), layers_(std::move(layers)), rng_(config_.seed) {}

  // Forward with intermediate activations retained for backprop.
  void ForwardTrace(const std::vector<double>& x,
                    std::vector<std::vector<double>>& pre,
                    std::vector<std::vector<double>>& post) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
  Rng rng_;
};

}  // namespace osguard

#endif  // SRC_ML_MLP_H_
