#include "src/ml/linear.h"

#include <cmath>
#include <numeric>

namespace osguard {

Result<LogisticRegression> LogisticRegression::Create(const LogisticConfig& config) {
  if (config.feature_dim < 1) {
    return InvalidArgumentError("feature_dim must be >= 1");
  }
  if (config.learning_rate <= 0.0 || config.epochs < 0) {
    return InvalidArgumentError("bad learning_rate/epochs");
  }
  return LogisticRegression(config);
}

double LogisticRegression::PredictProbability(const std::vector<double>& x) const {
  double z = bias_;
  const size_t n = std::min(x.size(), weights_.size());
  for (size_t i = 0; i < n; ++i) {
    z += weights_[i] * x[i];
  }
  return 1.0 / (1.0 + std::exp(-z));
}

Status LogisticRegression::Train(const Dataset& data) {
  if (data.size() == 0) {
    return InvalidArgumentError("cannot train on an empty dataset");
  }
  if (static_cast<int>(data.feature_dim()) != config_.feature_dim) {
    return InvalidArgumentError("dataset feature dim does not match model");
  }
  Rng rng(config_.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t index : order) {
      const auto& x = data.features[index];
      const double y = data.labels[index];
      const double p = PredictProbability(x);
      const double err = p - y;
      for (size_t i = 0; i < weights_.size(); ++i) {
        weights_[i] -= config_.learning_rate * (err * x[i] + config_.l2 * weights_[i]);
      }
      bias_ -= config_.learning_rate * err;
    }
  }
  return OkStatus();
}

}  // namespace osguard
