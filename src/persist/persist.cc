#include "src/persist/persist.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "src/support/logging.h"

namespace osguard {

namespace fs = std::filesystem;

namespace {

constexpr char kJournalMagic[4] = {'O', 'G', 'J', '1'};
constexpr char kSnapshotMagic[4] = {'O', 'G', 'S', '1'};
constexpr uint32_t kSnapshotVersion = 2;  // v2: slot generation/live/free_rank, reclaim flag
// magic + payload length + CRC.
constexpr size_t kFrameHeaderSize = 12;

// Fixed wire sizes used to validate count fields before allocating.
constexpr size_t kSampleWireSize = 40;    // i64 + 3*f64 + u64
constexpr size_t kExtremumWireSize = 24;  // u64 + i64 + f64
constexpr size_t kMinOpWireSize = 5;      // kind + empty key
constexpr size_t kMinSlotWireSize = 5;    // empty key + flags

uint32_t ReadU32At(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[offset + i])) << (8 * i);
  }
  return v;
}

Status CountError(std::string_view what, uint64_t count, size_t offset) {
  return OutOfRangeError(std::string(what) + " count " + std::to_string(count) +
                         " exceeds remaining input at offset " + std::to_string(offset));
}

void WriteOp(ByteWriter& w, const StoreOp& op) {
  w.U8(static_cast<uint8_t>(op.kind));
  w.Str(op.key);
  switch (op.kind) {
    case StoreMutation::Kind::kSave:
      WriteValue(w, op.value);
      break;
    case StoreMutation::Kind::kObserve:
      w.I64(op.time);
      w.F64(op.sample);
      break;
    case StoreMutation::Kind::kErase:
      w.U8(op.reclaim ? 1 : 0);
      break;
    case StoreMutation::Kind::kSetSeriesOptions:
      w.U64(op.max_samples);
      w.I64(op.max_age);
      break;
  }
}

Result<StoreOp> ReadOp(ByteReader& r) {
  StoreOp op;
  OSGUARD_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
  if (kind > static_cast<uint8_t>(StoreMutation::Kind::kSetSeriesOptions)) {
    return InvalidArgumentError("unknown store-op kind " + std::to_string(kind) +
                                " at offset " + std::to_string(r.offset() - 1));
  }
  op.kind = static_cast<StoreMutation::Kind>(kind);
  OSGUARD_ASSIGN_OR_RETURN(std::string_view key, r.Str());
  op.key = std::string(key);
  switch (op.kind) {
    case StoreMutation::Kind::kSave: {
      OSGUARD_ASSIGN_OR_RETURN(Value value, ReadValue(r));
      op.value = std::move(value);
      break;
    }
    case StoreMutation::Kind::kObserve: {
      OSGUARD_ASSIGN_OR_RETURN(op.time, r.I64());
      OSGUARD_ASSIGN_OR_RETURN(op.sample, r.F64());
      break;
    }
    case StoreMutation::Kind::kErase: {
      OSGUARD_ASSIGN_OR_RETURN(uint8_t reclaim, r.U8());
      if (reclaim > 1) {
        return InvalidArgumentError("bad erase reclaim flag " + std::to_string(reclaim) +
                                    " at offset " + std::to_string(r.offset() - 1));
      }
      op.reclaim = reclaim != 0;
      break;
    }
    case StoreMutation::Kind::kSetSeriesOptions: {
      OSGUARD_ASSIGN_OR_RETURN(op.max_samples, r.U64());
      OSGUARD_ASSIGN_OR_RETURN(op.max_age, r.I64());
      break;
    }
  }
  return op;
}

void WriteSlotDump(ByteWriter& w, const StoreSlotDump& slot) {
  w.Str(slot.key);
  uint8_t flags = 0;
  if (slot.has_scalar) {
    flags |= 1;
  }
  if (slot.has_series) {
    flags |= 2;
  }
  if (slot.live) {
    flags |= 4;
  }
  w.U8(flags);
  w.U32(slot.generation);
  w.U32(slot.free_rank);
  if (slot.has_scalar) {
    WriteValue(w, slot.scalar);
  }
  if (slot.has_series) {
    const StoreSeriesDump& s = slot.series;
    w.U64(s.max_samples);
    w.I64(s.max_age);
    w.U64(s.next_seq);
    w.U32(static_cast<uint32_t>(s.samples.size()));
    for (const StoreSampleDump& sample : s.samples) {
      w.I64(sample.time);
      w.F64(sample.value);
      w.F64(sample.cum_sum);
      w.F64(sample.cum_sumsq);
      w.U64(sample.seq);
    }
    for (const auto* deque : {&s.minima, &s.maxima}) {
      w.U32(static_cast<uint32_t>(deque->size()));
      for (const StoreExtremumDump& e : *deque) {
        w.U64(e.seq);
        w.I64(e.time);
        w.F64(e.value);
      }
    }
  }
}

Result<StoreSlotDump> ReadSlotDump(ByteReader& r, uint32_t version) {
  StoreSlotDump slot;
  OSGUARD_ASSIGN_OR_RETURN(std::string_view key, r.Str());
  slot.key = std::string(key);
  OSGUARD_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
  const uint8_t max_flags = version >= 2 ? 7 : 3;
  if (flags > max_flags) {
    return InvalidArgumentError("unknown slot flags " + std::to_string(flags) +
                                " at offset " + std::to_string(r.offset() - 1));
  }
  slot.has_scalar = (flags & 1) != 0;
  slot.has_series = (flags & 2) != 0;
  if (version >= 2) {
    slot.live = (flags & 4) != 0;
    OSGUARD_ASSIGN_OR_RETURN(slot.generation, r.U32());
    OSGUARD_ASSIGN_OR_RETURN(slot.free_rank, r.U32());
  } else {
    // v1 predates the key lifecycle: every dumped slot was live, at
    // generation zero, with no free list.
    slot.live = true;
    slot.generation = 0;
    slot.free_rank = 0;
  }
  if (slot.has_scalar) {
    OSGUARD_ASSIGN_OR_RETURN(slot.scalar, ReadValue(r));
  }
  if (slot.has_series) {
    StoreSeriesDump& s = slot.series;
    OSGUARD_ASSIGN_OR_RETURN(s.max_samples, r.U64());
    OSGUARD_ASSIGN_OR_RETURN(s.max_age, r.I64());
    OSGUARD_ASSIGN_OR_RETURN(s.next_seq, r.U64());
    OSGUARD_ASSIGN_OR_RETURN(uint32_t nsamples, r.U32());
    if (nsamples > r.remaining() / kSampleWireSize) {
      return CountError("sample", nsamples, r.offset());
    }
    s.samples.reserve(nsamples);
    for (uint32_t i = 0; i < nsamples; ++i) {
      StoreSampleDump sample;
      OSGUARD_ASSIGN_OR_RETURN(sample.time, r.I64());
      OSGUARD_ASSIGN_OR_RETURN(sample.value, r.F64());
      OSGUARD_ASSIGN_OR_RETURN(sample.cum_sum, r.F64());
      OSGUARD_ASSIGN_OR_RETURN(sample.cum_sumsq, r.F64());
      OSGUARD_ASSIGN_OR_RETURN(sample.seq, r.U64());
      s.samples.push_back(sample);
    }
    for (auto* deque : {&s.minima, &s.maxima}) {
      OSGUARD_ASSIGN_OR_RETURN(uint32_t count, r.U32());
      if (count > r.remaining() / kExtremumWireSize) {
        return CountError("extremum", count, r.offset());
      }
      deque->reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        StoreExtremumDump e;
        OSGUARD_ASSIGN_OR_RETURN(e.seq, r.U64());
        OSGUARD_ASSIGN_OR_RETURN(e.time, r.I64());
        OSGUARD_ASSIGN_OR_RETURN(e.value, r.F64());
        deque->push_back(e);
      }
    }
  }
  return slot;
}

}  // namespace

// --- Frame codec ---

void AppendFrame(const JournalFrame& frame, std::string* out) {
  std::string payload;
  ByteWriter w(&payload);
  w.U64(frame.seq);
  w.I64(frame.now);
  w.U32(static_cast<uint32_t>(frame.ops.size()));
  for (const StoreOp& op : frame.ops) {
    WriteOp(w, op);
  }
  w.Str(frame.report_delta);
  w.Str(frame.image);

  ByteWriter header(out);
  header.Raw(std::string_view(kJournalMagic, sizeof(kJournalMagic)));
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(Crc32(payload));
  header.Raw(payload);
}

Result<JournalFrame> DecodeFramePayload(std::string_view payload) {
  ByteReader r(payload);
  JournalFrame frame;
  OSGUARD_ASSIGN_OR_RETURN(frame.seq, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(frame.now, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(uint32_t op_count, r.U32());
  if (op_count > r.remaining() / kMinOpWireSize) {
    return CountError("store-op", op_count, r.offset());
  }
  frame.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(StoreOp op, ReadOp(r));
    frame.ops.push_back(std::move(op));
  }
  OSGUARD_ASSIGN_OR_RETURN(std::string_view delta, r.Str());
  frame.report_delta = std::string(delta);
  OSGUARD_ASSIGN_OR_RETURN(std::string_view image, r.Str());
  frame.image = std::string(image);
  if (!r.done()) {
    return InvalidArgumentError("trailing garbage: " + std::to_string(r.remaining()) +
                                " bytes past the frame payload");
  }
  return frame;
}

FrameScan ScanJournal(std::string_view data) {
  FrameScan scan;
  size_t offset = 0;
  while (offset < data.size()) {
    const size_t left = data.size() - offset;
    if (left < kFrameHeaderSize) {
      scan.detail = "truncated frame header at offset " + std::to_string(offset) + " (" +
                    std::to_string(left) + " bytes)";
      break;
    }
    if (data.substr(offset, 4) != std::string_view(kJournalMagic, 4)) {
      scan.detail = "bad frame magic at offset " + std::to_string(offset);
      break;
    }
    const uint32_t len = ReadU32At(data, offset + 4);
    const uint32_t crc = ReadU32At(data, offset + 8);
    if (left - kFrameHeaderSize < len) {
      scan.detail = "torn frame at offset " + std::to_string(offset) + ": payload needs " +
                    std::to_string(len) + " bytes, file has " +
                    std::to_string(left - kFrameHeaderSize);
      break;
    }
    const std::string_view payload = data.substr(offset + kFrameHeaderSize, len);
    if (Crc32(payload) != crc) {
      scan.detail = "crc mismatch at offset " + std::to_string(offset);
      break;
    }
    Result<JournalFrame> frame = DecodeFramePayload(payload);
    if (!frame.ok()) {
      scan.detail = "undecodable frame at offset " + std::to_string(offset) + ": " +
                    frame.status().ToString();
      break;
    }
    offset += kFrameHeaderSize + len;
    scan.frames.push_back(std::move(*frame));
    scan.frame_ends.push_back(offset);
    scan.valid_bytes = offset;
  }
  scan.discarded_bytes = data.size() - scan.valid_bytes;
  return scan;
}

// --- Snapshot codec ---

std::string EncodeSnapshot(const Snapshot& snapshot) {
  std::string body;
  ByteWriter w(&body);
  w.U64(snapshot.seq);
  w.I64(snapshot.now);
  w.U32(static_cast<uint32_t>(snapshot.store.size()));
  for (const StoreSlotDump& slot : snapshot.store) {
    WriteSlotDump(w, slot);
  }
  w.Str(snapshot.report_ring);
  w.Str(snapshot.image);

  std::string out;
  ByteWriter header(&out);
  header.Raw(std::string_view(kSnapshotMagic, sizeof(kSnapshotMagic)));
  header.U32(kSnapshotVersion);
  header.U32(static_cast<uint32_t>(body.size()));
  header.U32(Crc32(body));
  header.Raw(body);
  return out;
}

Result<Snapshot> DecodeSnapshot(std::string_view data) {
  if (data.size() < 16) {
    return OutOfRangeError("truncated snapshot header (" + std::to_string(data.size()) +
                           " bytes)");
  }
  if (data.substr(0, 4) != std::string_view(kSnapshotMagic, 4)) {
    return InvalidArgumentError("bad snapshot magic");
  }
  const uint32_t version = ReadU32At(data, 4);
  if (version == 0 || version > kSnapshotVersion) {
    return InvalidArgumentError("unsupported snapshot version " + std::to_string(version));
  }
  const uint32_t len = ReadU32At(data, 8);
  const uint32_t crc = ReadU32At(data, 12);
  if (data.size() - 16 != len) {
    return OutOfRangeError("snapshot body length " + std::to_string(len) +
                           " does not match file size " + std::to_string(data.size() - 16));
  }
  const std::string_view body = data.substr(16, len);
  if (Crc32(body) != crc) {
    return InvalidArgumentError("snapshot crc mismatch");
  }

  ByteReader r(body);
  Snapshot snapshot;
  OSGUARD_ASSIGN_OR_RETURN(snapshot.seq, r.U64());
  OSGUARD_ASSIGN_OR_RETURN(snapshot.now, r.I64());
  OSGUARD_ASSIGN_OR_RETURN(uint32_t slot_count, r.U32());
  if (slot_count > r.remaining() / kMinSlotWireSize) {
    return CountError("slot", slot_count, r.offset());
  }
  snapshot.store.reserve(slot_count);
  for (uint32_t i = 0; i < slot_count; ++i) {
    OSGUARD_ASSIGN_OR_RETURN(StoreSlotDump slot, ReadSlotDump(r, version));
    snapshot.store.push_back(std::move(slot));
  }
  OSGUARD_ASSIGN_OR_RETURN(std::string_view ring, r.Str());
  snapshot.report_ring = std::string(ring);
  OSGUARD_ASSIGN_OR_RETURN(std::string_view image, r.Str());
  snapshot.image = std::string(image);
  if (!r.done()) {
    return InvalidArgumentError("trailing garbage: " + std::to_string(r.remaining()) +
                                " bytes past the snapshot body");
  }
  return snapshot;
}

// --- Manager ---

PersistManager::PersistManager(PersistOptions options) : options_(std::move(options)) {}

PersistManager::~PersistManager() {
  AttachStore(nullptr);
  if (journal_ != nullptr) {
    std::fclose(journal_);
  }
}

void PersistManager::SetChaos(ChaosEngine* chaos) {
  chaos_ = chaos;
  if (chaos_ == nullptr) {
    torn_site_ = crc_site_ = truncate_site_ = snapshot_fail_site_ = kInvalidChaosSite;
    return;
  }
  torn_site_ = chaos_->RegisterSite(kChaosSitePersistTornWrite);
  crc_site_ = chaos_->RegisterSite(kChaosSitePersistCrcCorrupt);
  truncate_site_ = chaos_->RegisterSite(kChaosSitePersistTruncateTail);
  snapshot_fail_site_ = chaos_->RegisterSite(kChaosSitePersistSnapshotFail);
}

void PersistManager::Configure(Duration snapshot_interval, uint64_t journal_budget) {
  options_.snapshot_interval = snapshot_interval;
  options_.journal_budget = journal_budget;
}

void PersistManager::AttachStore(FeatureStore* store) {
  if (store_ != nullptr && store_ != store) {
    store_->SetMutationObserver(nullptr);
  }
  store_ = store;
  if (store_ == nullptr) {
    return;
  }
  store_->SetMutationObserver([this](const StoreMutation& m, const std::string& key) {
    StoreOp op;
    op.kind = m.kind;
    op.key = key;
    switch (m.kind) {
      case StoreMutation::Kind::kSave:
        op.value = m.value;
        break;
      case StoreMutation::Kind::kObserve:
        op.time = m.time;
        op.sample = m.sample;
        break;
      case StoreMutation::Kind::kErase:
        op.reclaim = m.reclaim;
        break;
      case StoreMutation::Kind::kSetSeriesOptions:
        op.max_samples = static_cast<uint64_t>(m.options.max_samples);
        op.max_age = m.options.max_age;
        break;
    }
    pending_ops_.push_back(std::move(op));
  });
}

std::string PersistManager::JournalPath() const { return options_.dir + "/journal.wal"; }

std::string PersistManager::SnapshotPath(uint64_t seq) const {
  char name[48];
  std::snprintf(name, sizeof(name), "snap-%020" PRIu64 ".snap", seq);
  return options_.dir + "/" + name;
}

Status PersistManager::Open() {
  if (journal_ != nullptr) {
    return OkStatus();
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return InternalError("persist: cannot create '" + options_.dir + "': " + ec.message());
  }
  journal_ = std::fopen(JournalPath().c_str(), "ab");
  if (journal_ == nullptr) {
    return InternalError("persist: cannot open '" + JournalPath() + "' for append");
  }
  const auto size = fs::file_size(JournalPath(), ec);
  journal_bytes_ = ec ? 0 : static_cast<uint64_t>(size);
  return OkStatus();
}

Status PersistManager::AppendToJournal(const JournalFrame& frame) {
  std::string bytes;
  AppendFrame(frame, &bytes);
  stats_.bytes_appended += bytes.size();

  // Fault decisions. Each site is queried exactly once per append so the
  // per-site RNG streams replay bit-identically regardless of which faults
  // fire. Damage is applied to the file only — the caller's in-memory state
  // and sequence numbers advance as if the write had landed, exactly like a
  // kernel that loses a buffered write in a crash.
  bool torn = false;
  double torn_frac = 0.5;
  bool chop_tail = false;
  double chop_frac = 0.5;
  if (chaos_ != nullptr) {
    const FaultDecision corrupt = chaos_->Query(crc_site_, frame.now);
    if (corrupt.inject && bytes.size() > kFrameHeaderSize) {
      bytes[kFrameHeaderSize] = static_cast<char>(bytes[kFrameHeaderSize] ^ 1);
      ++stats_.faults_injected;
    }
    const FaultDecision tear = chaos_->Query(torn_site_, frame.now);
    if (tear.inject) {
      torn = true;
      if (tear.value > 0.0 && tear.value <= 1.0) {
        torn_frac = tear.value;
      }
      ++stats_.faults_injected;
    }
    const FaultDecision chop = chaos_->Query(truncate_site_, frame.now);
    if (chop.inject) {
      chop_tail = true;
      if (chop.value > 0.0 && chop.value <= 1.0) {
        chop_frac = chop.value;
      }
      ++stats_.faults_injected;
    }
  }

  size_t to_write = bytes.size();
  if (torn) {
    const auto partial = static_cast<size_t>(static_cast<double>(bytes.size()) * torn_frac);
    to_write = std::min(bytes.size() - 1, std::max<size_t>(1, partial));
  }
  if (std::fwrite(bytes.data(), 1, to_write, journal_) != to_write ||
      std::fflush(journal_) != 0) {
    return InternalError("persist: journal append failed at '" + JournalPath() + "'");
  }
  journal_bytes_ += to_write;

  if (chop_tail && !torn) {
    const auto chop_want = static_cast<size_t>(static_cast<double>(bytes.size()) * chop_frac);
    const uint64_t chop = std::min<uint64_t>(journal_bytes_, std::max<size_t>(1, chop_want));
    std::error_code ec;
    fs::resize_file(JournalPath(), journal_bytes_ - chop, ec);
    if (!ec) {
      journal_bytes_ -= chop;
    }
  }
  return OkStatus();
}

Status PersistManager::CommitFrame(SimTime now, std::string report_delta, std::string image) {
  if (!dirty()) {
    return OkStatus();
  }
  if (journal_ == nullptr) {
    return FailedPreconditionError("persist journal not open (call Open() first)");
  }
  JournalFrame frame;
  frame.seq = seq_ + 1;
  frame.now = now;
  frame.ops = std::move(pending_ops_);
  pending_ops_.clear();
  frame.report_delta = std::move(report_delta);
  frame.image = std::move(image);
  OSGUARD_RETURN_IF_ERROR(AppendToJournal(frame));
  ++seq_;
  dirty_ = false;
  ++stats_.frames_committed;
  return OkStatus();
}

bool PersistManager::SnapshotDue(SimTime now) const {
  if (journal_ == nullptr) {
    return false;
  }
  if (options_.journal_budget > 0 && journal_bytes_ > options_.journal_budget) {
    return true;
  }
  return options_.snapshot_interval > 0 &&
         now - last_snapshot_time_ >= options_.snapshot_interval;
}

Status PersistManager::WriteSnapshot(SimTime now, std::vector<StoreSlotDump> store,
                                     std::string report_ring, std::string image) {
  if (journal_ == nullptr) {
    return FailedPreconditionError("persist journal not open (call Open() first)");
  }
  if (chaos_ != nullptr && chaos_->Query(snapshot_fail_site_, now).inject) {
    // Aborted before the temp file exists: the previous snapshot and the
    // (un-rotated) journal stay authoritative, and the next due point
    // retries. Silent by design — lost writes are not synchronous errors.
    ++stats_.snapshot_failures;
    ++stats_.faults_injected;
    return OkStatus();
  }

  Snapshot snapshot;
  snapshot.seq = seq_;
  snapshot.now = now;
  snapshot.store = std::move(store);
  snapshot.report_ring = std::move(report_ring);
  snapshot.image = std::move(image);
  const std::string bytes = EncodeSnapshot(snapshot);

  const std::string tmp = options_.dir + "/snap.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    ++stats_.snapshot_failures;
    return InternalError("persist: cannot open '" + tmp + "'");
  }
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    ++stats_.snapshot_failures;
    std::error_code ec;
    fs::remove(tmp, ec);
    return InternalError("persist: snapshot write failed at '" + tmp + "'");
  }
  std::error_code ec;
  fs::rename(tmp, SnapshotPath(seq_), ec);
  if (ec) {
    ++stats_.snapshot_failures;
    fs::remove(tmp, ec);
    return InternalError("persist: snapshot rename failed: " + ec.message());
  }
  ++stats_.snapshots_written;
  last_snapshot_time_ = now;

  // Rotation: frames covered by the snapshot are dead weight. A crash
  // between the rename above and this truncation is handled at recovery by
  // skipping journal frames with seq <= snapshot.seq.
  fs::resize_file(JournalPath(), 0, ec);
  if (!ec) {
    journal_bytes_ = 0;
    ++stats_.rotations;
  }
  PruneSnapshots();
  return OkStatus();
}

void PersistManager::PruneSnapshots() {
  std::vector<std::string> snaps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".snap") == 0) {
      snaps.push_back(entry.path().string());
    }
  }
  // Zero-padded sequence numbers: lexical descending == newest first.
  std::sort(snaps.rbegin(), snaps.rend());
  for (size_t i = 2; i < snaps.size(); ++i) {
    fs::remove(snaps[i], ec);
  }
}

Result<RecoveredState> PersistManager::LoadForRecovery() {
  RecoveredState out;
  RecoveryInfo& info = out.info;

  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return InternalError("persist: cannot create '" + options_.dir + "': " + ec.message());
  }

  auto read_file = [](const std::string& path) -> std::string {
    std::string data;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return data;
    }
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.append(buf, n);
    }
    std::fclose(f);
    return data;
  };

  // Rung 1 and 2: newest decodable snapshot, else the previous one. A stale
  // temp file from an interrupted snapshot write is ignored entirely (it
  // never carries the .snap suffix).
  std::vector<std::string> snaps;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".snap") == 0) {
      snaps.push_back(entry.path().string());
    }
  }
  std::sort(snaps.rbegin(), snaps.rend());
  bool have_snapshot = false;
  for (size_t i = 0; i < snaps.size(); ++i) {
    const std::string data = read_file(snaps[i]);
    Result<Snapshot> snapshot = DecodeSnapshot(data);
    if (snapshot.ok()) {
      out.base = std::move(*snapshot);
      have_snapshot = true;
      info.used_snapshot = true;
      info.used_previous_snapshot = i > 0;
      break;
    }
    ++info.snapshots_rejected;
    info.detail += "rejected " + snaps[i] + ": " +
                   Annotate(snapshot.status(), snaps[i]).message() + "; ";
  }

  // Rung 3: the journal's contiguous valid suffix on top of the base (or on
  // top of nothing — a journal-only warm start — when its first frame is
  // seq 1 and no snapshot survived).
  const std::string journal_data = read_file(JournalPath());
  FrameScan scan = ScanJournal(journal_data);
  if (!scan.detail.empty()) {
    info.detail += JournalPath() + ": " + scan.detail + "; ";
  }
  info.bytes_discarded = scan.discarded_bytes;

  uint64_t expected = out.base.seq + 1;
  size_t keep_bytes = 0;  // journal prefix that stays on disk
  bool gap = false;
  for (size_t i = 0; i < scan.frames.size(); ++i) {
    JournalFrame& frame = scan.frames[i];
    if (frame.seq <= out.base.seq) {
      keep_bytes = scan.frame_ends[i];  // pre-rotation remnant, superseded
      continue;
    }
    if (frame.seq != expected) {
      gap = true;
      info.frames_discarded += scan.frames.size() - i;
      info.detail += JournalPath() + ": sequence gap (frame " + std::to_string(frame.seq) +
                     ", expected " + std::to_string(expected) + "); ";
      break;
    }
    out.frames.push_back(std::move(frame));
    keep_bytes = scan.frame_ends[i];
    ++expected;
  }
  (void)gap;

  // Drop the invalid tail (and any post-gap frames) so future appends start
  // at a clean frame boundary.
  if (!journal_data.empty() && keep_bytes < journal_data.size()) {
    fs::resize_file(JournalPath(), keep_bytes, ec);
  }

  info.last_seq = out.frames.empty() ? out.base.seq : out.frames.back().seq;
  info.frames_replayed = out.frames.size();
  info.cold_start = !have_snapshot && out.frames.empty();

  // Prime the manager to continue the sequence.
  seq_ = info.last_seq;
  const SimTime recovered_now = out.frames.empty() ? out.base.now : out.frames.back().now;
  last_snapshot_time_ = recovered_now;
  dirty_ = false;
  pending_ops_.clear();

  if (info.cold_start) {
    if (info.detail.empty()) {
      info.detail = "cold start (no persisted state)";
    }
    OSGUARD_LOG(kInfo) << "persist: cold start in '" << options_.dir << "' — " << info.detail;
  } else {
    OSGUARD_LOG(kInfo) << "persist: recovered seq " << info.last_seq << " ("
                       << (info.used_snapshot
                               ? (info.used_previous_snapshot ? "previous snapshot"
                                                              : "snapshot")
                               : "journal only")
                       << " + " << info.frames_replayed << " frames, "
                       << info.frames_discarded << " discarded, " << info.bytes_discarded
                       << " bytes dropped)"
                       << (info.detail.empty() ? "" : " — ") << info.detail;
  }
  return out;
}

}  // namespace osguard
