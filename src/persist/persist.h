// osguard::persist — crash-consistent guardrail state.
//
// The paper treats guardrails as kernel infrastructure that must keep
// working precisely when the system is unhealthy. That includes surviving
// the unhealthiest event of all: a panic/reboot. Without persistence a
// rebooted guardrail loses its violation-protocol clocks (hysteresis
// evidence, cooldowns, in_violation), its window aggregates, and its
// supervisor breaker state — so it either re-trips spuriously or silently
// misses an in-progress violation. This subsystem makes that state durable:
//
//   * Write-ahead journal (journal.wal) — a CRC-framed, length-prefixed log
//     of committed state transitions, appended once per engine callout
//     boundary. Each frame carries the store mutations since the previous
//     frame, the new report records, and a compact absolute image of the
//     engine's protocol state (encoded by the engine; opaque here).
//   * Compacted snapshots (snap-<seq>.snap) — periodic full dumps of the
//     feature store (including incremental window internals), the report
//     ring, and the engine image, written to a temp file and atomically
//     rename-swapped. The two newest snapshots are retained; a successful
//     snapshot truncates the journal (rotation).
//   * Recovery — LoadForRecovery() walks the recovery ladder: newest valid
//     snapshot, else the previous one, else cold start; then the contiguous
//     valid journal suffix is replayed on top. Torn frames, CRC damage,
//     truncated tails, and stale snapshots degrade gracefully (the invalid
//     tail is discarded and logged) — recovery never crashes and never
//     resumes corrupt state.
//
// Determinism contract: the journal frames *committed* transitions only.
// State that was live at crash time but never reached a commit point is
// intentionally lost — the hosting harness re-executes from the recovered
// sequence number (Kernel::Reboot / the persist differential test do exactly
// that), so injected file damage costs recovery time, never correctness.
//
// Layering: persist depends on store + chaos + support only. The engine's
// report/image blobs cross this boundary as opaque byte strings, which keeps
// the dependency graph acyclic (runtime depends on persist, not vice versa).

#ifndef SRC_PERSIST_PERSIST_H_
#define SRC_PERSIST_PERSIST_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/persist/wire.h"
#include "src/store/feature_store.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// One journaled store mutation, keyed by name (KeyIds are not stable across
// a reboot). Replay goes through the store's public API, which reconstructs
// the incremental series state deterministically.
struct StoreOp {
  StoreMutation::Kind kind = StoreMutation::Kind::kSave;
  std::string key;
  Value value;              // kSave
  SimTime time = 0;         // kObserve
  double sample = 0.0;      // kObserve
  uint64_t max_samples = 0; // kSetSeriesOptions
  Duration max_age = 0;     // kSetSeriesOptions
  bool reclaim = false;     // kErase: lifecycle reclaim (slot recycled) vs plain erase
};

// One committed callout boundary. `report_delta` and `image` are engine-
// encoded blobs (see Engine::EncodeImage); persist frames, checksums, and
// transports them without interpreting a byte.
struct JournalFrame {
  uint64_t seq = 0;
  SimTime now = 0;
  std::vector<StoreOp> ops;
  std::string report_delta;
  std::string image;
};

// A full compacted state dump.
struct Snapshot {
  uint64_t seq = 0;
  SimTime now = 0;
  std::vector<StoreSlotDump> store;
  std::string report_ring;  // opaque engine blob
  std::string image;        // opaque engine blob
};

// --- Codec (exposed for tests and the decoder fuzz target) ---

// Appends one fully framed journal record: magic "OGJ1", u32 payload length,
// u32 CRC-32 of the payload, payload.
void AppendFrame(const JournalFrame& frame, std::string* out);

// Decodes a frame payload (the bytes the CRC covers). Errors carry byte
// offsets.
Result<JournalFrame> DecodeFramePayload(std::string_view payload);

// Walks a journal buffer frame by frame, stopping at the first invalid
// record (bad magic, bad CRC, truncated tail, undecodable payload). Never
// fails: damage terminates the scan and is described in `detail`.
struct FrameScan {
  std::vector<JournalFrame> frames;
  // frame_ends[i] = byte offset one past frames[i] (recovery truncates the
  // file at one of these boundaries).
  std::vector<size_t> frame_ends;
  // Offset one past the last fully valid frame: the journal's usable prefix.
  size_t valid_bytes = 0;
  size_t discarded_bytes = 0;  // bytes past valid_bytes
  std::string detail;          // why the scan stopped (empty = clean EOF)
};
FrameScan ScanJournal(std::string_view data);

// Snapshot file image: magic "OGS1", u32 version, u32 body length, u32
// CRC-32 of the body, body.
std::string EncodeSnapshot(const Snapshot& snapshot);
Result<Snapshot> DecodeSnapshot(std::string_view data);

// --- Manager ---

struct PersistOptions {
  std::string dir;
  // Simulated time between compacted snapshots; <= 0 disables periodic
  // snapshots (the journal then only rotates on the byte budget).
  Duration snapshot_interval = Seconds(10);
  // Journal size that forces a snapshot + rotation at the next commit;
  // 0 = unbounded.
  uint64_t journal_budget = 1 << 20;
};

struct PersistStats {
  uint64_t frames_committed = 0;
  uint64_t bytes_appended = 0;      // logical frame bytes (pre-fault)
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;   // aborted before rename (I/O or chaos)
  uint64_t rotations = 0;           // journal truncations after a snapshot
  uint64_t faults_injected = 0;     // chaos decisions that damaged a file
};

// How a recovery went — surfaced to the host (and a single log line); kept
// out of the feature store so post-recovery store fingerprints stay
// comparable with an uninterrupted run.
struct RecoveryInfo {
  bool cold_start = true;               // no usable snapshot and no journal base
  bool used_snapshot = false;
  bool used_previous_snapshot = false;  // newest snapshot was rejected
  uint64_t snapshots_rejected = 0;
  uint64_t last_seq = 0;                // sequence number of the recovered state
  uint64_t frames_replayed = 0;
  uint64_t frames_discarded = 0;        // valid frames unusable (seq gap)
  uint64_t bytes_discarded = 0;         // invalid journal tail dropped
  std::string detail;                   // human-readable recovery summary
};

struct RecoveredState {
  Snapshot base;                    // seq 0 + empty on cold start
  std::vector<JournalFrame> frames; // contiguous suffix to replay, oldest first
  RecoveryInfo info;
};

// Owns the journal/snapshot files in one directory and the commit protocol.
// Single-threaded, like the engine that drives it.
class PersistManager {
 public:
  explicit PersistManager(PersistOptions options);
  ~PersistManager();
  PersistManager(const PersistManager&) = delete;
  PersistManager& operator=(const PersistManager&) = delete;

  // Attaches the fault-injection engine and registers the persist.* sites
  // (torn_write / crc_corrupt / truncate_tail / snapshot_fail). Faults
  // damage the files only: the in-memory run continues unaware and the
  // damage is discovered at the next recovery.
  void SetChaos(ChaosEngine* chaos);

  // Applies a spec-level `persist { interval, journal_budget }` block.
  void Configure(Duration snapshot_interval, uint64_t journal_budget);

  // Installs the mutation tap on `store` (null detaches): every committed
  // store mutation is buffered as a pending StoreOp for the next frame.
  void AttachStore(FeatureStore* store);

  // Marks engine-side state (monitor stats, breaker, tier...) changed since
  // the last commit. Store mutations mark dirty implicitly.
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_ || !pending_ops_.empty(); }

  uint64_t last_committed_seq() const { return seq_; }
  SimTime last_snapshot_time() const { return last_snapshot_time_; }
  const PersistStats& stats() const { return stats_; }
  const PersistOptions& options() const { return options_; }

  // Creates the directory and opens the journal for appending (idempotent).
  // Call LoadForRecovery() first when recovering; Open() on a fresh
  // directory starts the journal at sequence 1.
  Status Open();

  // Commits everything since the last commit as one frame: pending store
  // ops + the engine's report delta and state image. No-op when clean.
  // Damage injected by chaos is deliberately not reported here — a real
  // kernel does not learn about lost writes synchronously either.
  Status CommitFrame(SimTime now, std::string report_delta, std::string image);

  // True when a compacted snapshot should follow the next commit (interval
  // elapsed or journal budget exceeded).
  bool SnapshotDue(SimTime now) const;

  // Writes a compacted snapshot (temp file + atomic rename), retains the
  // two newest, and truncates the journal on success.
  Status WriteSnapshot(SimTime now, std::vector<StoreSlotDump> store,
                       std::string report_ring, std::string image);

  // Recovery ladder. Reads the directory, picks the newest decodable
  // snapshot (falling back to the previous one), scans the journal for the
  // contiguous valid suffix, truncates the journal file to its usable
  // prefix, and primes the manager to continue appending at
  // last_seq + 1. Never fails on damaged input — damage degrades the
  // result and is described in RecoveryInfo. Errors are real I/O problems
  // (unreadable directory) only.
  Result<RecoveredState> LoadForRecovery();

 private:
  std::string JournalPath() const;
  std::string SnapshotPath(uint64_t seq) const;
  Status AppendToJournal(const JournalFrame& frame);
  void PruneSnapshots();

  PersistOptions options_;
  FeatureStore* store_ = nullptr;
  ChaosEngine* chaos_ = nullptr;
  ChaosSiteId torn_site_ = kInvalidChaosSite;
  ChaosSiteId crc_site_ = kInvalidChaosSite;
  ChaosSiteId truncate_site_ = kInvalidChaosSite;
  ChaosSiteId snapshot_fail_site_ = kInvalidChaosSite;

  std::FILE* journal_ = nullptr;
  uint64_t journal_bytes_ = 0;  // current journal file size
  uint64_t seq_ = 0;            // last committed frame sequence
  SimTime last_snapshot_time_ = 0;
  bool dirty_ = false;
  std::vector<StoreOp> pending_ops_;
  PersistStats stats_;
};

}  // namespace osguard

#endif  // SRC_PERSIST_PERSIST_H_
