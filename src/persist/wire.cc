#include "src/persist/wire.h"

#include <bit>
#include <cstring>
#include <utility>
#include <vector>

namespace osguard {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

Status TruncatedError(size_t offset, size_t need, size_t have) {
  return OutOfRangeError("truncated: need " + std::to_string(need) + " bytes at offset " +
                         std::to_string(offset) + ", have " + std::to_string(have));
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const Crc32Table table;
  uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = table.entries[(crc ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->append(s);
}

Result<uint8_t> ByteReader::U8() {
  if (remaining() < 1) {
    return TruncatedError(offset_, 1, remaining());
  }
  return static_cast<uint8_t>(data_[offset_++]);
}

Result<uint32_t> ByteReader::U32() {
  if (remaining() < 4) {
    return TruncatedError(offset_, 4, remaining());
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_ + i])) << (8 * i);
  }
  offset_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  if (remaining() < 8) {
    return TruncatedError(offset_, 8, remaining());
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[offset_ + i])) << (8 * i);
  }
  offset_ += 8;
  return v;
}

Result<int64_t> ByteReader::I64() {
  OSGUARD_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::F64() {
  OSGUARD_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string_view> ByteReader::Str() {
  OSGUARD_ASSIGN_OR_RETURN(uint32_t len, U32());
  return Bytes(len);
}

Result<std::string_view> ByteReader::Bytes(size_t n) {
  if (remaining() < n) {
    return TruncatedError(offset_, n, remaining());
  }
  std::string_view view = data_.substr(offset_, n);
  offset_ += n;
  return view;
}

void WriteValue(ByteWriter& w, const Value& value) {
  w.U8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kNil:
      break;
    case ValueType::kInt:
      w.I64(*value.IfInt());
      break;
    case ValueType::kFloat:
      w.F64(*value.IfFloat());
      break;
    case ValueType::kBool:
      w.U8(*value.IfBool() ? 1 : 0);
      break;
    case ValueType::kString:
      w.Str(*value.IfString());
      break;
    case ValueType::kList: {
      const std::vector<Value>& items = *value.IfList();
      w.U32(static_cast<uint32_t>(items.size()));
      for (const Value& item : items) {
        WriteValue(w, item);
      }
      break;
    }
  }
}

Result<Value> ReadValue(ByteReader& r, int depth) {
  if (depth > 32) {
    return OutOfRangeError("value nesting exceeds depth 32 at offset " +
                           std::to_string(r.offset()));
  }
  OSGUARD_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNil:
      return Value();
    case ValueType::kInt: {
      OSGUARD_ASSIGN_OR_RETURN(int64_t v, r.I64());
      return Value(v);
    }
    case ValueType::kFloat: {
      OSGUARD_ASSIGN_OR_RETURN(double v, r.F64());
      return Value(v);
    }
    case ValueType::kBool: {
      OSGUARD_ASSIGN_OR_RETURN(uint8_t v, r.U8());
      return Value(v != 0);
    }
    case ValueType::kString: {
      OSGUARD_ASSIGN_OR_RETURN(std::string_view s, r.Str());
      return Value(std::string(s));
    }
    case ValueType::kList: {
      OSGUARD_ASSIGN_OR_RETURN(uint32_t count, r.U32());
      // Every element is at least one tag byte, so a count beyond the
      // remaining input is corrupt — reject before allocating.
      if (count > r.remaining()) {
        return OutOfRangeError("list count " + std::to_string(count) +
                               " exceeds remaining input at offset " +
                               std::to_string(r.offset()));
      }
      std::vector<Value> items;
      items.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        OSGUARD_ASSIGN_OR_RETURN(Value item, ReadValue(r, depth + 1));
        items.push_back(std::move(item));
      }
      return Value(std::move(items));
    }
  }
  return InvalidArgumentError("unknown value tag " + std::to_string(tag) + " at offset " +
                              std::to_string(r.offset() - 1));
}

}  // namespace osguard
