// Little-endian wire primitives for the persistence layer.
//
// Everything osguard::persist puts on disk — journal frames, snapshots, the
// engine's opaque state images — is built from this one vocabulary: fixed
// little-endian integers, IEEE-754 doubles by bit pattern, u32
// length-prefixed strings, and a recursive tagged encoding for Value. The
// encoding is deliberately position-independent and free of host types so a
// journal written by one build replays on another.
//
// ByteReader is written for hostile input (the decoder fuzz target feeds it
// torn, bit-flipped, and truncated frames): every read is bounds-checked and
// fails with the byte offset in the message, and Value decoding is
// depth-limited. Decoders never crash and never allocate proportionally to a
// length field they have not yet validated against the remaining input.

#ifndef SRC_PERSIST_WIRE_H_
#define SRC_PERSIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/store/value.h"
#include "src/support/status.h"

namespace osguard {

// CRC-32 (IEEE 802.3 polynomial, reflected). Table-driven, no zlib
// dependency; the persist layer frames every payload with this.
uint32_t Crc32(std::string_view data);

// Appends primitives to a caller-owned buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  // u32 length prefix + raw bytes.
  void Str(std::string_view s);
  void Raw(std::string_view bytes) { out_->append(bytes); }

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

// Sequential bounds-checked reads over a borrowed buffer. All errors carry
// the failing byte offset so persist can annotate them with the file name.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }
  bool done() const { return offset_ == data_.size(); }

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  // u32 length prefix + raw bytes; the view aliases the underlying buffer.
  Result<std::string_view> Str();
  Result<std::string_view> Bytes(size_t n);

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

// Tagged Value encoding: ValueType byte, then the payload (recursive for
// lists, depth-limited to 32 on decode).
void WriteValue(ByteWriter& w, const Value& value);
Result<Value> ReadValue(ByteReader& r, int depth = 0);

}  // namespace osguard

#endif  // SRC_PERSIST_WIRE_H_
