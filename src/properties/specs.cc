#include "src/properties/specs.h"

#include <cstdio>

namespace osguard {
namespace {

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Ns(int64_t v) { return std::to_string(v); }

// Assembles a full guardrail declaration around a rule body.
std::string Assemble(const std::string& name, const std::string& rule,
                     const std::string& actions, const PropertySpecOptions& options) {
  std::string out = "guardrail " + name + " {\n";
  out += "  trigger: { TIMER(" + Ns(options.check_start) + ", " + Ns(options.check_interval) +
         ") },\n";
  out += "  rule: { " + rule + " },\n";
  out += "  action: { " + actions + " },\n";
  out += "  meta: { hysteresis = " + std::to_string(options.hysteresis) + ", cooldown = " +
         Ns(options.cooldown) + ", severity = " + options.severity + " }\n";
  out += "}\n";
  return out;
}

}  // namespace

std::string InDistributionSpec(const std::string& name, const std::string& score_key,
                               double max_score, const std::string& actions,
                               const PropertySpecOptions& options) {
  const std::string rule = "LOAD_OR(" + score_key + ", 0) <= " + Num(max_score);
  return Assemble(name, rule, actions, options);
}

std::string RobustnessSpec(const std::string& name, const std::string& input_key,
                           const std::string& output_key, double sensitivity,
                           const std::string& actions, const PropertySpecOptions& options) {
  const std::string w = Ns(options.window);
  // CV(out) <= k * CV(in), multiplied out to avoid division; the epsilon
  // keeps quiet windows (no variance anywhere) satisfied.
  const std::string rule = "COUNT(" + output_key + ", " + w + ") < 2 || STDDEV(" + output_key +
                           ", " + w + ") * MEAN(" + input_key + ", " + w +
                           ") <= " + Num(sensitivity) + " * STDDEV(" + input_key + ", " + w +
                           ") * MEAN(" + output_key + ", " + w + ") + 0.000001";
  return Assemble(name, rule, actions, options);
}

std::string OutputBoundsSpec(const std::string& name, const std::string& output_key,
                             const std::string& lo_key, const std::string& hi_key,
                             const std::string& actions, const PropertySpecOptions& options) {
  const std::string v = "LOAD_OR(" + output_key + ", 0)";
  const std::string rule = v + " >= LOAD_OR(" + lo_key + ", 0) && " + v + " <= LOAD_OR(" +
                           hi_key + ", 0)";
  return Assemble(name, rule, actions, options);
}

std::string OutputBoundsConstSpec(const std::string& name, const std::string& output_key,
                                  double lo, double hi, const std::string& actions,
                                  const PropertySpecOptions& options) {
  const std::string v = "LOAD_OR(" + output_key + ", " + Num(lo) + ")";
  const std::string rule = v + " >= " + Num(lo) + " && " + v + " <= " + Num(hi);
  return Assemble(name, rule, actions, options);
}

std::string DecisionQualitySpec(const std::string& name,
                                const std::string& learned_metric_key,
                                const std::string& baseline_metric_key, double min_ratio,
                                const std::string& actions,
                                const PropertySpecOptions& options) {
  const std::string w = Ns(options.window);
  const std::string rule = "COUNT(" + learned_metric_key + ", " + w + ") == 0 || MEAN(" +
                           learned_metric_key + ", " + w + ") >= " + Num(min_ratio) +
                           " * MEAN(" + baseline_metric_key + ", " + w + ")";
  return Assemble(name, rule, actions, options);
}

std::string DecisionQualityAbsoluteSpec(const std::string& name,
                                        const std::string& metric_key, double min_value,
                                        const std::string& actions,
                                        const PropertySpecOptions& options) {
  const std::string w = Ns(options.window);
  const std::string rule = "COUNT(" + metric_key + ", " + w + ") == 0 || MEAN(" + metric_key +
                           ", " + w + ") >= " + Num(min_value);
  return Assemble(name, rule, actions, options);
}

std::string DecisionOverheadSpec(const std::string& name, const std::string& cost_key,
                                 const std::string& total_key, double max_fraction,
                                 const std::string& actions,
                                 const PropertySpecOptions& options) {
  const std::string w = Ns(options.window);
  const std::string rule = "SUM(" + cost_key + ", " + w + ") <= " + Num(max_fraction) +
                           " * SUM(" + total_key + ", " + w + ")";
  return Assemble(name, rule, actions, options);
}

std::string LivenessSpec(const std::string& name, const std::string& starvation_key,
                         double max_ms, const std::string& actions,
                         const PropertySpecOptions& options) {
  const std::string w = Ns(options.window);
  const std::string rule = "COUNT(" + starvation_key + ", " + w + ") == 0 || MAX(" +
                           starvation_key + ", " + w + ") <= " + Num(max_ms);
  return Assemble(name, rule, actions, options);
}

}  // namespace osguard
