#include "src/properties/drift.h"

#include <algorithm>

#include "src/support/stats.h"

namespace osguard {

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(options), live_(options.window > 0 ? options.window : 1) {}

Status DriftDetector::Fit(const std::vector<double>& training_samples) {
  if (training_samples.empty()) {
    return InvalidArgumentError("cannot fit a drift detector on zero samples");
  }
  if (training_samples.size() <= options_.fingerprint_max) {
    fingerprint_ = training_samples;
  } else {
    // Deterministic stride subsample keeps the fingerprint bounded.
    fingerprint_.clear();
    const double stride =
        static_cast<double>(training_samples.size()) / static_cast<double>(options_.fingerprint_max);
    for (size_t i = 0; i < options_.fingerprint_max; ++i) {
      fingerprint_.push_back(training_samples[static_cast<size_t>(static_cast<double>(i) * stride)]);
    }
  }
  std::sort(fingerprint_.begin(), fingerprint_.end());
  return OkStatus();
}

void DriftDetector::Observe(double sample) { live_.Push(sample); }

double DriftDetector::Score() const {
  if (fingerprint_.empty() || live_.empty()) {
    return 0.0;
  }
  // KsStatistic sorts both sides; the fingerprint is already sorted but the
  // cost is dominated by the live window sort either way.
  return KsStatistic(fingerprint_, live_.ToVector());
}

double DriftDetector::Publish(FeatureStore& store, const std::string& key) const {
  const double score = Score();
  store.Save(key, Value(score));
  return score;
}

MultiDriftDetector::MultiDriftDetector(size_t dims, DriftDetectorOptions options) {
  detectors_.reserve(dims);
  for (size_t i = 0; i < dims; ++i) {
    detectors_.emplace_back(options);
  }
}

Status MultiDriftDetector::Fit(const std::vector<std::vector<double>>& training_rows) {
  if (training_rows.empty()) {
    return InvalidArgumentError("cannot fit on zero rows");
  }
  for (size_t d = 0; d < detectors_.size(); ++d) {
    std::vector<double> column;
    column.reserve(training_rows.size());
    for (const auto& row : training_rows) {
      if (d < row.size()) {
        column.push_back(row[d]);
      }
    }
    OSGUARD_RETURN_IF_ERROR(detectors_[d].Fit(column));
  }
  return OkStatus();
}

void MultiDriftDetector::Observe(const std::vector<double>& row) {
  const size_t n = std::min(row.size(), detectors_.size());
  for (size_t d = 0; d < n; ++d) {
    detectors_[d].Observe(row[d]);
  }
}

double MultiDriftDetector::Score() const {
  double worst = 0.0;
  for (const DriftDetector& detector : detectors_) {
    worst = std::max(worst, detector.Score());
  }
  return worst;
}

double MultiDriftDetector::Publish(FeatureStore& store, const std::string& key) const {
  const double score = Score();
  store.Save(key, Value(score));
  return score;
}

}  // namespace osguard
