// Prebuilt property templates: the taxonomy of Figure 1 as code.
//
// Each builder returns guardrail DSL source for one property class, so the
// prebuilt library goes through the same parse → analyze → compile → verify
// pipeline as hand-written specs (§3.3's "many of these can be determined
// automatically" — a harness that knows its metric keys can emit these
// without a human writing DSL).
//
// Builders take the *action block body* as a string (e.g.
// "REPLACE(linnos_model, heuristic_always_primary); REPORT(\"fallback\");")
// because which corrective action fits is deployment knowledge, not property
// knowledge (Figure 1 pairs them loosely, not rigidly).

#ifndef SRC_PROPERTIES_SPECS_H_
#define SRC_PROPERTIES_SPECS_H_

#include <string>

#include "src/support/time.h"

namespace osguard {

// Common knobs for every generated guardrail.
struct PropertySpecOptions {
  Duration check_interval = Seconds(1);
  SimTime check_start = Seconds(1);
  Duration window = Seconds(10);
  // meta attributes; hysteresis counts consecutive failing checks.
  int hysteresis = 1;
  Duration cooldown = 0;
  std::string severity = "warning";
};

// P1 — in-distribution inputs. Watches a drift score published by a
// DriftDetector (see drift.h) under `<score_key>`; violated when the score
// exceeds `max_score` (KS distance in [0,1]).
std::string InDistributionSpec(const std::string& name, const std::string& score_key,
                               double max_score, const std::string& actions,
                               const PropertySpecOptions& options = {});

// P2 — robustness of decisions. Bounded output sensitivity, unit-free: the
// output series' coefficient of variation (stddev/mean) must not exceed
// `sensitivity` times the input series' coefficient of variation. Written
// multiplied out (stddev_out * mean_in <= k * stddev_in * mean_out + eps)
// so the rule never divides by a quiet-window zero. Both series are assumed
// positive-valued (rates, latencies); an output mean driven toward zero by
// thrash makes the rule strictly harder to satisfy, which is the desired
// failure direction.
std::string RobustnessSpec(const std::string& name, const std::string& input_key,
                           const std::string& output_key, double sensitivity,
                           const std::string& actions,
                           const PropertySpecOptions& options = {});

// P3 — out-of-bounds outputs. The scalar `output_key` (the raw decision the
// subsystem publishes before clamping) must stay within [lo_key, hi_key],
// where the bounds are themselves store keys (legal ranges move at run
// time, e.g. available memory).
std::string OutputBoundsSpec(const std::string& name, const std::string& output_key,
                             const std::string& lo_key, const std::string& hi_key,
                             const std::string& actions,
                             const PropertySpecOptions& options = {});

// Same, with constant numeric bounds.
std::string OutputBoundsConstSpec(const std::string& name, const std::string& output_key,
                                  double lo, double hi, const std::string& actions,
                                  const PropertySpecOptions& options = {});

// P4 — decision quality. The windowed mean of `learned_metric_key` (higher
// is better, e.g. hit rate or accuracy) must reach at least
// `min_ratio` x the windowed mean of `baseline_metric_key`.
std::string DecisionQualitySpec(const std::string& name,
                                const std::string& learned_metric_key,
                                const std::string& baseline_metric_key, double min_ratio,
                                const std::string& actions,
                                const PropertySpecOptions& options = {});

// P4 variant — absolute threshold ("accuracy of the classifier > 90%").
std::string DecisionQualityAbsoluteSpec(const std::string& name,
                                        const std::string& metric_key, double min_value,
                                        const std::string& actions,
                                        const PropertySpecOptions& options = {});

// P5 — decision overhead. The windowed sum of inference cost must stay
// below `max_fraction` of the windowed sum of end-to-end latency (inference
// must be paid back by the policy's gains).
std::string DecisionOverheadSpec(const std::string& name, const std::string& cost_key,
                                 const std::string& total_key, double max_fraction,
                                 const std::string& actions,
                                 const PropertySpecOptions& options = {});

// P6 — fairness / liveness. The windowed max of `starvation_key`
// (milliseconds) must stay below `max_ms` ("no ready task starved for more
// than 100ms").
std::string LivenessSpec(const std::string& name, const std::string& starvation_key,
                         double max_ms, const std::string& actions,
                         const PropertySpecOptions& options = {});

}  // namespace osguard

#endif  // SRC_PROPERTIES_SPECS_H_
