// Input-distribution drift detection (the kernel-side half of P1).
//
// A DriftDetector is fitted on the training distribution of one feature
// (its sorted fingerprint). At run time the subsystem feeds it live samples;
// periodically the detector computes the two-sample Kolmogorov–Smirnov
// distance between the live window and the fingerprint and publishes it to
// the feature store, where an InDistributionSpec guardrail thresholds it.
// A MultiDriftDetector tracks one detector per feature dimension and
// publishes the max.

#ifndef SRC_PROPERTIES_DRIFT_H_
#define SRC_PROPERTIES_DRIFT_H_

#include <string>
#include <vector>

#include "src/store/feature_store.h"
#include "src/support/ring_buffer.h"
#include "src/support/status.h"

namespace osguard {

struct DriftDetectorOptions {
  size_t window = 512;          // live samples compared per evaluation
  size_t fingerprint_max = 4096; // training samples retained (subsampled)
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options = {});

  // Fits the reference fingerprint. Call once (or again after retraining).
  Status Fit(const std::vector<double>& training_samples);

  // Adds one live sample.
  void Observe(double sample);

  // KS distance in [0, 1] between the live window and the fingerprint;
  // 0 when not fitted or the live window is empty.
  double Score() const;

  // Score() and publish to `store[key]` (a scalar the DSL LOADs).
  double Publish(FeatureStore& store, const std::string& key) const;

  bool fitted() const { return !fingerprint_.empty(); }
  size_t live_samples() const { return live_.size(); }

 private:
  DriftDetectorOptions options_;
  std::vector<double> fingerprint_;  // sorted
  RingBuffer<double> live_;
};

class MultiDriftDetector {
 public:
  MultiDriftDetector(size_t dims, DriftDetectorOptions options = {});

  Status Fit(const std::vector<std::vector<double>>& training_rows);
  void Observe(const std::vector<double>& row);

  // Max per-dimension KS distance.
  double Score() const;
  double Publish(FeatureStore& store, const std::string& key) const;

  size_t dims() const { return detectors_.size(); }
  const DriftDetector& dimension(size_t i) const { return detectors_[i]; }

 private:
  std::vector<DriftDetector> detectors_;
};

}  // namespace osguard

#endif  // SRC_PROPERTIES_DRIFT_H_
