// Simulated-time vocabulary.
//
// All of osguard runs against a simulated monotonic clock expressed in
// nanoseconds since simulation start. Using a strong typedef (rather than
// std::chrono) keeps the VM's numeric model trivial: durations and instants
// are plain int64 nanosecond counts, which is also how the DSL surfaces them
// (e.g. `1s`, `250ms`, `1e9`).

#ifndef SRC_SUPPORT_TIME_H_
#define SRC_SUPPORT_TIME_H_

#include <cstdint>
#include <string>

namespace osguard {

// Instant on the simulated monotonic clock, in nanoseconds.
using SimTime = int64_t;

// Length of time, in nanoseconds.
using Duration = int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;

inline constexpr Duration Nanoseconds(int64_t n) { return n; }
inline constexpr Duration Microseconds(int64_t n) { return n * kMicrosecond; }
inline constexpr Duration Milliseconds(int64_t n) { return n * kMillisecond; }
inline constexpr Duration Seconds(int64_t n) { return n * kSecond; }

inline constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / kSecond; }
inline constexpr double ToMillis(Duration d) { return static_cast<double>(d) / kMillisecond; }
inline constexpr double ToMicros(Duration d) { return static_cast<double>(d) / kMicrosecond; }

// Renders a duration with an adaptive unit: "250ns", "13.5us", "2.0ms", "1.25s".
std::string FormatDuration(Duration d);

}  // namespace osguard

#endif  // SRC_SUPPORT_TIME_H_
