// Fixed-capacity ring buffer.
//
// Used for latency histories, sliding feature windows, and the feature
// store's time-series values. Overwrites the oldest element when full, which
// is exactly the semantics guardrail windows need ("the last N samples").

#ifndef SRC_SUPPORT_RING_BUFFER_H_
#define SRC_SUPPORT_RING_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace osguard {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : buffer_(capacity) { assert(capacity > 0); }

  size_t capacity() const { return buffer_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buffer_.size(); }

  // Appends, evicting the oldest element if at capacity.
  void Push(T value) {
    buffer_[head_] = std::move(value);
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) {
      ++size_;
    }
  }

  // Index 0 is the *oldest* retained element; size()-1 is the newest.
  const T& operator[](size_t i) const {
    assert(i < size_);
    const size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    return buffer_[(start + i) % buffer_.size()];
  }

  const T& newest() const {
    assert(!empty());
    return (*this)[size_ - 1];
  }
  const T& oldest() const {
    assert(!empty());
    return (*this)[0];
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

  // Copies the retained elements, oldest first.
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back((*this)[i]);
    }
    return out;
  }

 private:
  std::vector<T> buffer_;
  size_t head_ = 0;  // next write slot
  size_t size_ = 0;
};

}  // namespace osguard

#endif  // SRC_SUPPORT_RING_BUFFER_H_
