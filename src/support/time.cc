#include "src/support/time.h"

#include <cmath>
#include <cstdio>

namespace osguard {

std::string FormatDuration(Duration d) {
  char buf[64];
  const bool negative = d < 0;
  const double abs_ns = std::abs(static_cast<double>(d));
  const char* sign = negative ? "-" : "";
  if (abs_ns < static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.0fns", sign, abs_ns);
  } else if (abs_ns < static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.1fus", sign, abs_ns / kMicrosecond);
  } else if (abs_ns < static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.1fms", sign, abs_ns / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", sign, abs_ns / kSecond);
  }
  return buf;
}

}  // namespace osguard
