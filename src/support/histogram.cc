#include "src/support/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace osguard {

Histogram::Histogram(int sub_bucket_bits) : sub_bucket_bits_(sub_bucket_bits) {
  assert(sub_bucket_bits >= 1 && sub_bucket_bits <= 10);
  // 64 octaves x sub-buckets covers the whole int64 range.
  buckets_.assign(static_cast<size_t>(64) << sub_bucket_bits_, 0);
}

size_t Histogram::BucketFor(int64_t value) const {
  const uint64_t v = static_cast<uint64_t>(std::max<int64_t>(value, 0));
  const int sub = sub_bucket_bits_;
  if (v < (1ull << sub)) {
    return static_cast<size_t>(v);  // exact region, octave 0
  }
  // Octave k >= 1 covers [2^(sub+k-1), 2^(sub+k)), split into 2^sub
  // sub-buckets of width 2^(k-1).
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - sub + 1;
  const uint64_t sub_index = (v >> (octave - 1)) & ((1ull << sub) - 1);
  return (static_cast<size_t>(octave) << sub) + static_cast<size_t>(sub_index);
}

int64_t Histogram::BucketMidpoint(size_t index) const {
  const int sub = sub_bucket_bits_;
  const size_t octave = index >> sub;
  const uint64_t sub_index = index & ((1ull << sub) - 1);
  if (octave == 0) {
    return static_cast<int64_t>(sub_index);  // exact region
  }
  const int shift = static_cast<int>(octave) - 1;  // sub-bucket width = 2^shift
  const uint64_t base = (sub_index | (1ull << sub)) << shift;
  const uint64_t width = 1ull << shift;
  return static_cast<int64_t>(base + width / 2);
}

void Histogram::Record(int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(int64_t value, uint64_t n) {
  if (n == 0) {
    return;
  }
  value = std::max<int64_t>(value, 0);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[BucketFor(value)] += n;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

double Histogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  assert(sub_bucket_bits_ == other.sub_bucket_bits_);
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%lld p90=%lld p99=%lld p999=%lld max=%lld",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<long long>(ValueAtQuantile(0.50)),
                static_cast<long long>(ValueAtQuantile(0.90)),
                static_cast<long long>(ValueAtQuantile(0.99)),
                static_cast<long long>(ValueAtQuantile(0.999)),
                static_cast<long long>(max()));
  return buf;
}

}  // namespace osguard
