// Deterministic random-number generation.
//
// Every stochastic component in osguard (device models, workload generators,
// ML weight init) draws from an explicitly-seeded Rng so that simulations and
// experiments are bit-for-bit reproducible. The engine is splitmix64-seeded
// xoshiro256**, which is small, fast, and has no global state.

#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace osguard {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator. Equal seeds yield equal streams.
  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (caches the second deviate).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed latencies).
  double Pareto(double xm, double alpha);

  // Zipf-like rank in [0, n) with exponent s >= 0 (s == 0 is uniform).
  // Uses the rejection-inversion-free CDF-table-less approximation that is
  // accurate enough for workload skew; n must be >= 1.
  uint64_t Zipf(uint64_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace osguard

#endif  // SRC_SUPPORT_RNG_H_
