// Minimal leveled logger.
//
// The runtime's REPORT action and the engine's diagnostics go through this
// logger. Sinks are pluggable so tests can capture output and the benchmark
// harnesses can silence it. The logger is process-global but all mutation is
// mutex-guarded; monitor hot paths only pay an atomic level check when the
// message is below the active level.

#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace osguard {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

std::string_view LogLevelName(LogLevel level);

// Receives every emitted record at or above the active level.
using LogSink = std::function<void(LogLevel, std::string_view message)>;

class Logger {
 public:
  static Logger& Global();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool Enabled(LogLevel level) const { return static_cast<int>(level) >= level_.load(); }

  // Replaces all sinks. Passing an empty vector restores the default stderr sink.
  void SetSinks(std::vector<LogSink> sinks);

  // Adds a sink alongside the existing ones.
  void AddSink(LogSink sink);

  void Log(LogLevel level, std::string_view message);

 private:
  Logger();

  std::atomic<int> level_;
  std::mutex mu_;
  std::vector<LogSink> sinks_;
};

// Streaming helper: OSGUARD_LOG(kInfo) << "loaded " << n << " guardrails";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define OSGUARD_LOG(severity)                                             \
  if (!::osguard::Logger::Global().Enabled(::osguard::LogLevel::severity)) \
    ;                                                                     \
  else                                                                    \
    ::osguard::LogMessage(::osguard::LogLevel::severity)

}  // namespace osguard

#endif  // SRC_SUPPORT_LOGGING_H_
