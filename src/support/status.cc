#include "src/support/status.h"

namespace osguard {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kParseError:
      return "PARSE_ERROR";
    case ErrorCode::kSemanticError:
      return "SEMANTIC_ERROR";
    case ErrorCode::kVerifierError:
      return "VERIFIER_ERROR";
    case ErrorCode::kExecutionError:
      return "EXECUTION_ERROR";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Annotate(const Status& status, std::string_view context) {
  if (status.ok()) {
    return status;
  }
  std::string message(context);
  message += ": ";
  message += status.message();
  return Status(status.code(), std::move(message));
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status ParseError(std::string message) {
  return Status(ErrorCode::kParseError, std::move(message));
}
Status SemanticError(std::string message) {
  return Status(ErrorCode::kSemanticError, std::move(message));
}
Status VerifierError(std::string message) {
  return Status(ErrorCode::kVerifierError, std::move(message));
}
Status ExecutionError(std::string message) {
  return Status(ErrorCode::kExecutionError, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace osguard
