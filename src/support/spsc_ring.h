// Single-producer single-consumer lock-free ring (osguard::support).
//
// The sharded guardrail engine's event channel: the coordinator (single
// producer) packs evaluation envelopes into one ring per shard, each shard
// worker (single consumer) drains its own ring. The classic bounded SPSC
// design — a power-of-two slot array indexed by free-running head/tail
// counters — needs exactly one release store per side:
//
//   * producer: writes the slot, then publishes it with a release store of
//     head_; the consumer's acquire load of head_ makes the slot contents
//     visible (happens-before).
//   * consumer: reads the slot, then retires it with a release store of
//     tail_; the producer's acquire load of tail_ knows the slot may be
//     reused.
//
// Counters are cache-line separated so the producer and consumer do not
// false-share, and each side caches the opposite counter to skip the
// cross-core load in the common case (the "batched" SPSC refinement).
//
// TryPush/TryPop never block and never allocate; capacity is fixed at
// construction. A full ring is the caller's backpressure signal (the
// sharded engine flushes the batch).

#ifndef SRC_SUPPORT_SPSC_RING_H_
#define SRC_SUPPORT_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace osguard {

template <typename T>
class SpscRing {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_.resize(cap);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false when the ring is full.
  bool TryPush(T value) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity()) {
        return false;
      }
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) {
        return false;
      }
    }
    *out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy (exact when called from either endpoint's thread
  // between its own operations). Used for the ring high-water telemetry.
  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
  }
  bool empty() const { return size() == 0; }

 private:
  size_t mask_ = 0;
  std::vector<T> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};  // producer-owned
  alignas(64) std::atomic<uint64_t> tail_{0};  // consumer-owned
  alignas(64) uint64_t cached_tail_ = 0;  // producer's cache of tail_
  alignas(64) uint64_t cached_head_ = 0;  // consumer's cache of head_
};

}  // namespace osguard

#endif  // SRC_SUPPORT_SPSC_RING_H_
