#include "src/support/stats.h"

#include <algorithm>
#include <cassert>

namespace osguard {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Reset() { *this = StreamingStats(); }

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  assert(quantile > 0.0 && quantile < 1.0);
  Reset();
}

void P2Quantile::Reset() {
  count_ = 0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
    }
    return;
  }
  // Locate the cell containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }
  for (int i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }
  ++count_;
  // Adjust interior markers toward their desired positions with parabolic
  // interpolation, falling back to linear when parabolic would disorder them.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      const double np = positions_[i + 1];
      const double nm = positions_[i - 1];
      const double n = positions_[i];
      double candidate = h + sign / (np - nm) *
                                 ((n - nm + sign) * (hp - h) / (np - n) +
                                  (np - n - sign) * (h - hm) / (n - nm));
      if (hm < candidate && candidate < hp) {
        heights_[i] = candidate;
      } else {
        // Linear adjustment toward the neighbor in the movement direction.
        const int j = i + static_cast<int>(sign);
        heights_[i] = h + sign * (heights_[j] - h) / (positions_[j] - n);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    std::vector<double> v(heights_, heights_ + count_);
    return ExactQuantile(std::move(v), q_);
  }
  return heights_[2];
}

double ExactQuantile(std::vector<double> values, double quantile) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  if (quantile <= 0.0) {
    return values.front();
  }
  if (quantile >= 1.0) {
    return values.back();
  }
  // Linear interpolation between closest ranks (type-7, numpy default).
  const double pos = quantile * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) {
    return values.back();
  }
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) {
      ++ia;
    }
    while (ib < b.size() && b[ib] <= x) {
      ++ib;
    }
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  StreamingStats sx;
  StreamingStats sy;
  for (size_t i = 0; i < x.size(); ++i) {
    sx.Add(x[i]);
    sy.Add(y[i]);
  }
  const double mx = sx.mean();
  const double my = sy.mean();
  double cov = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mx) * (y[i] - my);
  }
  const double denom = sx.stddev() * sy.stddev() * static_cast<double>(x.size() - 1);
  if (denom == 0.0) {
    return 0.0;
  }
  return cov / denom;
}

}  // namespace osguard
