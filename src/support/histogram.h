// Log-bucketed latency histogram (HdrHistogram-style).
//
// Records non-negative values (typically nanosecond latencies) into
// exponentially sized buckets with bounded relative error, supporting
// percentile queries without retaining samples. This is what REPORT-style
// guardrails and the benchmark harnesses use to summarize latency series.

#ifndef SRC_SUPPORT_HISTOGRAM_H_
#define SRC_SUPPORT_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace osguard {

class Histogram {
 public:
  // Values are bucketed with ~2^-sub_bucket_bits relative error; the default
  // (5 bits -> 32 sub-buckets per octave) gives ~3% error, plenty for latency
  // reporting.
  explicit Histogram(int sub_bucket_bits = 5);

  // Records a value; negative values are clamped to zero.
  void Record(int64_t value);
  void RecordN(int64_t value, uint64_t count);

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }
  double mean() const;

  // Returns the value at the given quantile in [0, 1], with bucket-granular
  // resolution. 0 if empty.
  int64_t ValueAtQuantile(double q) const;

  void Merge(const Histogram& other);
  void Reset();

  // Multi-line textual rendering: count/mean/p50/p90/p99/p999/max.
  std::string Summary() const;

 private:
  size_t BucketFor(int64_t value) const;
  int64_t BucketMidpoint(size_t index) const;

  int sub_bucket_bits_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace osguard

#endif  // SRC_SUPPORT_HISTOGRAM_H_
