// Streaming statistics.
//
// Guardrail properties are almost always statements about statistics of a
// stream ("mean page-fault latency over 10s", "p99 under 2ms", "rate above
// 5%"). These accumulators are the shared numeric substrate: O(1) memory,
// single-pass, no allocation on the update path.

#ifndef SRC_SUPPORT_STATS_H_
#define SRC_SUPPORT_STATS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace osguard {

// Welford online mean/variance plus min/max.
class StreamingStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset();

  // Pools another accumulator into this one (parallel Welford merge).
  void Merge(const StreamingStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponentially weighted moving average. alpha in (0, 1]; larger alpha
// weights recent samples more.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return initialized_ ? value_ : 0.0; }
  void Reset() { initialized_ = false; }

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0.0;
};

// P² (Jain & Chlamtac) single-quantile estimator: O(1) memory estimate of an
// arbitrary quantile of a stream. Exact until five samples are seen.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void Add(double x);
  // Current estimate; exact for <= 5 samples, interpolated after.
  double value() const;
  size_t count() const { return count_; }
  void Reset();

 private:
  double q_;
  size_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

// Exact empirical quantile over a bounded sample buffer (used where windows
// are small and exactness matters, e.g. verifying P2 itself and computing
// training-set distribution fingerprints).
double ExactQuantile(std::vector<double> values, double quantile);

// Two-sample Kolmogorov-Smirnov statistic (max CDF distance) between sorted
// samples; the in-distribution property (P1) thresholds on this.
double KsStatistic(std::vector<double> a, std::vector<double> b);

// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace osguard

#endif  // SRC_SUPPORT_STATS_H_
