#include "src/support/rng.h"

#include <cassert>

namespace osguard {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
  has_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n >= 1);
  if (s <= 0.0) {
    return static_cast<uint64_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  // Inverse-CDF on the continuous bounded Pareto approximation of the Zipf
  // distribution, then clamp to rank range. Good skew fidelity without an
  // O(n) harmonic table.
  const double u = NextDouble();
  double rank;
  if (s == 1.0) {
    rank = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double one_minus_s = 1.0 - s;
    const double max_term = std::pow(static_cast<double>(n), one_minus_s);
    rank = std::pow(u * (max_term - 1.0) + 1.0, 1.0 / one_minus_s);
  }
  uint64_t r = static_cast<uint64_t>(rank);
  if (r >= n) {
    r = n - 1;
  }
  return r;
}

}  // namespace osguard
