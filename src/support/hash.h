// Heterogeneous string hashing for unordered containers.
//
// Containers keyed by std::string declared with (TransparentStringHash,
// std::equal_to<>) accept std::string_view / const char* probes directly —
// C++20 heterogeneous lookup — so hot-path lookups (feature-store keys,
// function hook names) never construct a temporary std::string.

#ifndef SRC_SUPPORT_HASH_H_
#define SRC_SUPPORT_HASH_H_

#include <cstddef>
#include <functional>
#include <string_view>

namespace osguard {

struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace osguard

#endif  // SRC_SUPPORT_HASH_H_
