#include "src/support/logging.h"

#include <cstdio>

namespace osguard {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {

void StderrSink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(LogLevelName(level).size()),
               LogLevelName(level).data(), static_cast<int>(message.size()), message.data());
}

}  // namespace

Logger::Logger() : level_(static_cast<int>(LogLevel::kWarning)) {
  sinks_.push_back(StderrSink);
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::SetSinks(std::vector<LogSink> sinks) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sinks.empty()) {
    sinks_.clear();
    sinks_.push_back(StderrSink);
  } else {
    sinks_ = std::move(sinks);
  }
}

void Logger::AddSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Logger::Log(LogLevel level, std::string_view message) {
  if (!Enabled(level)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) {
    sink(level, message);
  }
}

}  // namespace osguard
