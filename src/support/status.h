// Lightweight error-handling vocabulary used across osguard.
//
// The library never throws for expected failure modes (bad specs, verifier
// rejections, missing keys); those are reported through Status / Result<T>.
// Exceptions are reserved for programming errors surfaced by the standard
// library itself.

#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace osguard {

// Error categories, modeled after the small set of conditions the framework
// actually distinguishes at recovery time.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup miss (feature-store key, policy name, ...)
  kAlreadyExists,     // duplicate registration
  kFailedPrecondition,// operation illegal in current state
  kOutOfRange,        // index/bound violation
  kResourceExhausted, // capacity limits (retrain queue, store size, ...)
  kParseError,        // DSL lexer/parser failure
  kSemanticError,     // DSL semantic-analysis failure
  kVerifierError,     // bytecode rejected by the static verifier
  kExecutionError,    // runtime fault while executing a monitor program
  kInternal,          // invariant broken inside the library
};

// Human-readable name for an ErrorCode ("kOk" -> "OK", etc.).
std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on the success path (no message
// allocation happens for kOk).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status() / OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "PARSE_ERROR: unexpected token" style rendering for logs and tests.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Returns `status` with `context` prefixed onto its message ("context:
// original message"), preserving the error code. OK statuses pass through
// untouched, so call sites can annotate unconditionally:
//
//   OSGUARD_RETURN_IF_ERROR(Annotate(DecodeFrame(r), "journal.wal @ 128"));
//
// Used by the spec loader (file / line context) and the persist layer
// (file / byte-offset context on decode failures).
Status Annotate(const Status& status, std::string_view context);

// Convenience constructors mirroring the ErrorCode list.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status ParseError(std::string message);
Status SemanticError(std::string message);
Status VerifierError(std::string message);
Status ExecutionError(std::string message);
Status InternalError(std::string message);

// Result<T> is a value-or-Status sum type (std::expected is C++23; this is the
// minimal subset the codebase needs).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result<T> must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

// Propagate-on-error helpers, used pervasively in the DSL/VM pipeline.
#define OSGUARD_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::osguard::Status osguard_status_ = (expr);    \
    if (!osguard_status_.ok()) {                   \
      return osguard_status_;                      \
    }                                              \
  } while (0)

#define OSGUARD_ASSIGN_OR_RETURN(lhs, expr)        \
  OSGUARD_ASSIGN_OR_RETURN_IMPL_(                  \
      OSGUARD_CONCAT_(osguard_result_, __LINE__), lhs, expr)

#define OSGUARD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

#define OSGUARD_CONCAT_INNER_(a, b) a##b
#define OSGUARD_CONCAT_(a, b) OSGUARD_CONCAT_INNER_(a, b)

}  // namespace osguard

#endif  // SRC_SUPPORT_STATUS_H_
