// The LinnOS-style I/O latency classifier.
//
// LinnOS (OSDI'20) trains a light, 3-layer fully-connected network that
// classifies each I/O as fast or slow from the recent latency history and
// the current queue state. We reuse the block layer's feature vector
// (kIoFeatureDim features; see src/sim/blk_layer.h) with z-score
// normalization fitted on the training set, and an MLP sized like the
// paper's (two small hidden layers, sigmoid output).

#ifndef SRC_LINNOS_MODEL_H_
#define SRC_LINNOS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/dataset.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"
#include "src/support/status.h"

namespace osguard {

struct LinnosModelConfig {
  std::vector<int> hidden = {16, 16};
  double learning_rate = 0.05;
  int epochs = 12;
  int batch_size = 32;
  double decision_threshold = 0.5;  // P(slow) above this -> predict slow
  uint64_t seed = 2020;
};

class LinnosModel {
 public:
  static Result<LinnosModel> Create(size_t feature_dim, const LinnosModelConfig& config = {});

  // Fits the normalizer on `data` and trains the network. Labels must be
  // 0 (fast) / 1 (slow). May be called again on new data (retraining).
  Result<TrainReport> Train(const Dataset& data);

  // P(slow) for a raw (unnormalized) feature vector.
  double PredictSlowProbability(const std::vector<double>& features) const;
  bool PredictSlow(const std::vector<double>& features) const {
    return PredictSlowProbability(features) >= config_.decision_threshold;
  }

  // Confusion matrix of the classifier on a labeled dataset.
  ConfusionMatrix Evaluate(const Dataset& data) const;

  bool trained() const { return trained_; }
  const Normalizer& normalizer() const { return normalizer_; }
  Mlp& network() { return *network_; }

 private:
  LinnosModel(LinnosModelConfig config, std::unique_ptr<Mlp> network)
      : config_(config), network_(std::move(network)) {}

  LinnosModelConfig config_;
  std::unique_ptr<Mlp> network_;
  Normalizer normalizer_;
  bool trained_ = false;
};

}  // namespace osguard

#endif  // SRC_LINNOS_MODEL_H_
