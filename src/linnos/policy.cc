#include "src/linnos/policy.h"

#include "src/sim/kernel.h"

namespace osguard {

Result<Dataset> CollectTrainingData(const IoPhase& phase, const TrainingRunOptions& options) {
  Kernel kernel;
  SsdConfig primary_config = options.device;
  SsdConfig replica_config = options.device;
  replica_config.seed = options.device.seed + 1;
  SsdDevice primary("train-primary", primary_config);
  SsdDevice replica("train-replica", replica_config);
  BlockLayer blk(kernel, &primary, &replica, options.blk);

  // Default policy: reactive only (no model), so labels reflect the raw
  // primary-path latency distribution.
  IoPhase training_phase = phase;
  training_phase.duration = options.duration;
  training_phase.arrivals_per_sec = options.arrivals_per_sec;
  IoTraceGenerator generator({training_phase}, options.trace_seed);
  const std::vector<IoRequest> trace = generator.Generate();
  if (trace.empty()) {
    return InvalidArgumentError("training trace is empty; increase duration or rate");
  }

  Dataset data;
  for (const IoRequest& request : trace) {
    kernel.Run(request.at);
    // Snapshot features exactly as the live policy would see them, *before*
    // the I/O executes.
    const IoContext context = blk.MakeContext(request.lba, request.is_write);
    const IoOutcome outcome = blk.SubmitIo(request.lba, request.is_write);
    // Label against the primary path: redirected/revoked I/Os reveal the
    // primary was slow.
    const bool slow = outcome.revoked || outcome.actually_slow;
    data.Add(context.features, slow ? 1.0 : 0.0);
  }
  return data;
}

Result<std::shared_ptr<LinnosModel>> TrainLinnosModel(const IoPhase& phase,
                                                      const TrainingRunOptions& options,
                                                      const LinnosModelConfig& model_config) {
  OSGUARD_ASSIGN_OR_RETURN(Dataset data, CollectTrainingData(phase, options));
  OSGUARD_ASSIGN_OR_RETURN(LinnosModel model,
                           LinnosModel::Create(kIoFeatureDim, model_config));
  auto shared = std::make_shared<LinnosModel>(std::move(model));
  OSGUARD_RETURN_IF_ERROR(shared->Train(data).status());
  return shared;
}

}  // namespace osguard
