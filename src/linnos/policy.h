// The learned submit-predictor policy wrapping a LinnosModel, plus the
// offline trainer that builds its dataset by replaying a trace through a
// scratch block layer.

#ifndef SRC_LINNOS_POLICY_H_
#define SRC_LINNOS_POLICY_H_

#include <memory>
#include <string>

#include "src/linnos/model.h"
#include "src/sim/blk_layer.h"
#include "src/sim/ssd_device.h"
#include "src/support/status.h"
#include "src/wl/iogen.h"

namespace osguard {

// Registered as "linnos_model"; bind to slot blk.submit_predictor.
class LinnosSubmitPolicy : public IoSubmitPolicy {
 public:
  // `model` is shared so the retrain loop can update it in place while the
  // block layer keeps its policy pointer.
  LinnosSubmitPolicy(std::shared_ptr<LinnosModel> model,
                     Duration inference_cost = Microseconds(5))
      : model_(std::move(model)), inference_cost_(inference_cost) {}

  std::string name() const override { return "linnos_model"; }
  bool is_learned() const override { return true; }
  bool PredictSlow(const IoContext& context) override {
    return model_->PredictSlow(context.features);
  }
  Duration inference_cost() const override { return inference_cost_; }

  LinnosModel& model() { return *model_; }
  std::shared_ptr<LinnosModel> shared_model() { return model_; }

 private:
  std::shared_ptr<LinnosModel> model_;
  Duration inference_cost_;
};

struct TrainingRunOptions {
  SsdConfig device;           // primary/replica template (seeds are offset)
  BlockLayerConfig blk;
  uint64_t trace_seed = 99;
  Duration duration = Seconds(20);
  double arrivals_per_sec = 2000.0;
};

// Replays a baseline-phase trace through a scratch kernel + devices +
// block layer running the reactive default policy, recording
// (features, actually-slow) pairs — the offline training pipeline LinnOS
// assumes. Returns the labeled dataset.
Result<Dataset> CollectTrainingData(const IoPhase& phase, const TrainingRunOptions& options);

// End-to-end convenience: collect data for `phase` and train a fresh model.
Result<std::shared_ptr<LinnosModel>> TrainLinnosModel(const IoPhase& phase,
                                                      const TrainingRunOptions& options,
                                                      const LinnosModelConfig& model_config = {});

}  // namespace osguard

#endif  // SRC_LINNOS_POLICY_H_
