#include "src/linnos/harness.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/sim/kernel.h"
#include "src/wl/iogen.h"

namespace osguard {

// Listing 2 of the paper, with this kernel's key names: check every second
// that the false-submit rate stays at or below 5%; otherwise disable the
// model (fall back to default reactive behavior) and log the rate.
const char kListing2Guardrail[] = R"(
guardrail low-false-submit {
  trigger: {
    TIMER(1s, 1s)   // periodically check every 1s
  },
  rule: {
    LOAD_OR(false_submit_rate, 0) <= 0.05
  },
  action: {
    SAVE(blk.ml_enabled, false);
    REPORT("false submit guardrail tripped", false_submit_rate);
  }
}
)";

const char kRetrainGuardrail[] = R"(
guardrail retrain-on-false-submit {
  trigger: { TIMER(1s, 1s) },
  rule: { LOAD_OR(false_submit_rate, 0) <= 0.05 },
  action: {
    RETRAIN(linnos_model, recent_io_window);
    REPORT("retrain requested", false_submit_rate);
  },
  meta: { cooldown = 3s }  // give a retrain time to land before re-firing
}
)";

std::string MakeFaultStormChaosSpec(uint64_t seed, double spike_p, double mispredict_p) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "chaos {\n"
                "  seed = %llu,\n"
                "  site ssd.latency_spike { mode = bernoulli, p = %.4f, latency = 4ms },\n"
                "  site ssd.io_error { mode = bernoulli, p = %.4f },\n"
                "  site model.mispredict { mode = burst, period = 2s, burst = 400ms, p = %.4f }\n"
                "}\n",
                static_cast<unsigned long long>(seed), spike_p,
                std::max(spike_p / 20.0, 0.0001), mispredict_p);
  return std::string(buf);
}

Result<LinnosRunResult> RunLinnosConfiguration(const Figure2Options& options,
                                               std::shared_ptr<LinnosModel> model,
                                               const std::string& guardrail_source) {
  EngineOptions engine_options;
  if (options.enable_retrain_loop) {
    // The in-run trainer services requests quickly; keep the queue's abuse
    // throttle but at a turnaround matched to the drain interval.
    engine_options.retrain.min_interval = Seconds(2);
  }
  Kernel kernel(engine_options);
  // The chaos engine outlives every subsystem that borrows it. Faults target
  // the primary only — the replica is the recovery path, and injecting there
  // too would make failover recursively unreliable (a different experiment).
  ChaosEngine chaos;
  const bool chaos_enabled = !options.chaos_source.empty();
  if (chaos_enabled) {
    kernel.AttachChaos(&chaos);
  }
  SsdConfig primary_config = options.device;
  SsdConfig replica_config = options.device;
  replica_config.seed = options.device.seed + 1;
  SsdDevice primary("primary", primary_config);
  SsdDevice replica("replica", replica_config);
  if (chaos_enabled) {
    primary.AttachChaos(&chaos);
  }
  BlockLayer blk(kernel, &primary, &replica, options.blk);

  if (model != nullptr) {
    auto policy = std::make_shared<LinnosSubmitPolicy>(model);
    OSGUARD_RETURN_IF_ERROR(kernel.registry().Register(policy));
    OSGUARD_RETURN_IF_ERROR(
        kernel.registry().BindSlot(options.blk.policy_slot, policy->name()));
  }

  LinnosRunResult result;
  if (!guardrail_source.empty()) {
    OSGUARD_RETURN_IF_ERROR(kernel.LoadGuardrails(guardrail_source));
    result.guardrail_loaded = true;
  }

  // Arm the fault plans (and load any guardrails riding in the chaos spec).
  // Weight corruption is a one-shot pre-run fault drawn through the normal
  // site machinery, so it replays bit-identically with the chaos seed; the
  // pristine weights are restored before returning because `model` is shared
  // across the experiment's configurations.
  std::vector<double> pristine_weights;
  if (chaos_enabled) {
    OSGUARD_RETURN_IF_ERROR(kernel.LoadGuardrails(options.chaos_source));
    const ChaosSiteId corrupt_site = chaos.FindSite(kChaosSiteWeightCorrupt);
    if (model != nullptr && corrupt_site != kInvalidChaosSite) {
      if (const FaultDecision fault = chaos.Query(corrupt_site, 0)) {
        pristine_weights = model->network().GetWeights();
        const double stddev = fault.value > 0.0 ? fault.value : 0.1;
        model->network().PerturbWeights(stddev, chaos.seed() ^ 0x77656967687473ull);
      }
    }
  }

  // Constant workload; the drift is device-side. Same trace for every
  // configuration (seeds fixed by options).
  IoPhase phase;
  phase.duration = options.before_drift + options.after_drift;
  phase.arrivals_per_sec = options.arrivals_per_sec;
  phase.write_fraction = 0.05;
  phase.zipf_skew = 0.6;
  IoTraceGenerator generator({phase}, options.trace_seed);
  const std::vector<IoRequest> trace = generator.Generate();

  // Device aging kicks in at the drift point.
  kernel.queue().ScheduleAt(options.before_drift, [&primary, &options](SimTime) {
    primary.ScaleGcPressure(options.drift_gc_factor);
  });

  // Bucketed latency series.
  const Duration total = options.before_drift + options.after_drift;
  const size_t buckets = static_cast<size_t>((total + options.bucket - 1) / options.bucket);
  std::vector<double> bucket_sum(buckets, 0.0);
  std::vector<uint64_t> bucket_count(buckets, 0);
  double before_sum = 0.0;
  uint64_t before_count = 0;
  double after_sum = 0.0;
  uint64_t after_count = 0;

  // A3 support: recent labeled observations from the live predicted-fast
  // path (redirected I/Os never reveal the primary's latency, so they carry
  // no label), plus a periodic queue drain standing in for the offline
  // trainer.
  Dataset recent_window;
  size_t recent_next = 0;  // ring cursor once at capacity
  LinnosRunResult result_counters;
  SimTime next_retrain_check = options.retrain_check_interval;

  for (const IoRequest& request : trace) {
    kernel.Run(request.at);  // pumps guardrail TIMER monitors up to `at`
    if (options.enable_retrain_loop && request.at >= next_retrain_check) {
      next_retrain_check = request.at + options.retrain_check_interval;
      while (auto retrain = kernel.engine().retrain_queue().Pop()) {
        if (retrain->model == "linnos_model" && model != nullptr &&
            recent_window.size() >= 500) {
          if (model->Train(recent_window).ok()) {
            ++result_counters.retrains_serviced;
          }
        }
      }
    }
    const IoContext context = options.enable_retrain_loop
                                  ? blk.MakeContext(request.lba, request.is_write)
                                  : IoContext{};
    const IoOutcome outcome = blk.SubmitIo(request.lba, request.is_write);
    if (options.enable_retrain_loop && outcome.used_model && !outcome.redirected) {
      const double label = outcome.actually_slow ? 1.0 : 0.0;
      if (recent_window.size() < options.retrain_window_capacity) {
        recent_window.Add(context.features, label);
      } else {
        recent_window.features[recent_next] = context.features;
        recent_window.labels[recent_next] = label;
        recent_next = (recent_next + 1) % options.retrain_window_capacity;
      }
    }
    const double latency_us = ToMicros(outcome.latency);
    const size_t bucket_index =
        std::min(buckets - 1, static_cast<size_t>(request.at / options.bucket));
    bucket_sum[bucket_index] += latency_us;
    bucket_count[bucket_index] += 1;
    if (request.at < options.before_drift) {
      before_sum += latency_us;
      ++before_count;
    } else {
      after_sum += latency_us;
      ++after_count;
    }
  }
  kernel.Run(total);

  for (size_t i = 0; i < buckets; ++i) {
    LatencyPoint point;
    point.time_s = ToSeconds(static_cast<Duration>(i) * options.bucket) +
                   ToSeconds(options.bucket) / 2.0;
    point.ios = bucket_count[i];
    point.mean_latency_us = bucket_count[i] == 0
                                ? 0.0
                                : bucket_sum[i] / static_cast<double>(bucket_count[i]);
    result.series.push_back(point);
  }
  result.blk = blk.stats();
  result.retrains_serviced = result_counters.retrains_serviced;
  result.injected_faults = chaos_enabled ? chaos.total_injected() : 0;
  if (!pristine_weights.empty() && model != nullptr) {
    OSGUARD_RETURN_IF_ERROR(model->network().SetWeights(pristine_weights));
  }
  result.mean_latency_us_before =
      before_count == 0 ? 0.0 : before_sum / static_cast<double>(before_count);
  result.mean_latency_us_after =
      after_count == 0 ? 0.0 : after_sum / static_cast<double>(after_count);
  result.ml_enabled_at_end =
      kernel.store().LoadOr("blk.ml_enabled", Value(true)).AsBool().value_or(true);

  if (result.guardrail_loaded) {
    for (const ReportRecord& record : kernel.engine().reporter().Records()) {
      if (record.kind == ReportKind::kViolation) {
        result.guardrail_fired = true;
        result.trigger_time_s = ToSeconds(record.time);
        break;
      }
    }
  }
  return result;
}

Result<Figure2Result> RunFigure2Experiment(const Figure2Options& options) {
  // Offline training on a clean baseline-phase trace (different seed from
  // the evaluation trace, as LinnOS trains on history).
  TrainingRunOptions training;
  training.device = options.device;
  training.blk = options.blk;
  training.trace_seed = options.trace_seed + 1000;
  training.duration = std::max<Duration>(options.before_drift, Seconds(10));
  training.arrivals_per_sec = options.arrivals_per_sec;
  const IoPhase baseline_phase =
      MakeDriftPhases(options.before_drift, options.after_drift,
                      options.arrivals_per_sec)[0];
  OSGUARD_ASSIGN_OR_RETURN(std::shared_ptr<LinnosModel> model,
                           TrainLinnosModel(baseline_phase, training, options.model));

  Figure2Result result;
  result.drift_time_s = ToSeconds(options.before_drift);

  // Classifier quality on held-out pre-drift traffic.
  TrainingRunOptions holdout = training;
  holdout.trace_seed = options.trace_seed + 2000;
  OSGUARD_ASSIGN_OR_RETURN(Dataset holdout_data,
                           CollectTrainingData(baseline_phase, holdout));
  result.model_quality_before = model->Evaluate(holdout_data);

  const std::string guardrail_source =
      options.guardrail_source.empty() ? kListing2Guardrail : options.guardrail_source;

  OSGUARD_ASSIGN_OR_RETURN(result.without_guardrail,
                           RunLinnosConfiguration(options, model, ""));
  OSGUARD_ASSIGN_OR_RETURN(result.with_guardrail,
                           RunLinnosConfiguration(options, model, guardrail_source));
  OSGUARD_ASSIGN_OR_RETURN(result.baseline,
                           RunLinnosConfiguration(options, nullptr, ""));
  return result;
}

}  // namespace osguard
