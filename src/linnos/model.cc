#include "src/linnos/model.h"

namespace osguard {

Result<LinnosModel> LinnosModel::Create(size_t feature_dim, const LinnosModelConfig& config) {
  if (feature_dim == 0) {
    return InvalidArgumentError("feature_dim must be >= 1");
  }
  MlpConfig mlp_config;
  mlp_config.layer_sizes.push_back(static_cast<int>(feature_dim));
  for (int h : config.hidden) {
    mlp_config.layer_sizes.push_back(h);
  }
  mlp_config.layer_sizes.push_back(1);
  mlp_config.hidden_activation = Activation::kRelu;
  mlp_config.output_activation = Activation::kSigmoid;
  mlp_config.loss = LossKind::kBinaryCrossEntropy;
  mlp_config.learning_rate = config.learning_rate;
  mlp_config.epochs = config.epochs;
  mlp_config.batch_size = config.batch_size;
  mlp_config.seed = config.seed;
  OSGUARD_ASSIGN_OR_RETURN(Mlp network, Mlp::Create(mlp_config));
  return LinnosModel(config, std::make_unique<Mlp>(std::move(network)));
}

Result<TrainReport> LinnosModel::Train(const Dataset& data) {
  if (data.size() == 0) {
    return InvalidArgumentError("training set is empty");
  }
  normalizer_.Fit(data);
  const Dataset normalized = normalizer_.Apply(data);
  OSGUARD_ASSIGN_OR_RETURN(TrainReport report, network_->Train(normalized));
  trained_ = true;
  return report;
}

double LinnosModel::PredictSlowProbability(const std::vector<double>& features) const {
  if (!trained_) {
    return 0.0;  // untrained model vouches for nothing being slow
  }
  return network_->PredictScalar(normalizer_.Apply(features));
}

ConfusionMatrix LinnosModel::Evaluate(const Dataset& data) const {
  ConfusionMatrix matrix;
  for (size_t i = 0; i < data.size(); ++i) {
    matrix.Add(PredictSlow(data.features[i]), data.labels[i] >= 0.5);
  }
  return matrix;
}

}  // namespace osguard
