// The Figure-2 experiment harness.
//
// Reproduces §5 of the paper: LinnOS drives predictive failover. Mid-run the
// primary device's garbage-collection pressure spikes (aging /
// fragmentation — a device-side distribution shift the host features cannot
// see), so the model keeps vouching "fast" for I/Os that hit multi-ms GC
// pauses: false submits spike. The Listing-2 guardrail — TIMER every
// second, rule `LOAD(false_submit_rate) <= 0.05`, action
// `SAVE(blk.ml_enabled, false)` — trips and falls back to reactive
// revocation, which caps every slow I/O at timeout + reissue cost. The
// harness runs the same trace with and without the guardrail (plus the
// reactive baseline) and reports the bucketed moving average of I/O latency,
// and the trigger time.
//
// Why this matches the paper's figure: after the guardrail fires, the
// with-guardrail curve returns toward the pre-drift level (slow I/Os are
// revoked at a bounded cost), while the without-guardrail curve stays
// elevated for the rest of the run.

#ifndef SRC_LINNOS_HARNESS_H_
#define SRC_LINNOS_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/linnos/policy.h"
#include "src/sim/blk_layer.h"
#include "src/sim/ssd_device.h"
#include "src/support/status.h"
#include "src/support/time.h"

namespace osguard {

// The Listing-2 guardrail, verbatim modulo key names of this kernel.
extern const char kListing2Guardrail[];

// Alternative corrective action for the same property: RETRAIN the model on
// the recent window instead of disabling it (A3 instead of A2's fallback).
// Used by the action-comparison ablation.
extern const char kRetrainGuardrail[];

struct Figure2Options {
  Figure2Options() {
    // Pre-drift GC is rare and mostly shadowed by queue-depth features (so
    // the classifier is useful); the drift multiplies it.
    device.gc_per_write = 0.02;
    device.gc_per_read = 0.001;
    device.gc_pause_mean = Milliseconds(4);
  }

  Duration before_drift = Seconds(20);
  Duration after_drift = Seconds(20);
  double arrivals_per_sec = 2000.0;
  // Device-side drift: the primary's GC probabilities are multiplied by
  // this factor at t = before_drift.
  double drift_gc_factor = 25.0;
  SsdConfig device;                      // replica seed = seed + 1
  BlockLayerConfig blk;
  LinnosModelConfig model;
  Duration bucket = Milliseconds(500);   // moving-average bucket width
  uint64_t trace_seed = 7;
  std::string guardrail_source;          // empty -> kListing2Guardrail

  // Fault injection: a spec whose `chaos { ... }` block arms the run's
  // ChaosEngine (sites on the primary SSD, the block layer's prediction
  // path, and the monitor runtime). Empty = no chaos attached. Site
  // ml.weight_corrupt is a one-shot pre-run fault: if its plan injects on
  // the first draw, the shared model's weights are perturbed (value =
  // noise stddev, default 0.1) and restored after the run so other
  // configurations see the pristine model.
  std::string chaos_source;

  // When true, the run services RETRAIN requests: it keeps a bounded window
  // of recent (features, slow) observations from the live predicted-fast
  // path and retrains the shared model in place when the guardrail fires
  // A3. (The paper envisions offline async retraining; a drain interval
  // stands in for the offline trainer's turnaround.)
  bool enable_retrain_loop = false;
  Duration retrain_check_interval = Milliseconds(200);
  size_t retrain_window_capacity = 20000;
};

struct LatencyPoint {
  double time_s = 0.0;
  double mean_latency_us = 0.0;
  uint64_t ios = 0;
};

struct LinnosRunResult {
  std::vector<LatencyPoint> series;
  BlockLayerStats blk;
  bool guardrail_loaded = false;
  bool guardrail_fired = false;
  double trigger_time_s = -1.0;   // first violation-action time
  bool ml_enabled_at_end = true;
  double mean_latency_us_before = 0.0;  // pre-drift mean
  double mean_latency_us_after = 0.0;   // post-drift mean
  uint64_t retrains_serviced = 0;       // A3 loop: models retrained in-run
  uint64_t injected_faults = 0;         // chaos decisions that fired this run
};

struct Figure2Result {
  LinnosRunResult without_guardrail;
  LinnosRunResult with_guardrail;
  LinnosRunResult baseline;        // reactive default, no model at all
  double drift_time_s = 0.0;
  ConfusionMatrix model_quality_before;  // classifier vs. pre-drift traffic
};

// Canonical fault-storm chaos block (the ext6 experiment): a steady
// background of injected device latency spikes and I/O errors on the primary
// plus periodic misprediction storms against the policy. `spike_p` is the
// per-I/O probability of a multi-ms latency spike (the severity knob the
// ext6 sweep turns — spikes are invisible to host-side features, so every
// one that lands on a predicted-fast I/O is a false submit); `mispredict_p`
// is the in-storm decision-flip probability. I/O errors ride along at
// spike_p / 20.
std::string MakeFaultStormChaosSpec(uint64_t seed, double spike_p, double mispredict_p);

// Runs one configuration over the drift trace. `model` may be null for the
// reactive baseline. `guardrail_source` empty = no guardrails.
Result<LinnosRunResult> RunLinnosConfiguration(const Figure2Options& options,
                                               std::shared_ptr<LinnosModel> model,
                                               const std::string& guardrail_source);

// Full experiment: train on a clean baseline trace, then run all three
// configurations on the same drift trace.
Result<Figure2Result> RunFigure2Experiment(const Figure2Options& options = {});

}  // namespace osguard

#endif  // SRC_LINNOS_HARNESS_H_
