#include "src/wl/iogen.h"

namespace osguard {

std::vector<IoRequest> IoTraceGenerator::Generate(SimTime start) {
  std::vector<IoRequest> trace;
  SimTime phase_start = start;
  for (const IoPhase& phase : phases_) {
    const SimTime phase_end = phase_start + phase.duration;
    SimTime t = phase_start;
    bool burst_on = false;
    SimTime burst_edge = phase_start;
    while (true) {
      // Advance the on/off burst state machine to time t.
      if (phase.burst_factor > 1.0) {
        while (burst_edge <= t) {
          burst_edge += burst_on ? phase.burst_on : phase.burst_off;
          burst_on = !burst_on;
        }
      }
      const double rate = phase.arrivals_per_sec * (burst_on ? phase.burst_factor : 1.0);
      if (rate <= 0.0) {
        break;
      }
      const double gap_s = rng_.Exponential(rate);
      t += static_cast<Duration>(gap_s * static_cast<double>(kSecond));
      if (t >= phase_end) {
        break;
      }
      IoRequest request;
      request.at = t;
      request.lba = rng_.Zipf(phase.address_space, phase.zipf_skew);
      request.is_write = rng_.Bernoulli(phase.write_fraction);
      trace.push_back(request);
    }
    phase_start = phase_end;
  }
  return trace;
}

Duration IoTraceGenerator::TotalDuration() const {
  Duration total = 0;
  for (const IoPhase& phase : phases_) {
    total += phase.duration;
  }
  return total;
}

std::vector<IoPhase> MakeDriftPhases(Duration before, Duration after,
                                     double arrivals_per_sec) {
  IoPhase baseline;
  baseline.duration = before;
  baseline.arrivals_per_sec = arrivals_per_sec;
  baseline.write_fraction = 0.05;
  baseline.zipf_skew = 0.6;

  IoPhase drifted;
  drifted.duration = after;
  drifted.arrivals_per_sec = arrivals_per_sec;
  drifted.write_fraction = 0.45;   // write-heavy: much more GC
  drifted.zipf_skew = 1.2;         // hot spots: channel contention
  drifted.burst_factor = 4.0;      // bursty arrivals: deeper queues

  return {baseline, drifted};
}

}  // namespace osguard
