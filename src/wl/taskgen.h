// CPU-burst workload generation for the scheduler substrate.

#ifndef SRC_WL_TASKGEN_H_
#define SRC_WL_TASKGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {

struct TaskLoadSpec {
  std::string name;
  double weight = 1.0;
  double bursts_per_sec = 10.0;       // Poisson burst arrivals
  Duration burst_mean = Milliseconds(8);  // exponential burst length
};

struct BurstEvent {
  SimTime at = 0;
  size_t task_index = 0;   // index into the spec vector
  Duration cpu_time = 0;
};

class TaskLoadGenerator {
 public:
  TaskLoadGenerator(std::vector<TaskLoadSpec> specs, uint64_t seed)
      : specs_(std::move(specs)), rng_(seed) {}

  // Time-ordered burst submissions covering [start, start + duration).
  std::vector<BurstEvent> Generate(Duration duration, SimTime start = 0);

  const std::vector<TaskLoadSpec>& specs() const { return specs_; }

 private:
  std::vector<TaskLoadSpec> specs_;
  Rng rng_;
};

}  // namespace osguard

#endif  // SRC_WL_TASKGEN_H_
