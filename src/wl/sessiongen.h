// Bursty multi-session agent workload generation (osguard::agent domain).
//
// Models a fleet of concurrent agent sessions issuing tool calls: sessions
// arrive as a Poisson process, each session emits a sequence of bursts with
// heavy-tailed (Pareto) lengths separated by exponential think time, and
// every call carries a tool class, an argument-fingerprint hash, and a
// secret-read flag. This is the traffic shape block I/O never exercises —
// thousands of overlapping sessions, bursty per-session rates — and it is
// the input side of the Kernel::OnToolCall callout domain (docs/AGENT.md).

#ifndef SRC_WL_SESSIONGEN_H_
#define SRC_WL_SESSIONGEN_H_

#include <cstdint>
#include <vector>

#include "src/agent/tool_call.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {

struct SessionWorkloadOptions {
  Duration duration = Seconds(10);       // session arrival horizon
  double sessions_per_sec = 100.0;       // Poisson session arrival rate
  uint64_t max_sessions = 100000;        // hard cap on spawned sessions
  // Bursts per session: geometric with this mean (>= 1).
  double mean_bursts = 3.0;
  // Burst length in calls: Pareto(scale, shape), truncated at max.
  double burst_scale = 2.0;              // Pareto xm (minimum burst length)
  double burst_shape = 1.3;              // Pareto alpha; lower = heavier tail
  uint64_t max_burst_calls = 512;
  // Exponential gaps: tight within a burst, long between bursts.
  Duration mean_intra_gap = Milliseconds(5);
  Duration mean_think = Milliseconds(400);
  // Per-call tool mix (remainder is file). Fractions must sum to <= 1.
  double net_fraction = 0.25;
  double exec_fraction = 0.05;
  // P(secret flag | file call): how often a file read touches a secret path.
  double secret_fraction = 0.01;
};

// A session-lifecycle marker for the churn variant: the session made its
// last call at `at` - linger and is now gone for good. The kernel consumes
// these via OnSessionEnd (eager per-session key reclamation).
struct SessionEndEvent {
  SimTime at = 0;
  uint64_t session = 0;

  friend bool operator==(const SessionEndEvent&, const SessionEndEvent&) = default;
};

// Calls plus end markers, each sorted by (time, session arrival order).
struct SessionChurnTrace {
  std::vector<agent::ToolCallEvent> calls;
  std::vector<SessionEndEvent> ends;
};

class SessionCallGenerator {
 public:
  SessionCallGenerator(SessionWorkloadOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  // Generates the full trace starting at `start`, ordered by (time, session
  // arrival order). Same (options, seed, start) => bit-identical trace.
  std::vector<agent::ToolCallEvent> Generate(SimTime start = 0);

  // Churn variant: the same call trace (bit-identical to Generate with the
  // same seed/start) plus one SessionEndEvent per session, `linger` after
  // its final call. This is the input for bounded-memory experiments: a
  // steady arrival of short-lived sessions whose key families must be
  // reclaimed as fast as they retire or the store grows without bound.
  SessionChurnTrace GenerateChurn(SimTime start = 0, Duration linger = Milliseconds(50));

 private:
  SessionWorkloadOptions options_;
  Rng rng_;
};

}  // namespace osguard

#endif  // SRC_WL_SESSIONGEN_H_
