#include "src/wl/taskgen.h"

#include <algorithm>

namespace osguard {

std::vector<BurstEvent> TaskLoadGenerator::Generate(Duration duration, SimTime start) {
  std::vector<BurstEvent> events;
  const SimTime end = start + duration;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const TaskLoadSpec& spec = specs_[i];
    if (spec.bursts_per_sec <= 0.0) {
      continue;
    }
    SimTime t = start;
    while (true) {
      const double gap_s = rng_.Exponential(spec.bursts_per_sec);
      t += static_cast<Duration>(gap_s * static_cast<double>(kSecond));
      if (t >= end) {
        break;
      }
      BurstEvent event;
      event.at = t;
      event.task_index = i;
      event.cpu_time = std::max<Duration>(
          Microseconds(10),
          static_cast<Duration>(rng_.Exponential(1.0 / static_cast<double>(spec.burst_mean))));
      events.push_back(event);
    }
  }
  // Same-timestamp events are real: the exponential gap truncates to whole
  // nanoseconds, so a burst can land on another's timestamp (and fault
  // injection deliberately piles events onto one instant). An unstable sort
  // on `at` alone would order such ties arbitrarily; break ties by task
  // index, and stable_sort keeps generation order within a task, so the
  // merged trace is a pure function of the specs and the seed.
  std::stable_sort(events.begin(), events.end(),
                   [](const BurstEvent& a, const BurstEvent& b) {
                     return a.at != b.at ? a.at < b.at : a.task_index < b.task_index;
                   });
  return events;
}

}  // namespace osguard
