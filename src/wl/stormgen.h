// Callout-storm workload generation (osguard::wl).
//
// Models the overload shape the governor exists for: an instrumented
// function whose callout rate alternates between a calm baseline and storm
// windows orders of magnitude hotter (a hot loop entering the instrumented
// path, a stampede of clients, a tracing bug). Arrivals are Poisson within
// each phase, so the trace has realistic gap jitter while remaining a pure
// function of (options, seed, start) — the differential campaigns replay it
// bit-identically on the serial and sharded engines.
//
// The trace is just timestamps + phase tags; the consumer drives
// Kernel::Callout with them (bench/ext12_overload_governor, the governor
// tests). A trailing calm tail is included so recovery — the governor
// walking back down to full service — is observable in the same trace.

#ifndef SRC_WL_STORMGEN_H_
#define SRC_WL_STORMGEN_H_

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {

struct StormWorkloadOptions {
  // Phase layout: calm, then `cycles` repetitions of (storm, calm), the
  // final calm lasting `tail` instead of `calm` so recovery has room.
  Duration calm = Seconds(2);
  Duration storm = Seconds(1);
  Duration tail = Seconds(4);
  uint32_t cycles = 1;
  // Poisson callout rates per phase (callouts per simulated second).
  double calm_rate = 200.0;
  double storm_rate = 50000.0;
};

struct StormEvent {
  SimTime at = 0;
  bool storm = false;  // tagged with the phase that emitted it
};

class StormGenerator {
 public:
  StormGenerator(StormWorkloadOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  // Full trace starting at `start`, ordered by time. Deterministic.
  std::vector<StormEvent> Generate(SimTime start = 0);

  Duration TotalDuration() const;

 private:
  StormWorkloadOptions options_;
  Rng rng_;
};

}  // namespace osguard

#endif  // SRC_WL_STORMGEN_H_
