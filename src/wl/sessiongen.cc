#include "src/wl/sessiongen.h"

#include <algorithm>
#include <cmath>

namespace osguard {

namespace {

// Exponential gap in simulated nanoseconds with the given mean duration.
// A zero/negative mean degenerates to back-to-back events.
Duration ExpGap(Rng& rng, Duration mean) {
  if (mean <= 0) {
    return 0;
  }
  const double rate = 1.0 / static_cast<double>(mean);
  return static_cast<Duration>(std::llround(rng.Exponential(rate)));
}

}  // namespace

std::vector<agent::ToolCallEvent> SessionCallGenerator::Generate(SimTime start) {
  return GenerateChurn(start).calls;
}

SessionChurnTrace SessionCallGenerator::GenerateChurn(SimTime start, Duration linger) {
  using agent::ToolCallEvent;
  using agent::ToolClass;
  std::vector<ToolCallEvent> events;
  const SessionWorkloadOptions& opt = options_;
  const double arrival_rate =
      opt.sessions_per_sec / static_cast<double>(Seconds(1));
  // Phase 1: Poisson session arrivals over the horizon, each capturing its
  // own derived seed. Per-session streams make the trace insensitive to how
  // many *calls* earlier sessions made — only the arrival draw order counts.
  struct SessionSeed {
    SimTime arrival;
    uint64_t id;
    uint64_t seed;
  };
  std::vector<SessionSeed> sessions;
  SimTime t = start;
  uint64_t next_id = 1;
  while (arrival_rate > 0.0 && next_id <= opt.max_sessions) {
    t += static_cast<Duration>(std::llround(rng_.Exponential(arrival_rate)));
    if (t >= start + opt.duration) {
      break;
    }
    sessions.push_back({t, next_id++, rng_.NextU64()});
  }
  // Phase 2: each session unrolls bursts of calls from its private stream.
  std::vector<SessionEndEvent> ends;
  ends.reserve(sessions.size());
  for (const SessionSeed& s : sessions) {
    Rng srng(s.seed);
    SimTime at = s.arrival;
    // Geometric burst count with the configured mean (at least one burst).
    const double stop_p = opt.mean_bursts >= 1.0 ? 1.0 / opt.mean_bursts : 1.0;
    uint64_t bursts = 1;
    while (!srng.Bernoulli(stop_p) && bursts < 64) {
      ++bursts;
    }
    for (uint64_t b = 0; b < bursts; ++b) {
      if (b > 0) {
        at += ExpGap(srng, opt.mean_think);
      }
      // Heavy-tailed burst length: Pareto, truncated to keep memory sane.
      const double raw = srng.Pareto(std::max(1.0, opt.burst_scale),
                                     std::max(0.1, opt.burst_shape));
      const uint64_t calls = std::min<uint64_t>(
          opt.max_burst_calls, static_cast<uint64_t>(std::llround(raw)));
      for (uint64_t c = 0; c < calls; ++c) {
        if (c > 0) {
          at += ExpGap(srng, opt.mean_intra_gap);
        }
        ToolCallEvent ev;
        ev.at = at;
        ev.session = s.id;
        const double mix = srng.NextDouble();
        if (mix < opt.net_fraction) {
          ev.tool = ToolClass::kNet;
        } else if (mix < opt.net_fraction + opt.exec_fraction) {
          ev.tool = ToolClass::kExec;
        } else {
          ev.tool = ToolClass::kFile;
        }
        ev.fingerprint = srng.NextU64();
        ev.secret =
            ev.tool == ToolClass::kFile && srng.Bernoulli(opt.secret_fraction);
        events.push_back(ev);
      }
    }
    // The session retires `linger` after its last call. Sessions that
    // emitted no calls still retire (a spawned-but-silent session is the
    // cheapest kind of churn).
    ends.push_back(SessionEndEvent{at + std::max<Duration>(0, linger), s.id});
  }
  // Equal-timestamp events keep session arrival order (stable sort over a
  // per-session-ordered build), so the merged trace is fully deterministic.
  std::stable_sort(events.begin(), events.end(),
                   [](const ToolCallEvent& a, const ToolCallEvent& b) {
                     return a.at < b.at;
                   });
  std::stable_sort(ends.begin(), ends.end(),
                   [](const SessionEndEvent& a, const SessionEndEvent& b) {
                     return a.at < b.at;
                   });
  return SessionChurnTrace{std::move(events), std::move(ends)};
}

}  // namespace osguard
