// Synthetic I/O trace generation.
//
// Stands in for the production traces LinnOS was evaluated on (see
// DESIGN.md, Substitutions). Traces are built from *phases*; a phase change
// is the distribution-shift mechanism that degrades a model trained on
// earlier phases — the trigger for the Figure-2 experiment.

#ifndef SRC_WL_IOGEN_H_
#define SRC_WL_IOGEN_H_

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {

struct IoRequest {
  SimTime at = 0;
  uint64_t lba = 0;
  bool is_write = false;
};

struct IoPhase {
  Duration duration = Seconds(10);
  double arrivals_per_sec = 2000.0;   // Poisson arrival rate
  double write_fraction = 0.05;
  double zipf_skew = 0.9;             // 0 = uniform addresses
  uint64_t address_space = 1 << 20;   // LBA range
  // Bursty on/off modulation: during an "on" period arrivals speed up by
  // `burst_factor`; 1.0 disables bursts.
  double burst_factor = 1.0;
  Duration burst_on = Milliseconds(50);
  Duration burst_off = Milliseconds(200);
};

class IoTraceGenerator {
 public:
  IoTraceGenerator(std::vector<IoPhase> phases, uint64_t seed)
      : phases_(std::move(phases)), rng_(seed) {}

  // Generates the full trace, time-ordered, starting at `start`.
  std::vector<IoRequest> Generate(SimTime start = 0);

  // Total configured duration across phases.
  Duration TotalDuration() const;

 private:
  std::vector<IoPhase> phases_;
  Rng rng_;
};

// Convenience phase pair for drift experiments: a read-mostly sequentialish
// baseline phase followed by a write-heavy, hot-spot phase that raises GC
// pressure and shifts the feature distribution.
std::vector<IoPhase> MakeDriftPhases(Duration before, Duration after,
                                     double arrivals_per_sec = 2000.0);

}  // namespace osguard

#endif  // SRC_WL_IOGEN_H_
