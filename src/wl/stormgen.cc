#include "src/wl/stormgen.h"

#include <cmath>

namespace osguard {

std::vector<StormEvent> StormGenerator::Generate(SimTime start) {
  std::vector<StormEvent> trace;
  SimTime phase_start = start;
  const uint32_t phase_count = 1 + 2 * options_.cycles;
  for (uint32_t i = 0; i < phase_count; ++i) {
    const bool storm = (i % 2) == 1;
    Duration duration = storm ? options_.storm : options_.calm;
    if (i + 1 == phase_count) {
      duration = options_.tail;
    }
    const double rate = storm ? options_.storm_rate : options_.calm_rate;
    const SimTime phase_end = phase_start + duration;
    if (rate > 0.0) {
      SimTime t = phase_start;
      while (true) {
        const double gap_s = rng_.Exponential(rate);
        t += static_cast<Duration>(gap_s * static_cast<double>(kSecond));
        if (t >= phase_end) {
          break;
        }
        trace.push_back(StormEvent{t, storm});
      }
    }
    phase_start = phase_end;
  }
  return trace;
}

Duration StormGenerator::TotalDuration() const {
  Duration total = 0;
  const uint32_t phase_count = 1 + 2 * options_.cycles;
  for (uint32_t i = 0; i < phase_count; ++i) {
    if (i + 1 == phase_count) {
      total += options_.tail;
    } else {
      total += (i % 2) == 1 ? options_.storm : options_.calm;
    }
  }
  return total;
}

}  // namespace osguard
