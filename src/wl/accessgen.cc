#include "src/wl/accessgen.h"

namespace osguard {

std::vector<FileAccess> FileAccessGenerator::Generate(SimTime start) {
  std::vector<FileAccess> trace;
  SimTime phase_start = start;
  uint64_t position = 0;
  for (const AccessPhase& phase : phases_) {
    const SimTime phase_end = phase_start + phase.duration;
    SimTime t = phase_start;
    while (phase.reads_per_sec > 0.0) {
      const double gap_s = rng_.Exponential(phase.reads_per_sec);
      t += static_cast<Duration>(gap_s * static_cast<double>(kSecond));
      if (t >= phase_end) {
        break;
      }
      if (rng_.Bernoulli(phase.sequential_prob)) {
        position = (position + 1) % phase.file_chunks;
      } else {
        position = rng_.NextU64() % phase.file_chunks;
      }
      trace.push_back(FileAccess{t, position});
    }
    phase_start = phase_end;
  }
  return trace;
}

}  // namespace osguard
