// File-access stream generation for the readahead substrate.
//
// Produces chunk-read sequences that interleave sequential runs with random
// jumps; a phase change from sequential-dominant to random-dominant is what
// makes a readahead model trained on the first phase misbehave (P3/P4
// scenarios).

#ifndef SRC_WL_ACCESSGEN_H_
#define SRC_WL_ACCESSGEN_H_

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/support/time.h"

namespace osguard {

struct FileAccess {
  SimTime at = 0;
  uint64_t chunk = 0;
};

struct AccessPhase {
  Duration duration = Seconds(10);
  double reads_per_sec = 5000.0;
  double sequential_prob = 0.9;  // continue the current run vs. jump
  uint64_t file_chunks = 1 << 20;
};

class FileAccessGenerator {
 public:
  FileAccessGenerator(std::vector<AccessPhase> phases, uint64_t seed)
      : phases_(std::move(phases)), rng_(seed) {}

  std::vector<FileAccess> Generate(SimTime start = 0);

 private:
  std::vector<AccessPhase> phases_;
  Rng rng_;
};

}  // namespace osguard

#endif  // SRC_WL_ACCESSGEN_H_
