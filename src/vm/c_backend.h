// C-source backend: renders a compiled guardrail as the kernel-module
// monitor the paper's §3.3 describes ("compiled into guardrail monitors that
// run inside the kernel, either as eBPF programs or as kernel modules").
//
// Two flavors share one emitter core:
//
//  * Kernel-module flavor (EmitKernelModuleSource / EmitCFunction): a
//    human-readable transliteration against the include/osguard/kmod.h ABI,
//    with module/trigger registration boilerplate. Compile-checked with
//    -Wall -Wextra -Werror by the test suite, but not executed.
//
//  * Native flavor (EmitNativeSource / EmitNativeFunction): the executed
//    tier. Self-contained C (the AOT pipeline prepends the
//    src/vm/native_abi.h prelude), with per-instruction step counting and
//    osg_ops escapes into the host runtime, bit-identical to the
//    interpreter by the contract documented in docs/NATIVE.md.

#ifndef SRC_VM_C_BACKEND_H_
#define SRC_VM_C_BACKEND_H_

#include <string>

#include "src/vm/compiler.h"

namespace osguard {

// Emits one C translation unit containing the rule/action/on_satisfy
// functions plus the module registration boilerplate for `guardrail`.
std::string EmitKernelModuleSource(const CompiledGuardrail& guardrail);

// Emits just one program as a C function in the kernel-module flavor.
std::string EmitCFunction(const Program& program, const std::string& function_name);

// Native flavor: all of `guardrail`'s programs as exported functions
// (osg_rule / osg_action / osg_on_satisfy). The result is not a complete
// translation unit — the AOT pipeline prepends the ABI prelude.
std::string EmitNativeSource(const CompiledGuardrail& guardrail);

// Native flavor, one program as the exported function `function_name`.
std::string EmitNativeFunction(const Program& program, const std::string& function_name);

}  // namespace osguard

#endif  // SRC_VM_C_BACKEND_H_
