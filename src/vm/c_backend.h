// C-source backend: renders a compiled guardrail as the kernel-module
// monitor the paper's §3.3 describes ("compiled into guardrail monitors that
// run inside the kernel, either as eBPF programs or as kernel modules").
//
// The emitted C is a faithful, human-readable transliteration of the verified
// bytecode against a small osg_* helper ABI. It is meant for inspection and
// for documenting what in-kernel deployment looks like; this repository does
// not compile it into a kernel (see DESIGN.md, Substitutions).

#ifndef SRC_VM_C_BACKEND_H_
#define SRC_VM_C_BACKEND_H_

#include <string>

#include "src/vm/compiler.h"

namespace osguard {

// Emits one C translation unit containing the rule/action/on_satisfy
// functions plus the module registration boilerplate for `guardrail`.
std::string EmitKernelModuleSource(const CompiledGuardrail& guardrail);

// Emits just one program as a C function (used by tests).
std::string EmitCFunction(const Program& program, const std::string& function_name);

}  // namespace osguard

#endif  // SRC_VM_C_BACKEND_H_
