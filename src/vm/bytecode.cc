#include "src/vm/bytecode.h"

#include <cstdio>

namespace osguard {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kLoadConst:
      return "ldc";
    case Op::kMov:
      return "mov";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kDiv:
      return "div";
    case Op::kMod:
      return "mod";
    case Op::kNeg:
      return "neg";
    case Op::kNot:
      return "not";
    case Op::kCmpLt:
      return "clt";
    case Op::kCmpLe:
      return "cle";
    case Op::kCmpGt:
      return "cgt";
    case Op::kCmpGe:
      return "cge";
    case Op::kCmpEq:
      return "ceq";
    case Op::kCmpNe:
      return "cne";
    case Op::kJump:
      return "jmp";
    case Op::kJumpIfFalse:
      return "jz";
    case Op::kJumpIfTrue:
      return "jnz";
    case Op::kMakeList:
      return "lst";
    case Op::kCall:
      return "call";
    case Op::kRet:
      return "ret";
    case Op::kCmpConst:
      return "cmpc";
    case Op::kCmpConstJf:
      return "cmpc.jz";
    case Op::kCmpConstJt:
      return "cmpc.jnz";
    case Op::kCmpRegJf:
      return "cmp.jz";
    case Op::kCmpRegJt:
      return "cmp.jnz";
    case Op::kCallKeyed:
      return "callk";
  }
  return "???";
}

std::string Program::Disassemble() const {
  std::string out;
  out += "; program '" + name + "', " + std::to_string(insns.size()) + " insns, " +
         std::to_string(consts.size()) + " consts, " + std::to_string(register_count) +
         " regs\n";
  char line[160];
  for (size_t pc = 0; pc < insns.size(); ++pc) {
    const Insn& insn = insns[pc];
    switch (insn.op) {
      case Op::kLoadConst: {
        std::string c = insn.imm >= 0 && static_cast<size_t>(insn.imm) < consts.size()
                            ? consts[static_cast<size_t>(insn.imm)].ToString()
                            : "<bad const>";
        std::snprintf(line, sizeof(line), "%4zu  ldc   r%u, %s\n", pc, insn.a, c.c_str());
        break;
      }
      case Op::kMov:
        std::snprintf(line, sizeof(line), "%4zu  mov   r%u, r%u\n", pc, insn.a, insn.b);
        break;
      case Op::kNeg:
      case Op::kNot:
        std::snprintf(line, sizeof(line), "%4zu  %-5s r%u, r%u\n", pc,
                      std::string(OpName(insn.op)).c_str(), insn.a, insn.b);
        break;
      case Op::kJump:
        std::snprintf(line, sizeof(line), "%4zu  jmp   +%d (-> %zu)\n", pc, insn.imm,
                      pc + 1 + static_cast<size_t>(insn.imm));
        break;
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
        std::snprintf(line, sizeof(line), "%4zu  %-5s r%u, +%d (-> %zu)\n", pc,
                      std::string(OpName(insn.op)).c_str(), insn.a, insn.imm,
                      pc + 1 + static_cast<size_t>(insn.imm));
        break;
      case Op::kMakeList:
        std::snprintf(line, sizeof(line), "%4zu  lst   r%u, r%u..r%u\n", pc, insn.a, insn.b,
                      insn.b + (insn.imm > 0 ? insn.imm - 1 : 0));
        break;
      case Op::kCall: {
        const Builtin* builtin = FindBuiltinById(static_cast<HelperId>(insn.imm));
        std::snprintf(line, sizeof(line), "%4zu  call  r%u, %s(r%u..r%u)\n", pc, insn.a,
                      builtin != nullptr ? std::string(builtin->name).c_str() : "<bad helper>",
                      insn.b, insn.b + (insn.c > 0 ? insn.c - 1 : 0));
        break;
      }
      case Op::kRet:
        std::snprintf(line, sizeof(line), "%4zu  ret   r%u\n", pc, insn.a);
        break;
      case Op::kCmpConst: {
        const std::string kind(OpName(CmpKindToOp(insn.c)));
        std::string c = insn.imm >= 0 && static_cast<size_t>(insn.imm) < consts.size()
                            ? consts[static_cast<size_t>(insn.imm)].ToString()
                            : "<bad const>";
        std::snprintf(line, sizeof(line), "%4zu  %s.c r%u, r%u, %s\n", pc, kind.c_str(),
                      insn.a, insn.b, c.c_str());
        break;
      }
      case Op::kCmpConstJf:
      case Op::kCmpConstJt: {
        const std::string kind(OpName(CmpKindToOp(insn.c)));
        std::string c = insn.imm >= 0 && static_cast<size_t>(insn.imm) < consts.size()
                            ? consts[static_cast<size_t>(insn.imm)].ToString()
                            : "<bad const>";
        std::snprintf(line, sizeof(line), "%4zu  %s.c.%s r%u, r%u, %s, +%d (-> %zu)\n", pc,
                      kind.c_str(), insn.op == Op::kCmpConstJf ? "jz" : "jnz", insn.a, insn.b,
                      c.c_str(), insn.aux, pc + 1 + static_cast<size_t>(insn.aux));
        break;
      }
      case Op::kCmpRegJf:
      case Op::kCmpRegJt: {
        const std::string kind(OpName(CmpKindToOp(insn.imm)));
        std::snprintf(line, sizeof(line), "%4zu  %s.%s r%u, r%u, r%u, +%d (-> %zu)\n", pc,
                      kind.c_str(), insn.op == Op::kCmpRegJf ? "jz" : "jnz", insn.a, insn.b,
                      insn.c, insn.aux, pc + 1 + static_cast<size_t>(insn.aux));
        break;
      }
      case Op::kCallKeyed: {
        const Builtin* builtin = FindBuiltinById(static_cast<HelperId>(insn.imm));
        std::snprintf(line, sizeof(line), "%4zu  callk r%u, %s(r%u..r%u) slot=%d\n", pc,
                      insn.a,
                      builtin != nullptr ? std::string(builtin->name).c_str() : "<bad helper>",
                      insn.b, insn.b + (insn.c > 0 ? insn.c - 1 : 0), insn.aux);
        break;
      }
      default:
        std::snprintf(line, sizeof(line), "%4zu  %-5s r%u, r%u, r%u\n", pc,
                      std::string(OpName(insn.op)).c_str(), insn.a, insn.b, insn.c);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace osguard
