/*
 * osguard native-tier ABI.
 *
 * This header is both (a) included by the host runtime (C++) for the shared
 * type layout and (b) embedded verbatim as the prelude of every translation
 * unit the AOT pipeline emits (plain C11, compiled by the host `cc`). Keep it
 * compilable as both languages and free of any '@' characters — the build
 * embeds the file text via configure_file(@ONLY).
 *
 * Determinism contract: every inline fast path below mirrors the interpreter
 * byte for byte (see src/vm/vm_ops.h). Anything the fast path cannot decide
 * locally escapes to the host through the osg_ops table, which routes into
 * the same Arith/Compare/helper code the interpreter uses. Ops return 1 on
 * success and 0 on fault; the fault status itself lives host-side in the
 * NativeFrame, so emitted code only needs `goto osg_fault`.
 */

#ifndef OSGUARD_NATIVE_ABI_H_
#define OSGUARD_NATIVE_ABI_H_

/* Value kind tags. OSG_NIL must stay 0: register files zero-initialize. */
enum {
  OSG_NIL = 0,
  OSG_INT = 1,
  OSG_FLOAT = 2,
  OSG_BOOL = 3,
  OSG_STR = 4,
  OSG_LIST = 5
};

/*
 * One VM register / constant. Strings and lists are never materialized on
 * the native side: `h` is an opaque handle to the host Value (stable for the
 * lifetime of the loaded program) and `i` caches its truthiness so branches
 * on string/list values stay escape-free.
 */
typedef struct osg_value {
  int kind;
  long long i;   /* OSG_INT / OSG_BOOL payload; OSG_STR / OSG_LIST truthiness */
  double f;      /* OSG_FLOAT payload */
  const void *h; /* OSG_STR / OSG_LIST host handle */
} osg_value;

/* Helper ids — mirror osguard::HelperId (src/dsl/builtins.h). */
enum {
  OSG_HELPER_LOAD = 0,
  OSG_HELPER_LOAD_OR = 1,
  OSG_HELPER_SAVE = 2,
  OSG_HELPER_INCR = 3,
  OSG_HELPER_EXISTS = 4,
  OSG_HELPER_OBSERVE = 5,
  OSG_HELPER_COUNT = 16,
  OSG_HELPER_SUM = 17,
  OSG_HELPER_MEAN = 18,
  OSG_HELPER_MIN = 19,
  OSG_HELPER_MAX = 20,
  OSG_HELPER_STDDEV = 21,
  OSG_HELPER_RATE = 22,
  OSG_HELPER_NEWEST = 23,
  OSG_HELPER_OLDEST = 24,
  OSG_HELPER_QUANTILE = 25,
  OSG_HELPER_ABS = 32,
  OSG_HELPER_SQRT = 33,
  OSG_HELPER_LOG = 34,
  OSG_HELPER_EXP = 35,
  OSG_HELPER_FLOOR = 36,
  OSG_HELPER_CEIL = 37,
  OSG_HELPER_POW = 38,
  OSG_HELPER_MIN2 = 39,
  OSG_HELPER_MAX2 = 40,
  OSG_HELPER_CLAMP = 41,
  OSG_HELPER_NOW = 48,
  OSG_HELPER_REPORT = 64,
  OSG_HELPER_REPLACE = 65,
  OSG_HELPER_RETRAIN = 66,
  OSG_HELPER_DEPRIORITIZE = 67,
  OSG_HELPER_UNKNOWN = 255
};

/* Comparison kinds — mirror the interpreter's CmpOpToKind encoding. */
enum {
  OSG_CMP_LT = 0,
  OSG_CMP_LE = 1,
  OSG_CMP_GT = 2,
  OSG_CMP_GE = 3,
  OSG_CMP_EQ = 4,
  OSG_CMP_NE = 5
};

/* Generic binop / unop codes for the slow-path escape. */
enum {
  OSG_OP_ADD = 0,
  OSG_OP_SUB = 1,
  OSG_OP_MUL = 2,
  OSG_OP_DIV = 3,
  OSG_OP_MOD = 4,
  OSG_OP_NEG = 5
};

/* Host-raised fault codes (ops->raise). */
enum {
  OSG_RAISE_OFF_END = 0
};

/* Sentinel for "no interned store slot" on the generic call escape. */
#define OSG_NO_SLOT 0xffffffffu

struct osg_ctx;

/*
 * Host escape table. Every entry returns 1 on success (out written) or 0 on
 * fault (fault recorded host-side; emitted code jumps to its fault exit).
 * `out` may alias any argument; hosts read all inputs before writing it.
 */
typedef struct osg_ops {
  /* Generic helper call (chaos-checked, identical to the interpreter's
   * kCall / kCallKeyed dispatch). slot is OSG_NO_SLOT for unkeyed calls. */
  int (*call)(struct osg_ctx *ctx, int helper, unsigned slot,
              const osg_value *args, int nargs, osg_value *out);
  /* Arith / Compare slow paths (vm_ops.h semantics, same fault strings). */
  int (*binop)(struct osg_ctx *ctx, int op, const osg_value *a,
               const osg_value *b, osg_value *out);
  int (*unop)(struct osg_ctx *ctx, int op, const osg_value *a, osg_value *out);
  int (*cmp)(struct osg_ctx *ctx, int kind, const osg_value *a,
             const osg_value *b, osg_value *out);
  int (*make_list)(struct osg_ctx *ctx, const osg_value *elems, int n,
                   osg_value *out);
  /* Specialized keyed store / aggregate paths (KeyId slot already interned
   * at load time; no string hashing, no argument boxing on the fast path).
   * `args` is the full helper argument window starting at the key register —
   * args[0] is the key string — so a slot the store does not recognize can
   * fall back to the interpreter's string path with identical semantics. */
  int (*load_slot)(struct osg_ctx *ctx, unsigned slot, const osg_value *args,
                   osg_value *out);
  int (*load_or_slot)(struct osg_ctx *ctx, unsigned slot,
                      const osg_value *args, osg_value *out);
  int (*save_slot)(struct osg_ctx *ctx, unsigned slot, const osg_value *args,
                   osg_value *out);
  int (*incr_slot)(struct osg_ctx *ctx, unsigned slot, const osg_value *args,
                   int nargs, osg_value *out);
  int (*exists_slot)(struct osg_ctx *ctx, unsigned slot, const osg_value *args,
                     osg_value *out);
  int (*observe_slot)(struct osg_ctx *ctx, unsigned slot,
                      const osg_value *args, osg_value *out);
  int (*agg_slot)(struct osg_ctx *ctx, int helper, unsigned slot,
                  const osg_value *args, osg_value *out);
  int (*quantile_slot)(struct osg_ctx *ctx, unsigned slot,
                       const osg_value *args, osg_value *out);
  /* Record a host-raised fault (e.g. control flow ran off the end). */
  int (*raise)(struct osg_ctx *ctx, int code);
} osg_ops;

/*
 * Execution context for one program invocation. `steps` counts executed
 * bytecode instructions exactly like the interpreter's insns_executed (the
 * emitted code increments once per original instruction, including Ret); it
 * is synced back before every helper escape and at every exit, so supervisor
 * cost accounting is bit-identical across tiers.
 */
typedef struct osg_ctx {
  const osg_ops *ops;
  const osg_value *consts; /* current program's constant pool */
  void *host;              /* NativeFrame */
  long long steps;
} osg_ctx;

/* ---- Inline fast paths (mirror vm_ops.h; escape on anything else) ---- */

static inline void osg_set_nil(osg_value *v) {
  v->kind = OSG_NIL;
  v->i = 0;
  v->f = 0.0;
  v->h = 0;
}

static inline void osg_set_int(osg_value *v, long long x) {
  v->kind = OSG_INT;
  v->i = x;
  v->f = 0.0;
  v->h = 0;
}

static inline void osg_set_float(osg_value *v, double x) {
  v->kind = OSG_FLOAT;
  v->i = 0;
  v->f = x;
  v->h = 0;
}

static inline void osg_set_bool(osg_value *v, int x) {
  v->kind = OSG_BOOL;
  v->i = x != 0;
  v->f = 0.0;
  v->h = 0;
}

static inline int osg_truthy(const osg_value *v) {
  switch (v->kind) {
    case OSG_NIL:
      return 0;
    case OSG_FLOAT:
      return v->f != 0.0;
    default:
      /* int / bool payloads, and the cached str / list truthiness */
      return v->i != 0;
  }
}

/* Int/float view — bools and handles decline, exactly like vm_ops::ToDouble,
 * so mixed-type operands fall back to the generic host routines. */
static inline int osg_num(const osg_value *v, double *out) {
  if (v->kind == OSG_INT) {
    *out = (double)v->i;
    return 1;
  }
  if (v->kind == OSG_FLOAT) {
    *out = v->f;
    return 1;
  }
  return 0;
}

/* Two's-complement wrapping int64 arithmetic (defined behavior via unsigned),
 * mirroring vm_ops::WrapAdd / WrapSub / WrapMul / WrapNeg. */
static inline long long osg_wrap_add(long long a, long long b) {
  return (long long)((unsigned long long)a + (unsigned long long)b);
}
static inline long long osg_wrap_sub(long long a, long long b) {
  return (long long)((unsigned long long)a - (unsigned long long)b);
}
static inline long long osg_wrap_mul(long long a, long long b) {
  return (long long)((unsigned long long)a * (unsigned long long)b);
}
static inline long long osg_wrap_neg(long long a) {
  return (long long)(0ULL - (unsigned long long)a);
}

/* Cold-path escape into the host. Operates on value copies, never on the
 * caller's operands: generated code keeps VM registers in C locals, and if
 * their addresses escaped into an opaque host call here the compiler would
 * have to pin every register to the stack. With copies, the hot int/float
 * paths above stay fully registerizable. */
static inline int osg_binop_escape(struct osg_ctx *ctx, int op, osg_value *dst,
                                   const osg_value *a, const osg_value *b) {
  osg_value ta = *a;
  osg_value tb = *b;
  osg_value td = {OSG_NIL, 0, 0.0, 0};
  int ok = ctx->ops->binop(ctx, op, &ta, &tb, &td);
  *dst = td;
  return ok;
}

static inline int osg_add(struct osg_ctx *ctx, osg_value *dst,
                          const osg_value *a, const osg_value *b) {
  double x, y;
  if (a->kind == OSG_INT && b->kind == OSG_INT) {
    osg_set_int(dst, osg_wrap_add(a->i, b->i));
    return 1;
  }
  if (osg_num(a, &x) && osg_num(b, &y)) {
    osg_set_float(dst, x + y);
    return 1;
  }
  return osg_binop_escape(ctx, OSG_OP_ADD, dst, a, b);
}

static inline int osg_sub(struct osg_ctx *ctx, osg_value *dst,
                          const osg_value *a, const osg_value *b) {
  double x, y;
  if (a->kind == OSG_INT && b->kind == OSG_INT) {
    osg_set_int(dst, osg_wrap_sub(a->i, b->i));
    return 1;
  }
  if (osg_num(a, &x) && osg_num(b, &y)) {
    osg_set_float(dst, x - y);
    return 1;
  }
  return osg_binop_escape(ctx, OSG_OP_SUB, dst, a, b);
}

static inline int osg_mul(struct osg_ctx *ctx, osg_value *dst,
                          const osg_value *a, const osg_value *b) {
  double x, y;
  if (a->kind == OSG_INT && b->kind == OSG_INT) {
    osg_set_int(dst, osg_wrap_mul(a->i, b->i));
    return 1;
  }
  if (osg_num(a, &x) && osg_num(b, &y)) {
    osg_set_float(dst, x * y);
    return 1;
  }
  return osg_binop_escape(ctx, OSG_OP_MUL, dst, a, b);
}

static inline int osg_div(struct osg_ctx *ctx, osg_value *dst,
                          const osg_value *a, const osg_value *b) {
  double x, y;
  if (osg_num(a, &x) && osg_num(b, &y) && y != 0.0) {
    osg_set_float(dst, x / y);
    return 1;
  }
  return osg_binop_escape(ctx, OSG_OP_DIV, dst, a, b);
}

static inline int osg_mod(struct osg_ctx *ctx, osg_value *dst,
                          const osg_value *a, const osg_value *b) {
  /* The interpreter has no Mod fast path either: always generic. */
  return osg_binop_escape(ctx, OSG_OP_MOD, dst, a, b);
}

static inline int osg_neg(struct osg_ctx *ctx, osg_value *dst,
                          const osg_value *a) {
  if (a->kind == OSG_INT) {
    osg_set_int(dst, osg_wrap_neg(a->i));
    return 1;
  }
  if (a->kind == OSG_FLOAT) {
    osg_set_float(dst, -a->f);
    return 1;
  }
  if (a->kind == OSG_BOOL) {
    osg_set_int(dst, a->i ? -1 : 0);
    return 1;
  }
  {
    osg_value ta = *a;
    osg_value td = {OSG_NIL, 0, 0.0, 0};
    int ok = ctx->ops->unop(ctx, OSG_OP_NEG, &ta, &td);
    *dst = td;
    return ok;
  }
}

static inline void osg_not(osg_value *dst, const osg_value *a) {
  osg_set_bool(dst, !osg_truthy(a));
}

static inline int osg_cmp(struct osg_ctx *ctx, int kind, osg_value *dst,
                          const osg_value *a, const osg_value *b) {
  double x, y;
  if (osg_num(a, &x) && osg_num(b, &y)) {
    int t;
    switch (kind) {
      case OSG_CMP_LT:
        t = x < y;
        break;
      case OSG_CMP_LE:
        t = x <= y;
        break;
      case OSG_CMP_GT:
        t = x > y;
        break;
      case OSG_CMP_GE:
        t = x >= y;
        break;
      case OSG_CMP_EQ:
        t = x == y;
        break;
      default:
        t = x != y;
        break;
    }
    osg_set_bool(dst, t);
    return 1;
  }
  {
    osg_value ta = *a;
    osg_value tb = *b;
    osg_value td = {OSG_NIL, 0, 0.0, 0};
    int ok = ctx->ops->cmp(ctx, kind, &ta, &tb, &td);
    *dst = td;
    return ok;
  }
}

#endif /* OSGUARD_NATIVE_ABI_H_ */
