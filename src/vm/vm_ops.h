#ifndef OSGUARD_SRC_VM_VM_OPS_H_
#define OSGUARD_SRC_VM_VM_OPS_H_

// Scalar semantics shared between the bytecode interpreter (vm.cc) and the
// native-tier host shim (src/runtime/native_exec.cc). The determinism
// contract for the AOT tier is "bit-identical to the interpreter", which is
// only enforceable if both tiers fault, wrap, and coerce through the exact
// same routines — so those routines live here and nowhere else.

#include <cmath>
#include <cstdint>
#include <string>

#include "src/support/status.h"
#include "src/vm/bytecode.h"
#include "src/vm/vm.h"

namespace osguard {
namespace vm_ops {

// Two's-complement wrapping int64 arithmetic (the kernel-friendly overflow
// behavior the VM guarantees). Routed through uint64 so it is defined
// behavior — signed overflow would be UB and trips UBSan.
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
}
inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
}
inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
}
inline int64_t WrapNeg(int64_t a) {
  return static_cast<int64_t>(0u - static_cast<uint64_t>(a));
}

inline Result<Value> Arith(Op op, const Value& lhs, const Value& rhs) {
  if (!lhs.is_numeric() && lhs.type() != ValueType::kBool) {
    return ExecutionError("arithmetic on non-numeric value " + lhs.ToString());
  }
  if (!rhs.is_numeric() && rhs.type() != ValueType::kBool) {
    return ExecutionError("arithmetic on non-numeric value " + rhs.ToString());
  }
  const bool both_int = lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt;
  const double a = lhs.NumericOr(0.0);
  const double b = rhs.NumericOr(0.0);
  switch (op) {
    case Op::kAdd:
      return both_int ? Value(WrapAdd(lhs.AsInt().value(), rhs.AsInt().value())) : Value(a + b);
    case Op::kSub:
      return both_int ? Value(WrapSub(lhs.AsInt().value(), rhs.AsInt().value())) : Value(a - b);
    case Op::kMul:
      return both_int ? Value(WrapMul(lhs.AsInt().value(), rhs.AsInt().value())) : Value(a * b);
    case Op::kDiv:
      if (b == 0.0) {
        return ExecutionError("division by zero");
      }
      return Value(a / b);
    case Op::kMod: {
      if (b == 0.0) {
        return ExecutionError("modulo by zero");
      }
      if (both_int) {
        const int64_t divisor = rhs.AsInt().value();
        // INT64_MIN % -1 overflows in hardware; the wrapped answer is 0.
        if (divisor == -1) {
          return Value(int64_t{0});
        }
        return Value(lhs.AsInt().value() % divisor);
      }
      return Value(std::fmod(a, b));
    }
    default:
      return InternalError("not an arithmetic op");
  }
}

// Numbers and bools all participate in numeric comparison (bool as 0/1),
// matching EvalConst's semantics.
inline bool NumericLike(const Value& v) {
  return v.is_numeric() || v.type() == ValueType::kBool;
}

inline Result<Value> Compare(Op op, const Value& lhs, const Value& rhs) {
  if (op == Op::kCmpEq) {
    return Value(lhs == rhs || (NumericLike(lhs) && NumericLike(rhs) &&
                                lhs.NumericOr(0.0) == rhs.NumericOr(0.0)));
  }
  if (op == Op::kCmpNe) {
    return Value(!(lhs == rhs || (NumericLike(lhs) && NumericLike(rhs) &&
                                  lhs.NumericOr(0.0) == rhs.NumericOr(0.0))));
  }
  // Ordered comparisons: strings compare lexicographically, numerics (and
  // bools) numerically; anything else faults.
  if (lhs.type() == ValueType::kString && rhs.type() == ValueType::kString) {
    const std::string& a = *lhs.IfString();
    const std::string& b = *rhs.IfString();
    switch (op) {
      case Op::kCmpLt:
        return Value(a < b);
      case Op::kCmpLe:
        return Value(a <= b);
      case Op::kCmpGt:
        return Value(a > b);
      case Op::kCmpGe:
        return Value(a >= b);
      default:
        break;
    }
  }
  const bool lhs_ok = NumericLike(lhs);
  const bool rhs_ok = NumericLike(rhs);
  if (!lhs_ok || !rhs_ok) {
    return ExecutionError("ordered comparison on non-numeric values " + lhs.ToString() +
                          " and " + rhs.ToString());
  }
  const double a = lhs.NumericOr(0.0);
  const double b = rhs.NumericOr(0.0);
  switch (op) {
    case Op::kCmpLt:
      return Value(a < b);
    case Op::kCmpLe:
      return Value(a <= b);
    case Op::kCmpGt:
      return Value(a > b);
    case Op::kCmpGe:
      return Value(a >= b);
    default:
      return InternalError("not a comparison op");
  }
}

// Int/float view used by the numeric fast paths. Bools and everything else
// decline, falling back to the generic Arith/Compare routines, so semantics
// are bit-identical to the slow path: both already funnel mixed numeric
// operands through doubles via NumericOr.
inline bool ToDouble(const Value& v, double* out) {
  if (const int64_t* i = v.IfInt()) {
    *out = static_cast<double>(*i);
    return true;
  }
  if (const double* d = v.IfFloat()) {
    *out = *d;
    return true;
  }
  return false;
}

inline bool CmpKindDouble(int kind, double a, double b) {
  switch (kind) {
    case 0:
      return a < b;
    case 1:
      return a <= b;
    case 2:
      return a > b;
    case 3:
      return a >= b;
    case 4:
      return a == b;
    default:
      return a != b;
  }
}

// cmp<kind>(lhs, rhs) with the numeric fast path. Returns false on fault with
// *fault set; otherwise *out holds the comparison result.
inline bool DoCompare(int kind, const Value& lhs, const Value& rhs, bool* out,
                      Status* fault) {
  double a;
  double b;
  if (ToDouble(lhs, &a) && ToDouble(rhs, &b)) {
    *out = CmpKindDouble(kind, a, b);
    return true;
  }
  auto result = Compare(CmpKindToOp(kind), lhs, rhs);
  if (!result.ok()) {
    *fault = result.status();
    return false;
  }
  *out = TruthyValue(result.value());
  return true;
}

}  // namespace vm_ops
}  // namespace osguard

#endif  // OSGUARD_SRC_VM_VM_OPS_H_
