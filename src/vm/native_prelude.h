#ifndef SRC_VM_NATIVE_PRELUDE_H_
#define SRC_VM_NATIVE_PRELUDE_H_

namespace osguard {

// The full text of src/vm/native_abi.h, embedded at configure time
// (src/vm/native_prelude.cc.in). The AOT pipeline prepends it to every
// emitted translation unit, so the host runtime and the emitted C can never
// disagree about the ABI — there is exactly one source of truth.
const char* NativeAbiText();

}  // namespace osguard

#endif  // SRC_VM_NATIVE_PRELUDE_H_
