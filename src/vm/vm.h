// Interpreter for verified monitor programs.
//
// The VM is deliberately boring: verified programs are DAGs, so execution is
// a single forward pass over at most kMaxInstructions instructions. All
// interaction with the outside world happens through the HelperContext, which
// the runtime binds to the feature store and the action dispatcher. Helper
// failures and arithmetic faults (division by zero) surface as a clean
// kExecutionError — the monitor misfires, the kernel does not crash.

#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/store/value.h"
#include "src/support/status.h"
#include "src/support/time.h"
#include "src/vm/bytecode.h"

namespace osguard {

// The VM's window to the world. One implementation lives in the runtime
// (bound to FeatureStore + ActionDispatcher); tests use lightweight fakes.
class HelperContext {
 public:
  virtual ~HelperContext() = default;

  // Invokes helper `id` with `args`. Must tolerate any argument values the
  // verifier admits (arity is pre-checked; types are not).
  virtual Result<Value> CallHelper(HelperId id, std::span<const Value> args) = 0;

  // Keyed variant used by kCallKeyed: `slot` is the feature-store slot id that
  // Engine::Load resolved for the (constant) key argument. Contexts that can
  // exploit it override this; the default ignores the hint, so a stale or
  // foreign slot id can never change behavior — only speed.
  virtual Result<Value> CallHelperKeyed(HelperId id, uint32_t slot,
                                        std::span<const Value> args) {
    (void)slot;
    return CallHelper(id, args);
  }

  // Current simulated time, for the NOW() helper.
  virtual SimTime now() const = 0;
};

// Canonical truthiness used by the VM and the engine: nil and zero are
// false; non-empty strings/lists are true.
bool TruthyValue(const Value& value);

struct ExecStats {
  int64_t insns_executed = 0;
  int64_t helper_calls = 0;
  int64_t budget_aborts = 0;  // executions killed by an ExecBudget
};

// Optional per-execution resource budget — the supervisor's kill switch.
// `max_steps` caps executed instructions below the structural
// kMaxInstructions bound; `deadline_wall_ns` is an absolute
// steady-clock nanosecond timestamp checked every 32 instructions (coarse by
// design: wall time is nondeterministic, so deterministic tests use
// max_steps and leave the deadline as a belt-and-suspenders backstop).
// A budget abort returns kResourceExhausted, distinguishable from ordinary
// kExecutionError faults so the caller can attribute it to the budget.
struct ExecBudget {
  int64_t max_steps = 0;         // 0 = no step limit
  int64_t deadline_wall_ns = 0;  // 0 = no wall deadline
};

class Vm {
 public:
  // `program` must have passed Verify(); Execute still performs cheap bounds
  // checks as defense in depth but assumes structural validity. A null
  // `budget` (the default) costs one predictable branch per instruction.
  Result<Value> Execute(const Program& program, HelperContext& context,
                        const ExecBudget* budget = nullptr);

  // Cumulative statistics across Execute calls (monitor-overhead accounting
  // for property P5).
  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats{}; }

  // The native tier merges its execution accounting here so stats() is
  // tier-invariant: a program promoted to native contributes the exact step
  // and helper-call counts it would have contributed interpreted.
  ExecStats& mutable_stats() { return stats_; }

 private:
  ExecStats stats_;

  // Scratch register file reused across Execute calls so the hot path does
  // not construct/destruct 64 Values per evaluation. A Vm is not thread-safe;
  // re-entrant Execute calls (a helper evaluating another program on the same
  // Vm) fall back to a heap-allocated register file, so reuse is a pure
  // optimization, never a correctness hazard.
  std::array<Value, kMaxRegisters> scratch_regs_;
  bool scratch_in_use_ = false;
};

}  // namespace osguard

#endif  // SRC_VM_VM_H_
