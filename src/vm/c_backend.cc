#include "src/vm/c_backend.h"

#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

namespace osguard {
namespace {

// C identifier from a guardrail name ("low-false-submit" -> "low_false_submit").
std::string Mangle(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out = "g_" + out;
  }
  return out;
}

std::string CEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string ConstToC(const Value& v) {
  switch (v.type()) {
    case ValueType::kNil:
      return "osg_nil()";
    case ValueType::kInt:
      return "osg_int(" + std::to_string(v.AsInt().value()) + "LL)";
    case ValueType::kFloat: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "osg_float(%.17g)", v.AsFloat().value());
      return buf;
    }
    case ValueType::kBool:
      return v.AsBool().value() ? "osg_bool(1)" : "osg_bool(0)";
    case ValueType::kString:
      return "osg_str(\"" + CEscape(v.AsString().value()) + "\")";
    case ValueType::kList: {
      // Lists in the constant pool only ever hold strings (name lists).
      std::string out = "osg_namelist(";
      const auto list = v.AsList().value();
      out += std::to_string(list.size());
      for (const Value& element : list) {
        out += ", \"" + CEscape(element.AsString().value_or("?")) + "\"";
      }
      out += ")";
      return out;
    }
  }
  return "osg_nil()";
}

const char* BinOpToC(Op op) {
  switch (op) {
    case Op::kAdd:
      return "osg_add";
    case Op::kSub:
      return "osg_sub";
    case Op::kMul:
      return "osg_mul";
    case Op::kDiv:
      return "osg_div";
    case Op::kMod:
      return "osg_mod";
    case Op::kCmpLt:
      return "osg_lt";
    case Op::kCmpLe:
      return "osg_le";
    case Op::kCmpGt:
      return "osg_gt";
    case Op::kCmpGe:
      return "osg_ge";
    case Op::kCmpEq:
      return "osg_eq";
    case Op::kCmpNe:
      return "osg_ne";
    default:
      return "osg_bad";
  }
}

}  // namespace

std::string EmitCFunction(const Program& program, const std::string& function_name) {
  std::ostringstream out;
  // Collect jump targets so we can emit labels.
  std::set<size_t> targets;
  for (size_t pc = 0; pc < program.insns.size(); ++pc) {
    const Insn& insn = program.insns[pc];
    if (insn.op == Op::kJump || insn.op == Op::kJumpIfFalse || insn.op == Op::kJumpIfTrue) {
      targets.insert(pc + 1 + static_cast<size_t>(insn.imm));
    } else if (insn.op == Op::kCmpConstJf || insn.op == Op::kCmpConstJt ||
               insn.op == Op::kCmpRegJf || insn.op == Op::kCmpRegJt) {
      targets.insert(pc + 1 + static_cast<size_t>(insn.aux));
    }
  }
  out << "/* compiled from program '" << program.name << "' (" << program.insns.size()
      << " insns) */\n";
  out << "static osg_value " << function_name << "(struct osg_ctx *ctx) {\n";
  out << "  osg_value r[" << program.register_count << "];\n";
  for (size_t pc = 0; pc < program.insns.size(); ++pc) {
    if (targets.count(pc) > 0) {
      out << "L" << pc << ":\n";
    }
    const Insn& insn = program.insns[pc];
    const int a = insn.a;
    const int b = insn.b;
    const int c = insn.c;
    switch (insn.op) {
      case Op::kLoadConst:
        out << "  r[" << a << "] = " << ConstToC(program.consts[static_cast<size_t>(insn.imm)])
            << ";\n";
        break;
      case Op::kMov:
        out << "  r[" << a << "] = r[" << b << "];\n";
        break;
      case Op::kNeg:
        out << "  r[" << a << "] = osg_neg(r[" << b << "]);\n";
        break;
      case Op::kNot:
        out << "  r[" << a << "] = osg_not(r[" << b << "]);\n";
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
      case Op::kCmpEq:
      case Op::kCmpNe:
        out << "  r[" << a << "] = " << BinOpToC(insn.op) << "(r[" << b << "], r[" << c
            << "]);\n";
        break;
      case Op::kJump:
        out << "  goto L" << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kJumpIfFalse:
        out << "  if (!osg_truthy(r[" << a << "])) goto L"
            << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kJumpIfTrue:
        out << "  if (osg_truthy(r[" << a << "])) goto L"
            << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kMakeList:
        out << "  r[" << a << "] = osg_list(&r[" << b << "], " << insn.imm << ");\n";
        break;
      case Op::kCall: {
        const Builtin* builtin = FindBuiltinById(static_cast<HelperId>(insn.imm));
        out << "  r[" << a << "] = osg_call(ctx, OSG_HELPER_"
            << (builtin != nullptr ? std::string(builtin->name) : std::string("UNKNOWN"))
            << ", &r[" << b << "], " << c << ");\n";
        break;
      }
      case Op::kRet:
        out << "  return r[" << a << "];\n";
        break;
      // Superinstructions decompose back into their unfused C forms: the
      // kernel-module compiler re-fuses whatever it finds profitable.
      case Op::kCmpConst:
        out << "  r[" << a << "] = " << BinOpToC(CmpKindToOp(c)) << "(r[" << b << "], "
            << ConstToC(program.consts[static_cast<size_t>(insn.imm)]) << ");\n";
        break;
      case Op::kCmpConstJf:
      case Op::kCmpConstJt:
        out << "  r[" << a << "] = " << BinOpToC(CmpKindToOp(c)) << "(r[" << b << "], "
            << ConstToC(program.consts[static_cast<size_t>(insn.imm)]) << ");\n";
        out << "  if (" << (insn.op == Op::kCmpConstJf ? "!" : "") << "osg_truthy(r[" << a
            << "])) goto L" << (pc + 1 + static_cast<size_t>(insn.aux)) << ";\n";
        break;
      case Op::kCmpRegJf:
      case Op::kCmpRegJt:
        out << "  r[" << a << "] = " << BinOpToC(CmpKindToOp(insn.imm)) << "(r[" << b
            << "], r[" << c << "]);\n";
        out << "  if (" << (insn.op == Op::kCmpRegJf ? "!" : "") << "osg_truthy(r[" << a
            << "])) goto L" << (pc + 1 + static_cast<size_t>(insn.aux)) << ";\n";
        break;
      case Op::kCallKeyed: {
        const Builtin* builtin = FindBuiltinById(static_cast<HelperId>(insn.imm));
        out << "  r[" << a << "] = osg_call(ctx, OSG_HELPER_"
            << (builtin != nullptr ? std::string(builtin->name) : std::string("UNKNOWN"))
            << ", &r[" << b << "], " << c << ");\n";
        break;
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string EmitKernelModuleSource(const CompiledGuardrail& guardrail) {
  const std::string ident = Mangle(guardrail.name);
  std::ostringstream out;
  out << "/*\n * Guardrail monitor '" << guardrail.name << "'\n"
      << " * Generated by osguard; do not edit.\n */\n"
      << "#include <osguard/kmod.h>\n\n";
  out << EmitCFunction(guardrail.rule, ident + "_rule") << "\n";
  out << EmitCFunction(guardrail.action, ident + "_action") << "\n";
  if (!guardrail.on_satisfy.empty()) {
    out << EmitCFunction(guardrail.on_satisfy, ident + "_on_satisfy") << "\n";
  }
  out << "static struct osg_monitor " << ident << "_monitor = {\n"
      << "  .name = \"" << CEscape(guardrail.name) << "\",\n"
      << "  .severity = " << static_cast<int>(guardrail.meta.severity) << ",\n"
      << "  .cooldown_ns = " << guardrail.meta.cooldown << "LL,\n"
      << "  .hysteresis = " << guardrail.meta.hysteresis << ",\n"
      << "  .rule = " << ident << "_rule,\n"
      << "  .action = " << ident << "_action,\n"
      << "  .on_satisfy = "
      << (guardrail.on_satisfy.empty() ? std::string("NULL") : ident + "_on_satisfy") << ",\n"
      << "};\n\n";
  for (const CompiledTrigger& trigger : guardrail.triggers) {
    switch (trigger.kind) {
      case TriggerKind::kTimer:
        out << "OSG_TRIGGER_TIMER(" << ident << "_monitor, " << trigger.start << "LL, "
            << trigger.interval << "LL, " << trigger.stop << "LL);\n";
        break;
      case TriggerKind::kFunction:
        out << "OSG_TRIGGER_FUNCTION(" << ident << "_monitor, " << trigger.function_name
            << ");\n";
        break;
      case TriggerKind::kOnChange:
        out << "OSG_TRIGGER_ONCHANGE(" << ident << "_monitor, \""
            << CEscape(trigger.watch_key) << "\");\n";
        break;
    }
  }
  out << "OSG_MODULE(" << ident << "_monitor);\n";
  return out.str();
}

}  // namespace osguard
