#include "src/vm/c_backend.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace osguard {
namespace {

// C identifier from a guardrail name ("low-false-submit" -> "low_false_submit").
std::string Mangle(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out = "g_" + out;
  }
  return out;
}

std::string CEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        continue;
      case '\\':
        out += "\\\\";
        continue;
      case '\n':
        out += "\\n";
        continue;
      case '\t':
        out += "\\t";
        continue;
      case '\r':
        out += "\\r";
        continue;
      default:
        break;
    }
    if (u < 0x20 || u >= 0x7f) {
      // Three-digit octal escapes are unambiguous even when a digit follows
      // (C caps octal escapes at three digits).
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\%03o", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Renders a double so the C compiler reads back the exact same value:
// %.17g is round-trip precise for finite doubles, but bare integral output
// ("2") must gain a ".0" to stay a floating literal, and non-finite values
// have no literal form at all.
std::string FloatToC(double d) {
  if (std::isnan(d)) {
    return "OSG_NAN";
  }
  if (std::isinf(d)) {
    return d < 0 ? "-OSG_INF" : "OSG_INF";
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  std::string out = buf;
  if (out.find_first_of(".eE") == std::string::npos) {
    out += ".0";
  }
  return out;
}

std::string ConstToC(const Value& v) {
  switch (v.type()) {
    case ValueType::kNil:
      return "osg_nil()";
    case ValueType::kInt:
      return "osg_int(" + std::to_string(v.AsInt().value()) + "LL)";
    case ValueType::kFloat:
      return "osg_float(" + FloatToC(v.AsFloat().value()) + ")";
    case ValueType::kBool:
      return v.AsBool().value() ? "osg_bool(1)" : "osg_bool(0)";
    case ValueType::kString:
      return "osg_str(\"" + CEscape(v.AsString().value()) + "\")";
    case ValueType::kList: {
      // Lists in the constant pool only ever hold strings (name lists).
      std::string out = "osg_namelist(";
      const auto list = v.AsList().value();
      out += std::to_string(list.size());
      for (const Value& element : list) {
        out += ", \"" + CEscape(element.AsString().value_or("?")) + "\"";
      }
      out += ")";
      return out;
    }
  }
  return "osg_nil()";
}

const char* BinOpToC(Op op) {
  switch (op) {
    case Op::kAdd:
      return "osg_add";
    case Op::kSub:
      return "osg_sub";
    case Op::kMul:
      return "osg_mul";
    case Op::kDiv:
      return "osg_div";
    case Op::kMod:
      return "osg_mod";
    case Op::kCmpLt:
      return "osg_lt";
    case Op::kCmpLe:
      return "osg_le";
    case Op::kCmpGt:
      return "osg_gt";
    case Op::kCmpGe:
      return "osg_ge";
    case Op::kCmpEq:
      return "osg_eq";
    case Op::kCmpNe:
      return "osg_ne";
    default:
      return "osg_bad";
  }
}

// "OSG_HELPER_<NAME>" for known builtins, the raw numeric id otherwise (so a
// fuzzed program keeps the interpreter's "unknown helper id N" fault).
std::string HelperToken(int32_t id) {
  const Builtin* builtin = FindBuiltinById(static_cast<HelperId>(id));
  if (builtin != nullptr) {
    return "OSG_HELPER_" + std::string(builtin->name);
  }
  return std::to_string(id);
}

// Jump targets of `program`, as original-pc indices. Targets may include
// program.insns.size() (a jump straight off the end).
std::set<size_t> CollectJumpTargets(const Program& program) {
  std::set<size_t> targets;
  for (size_t pc = 0; pc < program.insns.size(); ++pc) {
    const Insn& insn = program.insns[pc];
    if (insn.op == Op::kJump || insn.op == Op::kJumpIfFalse || insn.op == Op::kJumpIfTrue) {
      targets.insert(pc + 1 + static_cast<size_t>(insn.imm));
    } else if (insn.op == Op::kCmpConstJf || insn.op == Op::kCmpConstJt ||
               insn.op == Op::kCmpRegJf || insn.op == Op::kCmpRegJt) {
      targets.insert(pc + 1 + static_cast<size_t>(insn.aux));
    }
  }
  return targets;
}

// Whether control can reach past the last instruction (a verified program
// always ends in Ret, but emitted C must stay well-formed for any input).
bool CanRunOffEnd(const Program& program, const std::set<size_t>& targets) {
  if (targets.count(program.insns.size()) > 0) {
    return true;
  }
  if (program.insns.empty()) {
    return true;
  }
  const Op last = program.insns.back().op;
  return last != Op::kRet && last != Op::kJump;
}

}  // namespace

std::string EmitCFunction(const Program& program, const std::string& function_name) {
  std::ostringstream out;
  const std::set<size_t> targets = CollectJumpTargets(program);
  out << "/* compiled from program '" << program.name << "' (" << program.insns.size()
      << " insns) */\n";
  out << "static osg_value " << function_name << "(struct osg_ctx *ctx) {\n";
  out << "  osg_value r[" << std::max<uint32_t>(1, program.register_count)
      << "] = {{OSG_NIL, 0, 0.0, 0}};\n";
  out << "  (void)ctx;\n";
  out << "  (void)r;\n";
  for (size_t pc = 0; pc < program.insns.size(); ++pc) {
    if (targets.count(pc) > 0) {
      out << "L" << pc << ":\n";
    }
    const Insn& insn = program.insns[pc];
    const int a = insn.a;
    const int b = insn.b;
    const int c = insn.c;
    switch (insn.op) {
      case Op::kLoadConst:
        out << "  r[" << a << "] = " << ConstToC(program.consts[static_cast<size_t>(insn.imm)])
            << ";\n";
        break;
      case Op::kMov:
        out << "  r[" << a << "] = r[" << b << "];\n";
        break;
      case Op::kNeg:
        out << "  r[" << a << "] = osg_neg(r[" << b << "]);\n";
        break;
      case Op::kNot:
        out << "  r[" << a << "] = osg_not(r[" << b << "]);\n";
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
      case Op::kCmpEq:
      case Op::kCmpNe:
        out << "  r[" << a << "] = " << BinOpToC(insn.op) << "(r[" << b << "], r[" << c
            << "]);\n";
        break;
      case Op::kJump:
        out << "  goto L" << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kJumpIfFalse:
        out << "  if (!osg_truthy(r[" << a << "])) goto L"
            << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kJumpIfTrue:
        out << "  if (osg_truthy(r[" << a << "])) goto L"
            << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kMakeList:
        out << "  r[" << a << "] = osg_list(&r[" << b << "], " << insn.imm << ");\n";
        break;
      case Op::kCall:
        out << "  r[" << a << "] = osg_call(ctx, " << HelperToken(insn.imm) << ", &r[" << b
            << "], " << c << ");\n";
        break;
      case Op::kRet:
        out << "  return r[" << a << "];\n";
        break;
      // Superinstructions decompose back into their unfused C forms: the
      // kernel-module compiler re-fuses whatever it finds profitable.
      case Op::kCmpConst:
        out << "  r[" << a << "] = " << BinOpToC(CmpKindToOp(c)) << "(r[" << b << "], "
            << ConstToC(program.consts[static_cast<size_t>(insn.imm)]) << ");\n";
        break;
      case Op::kCmpConstJf:
      case Op::kCmpConstJt:
        out << "  r[" << a << "] = " << BinOpToC(CmpKindToOp(c)) << "(r[" << b << "], "
            << ConstToC(program.consts[static_cast<size_t>(insn.imm)]) << ");\n";
        out << "  if (" << (insn.op == Op::kCmpConstJf ? "!" : "") << "osg_truthy(r[" << a
            << "])) goto L" << (pc + 1 + static_cast<size_t>(insn.aux)) << ";\n";
        break;
      case Op::kCmpRegJf:
      case Op::kCmpRegJt:
        out << "  r[" << a << "] = " << BinOpToC(CmpKindToOp(insn.imm)) << "(r[" << b
            << "], r[" << c << "]);\n";
        out << "  if (" << (insn.op == Op::kCmpRegJf ? "!" : "") << "osg_truthy(r[" << a
            << "])) goto L" << (pc + 1 + static_cast<size_t>(insn.aux)) << ";\n";
        break;
      case Op::kCallKeyed:
        out << "  r[" << a << "] = osg_call(ctx, " << HelperToken(insn.imm) << ", &r[" << b
            << "], " << c << ");\n";
        break;
    }
  }
  if (CanRunOffEnd(program, targets)) {
    if (targets.count(program.insns.size()) > 0) {
      out << "L" << program.insns.size() << ":\n";
    }
    out << "  return osg_nil();\n";
  }
  out << "}\n";
  return out.str();
}

std::string EmitNativeFunction(const Program& program, const std::string& function_name) {
  std::ostringstream out;
  const std::set<size_t> targets = CollectJumpTargets(program);
  bool fault_used = false;

  // Every VM register is scalarized into four C locals (kind / i / f / h).
  // The int and float fast paths are emitted field-wise, inline, so the hot
  // compute chain lives entirely in machine registers; osg_value structs are
  // materialized only at the opaque host escapes (ctx->ops->*), which pack
  // operand copies into osg_ta/osg_tb/osg_win and unpack osg_td/osg_out.
  // Keeping struct addresses out of the hot path is what lets the host
  // compiler registerize across the cold-call merge points — emitting the
  // same logic through pointer-taking helpers pins every register to the
  // stack and costs ~3x on compute-dense programs.
  std::set<int> used;
  int win_size = 0;
  bool win_used = false;
  bool escape_used = false;
  for (const Insn& insn : program.insns) {
    const int a = insn.a;
    const int b = insn.b;
    const int c = insn.c;
    auto window = [&](int base, int count) {
      for (int j = 0; j < count; ++j) {
        used.insert(base + j);
      }
      win_size = std::max(win_size, count);
      win_used = true;
    };
    switch (insn.op) {
      case Op::kLoadConst:
        used.insert(a);
        break;
      case Op::kMov:
      case Op::kNot:
        used.insert(a);
        used.insert(b);
        break;
      case Op::kNeg:
        used.insert(a);
        used.insert(b);
        escape_used = true;
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpRegJf:
      case Op::kCmpRegJt:
        used.insert(a);
        used.insert(b);
        used.insert(c);
        escape_used = true;
        break;
      case Op::kJump:
        break;
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
      case Op::kRet:
        used.insert(a);
        break;
      case Op::kCmpConst:
      case Op::kCmpConstJf:
      case Op::kCmpConstJt:
        used.insert(a);
        used.insert(b);
        escape_used = true;
        break;
      case Op::kMakeList:
        used.insert(a);
        window(b, insn.imm);
        break;
      case Op::kCall:
      case Op::kCallKeyed:
        used.insert(a);
        window(b, c);
        break;
    }
  }

  auto R = [](int i) { return "r" + std::to_string(i); };
  auto K = [&](int i) { return R(i) + "_kind"; };
  auto I = [&](int i) { return R(i) + "_i"; };
  auto F = [&](int i) { return R(i) + "_f"; };
  auto H = [&](int i) { return R(i) + "_h"; };
  // Pack register scalars into a struct lvalue (escape operand / call arg).
  auto pack = [&](const std::string& dst, int r) {
    return dst + ".kind = " + K(r) + "; " + dst + ".i = " + I(r) + "; " + dst +
           ".f = " + F(r) + "; " + dst + ".h = " + H(r) + ";";
  };
  // Unpack a struct lvalue back into register scalars (escape / call result).
  auto unpack = [&](int r, const std::string& src) {
    return K(r) + " = " + src + ".kind; " + I(r) + " = " + src + ".i; " + F(r) +
           " = " + src + ".f; " + H(r) + " = " + src + ".h;";
  };
  auto set_int = [&](int r, const std::string& expr) {
    return K(r) + " = OSG_INT; " + I(r) + " = " + expr + "; " + F(r) + " = 0.0; " +
           H(r) + " = 0;";
  };
  auto set_float = [&](int r, const std::string& expr) {
    return K(r) + " = OSG_FLOAT; " + I(r) + " = 0; " + F(r) + " = " + expr + "; " +
           H(r) + " = 0;";
  };
  auto set_bool = [&](int r, const std::string& expr) {
    return K(r) + " = OSG_BOOL; " + I(r) + " = " + expr + "; " + F(r) + " = 0.0; " +
           H(r) + " = 0;";
  };
  // vm_ops::ToDouble on scalars: ok &= operand is int/float, x = its value.
  auto numeric = [&](const std::string& x, int r) {
    return "if (" + K(r) + " == OSG_INT) " + x + " = (double)" + I(r) + "; else if (" +
           K(r) + " == OSG_FLOAT) " + x + " = " + F(r) + "; else osg_ok = 0;";
  };
  auto numeric_const = [&](const std::string& x, int idx) {
    const std::string cv = "ctx->consts[" + std::to_string(idx) + "]";
    return "if (" + cv + ".kind == OSG_INT) " + x + " = (double)" + cv +
           ".i; else if (" + cv + ".kind == OSG_FLOAT) " + x + " = " + cv +
           ".f; else osg_ok = 0;";
  };
  auto truthy = [&](int r) {
    return "(" + K(r) + " == OSG_NIL ? 0 : " + K(r) + " == OSG_FLOAT ? " + F(r) +
           " != 0.0 : " + I(r) + " != 0)";
  };
  auto copy_window = [&](int base, int count) {
    std::string text;
    for (int j = 0; j < count; ++j) {
      text += " " + pack("osg_win[" + std::to_string(j) + "]", base + j);
    }
    return text;
  };
  auto cmp_c_op = [](int kind) {
    switch (kind) {
      case 0:
        return "<";
      case 1:
        return "<=";
      case 2:
        return ">";
      case 3:
        return ">=";
      case 4:
        return "==";
      default:
        return "!=";
    }
  };

  std::ostringstream body;
  for (size_t pc = 0; pc < program.insns.size(); ++pc) {
    if (targets.count(pc) > 0) {
      body << "L" << pc << ":\n";
    }
    const Insn& insn = program.insns[pc];
    const int a = insn.a;
    const int b = insn.b;
    const int c = insn.c;
    // One `++st` per original bytecode instruction, before it executes —
    // exactly the interpreter's insns_executed accounting (Ret included).
    body << "  ++st;";
    switch (insn.op) {
      case Op::kLoadConst:
        body << " " << unpack(a, "ctx->consts[" + std::to_string(insn.imm) + "]") << "\n";
        break;
      case Op::kMov:
        body << " " << K(a) << " = " << K(b) << "; " << I(a) << " = " << I(b) << "; "
             << F(a) << " = " << F(b) << "; " << H(a) << " = " << H(b) << ";\n";
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        const bool has_int_path =
            insn.op == Op::kAdd || insn.op == Op::kSub || insn.op == Op::kMul;
        const char* wrap = insn.op == Op::kAdd   ? "osg_wrap_add"
                           : insn.op == Op::kSub ? "osg_wrap_sub"
                                                 : "osg_wrap_mul";
        const char* fop = insn.op == Op::kAdd   ? "x + y"
                          : insn.op == Op::kSub ? "x - y"
                          : insn.op == Op::kMul ? "x * y"
                                                : "x / y";
        const char* code = insn.op == Op::kAdd   ? "OSG_OP_ADD"
                           : insn.op == Op::kSub ? "OSG_OP_SUB"
                           : insn.op == Op::kMul ? "OSG_OP_MUL"
                           : insn.op == Op::kDiv ? "OSG_OP_DIV"
                                                 : "OSG_OP_MOD";
        body << " {\n";
        if (insn.op == Op::kMod) {
          // The interpreter has no Mod fast path either: always generic.
          body << "    " << pack("osg_ta", b) << " " << pack("osg_tb", c) << "\n";
          body << "    if (!ctx->ops->binop(ctx, " << code
               << ", &osg_ta, &osg_tb, &osg_td)) goto osg_fault;\n";
          body << "    " << unpack(a, "osg_td") << "\n";
        } else {
          if (has_int_path) {
            body << "    if (" << K(b) << " == OSG_INT && " << K(c) << " == OSG_INT) {\n";
            body << "      long long t = " << wrap << "(" << I(b) << ", " << I(c)
                 << ");\n";
            body << "      " << set_int(a, "t") << "\n";
            body << "    } else {\n";
          }
          body << "    double x = 0.0, y = 0.0;\n";
          body << "    int osg_ok = 1;\n";
          body << "    " << numeric("x", b) << "\n";
          body << "    " << numeric("y", c) << "\n";
          if (insn.op == Op::kDiv) {
            body << "    if (osg_ok && y != 0.0) {\n";
          } else {
            body << "    if (osg_ok) {\n";
          }
          body << "      double t = " << fop << ";\n";
          body << "      " << set_float(a, "t") << "\n";
          body << "    } else {\n";
          body << "      " << pack("osg_ta", b) << " " << pack("osg_tb", c) << "\n";
          body << "      if (!ctx->ops->binop(ctx, " << code
               << ", &osg_ta, &osg_tb, &osg_td)) goto osg_fault;\n";
          body << "      " << unpack(a, "osg_td") << "\n";
          body << "    }\n";
          if (has_int_path) {
            body << "    }\n";
          }
        }
        body << "  }\n";
        fault_used = true;
        break;
      }
      case Op::kNeg:
        body << " {\n";
        body << "    if (" << K(b) << " == OSG_INT) {\n";
        body << "      long long t = osg_wrap_neg(" << I(b) << ");\n";
        body << "      " << set_int(a, "t") << "\n";
        body << "    } else if (" << K(b) << " == OSG_FLOAT) {\n";
        body << "      double t = -" << F(b) << ";\n";
        body << "      " << set_float(a, "t") << "\n";
        body << "    } else if (" << K(b) << " == OSG_BOOL) {\n";
        body << "      long long t = " << I(b) << " ? -1 : 0;\n";
        body << "      " << set_int(a, "t") << "\n";
        body << "    } else {\n";
        body << "      " << pack("osg_ta", b) << "\n";
        body << "      if (!ctx->ops->unop(ctx, OSG_OP_NEG, &osg_ta, &osg_td)) "
                "goto osg_fault;\n";
        body << "      " << unpack(a, "osg_td") << "\n";
        body << "    }\n";
        body << "  }\n";
        fault_used = true;
        break;
      case Op::kNot: {
        body << " { int t = !" << truthy(b) << "; " << set_bool(a, "t") << " }\n";
        break;
      }
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
      case Op::kCmpEq:
      case Op::kCmpNe:
      case Op::kCmpRegJf:
      case Op::kCmpRegJt: {
        const bool fused = insn.op == Op::kCmpRegJf || insn.op == Op::kCmpRegJt;
        const int kind = fused ? insn.imm : CmpOpToKind(insn.op);
        body << " {\n";
        body << "    double x = 0.0, y = 0.0;\n";
        body << "    int osg_ok = 1;\n";
        body << "    " << numeric("x", b) << "\n";
        body << "    " << numeric("y", c) << "\n";
        body << "    if (osg_ok) {\n";
        body << "      int t = x " << cmp_c_op(kind) << " y;\n";
        body << "      " << set_bool(a, "t") << "\n";
        body << "    } else {\n";
        body << "      " << pack("osg_ta", b) << " " << pack("osg_tb", c) << "\n";
        body << "      if (!ctx->ops->cmp(ctx, " << kind
             << ", &osg_ta, &osg_tb, &osg_td)) goto osg_fault;\n";
        body << "      " << unpack(a, "osg_td") << "\n";
        body << "    }\n";
        body << "  }\n";
        if (fused) {
          body << "  if (" << (insn.op == Op::kCmpRegJf ? "!" : "") << truthy(a)
               << ") goto L" << (pc + 1 + static_cast<size_t>(insn.aux)) << ";\n";
        }
        fault_used = true;
        break;
      }
      case Op::kCmpConst:
      case Op::kCmpConstJf:
      case Op::kCmpConstJt: {
        const bool fused = insn.op != Op::kCmpConst;
        body << " {\n";
        body << "    double x = 0.0, y = 0.0;\n";
        body << "    int osg_ok = 1;\n";
        body << "    " << numeric("x", b) << "\n";
        body << "    " << numeric_const("y", insn.imm) << "\n";
        body << "    if (osg_ok) {\n";
        body << "      int t = x " << cmp_c_op(c) << " y;\n";
        body << "      " << set_bool(a, "t") << "\n";
        body << "    } else {\n";
        body << "      " << pack("osg_ta", b) << "\n";
        body << "      if (!ctx->ops->cmp(ctx, " << c << ", &osg_ta, &ctx->consts["
             << insn.imm << "], &osg_td)) goto osg_fault;\n";
        body << "      " << unpack(a, "osg_td") << "\n";
        body << "    }\n";
        body << "  }\n";
        if (fused) {
          body << "  if (" << (insn.op == Op::kCmpConstJf ? "!" : "") << truthy(a)
               << ") goto L" << (pc + 1 + static_cast<size_t>(insn.aux)) << ";\n";
        }
        fault_used = true;
        break;
      }
      case Op::kJump:
        body << " goto L" << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kJumpIfFalse:
        body << " if (!" << truthy(a) << ") goto L"
             << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kJumpIfTrue:
        body << " if (" << truthy(a) << ") goto L"
             << (pc + 1 + static_cast<size_t>(insn.imm)) << ";\n";
        break;
      case Op::kMakeList:
        body << copy_window(b, insn.imm) << " if (!ctx->ops->make_list(ctx, osg_win, "
             << insn.imm << ", &osg_out)) goto osg_fault; " << unpack(a, "osg_out")
             << "\n";
        fault_used = true;
        break;
      case Op::kCall:
        body << " ctx->steps = st;" << copy_window(b, c) << " if (!ctx->ops->call(ctx, "
             << HelperToken(insn.imm) << ", OSG_NO_SLOT, osg_win, " << c
             << ", &osg_out)) goto osg_fault; " << unpack(a, "osg_out") << "\n";
        fault_used = true;
        break;
      case Op::kRet:
        body << " ctx->steps = st; { osg_value rv; " << pack("rv", a)
             << " return rv; }\n";
        break;
      case Op::kCallKeyed: {
        const uint32_t slot = static_cast<uint32_t>(insn.aux);
        body << " ctx->steps = st;" << copy_window(b, c);
        // Specialized ops receive the full argument window (key first) so
        // the host shim can mirror the interpreter's string fallback when
        // the slot is not one the store interned.
        const std::string tail = "&osg_out)) goto osg_fault; " + unpack(a, "osg_out") + "\n";
        switch (static_cast<HelperId>(insn.imm)) {
          case HelperId::kLoad:
            body << " if (!ctx->ops->load_slot(ctx, " << slot << "u, osg_win, " << tail;
            break;
          case HelperId::kLoadOr:
            body << " if (!ctx->ops->load_or_slot(ctx, " << slot << "u, osg_win, " << tail;
            break;
          case HelperId::kSave:
            body << " if (!ctx->ops->save_slot(ctx, " << slot << "u, osg_win, " << tail;
            break;
          case HelperId::kIncr:
            body << " if (!ctx->ops->incr_slot(ctx, " << slot << "u, osg_win, " << c << ", "
                 << tail;
            break;
          case HelperId::kExists:
            body << " if (!ctx->ops->exists_slot(ctx, " << slot << "u, osg_win, " << tail;
            break;
          case HelperId::kObserve:
            body << " if (!ctx->ops->observe_slot(ctx, " << slot << "u, osg_win, " << tail;
            break;
          case HelperId::kCount:
          case HelperId::kSum:
          case HelperId::kMean:
          case HelperId::kMinAgg:
          case HelperId::kMaxAgg:
          case HelperId::kStdDev:
          case HelperId::kRate:
          case HelperId::kNewest:
          case HelperId::kOldest:
            body << " if (!ctx->ops->agg_slot(ctx, " << HelperToken(insn.imm) << ", " << slot
                 << "u, osg_win, " << tail;
            break;
          case HelperId::kQuantile:
            body << " if (!ctx->ops->quantile_slot(ctx, " << slot << "u, osg_win, " << tail;
            break;
          default:
            body << " if (!ctx->ops->call(ctx, " << HelperToken(insn.imm) << ", " << slot
                 << "u, osg_win, " << c << ", " << tail;
            break;
        }
        fault_used = true;
        break;
      }
    }
  }

  out << "/* program '" << program.name << "' (" << program.insns.size()
      << " insns), native tier */\n";
  out << "osg_value " << function_name << "(osg_ctx *ctx) {\n";
  for (const int i : used) {
    out << "  int " << K(i) << " = OSG_NIL; long long " << I(i) << " = 0; double "
        << F(i) << " = 0.0; const void *" << H(i) << " = 0;\n";
  }
  if (win_used) {
    out << "  osg_value osg_win[" << std::max(1, win_size) << "];\n";
    out << "  osg_value osg_out = {OSG_NIL, 0, 0.0, 0};\n";
  }
  if (escape_used) {
    out << "  osg_value osg_ta = {OSG_NIL, 0, 0.0, 0};\n";
    out << "  osg_value osg_tb = {OSG_NIL, 0, 0.0, 0};\n";
    out << "  osg_value osg_td = {OSG_NIL, 0, 0.0, 0};\n";
  }
  out << "  long long st = 0;\n";
  for (const int i : used) {
    out << "  (void)" << K(i) << "; (void)" << I(i) << "; (void)" << F(i) << "; (void)"
        << H(i) << ";\n";
  }
  if (escape_used) {
    out << "  (void)osg_ta; (void)osg_tb; (void)osg_td;\n";
  }
  out << body.str();
  if (CanRunOffEnd(program, targets)) {
    if (targets.count(program.insns.size()) > 0) {
      out << "L" << program.insns.size() << ":\n";
    }
    out << "  ctx->steps = st;\n";
    out << "  (void)ctx->ops->raise(ctx, OSG_RAISE_OFF_END);\n";
    out << "  {\n";
    out << "    osg_value osg_nil_v = {OSG_NIL, 0, 0.0, 0};\n";
    out << "    return osg_nil_v;\n";
    out << "  }\n";
  }
  if (fault_used) {
    out << "osg_fault:\n";
    out << "  ctx->steps = st;\n";
    out << "  {\n";
    out << "    osg_value osg_nil_v = {OSG_NIL, 0, 0.0, 0};\n";
    out << "    return osg_nil_v;\n";
    out << "  }\n";
  }
  out << "}\n";
  return out.str();
}

std::string EmitNativeSource(const CompiledGuardrail& guardrail) {
  std::ostringstream out;
  out << "/*\n * Guardrail monitor '" << guardrail.name << "', native tier.\n"
      << " * Generated by osguard; do not edit.\n */\n\n";
  out << EmitNativeFunction(guardrail.rule, "osg_rule") << "\n";
  out << EmitNativeFunction(guardrail.action, "osg_action") << "\n";
  if (!guardrail.on_satisfy.empty()) {
    out << EmitNativeFunction(guardrail.on_satisfy, "osg_on_satisfy") << "\n";
  }
  return out.str();
}

std::string EmitKernelModuleSource(const CompiledGuardrail& guardrail) {
  const std::string ident = Mangle(guardrail.name);
  std::ostringstream out;
  out << "/*\n * Guardrail monitor '" << guardrail.name << "'\n"
      << " * Generated by osguard; do not edit.\n */\n"
      << "#include <osguard/kmod.h>\n\n";
  out << EmitCFunction(guardrail.rule, ident + "_rule") << "\n";
  out << EmitCFunction(guardrail.action, ident + "_action") << "\n";
  if (!guardrail.on_satisfy.empty()) {
    out << EmitCFunction(guardrail.on_satisfy, ident + "_on_satisfy") << "\n";
  }
  out << "static struct osg_monitor " << ident << "_monitor = {\n"
      << "  .name = \"" << CEscape(guardrail.name) << "\",\n"
      << "  .severity = " << static_cast<int>(guardrail.meta.severity) << ",\n"
      << "  .cooldown_ns = " << guardrail.meta.cooldown << "LL,\n"
      << "  .hysteresis = " << guardrail.meta.hysteresis << ",\n"
      << "  .rule = " << ident << "_rule,\n"
      << "  .action = " << ident << "_action,\n"
      << "  .on_satisfy = "
      << (guardrail.on_satisfy.empty() ? std::string("NULL") : ident + "_on_satisfy") << ",\n"
      << "};\n\n";
  for (const CompiledTrigger& trigger : guardrail.triggers) {
    switch (trigger.kind) {
      case TriggerKind::kTimer:
        out << "OSG_TRIGGER_TIMER(" << ident << "_monitor, " << trigger.start << "LL, "
            << trigger.interval << "LL, " << trigger.stop << "LL);\n";
        break;
      case TriggerKind::kFunction:
        out << "OSG_TRIGGER_FUNCTION(" << ident << "_monitor, " << trigger.function_name
            << ");\n";
        break;
      case TriggerKind::kOnChange:
        out << "OSG_TRIGGER_ONCHANGE(" << ident << "_monitor, \""
            << CEscape(trigger.watch_key) << "\");\n";
        break;
    }
  }
  out << "OSG_MODULE(" << ident << "_monitor);\n";
  return out.str();
}

}  // namespace osguard
