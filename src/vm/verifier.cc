#include "src/vm/verifier.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace osguard {
namespace {

std::string At(size_t pc) { return " at pc " + std::to_string(pc); }

bool IsMutatingHelperId(HelperId id) {
  return id == HelperId::kSave || id == HelperId::kIncr || id == HelperId::kObserve;
}

// Which registers an instruction reads / writes. Returns false if the opcode
// is unknown.
struct Effects {
  uint64_t uses = 0;
  std::optional<uint8_t> def;
  bool is_jump = false;          // has a jump offset (imm, or aux when fused)
  bool jump_in_aux = false;      // fused compare-and-branch: offset lives in aux
  bool falls_through = true;     // execution may continue at pc+1
};

// The jump offset of an instruction whose Effects said is_jump.
int32_t JumpOffsetOf(const Insn& insn, const Effects& effects) {
  return effects.jump_in_aux ? insn.aux : insn.imm;
}

// Range-checked bit helper: register indices must be validated BEFORE any
// mask computation — a shift by >= 64 is undefined behavior (and on x86
// silently wraps, which would let out-of-range registers slip past the
// dataflow analysis; found by tests/fuzz_test.cc's mutation fuzzer).
Result<uint64_t> Bit(int reg) {
  if (reg < 0 || reg >= kMaxRegisters) {
    return VerifierError("register r" + std::to_string(reg) + " out of range");
  }
  return 1ull << reg;
}

Result<Effects> EffectsOf(const Insn& insn) {
  Effects e;
  auto use = [&e](int reg) -> Status {
    OSGUARD_ASSIGN_OR_RETURN(uint64_t bit, Bit(reg));
    e.uses |= bit;
    return OkStatus();
  };
  auto def = [&e](int reg) -> Status {
    OSGUARD_RETURN_IF_ERROR(Bit(reg).status());  // range check only
    e.def = static_cast<uint8_t>(reg);
    return OkStatus();
  };
  switch (insn.op) {
    case Op::kLoadConst:
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    case Op::kMov:
    case Op::kNeg:
    case Op::kNot:
      OSGUARD_RETURN_IF_ERROR(use(insn.b));
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpGt:
    case Op::kCmpGe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      OSGUARD_RETURN_IF_ERROR(use(insn.b));
      OSGUARD_RETURN_IF_ERROR(use(insn.c));
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    case Op::kJump:
      e.is_jump = true;
      e.falls_through = false;
      return e;
    case Op::kJumpIfFalse:
    case Op::kJumpIfTrue:
      OSGUARD_RETURN_IF_ERROR(use(insn.a));
      e.is_jump = true;
      return e;
    case Op::kMakeList: {
      for (int i = 0; i < insn.imm; ++i) {
        OSGUARD_RETURN_IF_ERROR(use(insn.b + i));
      }
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    }
    case Op::kCall: {
      for (int i = 0; i < insn.c; ++i) {
        OSGUARD_RETURN_IF_ERROR(use(insn.b + i));
      }
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    }
    case Op::kRet:
      OSGUARD_RETURN_IF_ERROR(use(insn.a));
      e.falls_through = false;
      return e;
    case Op::kCmpConst:
      OSGUARD_RETURN_IF_ERROR(use(insn.b));
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    case Op::kCmpConstJf:
    case Op::kCmpConstJt:
      // r[a] is written on both the branch-taken and fall-through paths.
      OSGUARD_RETURN_IF_ERROR(use(insn.b));
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      e.is_jump = true;
      e.jump_in_aux = true;
      return e;
    case Op::kCmpRegJf:
    case Op::kCmpRegJt:
      OSGUARD_RETURN_IF_ERROR(use(insn.b));
      OSGUARD_RETURN_IF_ERROR(use(insn.c));
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      e.is_jump = true;
      e.jump_in_aux = true;
      return e;
    case Op::kCallKeyed: {
      for (int i = 0; i < insn.c; ++i) {
        OSGUARD_RETURN_IF_ERROR(use(insn.b + i));
      }
      OSGUARD_RETURN_IF_ERROR(def(insn.a));
      return e;
    }
  }
  return VerifierError("unknown opcode " + std::to_string(static_cast<int>(insn.op)));
}

}  // namespace

Status Verify(const Program& program, const VerifyOptions& options) {
  const size_t n = program.insns.size();
  if (n == 0) {
    return VerifierError("program '" + program.name + "' is empty");
  }
  if (n > kMaxInstructions) {
    return VerifierError("program '" + program.name + "' exceeds " +
                         std::to_string(kMaxInstructions) + " instructions");
  }
  if (program.consts.size() > kMaxConstants) {
    return VerifierError("program '" + program.name + "' exceeds the constant pool limit");
  }
  if (program.register_count < 1 || program.register_count > kMaxRegisters) {
    return VerifierError("program '" + program.name + "' declares an invalid register count " +
                         std::to_string(program.register_count));
  }
  const int regs = program.register_count;

  // Pass 1: structural checks on each instruction.
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = program.insns[pc];
    OSGUARD_ASSIGN_OR_RETURN(Effects effects, EffectsOf(insn));

    auto check_reg = [&](uint8_t reg, const char* what) -> Status {
      if (reg >= regs) {
        return VerifierError("program '" + program.name + "': " + what + " r" +
                             std::to_string(reg) + " out of range" + At(pc));
      }
      return OkStatus();
    };
    if (effects.def.has_value()) {
      OSGUARD_RETURN_IF_ERROR(check_reg(*effects.def, "destination register"));
    }
    for (int r = 0; r < kMaxRegisters; ++r) {
      if ((effects.uses >> r) & 1) {
        OSGUARD_RETURN_IF_ERROR(check_reg(static_cast<uint8_t>(r), "source register"));
      }
    }

    auto check_jump = [&](int32_t offset) -> Status {
      if (offset < 1) {
        return VerifierError("program '" + program.name +
                             "': non-forward jump (offset " + std::to_string(offset) + ")" +
                             At(pc));
      }
      const size_t target = pc + 1 + static_cast<size_t>(offset);
      if (target >= n) {
        return VerifierError("program '" + program.name + "': jump target " +
                             std::to_string(target) + " out of range" + At(pc));
      }
      return OkStatus();
    };
    auto check_const = [&](int32_t index) -> Status {
      if (index < 0 || static_cast<size_t>(index) >= program.consts.size()) {
        return VerifierError("program '" + program.name + "': constant index " +
                             std::to_string(index) + " out of range" + At(pc));
      }
      return OkStatus();
    };
    auto check_cmp_kind = [&](int kind) -> Status {
      if (kind < 0 || kind >= kCmpKindCount) {
        return VerifierError("program '" + program.name + "': invalid compare kind " +
                             std::to_string(kind) + At(pc));
      }
      return OkStatus();
    };
    auto check_call = [&](int32_t helper, int argc) -> Status {
      const Builtin* builtin = FindBuiltinById(static_cast<HelperId>(helper));
      if (builtin == nullptr) {
        return VerifierError("program '" + program.name + "': unknown helper " +
                             std::to_string(helper) + At(pc));
      }
      if (argc < builtin->min_args ||
          (builtin->max_args >= 0 && argc > builtin->max_args)) {
        return VerifierError("program '" + program.name + "': helper " +
                             std::string(builtin->name) + " called with " +
                             std::to_string(argc) + " args" + At(pc));
      }
      if (insn.b + argc > regs) {
        return VerifierError("program '" + program.name + "': helper argument window out of "
                             "range" + At(pc));
      }
      if (!options.allow_actions &&
          (builtin->is_action || IsMutatingHelperId(builtin->id))) {
        return VerifierError("program '" + program.name + "': side-effecting helper " +
                             std::string(builtin->name) +
                             " is not allowed in a rule program" + At(pc));
      }
      return OkStatus();
    };

    switch (insn.op) {
      case Op::kLoadConst:
        OSGUARD_RETURN_IF_ERROR(check_const(insn.imm));
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
        OSGUARD_RETURN_IF_ERROR(check_jump(insn.imm));
        break;
      case Op::kMakeList:
        if (insn.imm < 0 || insn.b + insn.imm > regs) {
          return VerifierError("program '" + program.name + "': list window out of range" +
                               At(pc));
        }
        break;
      case Op::kCall:
        OSGUARD_RETURN_IF_ERROR(check_call(insn.imm, insn.c));
        break;
      case Op::kCallKeyed:
        // The slot id (aux) is bound to a concrete store at load time; the
        // verifier only requires it to be non-negative — a stale or
        // out-of-range slot degrades to the string-keyed slow path at run
        // time, never to a fault.
        if (insn.aux < 0) {
          return VerifierError("program '" + program.name + "': negative store slot" + At(pc));
        }
        OSGUARD_RETURN_IF_ERROR(check_call(insn.imm, insn.c));
        break;
      case Op::kCmpConst:
        OSGUARD_RETURN_IF_ERROR(check_cmp_kind(insn.c));
        OSGUARD_RETURN_IF_ERROR(check_const(insn.imm));
        break;
      case Op::kCmpConstJf:
      case Op::kCmpConstJt:
        OSGUARD_RETURN_IF_ERROR(check_cmp_kind(insn.c));
        OSGUARD_RETURN_IF_ERROR(check_const(insn.imm));
        OSGUARD_RETURN_IF_ERROR(check_jump(insn.aux));
        break;
      case Op::kCmpRegJf:
      case Op::kCmpRegJt:
        OSGUARD_RETURN_IF_ERROR(check_cmp_kind(insn.imm));
        OSGUARD_RETURN_IF_ERROR(check_jump(insn.aux));
        break;
      default:
        break;
    }
  }

  // Pass 2: reachability + def-before-use dataflow. Jumps are forward-only
  // so a single in-order sweep reaches a fixpoint.
  std::vector<uint64_t> in_mask(n, 0);
  std::vector<bool> reachable(n, false);
  reachable[0] = true;
  bool saw_ret = false;
  for (size_t pc = 0; pc < n; ++pc) {
    if (!reachable[pc]) {
      continue;
    }
    const Insn& insn = program.insns[pc];
    Effects effects = EffectsOf(insn).value();  // validated in pass 1

    const uint64_t have = in_mask[pc];
    if ((effects.uses & ~have) != 0) {
      for (int r = 0; r < kMaxRegisters; ++r) {
        if (((effects.uses & ~have) >> r) & 1) {
          return VerifierError("program '" + program.name + "': register r" +
                               std::to_string(r) + " used before definition" + At(pc));
        }
      }
    }
    uint64_t out = have;
    if (effects.def.has_value()) {
      out |= Bit(*effects.def).value();  // validated in pass 1
    }

    auto propagate = [&](size_t target) {
      if (reachable[target]) {
        in_mask[target] &= out;  // intersection at join points
      } else {
        reachable[target] = true;
        in_mask[target] = out;
      }
    };
    if (effects.is_jump) {
      propagate(pc + 1 + static_cast<size_t>(JumpOffsetOf(insn, effects)));
    }
    if (effects.falls_through) {
      if (pc + 1 >= n) {
        return VerifierError("program '" + program.name +
                             "': execution can fall off the end" + At(pc));
      }
      propagate(pc + 1);
    }
    if (insn.op == Op::kRet) {
      saw_ret = true;
    }
  }
  if (!saw_ret) {
    return VerifierError("program '" + program.name + "' has no reachable return");
  }
  return OkStatus();
}

}  // namespace osguard
