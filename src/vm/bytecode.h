// Bytecode format for compiled guardrail monitors.
//
// The paper compiles guardrails into monitors that run inside the kernel "as
// eBPF programs or kernel modules". We mirror the eBPF execution model with a
// small register machine:
//
//   * fixed register file (kMaxRegisters), registers hold Values
//   * a constant pool per program
//   * forward-only jumps — every verified program is a DAG, so termination
//     is structural, exactly like (classic) eBPF's no-back-edges rule
//   * side effects only through numbered helpers (the DSL builtins)
//
// A guardrail compiles into up to three programs: the rule program (returns
// a truth value; true = property holds), the action program, and optionally
// the on_satisfy program.

#ifndef SRC_VM_BYTECODE_H_
#define SRC_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dsl/builtins.h"
#include "src/store/value.h"

namespace osguard {

inline constexpr int kMaxRegisters = 64;
inline constexpr int kMaxInstructions = 4096;
inline constexpr int kMaxConstants = 1024;

enum class Op : uint8_t {
  kLoadConst = 0,  // r[a] = consts[imm]
  kMov,            // r[a] = r[b]
  kAdd,            // r[a] = r[b] + r[c]   (numeric; int+int stays int)
  kSub,
  kMul,
  kDiv,            // always float division; div-by-zero faults the program
  kMod,
  kNeg,            // r[a] = -r[b]
  kNot,            // r[a] = !truthy(r[b])
  kCmpLt,          // r[a] = r[b] < r[c]
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kCmpEq,          // deep equality on Values
  kCmpNe,
  kJump,           // pc += imm (imm >= 1, forward only)
  kJumpIfFalse,    // if !truthy(r[a]) pc += imm
  kJumpIfTrue,     // if  truthy(r[a]) pc += imm
  kMakeList,       // r[a] = list(r[b] .. r[b]+imm-1)
  kCall,           // r[a] = helper<imm>(r[b] .. r[b]+c-1)
  kRet,            // return r[a]
  // --- Superinstructions (peephole-fused forms of the ops above). ---
  // Compare kinds for the fused compares: 0..5 = Lt Le Gt Ge Eq Ne, the same
  // order as kCmpLt..kCmpNe.
  kCmpConst,       // r[a] = cmp<c>(r[b], consts[imm])
  kCmpConstJf,     // r[a] = cmp<c>(r[b], consts[imm]); if !r[a] pc += aux
  kCmpConstJt,     // r[a] = cmp<c>(r[b], consts[imm]); if  r[a] pc += aux
  kCmpRegJf,       // r[a] = cmp<imm>(r[b], r[c]); if !r[a] pc += aux
  kCmpRegJt,       // r[a] = cmp<imm>(r[b], r[c]); if  r[a] pc += aux
  // Keyed helper call: like kCall, but aux carries the feature-store slot id
  // pre-resolved (by Engine::Load) for the key in r[b]. The helper context
  // may use it to skip the string lookup; semantics are identical to kCall.
  kCallKeyed,      // r[a] = helper<imm>(slot aux; r[b] .. r[b]+c-1)
};

inline constexpr int kOpCount = static_cast<int>(Op::kCallKeyed) + 1;

// Number of fused compare kinds, and the mapping back to the base opcode.
inline constexpr int kCmpKindCount = 6;
inline constexpr Op CmpKindToOp(int kind) {
  return static_cast<Op>(static_cast<int>(Op::kCmpLt) + kind);
}
inline constexpr int CmpOpToKind(Op op) {
  return static_cast<int>(op) - static_cast<int>(Op::kCmpLt);
}

std::string_view OpName(Op op);

struct Insn {
  Op op = Op::kRet;
  uint8_t a = 0;   // destination / condition register
  uint8_t b = 0;   // first source register
  uint8_t c = 0;   // second source register / arg count / fused compare kind
  int32_t imm = 0; // constant index / jump offset / helper id / list length
  int32_t aux = 0; // superinstruction extra: fused jump offset / store slot id
};

struct Program {
  std::string name;               // e.g. "low-false-submit.rule"
  std::vector<Insn> insns;
  std::vector<Value> consts;
  int register_count = 0;         // registers actually used

  bool empty() const { return insns.empty(); }
  // Human-readable listing, one instruction per line.
  std::string Disassemble() const;
};

}  // namespace osguard

#endif  // SRC_VM_BYTECODE_H_
